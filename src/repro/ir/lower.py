"""Lowering from the checked C AST to lcc-style tree IR.

Produces the forest shape the paper shows: assignments, compare-and-branch
operators with label literals, ``ARG*`` trees preceding ``CALL*`` trees,
``ADDRLP/ADDRFP/ADDRGP`` leaves with literal offsets/names.

Value-representation invariants:

* char/short values are carried as sign- (or zero-) extended 32-bit ints;
  ``INDIRC``/``CVCI`` normalize on load and truncation.
* struct-typed expressions evaluate to the struct's *address* (lcc's
  implicit ``INDIRB`` elision); only ``ASGNB`` consumes them.
* all side effects (stores, calls) are emitted as forest trees, so any
  value tree returned by the expression lowerer is pure and discardable.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from ..cfront import ctypes as ct
from ..cfront.astnodes import (
    Assign, Binary, Block, Break, Call, Case, Cast, Conditional, Continue,
    DeclStmt, DoWhile, EmptyStmt, Expr, ExprStmt, FloatLit, For, FunctionDef,
    If, ImplicitCast, IncDec, Index, InitList, Initializer, IntLit, Member,
    NameRef, Return, Stmt, StringLit, Switch, TranslationUnit, Unary,
    VarDecl, While,
)
from ..cfront.ctypes import (
    ArrayType, CType, FloatType, FunctionType, IntType, PointerType,
    StructType, VoidType,
)
from ..cfront.errors import CompileError, Location
from ..cfront.symbols import Storage, Symbol
from .tree import GlobalData, IRFunction, IRModule, PtrInit, ScalarInit, Tree, T

__all__ = ["lower_unit", "suffix_of"]


def suffix_of(t: CType) -> str:
    """The IR type suffix used for loads/stores of ``t``."""
    if isinstance(t, PointerType):
        return "P"
    if isinstance(t, FloatType):
        return "D"
    if isinstance(t, IntType):
        if t.width == 1:
            return "C"
        if t.width == 2:
            return "S"
        return "U" if not t.signed else "I"
    if isinstance(t, FunctionType):
        return "P"
    raise CompileError(f"no scalar IR suffix for type '{t}'")


def _value_suffix(t: CType) -> str:
    """The suffix of the *computed value* (small ints widen to I)."""
    s = suffix_of(t)
    if s in ("C", "S"):
        return "U" if isinstance(t, IntType) and not t.signed else "I"
    return s


def _align(offset: int, align: int) -> int:
    return (offset + align - 1) // align * align


def _wrap8(value: int) -> int:
    """Wrap a byte value into signed-char range (CNSTC literals)."""
    value &= 0xFF
    return value - 256 if value >= 128 else value


class _LoopContext:
    """Targets for break/continue inside the innermost loop/switch."""

    def __init__(self, break_label: str, continue_label: Optional[str]) -> None:
        self.break_label = break_label
        self.continue_label = continue_label


class FunctionLowerer:
    """Lowers one function body to an :class:`IRFunction`."""

    def __init__(self, fn: FunctionDef, module: "ModuleLowerer") -> None:
        self.fn = fn
        self.module = module
        self.out = IRFunction(fn.name)
        self._frame = 0
        self._labels = 0
        self._loops: List[_LoopContext] = []
        assert isinstance(fn.type, FunctionType)
        ret = fn.type.ret
        self.out.ret_suffix = "V" if isinstance(ret, VoidType) else _value_suffix(ret)
        # Parameter area layout: each param gets at least 4 bytes.
        offset = 0
        for param in fn.params:
            size = max(4, param.type.size)
            align = max(4, param.type.align)
            offset = _align(offset, align)
            assert isinstance(param.symbol, Symbol)
            param.symbol.frame_offset = offset
            offset += size
            self.out.param_sizes.append(size)

    # -- bookkeeping -------------------------------------------------------

    def new_label(self) -> str:
        self._labels += 1
        return f"{self.fn.name}.L{self._labels}"

    def new_temp(self, size: int, align: int) -> int:
        """Reserve frame space for a temporary; returns its offset."""
        self._frame = _align(self._frame, align)
        offset = self._frame
        self._frame += size
        return offset

    def declare_local(self, sym: Symbol) -> None:
        size = max(1, sym.type.size)
        self._frame = _align(self._frame, max(1, sym.type.align))
        sym.frame_offset = self._frame
        self._frame += size

    def emit(self, tree: Tree) -> None:
        self.out.forest.append(tree)

    def emit_label(self, label: str) -> None:
        self.emit(T("LABELV", value=label))

    def emit_jump(self, label: str) -> None:
        self.emit(T("JUMPV", value=label))

    # -- driver ------------------------------------------------------------

    def run(self) -> IRFunction:
        assert self.fn.body is not None
        self.stmt(self.fn.body)
        # Guarantee the function ends with a return.
        if not self.out.forest or self.out.forest[-1].op.name not in (
            "RETI", "RETU", "RETP", "RETD", "RETV", "JUMPV"
        ):
            if self.out.ret_suffix == "V":
                self.emit(T("RETV"))
            else:
                zero = (
                    T("CNSTD", value=0.0)
                    if self.out.ret_suffix == "D"
                    else T(f"CNST{self.out.ret_suffix}", value=0)
                )
                self.emit(T(f"RET{self.out.ret_suffix}", zero))
        self.out.frame_size = _align(self._frame, 8)
        return self.out

    # -- statements --------------------------------------------------------

    def stmt(self, s: Stmt) -> None:
        if isinstance(s, Block):
            for item in s.body:
                self.stmt(item)
        elif isinstance(s, ExprStmt):
            assert s.expr is not None
            self.effect(s.expr)
        elif isinstance(s, DeclStmt):
            for decl in s.decls:
                self._lower_local_decl(decl)
        elif isinstance(s, If):
            self._lower_if(s)
        elif isinstance(s, While):
            self._lower_while(s)
        elif isinstance(s, DoWhile):
            self._lower_dowhile(s)
        elif isinstance(s, For):
            self._lower_for(s)
        elif isinstance(s, Return):
            self._lower_return(s)
        elif isinstance(s, Break):
            self.emit_jump(self._loops[-1].break_label)
        elif isinstance(s, Continue):
            target = next(
                ctx.continue_label
                for ctx in reversed(self._loops)
                if ctx.continue_label is not None
            )
            self.emit_jump(target)
        elif isinstance(s, Switch):
            self._lower_switch(s)
        elif isinstance(s, EmptyStmt):
            pass
        elif isinstance(s, Case):  # pragma: no cover - sema rejects these
            raise CompileError("case outside switch", s.location)
        else:  # pragma: no cover
            raise AssertionError(f"unhandled statement {type(s).__name__}")

    def _lower_local_decl(self, decl: VarDecl) -> None:
        sym = decl.symbol
        if not isinstance(sym, Symbol) or sym.storage is not Storage.LOCAL:
            return  # hoisted statics are initialized in the image
        self.declare_local(sym)
        if decl.init is None:
            return
        addr = self._local_addr(sym)
        self._init_into(decl.type, decl.init, addr)

    def _init_into(
        self, t: CType, init: Union[Initializer, InitList], addr: Tree
    ) -> None:
        """Emit stores initializing the object at ``addr`` (a P tree)."""
        if isinstance(init, Initializer):
            assert init.expr is not None
            if isinstance(t, ArrayType) and isinstance(init.expr, StringLit):
                text = init.expr.value
                count = t.count or (len(text) + 1)
                for i in range(min(count, len(text) + 1)):
                    byte = ord(text[i]) if i < len(text) else 0
                    self.emit(T("ASGNC", self._offset_addr(addr, i),
                                T("CNSTC", value=_wrap8(byte))))
                return
            if isinstance(t, StructType):
                src = self.rv(init.expr)
                self.emit(T("ASGNB", addr, src, value=t.size))
                return
            value = self.rv(init.expr)
            self.emit(T(f"ASGN{suffix_of(t)}", addr, value))
            return
        if isinstance(t, ArrayType):
            esize = t.element.size
            for i, item in enumerate(init.items):
                self._init_into(t.element, item, self._offset_addr(addr, i * esize))
            # Remaining elements are zeroed.
            for i in range(len(init.items), t.count or len(init.items)):
                self._zero_into(t.element, self._offset_addr(addr, i * esize))
            return
        if isinstance(t, StructType):
            assert t.members is not None
            for member, item in zip(t.members, init.items):
                self._init_into(member.type, item,
                                self._offset_addr(addr, member.offset))
            for member in t.members[len(init.items):]:
                self._zero_into(member.type, self._offset_addr(addr, member.offset))
            return
        # Scalar wrapped in braces.
        self._init_into(t, init.items[0], addr)

    def _zero_into(self, t: CType, addr: Tree) -> None:
        if isinstance(t, ArrayType):
            for i in range(t.count or 0):
                self._zero_into(t.element, self._offset_addr(addr, i * t.element.size))
            return
        if isinstance(t, StructType):
            assert t.members is not None
            for member in t.members:
                self._zero_into(member.type, self._offset_addr(addr, member.offset))
            return
        if isinstance(t, FloatType):
            self.emit(T("ASGND", addr, T("CNSTD", value=0.0)))
            return
        suffix = suffix_of(t)
        self.emit(T(f"ASGN{suffix}", addr, T(f"CNST{suffix}", value=0)))

    def _lower_if(self, s: If) -> None:
        assert s.cond is not None and s.then is not None
        if s.otherwise is None:
            end = self.new_label()
            self.cond(s.cond, end, branch_if_true=False)
            self.stmt(s.then)
            self.emit_label(end)
            return
        other = self.new_label()
        end = self.new_label()
        self.cond(s.cond, other, branch_if_true=False)
        self.stmt(s.then)
        self.emit_jump(end)
        self.emit_label(other)
        self.stmt(s.otherwise)
        self.emit_label(end)

    def _lower_while(self, s: While) -> None:
        assert s.cond is not None and s.body is not None
        body = self.new_label()
        test = self.new_label()
        end = self.new_label()
        self.emit_jump(test)
        self.emit_label(body)
        self._loops.append(_LoopContext(end, test))
        self.stmt(s.body)
        self._loops.pop()
        self.emit_label(test)
        self.cond(s.cond, body, branch_if_true=True)
        self.emit_label(end)

    def _lower_dowhile(self, s: DoWhile) -> None:
        assert s.cond is not None and s.body is not None
        body = self.new_label()
        test = self.new_label()
        end = self.new_label()
        self.emit_label(body)
        self._loops.append(_LoopContext(end, test))
        self.stmt(s.body)
        self._loops.pop()
        self.emit_label(test)
        self.cond(s.cond, body, branch_if_true=True)
        self.emit_label(end)

    def _lower_for(self, s: For) -> None:
        assert s.body is not None
        if isinstance(s.init, DeclStmt):
            for decl in s.init.decls:
                self._lower_local_decl(decl)
        elif isinstance(s.init, Expr):
            self.effect(s.init)
        body = self.new_label()
        step = self.new_label()
        test = self.new_label()
        end = self.new_label()
        self.emit_jump(test)
        self.emit_label(body)
        self._loops.append(_LoopContext(end, step))
        self.stmt(s.body)
        self._loops.pop()
        self.emit_label(step)
        if s.step is not None:
            self.effect(s.step)
        self.emit_label(test)
        if s.cond is None:
            self.emit_jump(body)
        else:
            self.cond(s.cond, body, branch_if_true=True)
        self.emit_label(end)

    def _lower_return(self, s: Return) -> None:
        if s.value is None:
            self.emit(T("RETV"))
            return
        value = self.rv(s.value)
        suffix = self.out.ret_suffix
        # Small return types were coerced by sema to the declared type;
        # widen the value back to a register-sized kind.
        assert s.value.ctype is not None
        value = _widen(value, s.value.ctype)
        self.emit(T(f"RET{suffix}", value))

    def _lower_switch(self, s: Switch) -> None:
        assert s.scrutinee is not None and s.body is not None
        scrut = self.rv(s.scrutinee)
        temp = self.new_temp(4, 4)
        self.emit(T("ASGNI", T("ADDRLP", value=temp), scrut))
        load = lambda: T("INDIRI", T("ADDRLP", value=temp))

        # Collect the cases in source order.
        items: List[Stmt]
        if isinstance(s.body, Block):
            items = s.body.body
        else:
            items = [s.body]
        cases = [item for item in items if isinstance(item, Case)]
        end = self.new_label()
        case_labels: Dict[int, str] = {}
        default_label: Optional[str] = None
        for case in cases:
            label = self.new_label()
            case_labels[id(case)] = label
            if case.const_value is None:
                default_label = label
        # Dispatch: a compare-and-branch chain (lcc uses search trees for
        # big switches; a chain preserves the same IR operator mix).
        for case in cases:
            if case.const_value is not None:
                self.emit(
                    T("EQI", load(), T("CNSTI", value=case.const_value),
                      value=case_labels[id(case)])
                )
        self.emit_jump(default_label if default_label is not None else end)
        # Body, with labels at case positions; break exits the switch.
        self._loops.append(_LoopContext(end, None))
        for item in items:
            if isinstance(item, Case):
                self.emit_label(case_labels[id(item)])
                if item.body is not None:
                    self.stmt(item.body)
            else:
                self.stmt(item)
        self._loops.pop()
        self.emit_label(end)

    # -- conditions ----------------------------------------------------

    _NEGATE = {"EQ": "NE", "NE": "EQ", "LT": "GE", "GE": "LT",
               "LE": "GT", "GT": "LE"}
    _CMP_OPS = {"==": "EQ", "!=": "NE", "<": "LT", "<=": "LE",
                ">": "GT", ">=": "GE"}

    def cond(self, expr: Expr, label: str, branch_if_true: bool) -> None:
        """Emit compare-and-branch trees: jump to ``label`` when the
        condition's truth equals ``branch_if_true``; otherwise fall through.
        """
        if isinstance(expr, Unary) and expr.op == "!":
            assert expr.operand is not None
            self.cond(expr.operand, label, not branch_if_true)
            return
        if isinstance(expr, Binary) and expr.op in ("&&", "||"):
            assert expr.left is not None and expr.right is not None
            is_and = expr.op == "&&"
            if is_and == branch_if_true:
                # AND branching on true / OR branching on false: need a
                # short-circuit label past the second test.
                skip = self.new_label()
                self.cond(expr.left, skip, not is_and)
                self.cond(expr.right, label, branch_if_true)
                self.emit_label(skip)
            else:
                self.cond(expr.left, label, not is_and)
                self.cond(expr.right, label, branch_if_true)
            return
        if isinstance(expr, Binary) and expr.op in self._CMP_OPS:
            assert expr.left is not None and expr.right is not None
            base = self._CMP_OPS[expr.op]
            if not branch_if_true:
                base = self._NEGATE[base]
            assert expr.left.ctype is not None
            suffix, wrap = self._cmp_suffix(expr.left.ctype)
            left = wrap(self.rv(expr.left), expr.left.ctype)
            right = wrap(self.rv(expr.right), expr.right.ctype or expr.left.ctype)
            self.emit(T(f"{base}{suffix}", left, right, value=label))
            return
        if isinstance(expr, IntLit):
            if bool(expr.value) == branch_if_true:
                self.emit_jump(label)
            return
        # Generic scalar: compare against zero.
        assert expr.ctype is not None
        value = self.rv(expr)
        suffix, wrap = self._cmp_suffix(expr.ctype)
        value = wrap(value, expr.ctype)
        zero = T("CNSTD", value=0.0) if suffix == "D" else T(f"CNST{suffix}", value=0)
        base = "NE" if branch_if_true else "EQ"
        self.emit(T(f"{base}{suffix}", value, zero, value=label))

    @staticmethod
    def _cmp_suffix(t: CType):
        """Branch suffix for comparing values of type ``t`` plus a wrapper
        that widens/reinterprets the value tree to that suffix."""
        if isinstance(t, PointerType):
            return "U", lambda tree, ty: T("CVPU", tree)
        if isinstance(t, FloatType):
            return "D", lambda tree, ty: tree
        assert isinstance(t, IntType)
        if t.width < 4:
            return "I", lambda tree, ty: _widen(tree, ty)
        if not t.signed:
            return "U", lambda tree, ty: tree
        return "I", lambda tree, ty: tree

    def cond_value(self, expr: Expr) -> Tree:
        """Materialize a boolean expression as an int 0/1 value."""
        temp = self.new_temp(4, 4)
        true = self.new_label()
        end = self.new_label()
        self.cond(expr, true, branch_if_true=True)
        self.emit(T("ASGNI", T("ADDRLP", value=temp), T("CNSTI", value=0)))
        self.emit_jump(end)
        self.emit_label(true)
        self.emit(T("ASGNI", T("ADDRLP", value=temp), T("CNSTI", value=1)))
        self.emit_label(end)
        return T("INDIRI", T("ADDRLP", value=temp))

    # -- expressions -------------------------------------------------------

    def effect(self, expr: Expr) -> None:
        """Lower ``expr`` for its side effects, discarding the value."""
        if isinstance(expr, Call):
            self._lower_call(expr, want_value=False)
            return
        if isinstance(expr, Assign):
            self._lower_assign(expr, want_value=False)
            return
        if isinstance(expr, IncDec):
            self._lower_incdec(expr, want_value=False)
            return
        if isinstance(expr, Binary) and expr.op == ",":
            assert expr.left is not None and expr.right is not None
            self.effect(expr.left)
            self.effect(expr.right)
            return
        if isinstance(expr, Conditional):
            assert expr.cond is not None
            other = self.new_label()
            end = self.new_label()
            self.cond(expr.cond, other, branch_if_true=False)
            assert expr.then is not None and expr.otherwise is not None
            self.effect(expr.then)
            self.emit_jump(end)
            self.emit_label(other)
            self.effect(expr.otherwise)
            self.emit_label(end)
            return
        if isinstance(expr, (ImplicitCast, Cast)) and expr.operand is not None:
            self.effect(expr.operand)
            return
        # Pure expression as a statement: evaluate for nested effects only.
        self.rv(expr)

    def rv(self, expr: Expr) -> Tree:
        """Lower ``expr`` to a value tree (struct values yield addresses)."""
        if isinstance(expr, IntLit):
            t = expr.ctype
            suffix = suffix_of(t) if t is not None else "I"
            if suffix == "D":
                return T("CNSTD", value=float(expr.value))
            return T(f"CNST{suffix}", value=expr.value)
        if isinstance(expr, FloatLit):
            return T("CNSTD", value=expr.value)
        if isinstance(expr, StringLit):
            assert expr.label is not None
            return T("ADDRGP", value=expr.label)
        if isinstance(expr, NameRef):
            return self._lower_nameref(expr)
        if isinstance(expr, Unary):
            return self._lower_unary(expr)
        if isinstance(expr, Binary):
            return self._lower_binary(expr)
        if isinstance(expr, Assign):
            result = self._lower_assign(expr, want_value=True)
            assert result is not None
            return result
        if isinstance(expr, Conditional):
            return self._lower_conditional_value(expr)
        if isinstance(expr, Call):
            result = self._lower_call(expr, want_value=True)
            assert result is not None
            return result
        if isinstance(expr, (Index, Member)):
            return self._load(self.lv(expr), expr.ctype)
        if isinstance(expr, (ImplicitCast, Cast)):
            return self._lower_cast(expr)
        if isinstance(expr, IncDec):
            result = self._lower_incdec(expr, want_value=True)
            assert result is not None
            return result
        raise AssertionError(f"unhandled expression {type(expr).__name__}")

    def lv(self, expr: Expr) -> Tree:
        """Lower ``expr`` to an address tree."""
        if isinstance(expr, NameRef):
            sym = expr.symbol
            assert isinstance(sym, Symbol)
            return self._symbol_addr(sym)
        if isinstance(expr, Unary) and expr.op == "*":
            assert expr.operand is not None
            return self.rv(expr.operand)
        if isinstance(expr, Index):
            assert expr.base is not None and expr.index is not None
            base = self.rv(expr.base)
            assert isinstance(expr.base.ctype, PointerType)
            esize = expr.base.ctype.target.size
            return self._pointer_offset(base, self.rv(expr.index), esize)
        if isinstance(expr, Member):
            assert expr.base is not None
            if expr.arrow:
                base = self.rv(expr.base)
            else:
                base = self.lv(expr.base)
            return self._offset_addr(base, expr.offset)
        if isinstance(expr, StringLit):
            assert expr.label is not None
            return T("ADDRGP", value=expr.label)
        if isinstance(expr, (ImplicitCast, Cast)):
            # Address of a decayed array is the array's own address.
            assert expr.operand is not None
            return self.lv(expr.operand)
        raise CompileError("expression is not addressable", expr.location)

    # -- expression helpers ----------------------------------------------

    def _symbol_addr(self, sym: Symbol) -> Tree:
        if sym.storage in (Storage.GLOBAL, Storage.FUNCTION):
            return T("ADDRGP", value=sym.name)
        if sym.storage is Storage.PARAM:
            assert sym.frame_offset is not None
            return T("ADDRFP", value=sym.frame_offset)
        if sym.storage is Storage.LOCAL:
            assert sym.frame_offset is not None, sym.name
            return T("ADDRLP", value=sym.frame_offset)
        raise AssertionError(f"unexpected storage {sym.storage}")

    def _local_addr(self, sym: Symbol) -> Tree:
        assert sym.frame_offset is not None
        return T("ADDRLP", value=sym.frame_offset)

    def _offset_addr(self, addr: Tree, offset: int) -> Tree:
        if offset == 0:
            return addr
        return T("ADDP", addr, T("CNSTI", value=offset))

    def _pointer_offset(self, base: Tree, index: Tree, esize: int) -> Tree:
        """``base + index * esize`` as an ADDP tree."""
        if index.op.name == "CNSTI" and isinstance(index.value, int):
            return self._offset_addr(base, index.value * esize)
        scaled = index if esize == 1 else T("MULI", index, T("CNSTI", value=esize))
        return T("ADDP", base, scaled)

    def _load(self, addr: Tree, t: Optional[CType]) -> Tree:
        assert t is not None
        if isinstance(t, (StructType, ArrayType)):
            return addr  # struct/array values are addresses
        suffix = suffix_of(t)
        load = T(f"INDIR{suffix}", addr)
        if suffix == "C":
            assert isinstance(t, IntType)
            return T("CVCI" if t.signed else "CVUCI", load)
        if suffix == "S":
            assert isinstance(t, IntType)
            return T("CVSI" if t.signed else "CVUSI", load)
        return load

    def _lower_nameref(self, expr: NameRef) -> Tree:
        sym = expr.symbol
        assert isinstance(sym, Symbol)
        if sym.storage is Storage.FUNCTION:
            return T("ADDRGP", value=sym.name)
        t = expr.ctype
        if isinstance(t, (ArrayType, StructType)):
            return self._symbol_addr(sym)
        return self._load(self._symbol_addr(sym), t)

    def _lower_unary(self, expr: Unary) -> Tree:
        assert expr.operand is not None
        op = expr.op
        if op == "*":
            return self._load(self.rv(expr.operand), expr.ctype)
        if op == "&":
            return self.lv(expr.operand)
        if op == "!":
            return self.cond_value(expr)
        operand = self.rv(expr.operand)
        t = expr.ctype
        assert t is not None
        if op == "-":
            if isinstance(t, FloatType):
                return T("NEGD", operand)
            if isinstance(t, IntType) and not t.signed:
                return T("SUBU", T("CNSTU", value=0), operand)
            return T("NEGI", operand)
        if op == "~":
            suffix = "U" if isinstance(t, IntType) and not t.signed else "I"
            return T(f"BCOM{suffix}", operand)
        raise AssertionError(f"unhandled unary {op}")

    _ARITH = {"+": "ADD", "-": "SUB", "*": "MUL", "/": "DIV", "%": "MOD",
              "&": "BAND", "|": "BOR", "^": "BXOR", "<<": "LSH", ">>": "RSH"}

    def _lower_binary(self, expr: Binary) -> Tree:
        assert expr.left is not None and expr.right is not None
        op = expr.op
        if op == ",":
            self.effect(expr.left)
            return self.rv(expr.right)
        if op in ("&&", "||") or op in self._CMP_OPS:
            return self.cond_value(expr)
        lt = expr.left.ctype
        rt = expr.right.ctype
        assert lt is not None and rt is not None
        # Pointer arithmetic.
        if op in ("+", "-") and isinstance(lt, PointerType):
            if isinstance(rt, PointerType):
                # ptr - ptr: byte difference divided by the element size.
                left = T("CVPU", self.rv(expr.left))
                right = T("CVPU", self.rv(expr.right))
                diff = T("CVUI", T("SUBU", left, right))
                esize = lt.target.size
                if esize > 1:
                    diff = T("DIVI", diff, T("CNSTI", value=esize))
                return diff
            base = self.rv(expr.left)
            index = self.rv(expr.right)
            esize = lt.target.size
            if op == "+":
                return self._pointer_offset(base, index, esize)
            scaled = (
                index if esize == 1 else T("MULI", index, T("CNSTI", value=esize))
            )
            return T("SUBP", base, scaled)
        # Plain arithmetic on a common type.
        t = expr.ctype
        assert t is not None
        base_name = self._ARITH[op]
        suffix = _value_suffix(t)
        if base_name in ("BAND", "BOR", "BXOR", "MOD", "LSH", "RSH") and suffix == "D":
            raise AssertionError("integer operator on double")
        left = self.rv(expr.left)
        right = self.rv(expr.right)
        if base_name in ("LSH", "RSH"):
            # Shift counts are int regardless of the value type.
            return T(f"{base_name}{suffix}", left, right)
        return T(f"{base_name}{suffix}", left, right)

    def _addr_temp(self, addr: Tree) -> Tree:
        """Ensure an address tree can be reused twice without re-evaluating.

        Leaf addresses are duplicated freely; anything else is spilled to a
        pointer temporary.
        """
        if addr.op.name in ("ADDRLP", "ADDRFP", "ADDRGP"):
            return addr
        temp = self.new_temp(4, 4)
        self.emit(T("ASGNP", T("ADDRLP", value=temp), addr))
        return T("INDIRP", T("ADDRLP", value=temp))

    def _lower_assign(self, expr: Assign, want_value: bool) -> Optional[Tree]:
        assert expr.target is not None and expr.value is not None
        tt = expr.target.ctype
        assert tt is not None
        if isinstance(tt, StructType):
            dst = self.lv(expr.target)
            src = self.rv(expr.value)  # struct value == address
            self.emit(T("ASGNB", dst, src, value=tt.size))
            return self.lv(expr.target) if want_value else None
        addr = self.lv(expr.target)
        if expr.op == "=":
            value = self.rv(expr.value)
            if want_value:
                addr = self._addr_temp(addr)
            self.emit(T(f"ASGN{suffix_of(tt)}", addr, value))
            return self._load(addr, tt) if want_value else None
        # Compound assignment: load, combine at the common type, store.
        addr = self._addr_temp(addr)
        binop = expr.op[:-1]
        value = self.rv(expr.value)
        vt = expr.value.ctype
        assert vt is not None
        if isinstance(tt, PointerType):
            esize = tt.target.size
            loaded = self._load(addr, tt)
            if binop == "+":
                combined = self._pointer_offset(loaded, value, esize)
            else:
                scaled = (
                    value if esize == 1 else T("MULI", value, T("CNSTI", value=esize))
                )
                combined = T("SUBP", loaded, scaled)
            self.emit(T("ASGNP", addr, combined))
            return self._load(addr, tt) if want_value else None
        common = vt  # sema coerced the RHS to the common type
        loaded = _convert_value(self._load(addr, tt), tt, common)
        base_name = self._ARITH[binop]
        suffix = _value_suffix(common)
        combined = T(f"{base_name}{suffix}", loaded, value)
        combined = _convert_value(combined, common, tt)
        self.emit(T(f"ASGN{suffix_of(tt)}", addr, combined))
        return self._load(addr, tt) if want_value else None

    def _lower_incdec(self, expr: IncDec, want_value: bool) -> Optional[Tree]:
        assert expr.operand is not None
        t = expr.ctype
        assert t is not None
        addr = self._addr_temp(self.lv(expr.operand))
        loaded = self._load(addr, t)
        result: Optional[Tree] = None
        if want_value and expr.postfix:
            # Save the old value in a temp.
            size = max(4, t.size)
            temp = self.new_temp(size, size)
            vsuffix = "D" if isinstance(t, FloatType) else (
                "P" if isinstance(t, PointerType) else _value_suffix(t))
            store_suffix = "D" if vsuffix == "D" else ("P" if vsuffix == "P" else
                                                       ("U" if vsuffix == "U" else "I"))
            self.emit(T(f"ASGN{store_suffix}", T("ADDRLP", value=temp), loaded))
            result = T(f"INDIR{store_suffix}", T("ADDRLP", value=temp))
        delta = 1 if expr.op == "++" else -1
        if isinstance(t, PointerType):
            updated = self._offset_addr(loaded, delta * t.target.size)
        elif isinstance(t, FloatType):
            op_name = "ADDD" if delta > 0 else "SUBD"
            updated = T(op_name, loaded, T("CNSTD", value=1.0))
        else:
            assert isinstance(t, IntType)
            common = ct.integer_promote(t)
            widened = _convert_value(loaded, t, common)
            suffix = _value_suffix(common)
            op_name = f"ADD{suffix}" if delta > 0 else f"SUB{suffix}"
            one = T(f"CNST{suffix}", value=1)
            updated = _convert_value(T(op_name, widened, one), common, t)
        self.emit(T(f"ASGN{suffix_of(t)}", addr, updated))
        if not want_value:
            return None
        if expr.postfix:
            return result
        return self._load(addr, t)

    def _lower_conditional_value(self, expr: Conditional) -> Tree:
        assert expr.cond is not None
        assert expr.then is not None and expr.otherwise is not None
        t = expr.ctype
        assert t is not None
        if isinstance(t, VoidType):
            self.effect(expr)
            # A void conditional has no value; callers only reach here via
            # effect(), but return a dummy for safety.
            return T("CNSTI", value=0)
        size = max(4, t.size)
        temp = self.new_temp(size, size)
        taddr = lambda: T("ADDRLP", value=temp)
        suffix = suffix_of(t)
        other = self.new_label()
        end = self.new_label()
        self.cond(expr.cond, other, branch_if_true=False)
        self.emit(T(f"ASGN{suffix}", taddr(), self.rv(expr.then)))
        self.emit_jump(end)
        self.emit_label(other)
        self.emit(T(f"ASGN{suffix}", taddr(), self.rv(expr.otherwise)))
        self.emit_label(end)
        return self._load(taddr(), t)

    def _lower_call(self, expr: Call, want_value: bool) -> Optional[Tree]:
        assert expr.func is not None
        ftype = expr.func.ctype
        if isinstance(ftype, PointerType):
            ftype = ftype.target
        if isinstance(expr.func, ImplicitCast) and isinstance(
            expr.func.operand, NameRef
        ):
            func_addr = self.rv(expr.func.operand)
        else:
            func_addr = self.rv(expr.func)
        assert isinstance(ftype, FunctionType)
        ret = ftype.ret
        if isinstance(ret, StructType):
            raise CompileError("struct-valued returns are not supported",
                               expr.location)
        # Evaluate arguments left to right.  Any argument whose lowering
        # emits trees (inner calls, assignments) is safely ordered because
        # rv() emits into the forest before we emit the ARG trees.
        arg_trees: List[Tuple[str, Tree]] = []
        for arg in expr.args:
            at = arg.ctype
            assert at is not None
            if isinstance(at, StructType):
                raise CompileError("struct-valued arguments are not supported",
                                   arg.location)
            value = self.rv(arg)
            value = _widen(value, at)
            suffix = "D" if isinstance(at, FloatType) else (
                "P" if isinstance(at, PointerType) else _value_suffix(at))
            arg_trees.append((suffix, value))
        for suffix, value in arg_trees:
            self.emit(T(f"ARG{suffix}", value))
        ret_suffix = "V" if isinstance(ret, VoidType) else _value_suffix(ret)
        call = T(f"CALL{ret_suffix}", func_addr)
        if not want_value or ret_suffix == "V":
            self.emit(call)
            if want_value:
                raise CompileError("void value used", expr.location)
            return None
        size = 8 if ret_suffix == "D" else 4
        temp = self.new_temp(size, size)
        self.emit(T(f"ASGN{ret_suffix}", T("ADDRLP", value=temp), call))
        loaded = T(f"INDIR{ret_suffix}", T("ADDRLP", value=temp))
        # Narrow back to the declared return type if it is sub-int.
        assert expr.ctype is not None
        return _convert_value(loaded, _reg_type(ret), expr.ctype)

    def _lower_cast(self, expr: Union[Cast, ImplicitCast]) -> Tree:
        assert expr.operand is not None
        src_t = expr.operand.ctype
        dst_t = expr.ctype
        assert src_t is not None and dst_t is not None
        # Array/function decay: the value is the address.
        if isinstance(src_t, (ArrayType, FunctionType)):
            return self.lv(expr.operand) if not isinstance(expr.operand, NameRef) \
                else self.rv(expr.operand)
        if isinstance(dst_t, VoidType):
            self.effect(expr.operand)
            return T("CNSTI", value=0)
        value = self.rv(expr.operand)
        return _convert_value(value, src_t, dst_t)


def _reg_type(t: CType) -> CType:
    """The type a value of ``t`` has once in a register (promoted)."""
    if isinstance(t, IntType) and t.width < 4:
        return ct.INT if t.signed else ct.INT  # loads normalize to int
    return t


def _widen(tree: Tree, t: CType) -> Tree:
    """Widen a small-int value tree to its register-size representation."""
    if isinstance(t, IntType) and t.width < 4:
        # Loads already normalize via CVCI/CVSI; constants are already
        # register-width.  Nothing further needed: the tree carries an
        # int-sized value by the module invariant.
        return tree
    return tree


def _convert_value(tree: Tree, src: CType, dst: CType) -> Tree:
    """Emit conversion operators turning a ``src``-typed value into ``dst``.

    Works on register-resident values (small ints are already widened),
    mirroring lcc's CV* chains.
    """
    if src == dst:
        return tree
    # Pointer conversions.
    if isinstance(src, PointerType) and isinstance(dst, PointerType):
        return tree
    if isinstance(src, PointerType) and isinstance(dst, IntType):
        tree = T("CVPU", tree)
        return _convert_value(tree, ct.UINT, dst)
    if isinstance(dst, PointerType) and isinstance(src, IntType):
        tree = _convert_value(tree, src, ct.UINT)
        return T("CVUP", tree)
    if isinstance(src, FunctionType) and isinstance(dst, PointerType):
        return tree
    assert ct.is_arithmetic(src) and ct.is_arithmetic(dst), (src, dst)
    # Float <-> int.
    if isinstance(src, FloatType):
        if isinstance(dst, FloatType):
            return tree
        assert isinstance(dst, IntType)
        if dst.signed:
            tree = T("CVDI", tree)
            return _convert_value(tree, ct.INT, dst)
        tree = T("CVDU", tree)
        return _convert_value(tree, ct.UINT, dst)
    if isinstance(dst, FloatType):
        assert isinstance(src, IntType)
        widened, wt = _to_word(tree, src)
        if wt.signed:
            return T("CVID", widened)
        return T("CVUD", widened)
    # Integer to integer.
    assert isinstance(src, IntType) and isinstance(dst, IntType)
    widened, wt = _to_word(tree, src)
    if dst.width == 4:
        if dst.signed and not wt.signed:
            return T("CVUI", widened)
        if not dst.signed and wt.signed:
            return T("CVIU", widened)
        return widened
    # Narrowing: go through int, truncate, renormalize.
    as_int = T("CVUI", widened) if not wt.signed else widened
    trunc = T("CVIC" if dst.width == 1 else "CVIS", as_int)
    # The truncated value is renormalized (sign/zero extended) so the
    # invariant "small ints are carried widened" holds.
    if dst.width == 1:
        norm = T("CVCI" if dst.signed else "CVUCI", trunc)
    else:
        norm = T("CVSI" if dst.signed else "CVUSI", trunc)
    return norm


def _to_word(tree: Tree, src: IntType) -> Tuple[Tree, IntType]:
    """Return the tree as a 4-byte int/uint value plus that type."""
    if src.width == 4:
        return tree, src
    # Module invariant: sub-int values already travel widened & normalized,
    # so only the signedness label changes.
    return tree, (ct.INT if src.signed else ct.UINT)


class ModuleLowerer:
    """Lowers a checked translation unit to an :class:`IRModule`.

    ``reuse`` maps function names to already-lowered :class:`IRFunction`
    bodies from a previous build of the same unit; a listed function is
    spliced in as-is instead of re-lowered.  The incremental layer
    (:mod:`repro.pipeline.incremental`) only offers a function for reuse
    after proving its tokens and string-literal bindings are unchanged,
    which makes the splice output-identical to a full lowering.
    """

    def __init__(self, unit: TranslationUnit, name: str = "module",
                 reuse: Optional[Dict[str, IRFunction]] = None) -> None:
        self.unit = unit
        self.module = IRModule(name)
        self.reuse = reuse or {}

    def run(self) -> IRModule:
        for label, text in self.unit.strings:
            data = text.encode("latin-1", errors="replace") + b"\0"
            g = GlobalData(label, len(data), 1, is_string=True)
            for i, byte in enumerate(data):
                if byte:
                    g.items.append(ScalarInit(i, 1, byte))
            self.module.globals.append(g)
        for decl in self.unit.globals:
            if decl.is_extern:
                continue
            self.module.globals.append(self._lower_global(decl))
        for fn in self.unit.functions:
            if fn.body is None:
                continue
            reused = self.reuse.get(fn.name)
            if reused is not None:
                self.module.functions.append(reused)
                continue
            self.module.functions.append(FunctionLowerer(fn, self).run())
        return self.module

    def _lower_global(self, decl: VarDecl) -> GlobalData:
        g = GlobalData(decl.name, max(1, decl.type.size), max(1, decl.type.align))
        if decl.init is not None:
            self._init_items(decl.type, decl.init, 0, g, decl.location)
        return g

    def _init_items(
        self,
        t: CType,
        init: Union[Initializer, InitList],
        offset: int,
        g: GlobalData,
        loc: Location,
    ) -> None:
        if isinstance(init, Initializer):
            assert init.expr is not None
            if isinstance(t, ArrayType) and isinstance(init.expr, StringLit):
                text = init.expr.value
                for i, char in enumerate(text):
                    if ord(char):
                        g.items.append(ScalarInit(offset + i, 1, ord(char) & 0xFF))
                return
            self._scalar_item(t, init.expr, offset, g, loc)
            return
        if isinstance(t, ArrayType):
            for i, item in enumerate(init.items):
                self._init_items(t.element, item, offset + i * t.element.size, g, loc)
            return
        if isinstance(t, StructType):
            assert t.members is not None
            for member, item in zip(t.members, init.items):
                self._init_items(member.type, item, offset + member.offset, g, loc)
            return
        self._init_items(t, init.items[0], offset, g, loc)

    def _scalar_item(
        self, t: CType, expr: Expr, offset: int, g: GlobalData, loc: Location
    ) -> None:
        value = _const_value(expr)
        if value is None:
            raise CompileError(
                "global initializer must be a constant expression", loc)
        if isinstance(value, str):  # address of a symbol
            g.items.append(PtrInit(offset, value))
            return
        if isinstance(t, FloatType):
            g.items.append(ScalarInit(offset, 8, float(value)))
            return
        size = t.size if isinstance(t, IntType) else 4
        if isinstance(value, float):
            value = int(value)
        g.items.append(ScalarInit(offset, size, int(value) & ((1 << (size * 8)) - 1)))


def _const_value(expr: Expr) -> Union[int, float, str, None]:
    """Evaluate a constant initializer: number, or symbol name for an
    address constant (string label, global array, function)."""
    if isinstance(expr, IntLit):
        return expr.value
    if isinstance(expr, FloatLit):
        return expr.value
    if isinstance(expr, StringLit):
        return expr.label
    if isinstance(expr, (ImplicitCast, Cast)) and expr.operand is not None:
        inner = _const_value(expr.operand)
        if inner is None:
            return None
        if isinstance(expr.ctype, IntType) and isinstance(inner, (int, float)):
            return expr.ctype.wrap(int(inner))
        if isinstance(expr.ctype, FloatType) and isinstance(inner, (int, float)):
            return float(inner)
        return inner
    if isinstance(expr, NameRef) and isinstance(expr.symbol, Symbol):
        sym = expr.symbol
        if sym.storage in (Storage.GLOBAL, Storage.FUNCTION):
            return sym.name
        return None
    if isinstance(expr, Unary) and expr.op == "&" and expr.operand is not None:
        return _const_value(expr.operand)
    if isinstance(expr, Unary) and expr.op == "-" and expr.operand is not None:
        inner = _const_value(expr.operand)
        if isinstance(inner, (int, float)):
            return -inner
        return None
    return None


def lower_unit(unit: TranslationUnit, name: str = "module",
               reuse: Optional[Dict[str, IRFunction]] = None) -> IRModule:
    """Lower a checked translation unit to tree IR.

    ``reuse`` splices previously lowered functions in by name instead of
    re-lowering them (see :class:`ModuleLowerer`).
    """
    return ModuleLowerer(unit, name, reuse=reuse).run()
