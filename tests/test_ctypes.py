"""Type-system tests: layout, promotions, compatibility."""


from repro.cfront import ctypes as ct
from repro.cfront.ctypes import (
    ArrayType, FunctionType, PointerType, StructMember, StructType,
    composite_compatible, integer_promote, usual_arithmetic,
)


class TestLayout:
    def test_primitive_sizes_match_lcc_32bit(self):
        assert ct.CHAR.size == 1
        assert ct.SHORT.size == 2
        assert ct.INT.size == 4
        assert ct.LONG.size == 4
        assert ct.DOUBLE.size == 8
        assert PointerType(ct.INT).size == 4

    def test_array_size(self):
        assert ArrayType(ct.INT, 10).size == 40
        assert ArrayType(ArrayType(ct.CHAR, 3), 2).size == 6

    def test_struct_padding(self):
        s = StructType("p")
        s.define([StructMember("c", ct.CHAR), StructMember("i", ct.INT)])
        assert s.members[0].offset == 0
        assert s.members[1].offset == 4
        assert s.size == 8
        assert s.align == 4

    def test_struct_tail_padding(self):
        s = StructType("p")
        s.define([StructMember("i", ct.INT), StructMember("c", ct.CHAR)])
        assert s.size == 8  # padded to int alignment

    def test_struct_with_double_aligns_to_8(self):
        s = StructType("d")
        s.define([StructMember("c", ct.CHAR), StructMember("d", ct.DOUBLE)])
        assert s.members[1].offset == 8
        assert s.size == 16

    def test_union_layout(self):
        u = StructType("u", is_union=True)
        u.define([StructMember("i", ct.INT), StructMember("d", ct.DOUBLE)])
        assert all(m.offset == 0 for m in u.members)
        assert u.size == 8

    def test_incomplete_struct(self):
        s = StructType("fwd")
        assert not s.complete
        assert s.member("x") is None

    def test_member_lookup(self):
        s = StructType("p")
        s.define([StructMember("x", ct.INT), StructMember("y", ct.INT)])
        assert s.member("y").offset == 4
        assert s.member("z") is None


class TestIdentity:
    def test_structural_equality_for_derived_types(self):
        assert PointerType(ct.INT) == PointerType(ct.INT)
        assert ArrayType(ct.INT, 3) == ArrayType(ct.INT, 3)
        assert ArrayType(ct.INT, 3) != ArrayType(ct.INT, 4)

    def test_nominal_identity_for_structs(self):
        a = StructType("p")
        b = StructType("p")
        assert a != b  # distinct declarations are distinct types
        assert a == a

    def test_int_signedness_distinct(self):
        assert ct.INT != ct.UINT
        assert ct.CHAR != ct.UCHAR

    def test_hashable(self):
        assert len({PointerType(ct.INT), PointerType(ct.INT)}) == 1


class TestIntRange:
    def test_wrap_signed(self):
        assert ct.INT.wrap(2**31) == -(2**31)
        assert ct.CHAR.wrap(200) == 200 - 256
        assert ct.SHORT.wrap(-40000) == -40000 + 65536

    def test_wrap_unsigned(self):
        assert ct.UINT.wrap(-1) == 2**32 - 1
        assert ct.UCHAR.wrap(-1) == 255

    def test_min_max(self):
        assert ct.CHAR.min_value == -128 and ct.CHAR.max_value == 127
        assert ct.UCHAR.min_value == 0 and ct.UCHAR.max_value == 255


class TestConversions:
    def test_integer_promotion_widens_small_ints(self):
        assert integer_promote(ct.CHAR) == ct.INT
        assert integer_promote(ct.USHORT) == ct.INT
        assert integer_promote(ct.UINT) == ct.UINT

    def test_usual_arithmetic_prefers_double(self):
        assert usual_arithmetic(ct.INT, ct.DOUBLE) == ct.DOUBLE
        assert usual_arithmetic(ct.DOUBLE, ct.CHAR) == ct.DOUBLE

    def test_usual_arithmetic_unsigned_wins(self):
        assert usual_arithmetic(ct.INT, ct.UINT) == ct.UINT

    def test_usual_arithmetic_small_ints_promote(self):
        assert usual_arithmetic(ct.CHAR, ct.SHORT) == ct.INT

    def test_compatibility_void_pointer(self):
        assert composite_compatible(PointerType(ct.VOID), PointerType(ct.INT))
        assert composite_compatible(PointerType(ct.INT), PointerType(ct.VOID))

    def test_incompatible_pointers(self):
        assert not composite_compatible(PointerType(ct.INT),
                                        PointerType(ct.DOUBLE))

    def test_arithmetic_always_convertible(self):
        assert composite_compatible(ct.CHAR, ct.DOUBLE)

    def test_pointer_vs_int_incompatible(self):
        assert not composite_compatible(PointerType(ct.INT), ct.INT)


class TestPredicates:
    def test_is_scalar(self):
        assert ct.is_scalar(ct.INT)
        assert ct.is_scalar(PointerType(ct.VOID))
        assert not ct.is_scalar(ct.VOID)
        s = StructType("s")
        assert not ct.is_scalar(s)

    def test_function_type_str(self):
        f = FunctionType(ct.INT, (ct.INT, PointerType(ct.CHAR)), True)
        assert "..." in str(f)
