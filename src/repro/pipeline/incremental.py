"""Function-grained incremental recompilation (the delta compiler).

``Toolchain.compile(prev=...)`` routes cache misses through a
:class:`DeltaCompiler` built from the previous build of the same unit.
The front end still parses and type-checks the whole unit (sema is
unit-global: string interning, struct layouts, enum values), but the
per-function stages are derived instead of recomputed:

* **lower** splices the previous build's :class:`repro.ir.IRFunction`
  for every function whose *token stream* and *string-literal bindings*
  are unchanged (see below), re-lowering only edited functions.
* **codegen** reuses the previous :class:`repro.vm.instr.VMFunction`
  for every IR function the lower splice carried over (identity check),
  running :func:`repro.codegen.riscgen.generate_function` only for the
  rest.
* **brisc** replays the previous build's journal
  (:mod:`repro.brisc.journal`), re-scanning only changed functions.

Every derivation is **byte-identical** to the cold stage it replaces —
the same content-addressed cache keys are used, so derived artifacts
are interchangeable with cold ones.  Whenever a precondition fails
(lex error, function rename, config change, journal mismatch) the
derivation returns ``None`` and the toolchain falls back to the cold
stage; delta mode can be slower than cold, never wrong.

Why token streams + string bindings make the lower splice sound:

* A function's lowering depends on its own tokens plus unit-level
  context: typedefs, struct layouts, enum values, global/function
  declarations.  :func:`split_unit` digests that context (everything
  outside function bodies, signatures included, in order) into
  ``env_digest``; any edit outside a function body disables reuse
  entirely.
* The one piece of unit context the env digest cannot see is sema's
  string-literal interning: labels ``<strN>`` are assigned unit-wide in
  order of first appearance, so an edit in one function can renumber
  the labels another (textually untouched) function refers to.  The
  delta compiler therefore compares each candidate's per-function
  ``{value: label}`` binding map between the old and new checked ASTs
  and refuses to splice on any difference.
"""

from __future__ import annotations

import dataclasses
import hashlib
from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, List, Optional, Tuple

from ..cfront import CompileError
from ..cfront import astnodes
from ..cfront.astnodes import TranslationUnit
from ..cfront.lexer import tokenize
from ..cfront.tokens import TokenKind
from .config import PipelineConfig
from .stages import Stage, finish_brisc, resolve_stages

__all__ = ["DeltaCompiler", "UnitShape", "function_strings", "split_unit"]


# ---------------------------------------------------------------------------
# Token-level unit splitting


@dataclass(frozen=True)
class UnitShape:
    """A unit's token-level structure: which bytes belong to which function.

    ``env_digest`` covers every token outside function bodies — globals,
    typedefs, struct/enum definitions, prototypes, and each function's
    signature — in order.  ``fn_digests`` maps each defined function's
    name to the digest of its complete definition (signature + body).
    Two sources with equal ``env_digest`` agree on all unit-level
    context; a function with an equal digest in both is textually
    unchanged.
    """

    env_digest: str
    fn_digests: Dict[str, str]
    order: Tuple[str, ...]


def _tok_repr(tok) -> str:
    return f"{tok.kind.name}\x00{tok.text}"


def _digest_tokens(parts: List[str]) -> str:
    return hashlib.sha256("\x1f".join(parts).encode()).hexdigest()


def _decl_name(head) -> Optional[str]:
    """The declared function name in ``head`` (ends with the parameter
    list's closing ``)``): the identifier before the matching ``(``."""
    depth = 0
    for i in range(len(head) - 1, -1, -1):
        kind = head[i].kind
        if kind is TokenKind.RPAREN:
            depth += 1
        elif kind is TokenKind.LPAREN:
            depth -= 1
            if depth == 0:
                if i > 0 and head[i - 1].kind is TokenKind.IDENT:
                    return head[i - 1].text
                return None
    return None


def split_unit(source: str, filename: str = "<unit>") -> Optional[UnitShape]:
    """Split ``source`` into function definitions and environment tokens.

    Returns ``None`` when the unit cannot be split safely: a lex error,
    a malformed top level, or duplicate function names.  At the top
    level of the C subset a ``{`` directly following ``)`` (outside any
    parens/braces) opens a function body and nothing else does; other
    top-level braces (struct/enum/initializers) belong to declarations
    that end at a top-level ``;``.
    """
    try:
        tokens = tokenize(source, filename)
    except CompileError:
        return None
    toks = [t for t in tokens if t.kind is not TokenKind.EOF]
    env_parts: List[str] = []
    fn_digests: Dict[str, str] = {}
    order: List[str] = []
    paren = 0
    brace = 0
    start = 0  # first token of the current top-level chunk
    i = 0
    n = len(toks)
    while i < n:
        tok = toks[i]
        kind = tok.kind
        if kind is TokenKind.LPAREN:
            paren += 1
        elif kind is TokenKind.RPAREN:
            paren -= 1
            if paren < 0:
                return None
        elif kind is TokenKind.LBRACE:
            if (brace == 0 and paren == 0 and i > start
                    and toks[i - 1].kind is TokenKind.RPAREN):
                # Function definition: digest the whole chunk, put only
                # its head (signature) into the environment.
                head = toks[start:i]
                name = _decl_name(head)
                if name is None or name in fn_digests:
                    return None
                depth = 1
                j = i + 1
                while j < n and depth:
                    if toks[j].kind is TokenKind.LBRACE:
                        depth += 1
                    elif toks[j].kind is TokenKind.RBRACE:
                        depth -= 1
                    j += 1
                if depth:
                    return None
                fn_digests[name] = _digest_tokens(
                    [_tok_repr(t) for t in toks[start:j]])
                order.append(name)
                env_parts.extend(_tok_repr(t) for t in head)
                env_parts.append(f"\x02fn:{name}")
                start = j
                i = j
                continue
            brace += 1
        elif kind is TokenKind.RBRACE:
            brace -= 1
            if brace < 0:
                return None
        elif kind is TokenKind.SEMI and brace == 0 and paren == 0:
            env_parts.extend(_tok_repr(t) for t in toks[start:i + 1])
            start = i + 1
        i += 1
    if start != n or paren or brace:
        return None
    return UnitShape(env_digest=_digest_tokens(env_parts),
                     fn_digests=fn_digests, order=tuple(order))


# ---------------------------------------------------------------------------
# String-literal bindings


def _walk_strings(node: Any, out: Dict[str, Optional[str]]) -> None:
    if isinstance(node, (list, tuple)):
        for item in node:
            _walk_strings(item, out)
        return
    if not (dataclasses.is_dataclass(node)
            and type(node).__module__ == astnodes.__name__):
        return
    if isinstance(node, astnodes.StringLit):
        out.setdefault(node.value, node.label)
    for f in dataclasses.fields(node):
        _walk_strings(getattr(node, f.name), out)


def function_strings(unit: TranslationUnit) -> Dict[str, Dict[str, Optional[str]]]:
    """Per-function ``{string value: sema label}`` binding maps.

    Sema interns string literals unit-wide in order of first appearance,
    so a label like ``<str3>`` can change meaning when an *earlier*
    function's strings change.  A function may only be spliced from a
    previous build if its binding map is identical in both ASTs.
    """
    out: Dict[str, Dict[str, Optional[str]]] = {}
    for fn in unit.functions:
        if fn.body is None:
            continue
        bindings: Dict[str, Optional[str]] = {}
        _walk_strings(fn.body, bindings)
        out[fn.name] = bindings
    return out


def reusable_functions(
    prev_source: str, prev_ast: TranslationUnit,
    source: str, ast: TranslationUnit,
) -> FrozenSet[str]:
    """Names of functions whose lowering from ``prev_ast`` can be spliced
    into a build of ``ast`` unchanged (empty set = nothing reusable)."""
    old_shape = split_unit(prev_source)
    new_shape = split_unit(source)
    if old_shape is None or new_shape is None:
        return frozenset()
    if old_shape.env_digest != new_shape.env_digest:
        return frozenset()
    candidates = {
        name for name, digest in new_shape.fn_digests.items()
        if old_shape.fn_digests.get(name) == digest
    }
    if not candidates:
        return frozenset()
    old_strings = function_strings(prev_ast)
    new_strings = function_strings(ast)
    return frozenset(
        name for name in candidates
        if old_strings.get(name) == new_strings.get(name)
    )


# ---------------------------------------------------------------------------
# The delta compiler


class DeltaCompiler:
    """Derives stage outputs from a previous build of the same unit.

    One instance lives for one ``Toolchain.compile(prev=...)`` call; it
    caches the reusable-function analysis across the stages it derives.
    Each ``derive`` returns ``(payload, size, meta)`` exactly as the
    stage's ``run`` would — byte-identical by construction — or ``None``
    to fall back to the cold stage.
    """

    def __init__(self, prev, source: str, config: PipelineConfig) -> None:
        self.prev = prev
        self.source = source
        self.config = config
        self._reuse_names: Optional[FrozenSet[str]] = None

    # -- guards -----------------------------------------------------------

    def _compatible(self, stage_name: str) -> bool:
        """True when the previous build's configuration matches ours for
        ``stage_name`` and its upstream chain (fragment equality — the
        exact property the cache keys hash)."""
        prev_config = getattr(self.prev, "config", None)
        if prev_config is None:
            return False
        return all(
            stage.config_fragment(self.config)
            == stage.config_fragment(prev_config)
            for stage in resolve_stages((stage_name,))
        )

    def _prev_payload(self, stage_name: str) -> Optional[Any]:
        artifact = self.prev.artifacts.get(stage_name)
        return None if artifact is None else artifact.payload

    def _reusable(self, ast: TranslationUnit) -> FrozenSet[str]:
        if self._reuse_names is None:
            prev_ast = self._prev_payload("parse")
            if prev_ast is None:
                self._reuse_names = frozenset()
            else:
                self._reuse_names = reusable_functions(
                    self.prev.source, prev_ast, self.source, ast)
        return self._reuse_names

    # -- dispatch ---------------------------------------------------------

    def derive(self, stage: Stage, upstream: Any, unit: str,
               config: PipelineConfig):
        """Derive ``stage``'s output from ``upstream`` and the previous
        build, or ``None`` when the cold stage must run."""
        method = getattr(self, f"_derive_{stage.name}", None)
        if method is None or not self._compatible(stage.name):
            return None
        return method(upstream, unit, config)

    # -- per-stage derivations --------------------------------------------

    def _derive_lower(self, ast, unit, config):
        from ..ir import lower_unit

        prev_module = self._prev_payload("lower")
        if prev_module is None:
            return None
        names = self._reusable(ast)
        reuse = {fn.name: fn for fn in prev_module.functions
                 if fn.name in names}
        if not reuse:
            return None
        module = lower_unit(ast, unit, reuse=reuse)
        trees = sum(len(fn.forest) for fn in module.functions)
        nodes = sum(t.size for fn in module.functions for t in fn.forest)
        meta = {"functions": len(module.functions), "trees": trees,
                "nodes": nodes, "derived": True,
                "reused_functions": len(reuse)}
        return module, 0, meta

    def _derive_codegen(self, module, unit, config):
        from ..codegen.riscgen import generate_function
        from ..vm import program_size
        from ..vm.instr import VMProgram

        prev_module = self._prev_payload("lower")
        prev_program = self._prev_payload("codegen")
        if prev_module is None or prev_program is None:
            return None
        # An IR function carried over by the lower splice is the *same
        # object* as in the previous module; its previous VM function is
        # valid verbatim (generate_function is deterministic per IR
        # function).  Freshly lowered functions are generated cold.
        prev_ir = {id(fn): fn.name for fn in prev_module.functions}
        prev_vm = {fn.name: fn for fn in prev_program.functions}
        reused = 0
        program = VMProgram(module.name, entry="main")
        program.globals = list(module.globals)
        for fn in module.functions:
            name = prev_ir.get(id(fn))
            vm = prev_vm.get(name) if name == fn.name else None
            if vm is not None:
                program.functions.append(vm)
                reused += 1
            else:
                program.functions.append(
                    generate_function(fn, config.isa, True))
        if not reused:
            return None  # nothing carried over; cold codegen is as fast
        meta = {
            "functions": len(program.functions),
            "instructions": sum(len(fn.code) for fn in program.functions),
            "derived": True, "reused_functions": reused,
        }
        return program, program_size(program), meta

    def _derive_brisc(self, program, unit, config):
        from ..brisc.journal import changed_functions, incremental_compress

        if config.brisc_shared_dict is not None:
            return None  # warm-started builds don't journal
        prev_program = self._prev_payload("codegen")
        prev_cp = self._prev_payload("brisc")
        if prev_program is None or prev_cp is None:
            return None
        changed = changed_functions(prev_program, program)
        if changed is None:
            return None  # function list changed shape: cold build
        cp = incremental_compress(
            program, prev_program, prev_cp.build,
            k=config.brisc_k,
            abundant_memory=config.brisc_abundant_memory,
            max_passes=config.brisc_max_passes,
            journal=config.brisc_journal)
        if cp is None:
            return None  # journal missing/mismatched: cold build
        payload, size, meta = finish_brisc(cp, config)
        meta["replayed"] = True
        meta["changed_functions"] = len(changed)
        return payload, size, meta
