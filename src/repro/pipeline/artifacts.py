"""Typed artifacts and result bundles produced by the pipeline.

An :class:`Artifact` is one stage's output plus its measurement metadata
(size in bytes where the representation has a binary form, wall-clock
seconds to produce, a stage-specific ``meta`` dict) and its
content-addressed cache key.  A :class:`CompilationResult` bundles every
artifact produced for one translation unit; :class:`BatchItem` wraps one
unit of a :meth:`Toolchain.compile_many` batch with per-unit error
isolation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

__all__ = ["Artifact", "BatchItem", "CompilationResult"]


@dataclass(frozen=True)
class Artifact:
    """One stage's output.

    ``size`` is the byte size of the produced representation (0 for
    stages whose output is an in-memory structure without a canonical
    binary form); ``seconds`` is the wall time the producing run took —
    it is preserved when the artifact is served from cache, with
    ``from_cache`` flipped to ``True``.
    """

    stage: str
    unit: str
    key: str
    payload: Any
    size: int = 0
    seconds: float = 0.0
    meta: Dict[str, Any] = field(default_factory=dict)
    from_cache: bool = False


@dataclass
class CompilationResult:
    """Every artifact produced for one translation unit.

    ``config`` records the :class:`~repro.pipeline.config.PipelineConfig`
    the compile ran under; the incremental delta compiler refuses to
    derive from a previous result whose configuration fragments differ
    (``None`` — a result predating the field — disables delta reuse).
    """

    unit: str
    source: str
    artifacts: Dict[str, Artifact]
    config: Optional[Any] = None

    def artifact(self, stage: str) -> Artifact:
        try:
            return self.artifacts[stage]
        except KeyError:
            raise KeyError(
                f"stage {stage!r} was not run for unit {self.unit!r} "
                f"(have: {sorted(self.artifacts)})"
            ) from None

    # -- payload accessors ------------------------------------------------

    @property
    def ast(self):
        """The typed AST (parse stage)."""
        return self.artifact("parse").payload

    @property
    def module(self):
        """The lcc-style IR module (lower stage)."""
        return self.artifact("lower").payload

    @property
    def program(self):
        """The linked VM program (codegen stage)."""
        return self.artifact("codegen").payload

    @property
    def wire_blob(self) -> bytes:
        """The wire-format encoding (wire stage)."""
        return self.artifact("wire").payload

    @property
    def brisc(self):
        """The :class:`repro.brisc.CompressedProgram` (brisc stage)."""
        return self.artifact("brisc").payload

    @property
    def deflated(self) -> bytes:
        """deflate of the VM code segment (deflate stage)."""
        return self.artifact("deflate").payload

    @property
    def vm_code_bytes(self) -> bytes:
        """The VM binary encoding of the program's code segment."""
        from .stages import vm_code_bytes

        return vm_code_bytes(self.program)

    # -- measurement views ------------------------------------------------

    def sizes(self) -> Dict[str, int]:
        """Per-representation byte sizes for whichever stages ran."""
        out: Dict[str, int] = {}
        if "codegen" in self.artifacts:
            out["vm"] = self.artifact("codegen").size
        if "deflate" in self.artifacts:
            out["deflate_vm"] = self.artifact("deflate").size
        if "wire" in self.artifacts:
            wire = self.artifact("wire")
            out["wire"] = wire.size
            out["wire_code"] = wire.meta.get("code_size", wire.size)
        if "brisc" in self.artifacts:
            brisc = self.artifact("brisc")
            out["brisc"] = brisc.size
            out["brisc_code"] = brisc.meta.get("code_segment", brisc.size)
        return out

    def stage_rows(self) -> List[Dict[str, Any]]:
        """Per-stage rows (stage, seconds, size, cached, meta) in run order."""
        return [
            {
                "stage": a.stage,
                "seconds": a.seconds,
                "size": a.size,
                "cached": a.from_cache,
                "meta": dict(a.meta),
            }
            for a in self.artifacts.values()
        ]


@dataclass
class BatchItem:
    """One unit's outcome within a :meth:`Toolchain.compile_many` batch."""

    index: int
    unit: str
    result: Optional[CompilationResult] = None
    error: Optional[str] = None
    error_type: Optional[str] = None
    seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return self.result is not None
