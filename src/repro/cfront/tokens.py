"""Token definitions for the C-subset lexer."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Union

from .errors import Location

__all__ = ["TokenKind", "Token", "KEYWORDS", "PUNCTUATORS"]


class TokenKind(enum.Enum):
    """Lexical categories.

    Keywords each get their own kind so the parser can switch on them
    without string comparison; punctuators likewise.
    """

    EOF = "eof"
    IDENT = "identifier"
    INT_LIT = "integer literal"
    FLOAT_LIT = "floating literal"
    CHAR_LIT = "character literal"
    STRING_LIT = "string literal"

    # Keywords.
    KW_VOID = "void"
    KW_CHAR = "char"
    KW_SHORT = "short"
    KW_INT = "int"
    KW_LONG = "long"
    KW_FLOAT = "float"
    KW_DOUBLE = "double"
    KW_SIGNED = "signed"
    KW_UNSIGNED = "unsigned"
    KW_STRUCT = "struct"
    KW_UNION = "union"
    KW_ENUM = "enum"
    KW_TYPEDEF = "typedef"
    KW_STATIC = "static"
    KW_EXTERN = "extern"
    KW_CONST = "const"
    KW_IF = "if"
    KW_ELSE = "else"
    KW_WHILE = "while"
    KW_DO = "do"
    KW_FOR = "for"
    KW_SWITCH = "switch"
    KW_CASE = "case"
    KW_DEFAULT = "default"
    KW_BREAK = "break"
    KW_CONTINUE = "continue"
    KW_RETURN = "return"
    KW_SIZEOF = "sizeof"
    KW_GOTO = "goto"

    # Punctuators and operators.
    LPAREN = "("
    RPAREN = ")"
    LBRACE = "{"
    RBRACE = "}"
    LBRACKET = "["
    RBRACKET = "]"
    SEMI = ";"
    COMMA = ","
    DOT = "."
    ARROW = "->"
    QUESTION = "?"
    COLON = ":"
    ELLIPSIS = "..."

    ASSIGN = "="
    PLUS_ASSIGN = "+="
    MINUS_ASSIGN = "-="
    STAR_ASSIGN = "*="
    SLASH_ASSIGN = "/="
    PERCENT_ASSIGN = "%="
    AMP_ASSIGN = "&="
    PIPE_ASSIGN = "|="
    CARET_ASSIGN = "^="
    LSHIFT_ASSIGN = "<<="
    RSHIFT_ASSIGN = ">>="

    PLUS = "+"
    MINUS = "-"
    STAR = "*"
    SLASH = "/"
    PERCENT = "%"
    AMP = "&"
    PIPE = "|"
    CARET = "^"
    TILDE = "~"
    BANG = "!"
    LSHIFT = "<<"
    RSHIFT = ">>"
    AMPAMP = "&&"
    PIPEPIPE = "||"
    EQ = "=="
    NE = "!="
    LT = "<"
    GT = ">"
    LE = "<="
    GE = ">="
    PLUSPLUS = "++"
    MINUSMINUS = "--"


KEYWORDS = {
    kind.value: kind
    for kind in TokenKind
    if kind.name.startswith("KW_")
}

# Punctuators ordered longest-first so the lexer can greedily match.
PUNCTUATORS = sorted(
    (
        (kind.value, kind)
        for kind in TokenKind
        if not kind.name.startswith("KW_")
        and kind
        not in (
            TokenKind.EOF,
            TokenKind.IDENT,
            TokenKind.INT_LIT,
            TokenKind.FLOAT_LIT,
            TokenKind.CHAR_LIT,
            TokenKind.STRING_LIT,
        )
    ),
    key=lambda pair: -len(pair[0]),
)


@dataclass(frozen=True)
class Token:
    """A single lexical token.

    ``value`` carries the decoded payload for literals (``int`` or ``float``
    or ``str``) and the spelling for identifiers.
    """

    kind: TokenKind
    text: str
    location: Location
    value: Optional[Union[int, float, str]] = None

    def __repr__(self) -> str:  # compact, for parser error messages
        if self.kind is TokenKind.IDENT:
            return f"identifier '{self.text}'"
        if self.kind in (TokenKind.INT_LIT, TokenKind.FLOAT_LIT,
                         TokenKind.CHAR_LIT, TokenKind.STRING_LIT):
            return f"{self.kind.value} {self.text!r}"
        return f"'{self.kind.value}'"
