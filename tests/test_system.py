"""Scenario-model tests: delivery latency and paging arithmetic."""

import pytest

from repro.system import (
    DSL_1M, LAN_10M, MODEM_28_8, Link, PagingConfig, Representation,
    delivery_time, paging_run, working_set_pages,
)


class TestDelivery:
    NATIVE = Representation("native", 400_000)
    WIRE = Representation("wire", 80_000, decompress_rate=1_000_000,
                          jit_rate=2_500_000, native_bytes=400_000)
    BRISC = Representation("brisc", 120_000, jit_rate=2_500_000,
                           native_bytes=400_000)

    def test_modem_favours_smallest_representation(self):
        """The paper: over a modem the (smaller) wire code wins."""
        times = {
            rep.name: delivery_time(rep, MODEM_28_8).total_seconds
            for rep in (self.NATIVE, self.WIRE, self.BRISC)
        }
        assert times["wire"] < times["brisc"] < times["native"]

    def test_lan_brisc_competitive(self):
        """On a LAN, transfer is cheap and BRISC's single JIT pass keeps it
        within a whisker of wire (no decompress stage)."""
        wire = delivery_time(self.WIRE, LAN_10M).total_seconds
        brisc = delivery_time(self.BRISC, LAN_10M).total_seconds
        assert brisc <= wire * 1.5

    def test_overlap_masks_preparation(self):
        """The paper: "delivery time ... can mask some or even all of the
        recompilation time"."""
        serial = delivery_time(self.BRISC, MODEM_28_8, overlap=False)
        piped = delivery_time(self.BRISC, MODEM_28_8, overlap=True)
        assert piped.total_seconds < serial.total_seconds
        # Over a slow modem, transfer dominates, so the JIT is fully masked.
        assert piped.total_seconds == pytest.approx(
            MODEM_28_8.latency_seconds + piped.transfer_seconds)

    def test_no_preparation_representation(self):
        res = delivery_time(self.NATIVE, DSL_1M)
        assert res.prepare_seconds == 0
        assert res.total_seconds == pytest.approx(
            DSL_1M.latency_seconds + res.transfer_seconds)

    def test_faster_link_smaller_total(self):
        slow = delivery_time(self.WIRE, MODEM_28_8).total_seconds
        fast = delivery_time(self.WIRE, LAN_10M).total_seconds
        assert fast < slow


class TestPaging:
    def test_working_set_pages_rounds_up(self):
        assert working_set_pages(1) == 1
        assert working_set_pages(4096) == 1
        assert working_set_pages(4097) == 2

    def test_compression_reduces_faults(self):
        results = paging_run(native_bytes=400_000, compressed_bytes=200_000,
                             instructions_executed=1_000_000)
        assert results["compressed-interpreted"].pages_faulted < \
            results["native"].pages_faulted

    def test_interpretation_costs_cpu(self):
        results = paging_run(native_bytes=400_000, compressed_bytes=200_000,
                             instructions_executed=1_000_000)
        assert results["compressed-interpreted"].cpu_seconds > \
            results["native"].cpu_seconds

    def test_crossover_when_cpu_idles_on_faults(self):
        """The paper's motivating profile: with the CPU idle during paging,
        compressed pages win overall despite the interpretation penalty."""
        config = PagingConfig(fault_seconds=0.010)
        # Short run (cold start dominated by faults).
        results = paging_run(native_bytes=2_000_000,
                             compressed_bytes=1_000_000,
                             instructions_executed=5_000_000,
                             config=config)
        assert results["compressed-interpreted"].total_seconds < \
            results["native"].total_seconds

    def test_native_wins_for_hot_long_runs(self):
        config = PagingConfig(fault_seconds=0.010)
        results = paging_run(native_bytes=2_000_000,
                             compressed_bytes=1_000_000,
                             instructions_executed=20_000_000_000,
                             config=config)
        assert results["native"].total_seconds < \
            results["compressed-interpreted"].total_seconds

    def test_hybrid_between_extremes_on_cold_starts(self):
        """Keeping once-run code compressed (the paper's "many functions
        are called just once") beats all-native on fault-dominated runs."""
        config = PagingConfig(fault_seconds=0.010, cold_fraction=0.6)
        results = paging_run(native_bytes=2_000_000,
                             compressed_bytes=1_000_000,
                             instructions_executed=5_000_000,
                             config=config)
        assert results["hybrid"].total_seconds < \
            results["native"].total_seconds

    def test_strategies_report_page_counts(self):
        results = paging_run(native_bytes=40_000, compressed_bytes=20_000,
                             instructions_executed=1000)
        for r in results.values():
            assert r.pages_faulted > 0
            assert r.total_seconds == pytest.approx(
                r.fault_seconds + r.cpu_seconds)


class TestLinkValidation:
    def test_zero_or_negative_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            Link("dead", 0)
        with pytest.raises(ValueError):
            Link("anti", -100.0)

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            Link("tachyon", 1000.0, latency_seconds=-0.1)

    def test_corruption_probability_range(self):
        with pytest.raises(ValueError):
            Link("noisy", 1000.0, corruption_probability=1.0)
        with pytest.raises(ValueError):
            Link("noisy", 1000.0, corruption_probability=-0.01)
        assert Link("ok", 1000.0, corruption_probability=0.5)

    def test_negative_sizes_rejected(self):
        with pytest.raises(ValueError):
            Representation("neg", -1)
        with pytest.raises(ValueError):
            Representation("neg", 10, native_bytes=-5)
        with pytest.raises(ValueError):
            Representation("neg", 10, decompress_rate=0.0)
        with pytest.raises(ValueError):
            Representation("neg", 10, jit_rate=-1.0)


class TestLossyDelivery:
    from repro.system import RetryPolicy

    def test_lossless_link_is_neutral(self):
        rep = Representation("wire", 80_000)
        res = delivery_time(rep, MODEM_28_8)
        assert res.expected_retransmissions == 0.0
        assert res.retry_seconds == 0.0
        assert res.delivery_probability == 1.0

    def test_known_arithmetic_single_chunk(self):
        from repro.system import RetryPolicy

        # One 1024-byte chunk, p=0.5, one retry allowed:
        # E[attempts] = 1 + 0.5 = 1.5 -> 0.5 expected retransmissions;
        # P[delivered] = 1 - 0.5**2 = 0.75;
        # expected backoff = 0.5 (failure prob) * 0.5s = 0.25s.
        link = Link("noisy", 1024.0, corruption_probability=0.5)
        policy = RetryPolicy(max_retries=1, backoff_seconds=0.5,
                             backoff_factor=2.0, chunk_bytes=1024)
        res = delivery_time(Representation("r", 1024), link, overlap=False,
                            retry=policy)
        assert res.expected_retransmissions == pytest.approx(0.5)
        assert res.delivery_probability == pytest.approx(0.75)
        # retry time = 0.5 resends * 1s/chunk + 0.25s backoff
        assert res.retry_seconds == pytest.approx(0.5 + 0.25)
        assert res.total_seconds == pytest.approx(
            link.latency_seconds + 1.0 + res.retry_seconds)

    def test_more_retries_raise_delivery_probability(self):
        from repro.system import RetryPolicy

        link = Link("noisy", 10_000.0, corruption_probability=0.2)
        rep = Representation("wire", 50_000)
        few = delivery_time(rep, link,
                            retry=RetryPolicy(max_retries=1)).delivery_probability
        many = delivery_time(rep, link,
                             retry=RetryPolicy(max_retries=6)).delivery_probability
        assert many > few

    def test_lossy_link_extends_total(self):
        link = Link("noisy", 3_600.0, corruption_probability=0.1)
        clean = Link("clean", 3_600.0)
        rep = Representation("wire", 80_000)
        assert delivery_time(rep, link).total_seconds > \
            delivery_time(rep, clean).total_seconds

    def test_policy_validation(self):
        from repro.system import RetryPolicy

        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_seconds=-0.5)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(chunk_bytes=0)


class TestChunkedPaging:
    """The measured chunk-size distribution path of ``paging_run``."""

    def test_chunk_faults_accounting(self):
        from repro.system import chunk_faults

        config = PagingConfig(fault_seconds=0.010,
                              transfer_bytes_per_second=1_000_000.0)
        faults, stall = chunk_faults([1000, 2000, 4096], config)
        assert faults == 3
        assert stall == pytest.approx(3 * 0.010 + 7096 / 1_000_000.0)

    def test_chunk_faults_rejects_negative_sizes(self):
        from repro.system import chunk_faults

        with pytest.raises(ValueError):
            chunk_faults([100, -1])

    def test_omitting_chunks_keeps_the_page_model(self):
        uniform = paging_run(native_bytes=400_000, compressed_bytes=200_000,
                             instructions_executed=1_000_000)
        explicit = paging_run(native_bytes=400_000, compressed_bytes=200_000,
                              instructions_executed=1_000_000,
                              native_chunks=None, compressed_chunks=None)
        for strategy in uniform:
            assert uniform[strategy].pages_faulted == \
                explicit[strategy].pages_faulted
            assert uniform[strategy].fault_seconds == \
                explicit[strategy].fault_seconds

    def test_measured_chunks_set_fault_counts(self):
        """Fetch units are the chunks themselves, not page-size guesses."""
        chunks = [1500, 3000, 800, 2000]
        results = paging_run(native_bytes=sum(chunks) * 3,
                             compressed_bytes=sum(chunks),
                             instructions_executed=1_000_000,
                             compressed_chunks=chunks)
        assert results["compressed-interpreted"].pages_faulted == len(chunks)

    def test_fewer_larger_chunks_trade_seeks_for_transfer(self):
        """The placement trade-off the model must expose: at a fixed byte
        total, chunk count moves the stall time through the per-fault
        service cost."""
        config = PagingConfig(fault_seconds=0.010,
                              transfer_bytes_per_second=4_000_000.0)
        many = paging_run(100_000, 50_000, 1_000_000, config,
                          compressed_chunks=[500] * 100)
        few = paging_run(100_000, 50_000, 1_000_000, config,
                         compressed_chunks=[25_000, 25_000])
        assert many["compressed-interpreted"].fault_seconds > \
            few["compressed-interpreted"].fault_seconds

    def test_hybrid_splits_hot_prefix_from_cold_suffix(self):
        """Hot/cold placement lays hot chunks first; the hybrid strategy
        keeps that prefix native and leaves the suffix compressed."""
        config = PagingConfig(cold_fraction=0.5)
        results = paging_run(native_bytes=8000, compressed_bytes=4000,
                             instructions_executed=10_000, config=config,
                             native_chunks=[4000, 4000],
                             compressed_chunks=[2000, 2000])
        # One hot native chunk + one cold compressed chunk.
        assert results["hybrid"].pages_faulted == 2

    def test_real_container_chunks_feed_the_model(self):
        """End to end: a v3 container index's chunk lengths drive it."""
        from repro.cfront import compile_to_ast
        from repro.container import GreedyPlacement, container_index
        from repro.corpus import get_sample
        from repro.ir import lower_unit
        from repro.wire import encode_module_v3

        module = lower_unit(compile_to_ast(get_sample("wc"), "wc"), "wc")
        blob = encode_module_v3(module, placement=GreedyPlacement(256))
        index = container_index(blob)
        chunks = [c.length for c in index.chunks]
        assert len(chunks) >= 2
        results = paging_run(native_bytes=4 * len(blob),
                             compressed_bytes=len(blob),
                             instructions_executed=100_000,
                             compressed_chunks=chunks)
        assert results["compressed-interpreted"].pages_faulted == len(chunks)
