"""Pipeline tests: staging, caching, batch compilation, equivalence.

Covers the acceptance criteria of the pipeline refactor:

* cache hit/miss behaviour, verified by stage-invocation counts;
* compiling the corpus suite twice shows zero recompiles the second time;
* the on-disk cache round-trips across toolchain instances;
* ``compile_many`` isolates a ``CompileError`` unit without aborting the
  batch, and parallel workers produce byte-identical wire and BRISC
  artifacts to the serial path;
* pipeline outputs equal the old direct-call path on the corpus suite.

BRISC-stage assertions use small units (the greedy builder is minutes on
the large corpus members); the large members exercise every cheaper stage.
"""

import pytest

from repro.cfront import CompileError, compile_to_ast
from repro.codegen import generate_program
from repro.corpus import suite_names, suite_source
from repro.ir import dump_module, lower_unit
from repro.pipeline import (
    MemoryCache, PipelineConfig, STAGE_NAMES, Toolchain, resolve_stages,
    vm_code_bytes,
)
from repro.wire import encode_module

SMALL = """
int sq(int x) { return x * x; }
int main(void) { print_int(sq(7)); putchar('\\n'); return 0; }
"""

OTHER = """
int cube(int x) { return x * x * x; }
int main(void) { print_int(cube(3)); return 0; }
"""

BAD = "int main(void) { return undeclared; }"

CHEAP_STAGES = ("codegen", "wire", "deflate")


def total_runs(toolchain):
    return sum(s["runs"] for s in toolchain.stats()["stages"].values())


# ---------------------------------------------------------------------------
# caching
# ---------------------------------------------------------------------------


def test_cache_hit_then_miss_counts():
    tc = Toolchain()
    first = tc.compile(SMALL, name="u")
    assert not any(a.from_cache for a in first.artifacts.values())
    second = tc.compile(SMALL, name="u")
    assert all(a.from_cache for a in second.artifacts.values())
    stages = tc.stats()["stages"]
    assert all(s["runs"] == 1 for s in stages.values())
    assert all(s["cache_hits"] == 1 for s in stages.values())
    # Different source -> misses again.
    tc.compile(OTHER, name="u")
    assert all(s["runs"] == 2 for s in tc.stats()["stages"].values())


def test_corpus_suite_twice_zero_recompiles():
    """Acceptance: recompiling the whole corpus is pure cache hits."""
    tc = Toolchain()
    for name in suite_names():
        tc.compile(suite_source(name), name=name, stages=CHEAP_STAGES)
    runs_after_first = total_runs(tc)
    assert runs_after_first > 0
    for name in suite_names():
        res = tc.compile(suite_source(name), name=name, stages=CHEAP_STAGES)
        assert all(a.from_cache for a in res.artifacts.values())
    assert total_runs(tc) == runs_after_first  # zero recompiles


def test_config_changes_invalidate_downstream_only():
    tc = Toolchain()
    tc.compile(SMALL, name="u", stages=("brisc",))
    base_runs = {n: s["runs"] for n, s in tc.stats()["stages"].items()}
    config = tc.config.with_brisc(k=5)
    tc.compile(SMALL, name="u", stages=("brisc",), config=config)
    stages = tc.stats()["stages"]
    # parse/lower/codegen keys are unchanged -> served from cache...
    for name in ("parse", "lower", "codegen"):
        assert stages[name]["runs"] == base_runs[name]
    # ...but the brisc stage re-ran under the new knobs.
    assert stages["brisc"]["runs"] == base_runs["brisc"] + 1


def test_unit_name_is_part_of_the_key():
    tc = Toolchain()
    tc.compile(SMALL, name="a", stages=("lower",))
    res = tc.compile(SMALL, name="b", stages=("lower",))
    assert not any(a.from_cache for a in res.artifacts.values())
    assert res.module.name == "b"


def test_memory_cache_lru_eviction():
    cache = MemoryCache(capacity=2)
    tc = Toolchain(cache=cache)
    tc.compile(SMALL, name="u", stages=("lower",))  # parse + lower cached
    tc.compile(OTHER, name="v", stages=("parse",))  # evicts u's parse
    res = tc.compile(SMALL, name="u", stages=("lower",))
    assert not res.artifact("parse").from_cache


def test_disk_cache_roundtrip(tmp_path):
    tc = Toolchain(cache_dir=tmp_path)
    tc.compile(SMALL, name="u")
    fresh = Toolchain(cache_dir=tmp_path)
    res = fresh.compile(SMALL, name="u")
    assert all(a.from_cache for a in res.artifacts.values())
    assert total_runs(fresh) == 0
    # The artifacts decode to working payloads, not just equal metadata.
    assert vm_code_bytes(res.program)
    assert res.wire_blob[:4] == b"WIR1"


@pytest.mark.parametrize("garbage", [b"not a pickle", b"garbage\n", b""])
def test_disk_cache_survives_corrupt_entries(tmp_path, garbage):
    tc = Toolchain(cache_dir=tmp_path)
    tc.compile(SMALL, name="u")
    for pkl in tmp_path.rglob("*.pkl"):
        pkl.write_bytes(garbage)
    fresh = Toolchain(cache_dir=tmp_path)
    res = fresh.compile(SMALL, name="u")  # recompiles, no crash
    assert not any(a.from_cache for a in res.artifacts.values())


# ---------------------------------------------------------------------------
# stage selection
# ---------------------------------------------------------------------------


def test_resolve_stages_pulls_upstreams():
    assert [s.name for s in resolve_stages(("wire",))] == \
        ["parse", "lower", "wire"]
    assert [s.name for s in resolve_stages(("brisc",))] == \
        ["parse", "lower", "codegen", "brisc"]
    assert [s.name for s in resolve_stages(None)] == list(STAGE_NAMES)
    with pytest.raises(KeyError):
        resolve_stages(("nonesuch",))


def test_partial_compile_has_only_requested_closure():
    res = Toolchain().compile(SMALL, name="u", stages=("codegen",))
    assert set(res.artifacts) == {"parse", "lower", "codegen"}
    with pytest.raises(KeyError):
        res.artifact("brisc")


# ---------------------------------------------------------------------------
# batch compilation
# ---------------------------------------------------------------------------


def test_batch_serial_error_isolation():
    tc = Toolchain()
    items = tc.compile_many(
        [("a", SMALL), ("bad", BAD), ("b", OTHER)], stages=CHEAP_STAGES)
    assert [it.unit for it in items] == ["a", "bad", "b"]
    assert items[0].ok and items[2].ok
    assert not items[1].ok
    assert items[1].error_type == "CompileError"
    assert "undeclared" in items[1].error


def test_batch_parallel_error_isolation_and_order():
    tc = Toolchain()
    items = tc.compile_many(
        [("a", SMALL), ("bad", BAD), ("b", OTHER)], workers=2)
    assert [it.index for it in items] == [0, 1, 2]
    assert items[0].ok and items[2].ok and not items[1].ok
    assert items[1].error_type == "CompileError"


def test_batch_parallel_matches_serial_bytes():
    """Acceptance: workers>1 yields byte-identical wire and BRISC output."""
    units = [("wc", suite_source("wc")), ("small", SMALL), ("other", OTHER)]
    serial = Toolchain().compile_many(units)
    parallel = Toolchain().compile_many(units, workers=2)
    for s, p in zip(serial, parallel):
        assert s.unit == p.unit
        assert s.result.wire_blob == p.result.wire_blob
        assert s.result.brisc.image.blob == p.result.brisc.image.blob
        assert vm_code_bytes(s.result.program) == \
            vm_code_bytes(p.result.program)


def test_batch_parallel_corpus_cheap_stages_match_serial():
    """The large corpus members agree serial-vs-parallel on wire/deflate."""
    units = [(n, suite_source(n)) for n in suite_names()]
    serial = Toolchain().compile_many(units, stages=CHEAP_STAGES)
    parallel = Toolchain().compile_many(units, workers=2,
                                        stages=CHEAP_STAGES)
    for s, p in zip(serial, parallel):
        assert s.result.wire_blob == p.result.wire_blob
        assert s.result.deflated == p.result.deflated


def test_batch_results_populate_parent_cache():
    tc = Toolchain()
    tc.compile_many([("a", SMALL)], workers=2, stages=CHEAP_STAGES)
    res = tc.compile(SMALL, name="a", stages=CHEAP_STAGES)
    assert all(a.from_cache for a in res.artifacts.values())


# ---------------------------------------------------------------------------
# equivalence with the old direct-call path
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("name", ["wc", "lcc", "gcc"])
def test_pipeline_matches_direct_path_on_corpus(name):
    source = suite_source(name)
    module = lower_unit(compile_to_ast(source, name), name)
    program = generate_program(module)
    res = Toolchain().compile(source, name=name, stages=CHEAP_STAGES)
    assert dump_module(res.module) == dump_module(module)
    assert vm_code_bytes(res.program) == vm_code_bytes(program)
    assert res.wire_blob == encode_module(module)


def test_pipeline_brisc_matches_direct_path():
    from repro.brisc import compress

    source = suite_source("wc")
    program = generate_program(lower_unit(compile_to_ast(source, "wc"), "wc"))
    direct = compress(program)
    res = Toolchain().compile(source, name="wc", stages=("brisc",))
    assert res.brisc.image.blob == direct.image.blob
    assert res.brisc.image.pattern_count == direct.image.pattern_count


# ---------------------------------------------------------------------------
# artifacts and stats
# ---------------------------------------------------------------------------


def test_artifact_metadata_and_sizes():
    res = Toolchain().compile(SMALL, name="u")
    sizes = res.sizes()
    assert sizes["vm"] > 0 and sizes["wire"] > 0 and sizes["brisc"] > 0
    wire = res.artifact("wire")
    assert wire.meta["code_size"] <= wire.size
    assert res.artifact("deflate").meta["raw_bytes"] == \
        len(res.vm_code_bytes)
    rows = res.stage_rows()
    assert [r["stage"] for r in rows] == list(STAGE_NAMES)
    assert all(r["seconds"] >= 0 for r in rows)


def test_vm_code_bytes_is_the_pipeline_artifact():
    """The old buried-import helper is now the pipeline's (re-exported)."""
    from repro.bench import measure

    assert measure.vm_code_bytes is vm_code_bytes


def test_compile_error_propagates_from_compile():
    with pytest.raises(CompileError):
        Toolchain().compile(BAD, name="bad")


def test_stats_dict_shape():
    tc = Toolchain()
    tc.compile(SMALL, name="u", stages=("codegen",))
    stats = tc.stats()
    assert set(stats) == {"stages", "cache"}
    assert set(stats["stages"]) == set(STAGE_NAMES)
    assert stats["cache"]["misses"] >= 3
    tc.reset_stats()
    assert total_runs(tc) == 0
