"""Benchmark corpus: hand-written samples, a synthetic program generator,
and the named suite standing in for the paper's benchmark programs."""

from .generator import GeneratorConfig, generate_program_source
from .samples import SAMPLES, get_sample, sample_names
from .suite import (
    SUITE_SIZES, SuiteInput, build_input, link_sources, suite_names,
    suite_source,
)

__all__ = [
    "GeneratorConfig", "SAMPLES", "SUITE_SIZES", "SuiteInput", "build_input",
    "generate_program_source", "get_sample", "link_sources", "sample_names",
    "suite_names", "suite_source",
]
