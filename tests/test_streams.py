"""Multi-stream container tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.compress.streams import pack_streams, stream_sizes, unpack_streams
from repro.errors import (
    CorruptStreamError, DecodeError, ResourceLimitError, ResourceLimits,
)


def test_roundtrip_basic():
    streams = {"ops": b"abcabcabc" * 50, "lits": bytes(range(100))}
    assert unpack_streams(pack_streams(streams)) == streams


def test_empty_container():
    assert unpack_streams(pack_streams({})) == {}


def test_empty_stream_preserved():
    streams = {"empty": b"", "one": b"x"}
    assert unpack_streams(pack_streams(streams)) == streams


def test_uncompressed_mode():
    streams = {"a": b"zz" * 100}
    blob = pack_streams(streams, compress=False)
    assert unpack_streams(blob) == streams
    # Raw mode must store payload verbatim (container adds only framing).
    assert len(blob) >= 200


def test_tiny_streams_stored_raw_when_compression_loses():
    streams = {"tiny": b"ab"}
    blob = pack_streams(streams)
    assert unpack_streams(blob) == streams
    assert len(blob) < 30


def test_compression_applied_to_large_redundant_streams():
    streams = {"big": b"abcdefgh" * 1000}
    assert len(pack_streams(streams)) < 2000


def test_unicode_stream_names():
    streams = {"ADDRLP8": b"\x01", "CNSTI16": b"\x02\x03"}
    assert unpack_streams(pack_streams(streams)) == streams


def test_truncated_container_raises():
    blob = pack_streams({"a": b"hello world"})
    with pytest.raises((EOFError, ValueError)):
        unpack_streams(blob[:-3])


def test_stream_sizes_reports_both():
    sizes = stream_sizes({"s": b"qq" * 200})
    raw, packed = sizes["s"]
    assert raw == 400
    assert packed < raw


@given(st.dictionaries(st.text(min_size=1, max_size=10), st.binary(max_size=500),
                       max_size=8))
@settings(max_examples=40, deadline=None)
def test_roundtrip_property(streams):
    assert unpack_streams(pack_streams(streams)) == streams

# ---------------------------------------------------------------------------
# integrity checking and typed errors
# ---------------------------------------------------------------------------


def test_checksummed_roundtrip():
    streams = {"ops": b"abc" * 100, "lits": bytes(range(64))}
    blob = pack_streams(streams, checksums=True)
    assert unpack_streams(blob) == streams
    # Checksums cost exactly 4 bytes per stream over the unchecked form.
    assert len(blob) == len(pack_streams(streams)) + 4 * len(streams)


def test_crc_mismatch_detected():
    blob = bytearray(pack_streams({"s": b"payload bytes here"},
                                  checksums=True))
    blob[-3] ^= 0x40  # flip a payload bit, not the CRC itself
    with pytest.raises(CorruptStreamError):
        unpack_streams(bytes(blob))


def test_legacy_entries_without_crc_still_decode():
    streams = {"s": b"old format data" * 10}
    assert unpack_streams(pack_streams(streams, checksums=False)) == streams


def test_unknown_flags_rejected():
    blob = bytearray(pack_streams({"s": b"x"}))
    # The flag byte follows count(1) + name_len(1) + name(1).
    assert blob[3] in (0, 1)
    blob[3] |= 0x80
    with pytest.raises(CorruptStreamError):
        unpack_streams(bytes(blob))


def test_forged_stream_count_hits_limit_not_memory():
    blob = bytearray(pack_streams({"s": b"x"}))
    forged = b"\xff\xff\xff\xff\x7f" + bytes(blob[1:])  # count = 2^34-ish
    with pytest.raises(ResourceLimitError):
        unpack_streams(bytes(forged))


def test_custom_limits_enforced():
    streams = {f"s{i}": b"x" for i in range(8)}
    blob = pack_streams(streams)
    with pytest.raises(ResourceLimitError):
        unpack_streams(blob, limits=ResourceLimits(max_streams=4))


def test_errors_are_decode_errors():
    try:
        unpack_streams(pack_streams({"a": b"hello world"})[:-3])
    except DecodeError:
        pass
    else:  # pragma: no cover
        raise AssertionError("expected a DecodeError subclass")


# ---------------------------------------------------------------------------
# the arith codec knob
# ---------------------------------------------------------------------------


def test_arith_codec_roundtrip():
    streams = {"ops": b"abcabcabc" * 200, "lits": bytes(range(100)) * 4}
    blob = pack_streams(streams, codec="arith")
    assert unpack_streams(blob) == streams


def test_arith_codec_beats_deflate_on_skewed_streams():
    # Heavily skewed symbol frequencies are where arithmetic coding's
    # fractional-bit symbols pay for their speed.
    streams = {"skew": (b"a" * 60 + b"b") * 120}
    assert len(pack_streams(streams, codec="arith")) < \
        len(pack_streams(streams, codec="deflate"))


def test_arith_codec_stores_tiny_streams_raw():
    blob = pack_streams({"tiny": b"ab"}, codec="arith")
    assert unpack_streams(blob) == {"tiny": b"ab"}
    assert len(blob) < 30


def test_arith_flag_rides_with_the_stream():
    blob = pack_streams({"s": b"qq" * 300}, codec="arith")
    # count(1) + name_len(1) + name(1), then the flag byte.
    assert blob[3] == 4


def test_mixed_codec_containers_decode_per_stream():
    arith_blob = pack_streams({"a": b"xy" * 300}, codec="arith")
    deflate_blob = pack_streams({"b": b"xy" * 300})
    combined = bytes([2]) + arith_blob[1:] + deflate_blob[1:]
    assert unpack_streams(combined) == {"a": b"xy" * 300, "b": b"xy" * 300}


def test_both_codec_flags_at_once_rejected():
    blob = bytearray(pack_streams({"s": b"qq" * 300}, codec="arith"))
    assert blob[3] == 4
    blob[3] = 5  # deflate + arith simultaneously: nonsense
    with pytest.raises(CorruptStreamError):
        unpack_streams(bytes(blob))


def test_unknown_codec_rejected():
    with pytest.raises(ValueError):
        pack_streams({"s": b"x"}, codec="lzw")


def test_arith_declared_length_is_bounded_before_decode():
    blob = bytearray(pack_streams({"s": b"qq" * 300}, codec="arith"))
    with pytest.raises(ResourceLimitError):
        unpack_streams(bytes(blob),
                       limits=ResourceLimits(max_decoded_bytes=100))
