"""Scenario simulators for the paper's motivating measurements:
transmission (wire/modem/LAN delivery) and memory (paging/working set)."""

from .network import (
    DSL_1M, ISDN_128K, LAN_10M, MODEM_28_8, DeliveryResult, Link,
    Representation, RetryPolicy, delivery_time,
)
from .paging import (PagingConfig, PagingResult, chunk_faults,
                     paging_run, working_set_pages)

__all__ = [
    "DSL_1M", "ISDN_128K", "LAN_10M", "MODEM_28_8", "DeliveryResult",
    "Link", "PagingConfig", "PagingResult", "Representation",
    "RetryPolicy", "chunk_faults", "delivery_time", "paging_run",
    "working_set_pages",
]
