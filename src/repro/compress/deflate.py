"""A deflate-like compressed container: LZ77 tokens + canonical Huffman.

This is the reproduction's stand-in for gzip (the paper's final pipeline
stage and its "packaged LZ compression" baseline).  The format mirrors
DEFLATE's structure — a literal/length alphabet and a distance alphabet,
each with extra bits, both Huffman-coded — but uses a simpler header (raw
4-bit code lengths) and a single block.

Both directions run over the packed-int token stream from
:mod:`repro.compress.lz77`.  Length/distance symbols come from
direct-index tables (one list lookup instead of a reversed linear scan
per match), the encoder emits one joined bit string per block, and the
decoder drives the table-driven Huffman fast path.  The byte format is
unchanged.

Public API::

    compress(data)   -> bytes
    decompress(blob) -> bytes

Tests cross-check against :mod:`zlib` for ratio sanity, but nothing in the
library depends on zlib.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..errors import (
    CorruptStreamError, DEFAULT_LIMITS, ResourceLimits, decode_guard,
)
from .bitio import BitReader
from .huffman import (
    HuffmanDecoder,
    HuffmanEncoder,
    _bits_to_bytes,
    _code_lengths_bits,
    code_lengths_from_frequencies,
    read_code_lengths,
)
from .lz77 import MAX_MATCH, WINDOW_SIZE, detokenize_packed, tokenize_packed

__all__ = ["compress", "decompress", "compressed_size"]

_END_OF_BLOCK = 256

# DEFLATE length codes: (symbol, extra_bits, base_length).
_LENGTH_CODES: List[Tuple[int, int, int]] = []


def _build_length_codes() -> None:
    bases = [
        (257, 0, 3), (258, 0, 4), (259, 0, 5), (260, 0, 6), (261, 0, 7),
        (262, 0, 8), (263, 0, 9), (264, 0, 10), (265, 1, 11), (266, 1, 13),
        (267, 1, 15), (268, 1, 17), (269, 2, 19), (270, 2, 23), (271, 2, 27),
        (272, 2, 31), (273, 3, 35), (274, 3, 43), (275, 3, 51), (276, 3, 59),
        (277, 4, 67), (278, 4, 83), (279, 4, 99), (280, 4, 115), (281, 5, 131),
        (282, 5, 163), (283, 5, 195), (284, 5, 227), (285, 0, 258),
    ]
    _LENGTH_CODES.extend(bases)


_build_length_codes()

_DIST_CODES: List[Tuple[int, int, int]] = [
    (0, 0, 1), (1, 0, 2), (2, 0, 3), (3, 0, 4), (4, 1, 5), (5, 1, 7),
    (6, 2, 9), (7, 2, 13), (8, 3, 17), (9, 3, 25), (10, 4, 33), (11, 4, 49),
    (12, 5, 65), (13, 5, 97), (14, 6, 129), (15, 6, 193), (16, 7, 257),
    (17, 7, 385), (18, 8, 513), (19, 8, 769), (20, 9, 1025), (21, 9, 1537),
    (22, 10, 2049), (23, 10, 3073), (24, 11, 4097), (25, 11, 6145),
    (26, 12, 8193), (27, 12, 12289), (28, 13, 16385), (29, 13, 24577),
]

_LITLEN_ALPHABET = 286
_DIST_ALPHABET = 30

# Direct-index tables.  ``_LEN_SYM_OF[length]`` is the symbol whose base is
# the largest not exceeding ``length`` — the same answer the original
# reversed scan over ``_LENGTH_CODES`` produced, one list index per match.
_LEN_SYM_OF: List[int] = [0] * (MAX_MATCH + 1)
for _i, (_sym, _extra, _base) in enumerate(_LENGTH_CODES):
    _hi = _LENGTH_CODES[_i + 1][2] if _i + 1 < len(_LENGTH_CODES) \
        else MAX_MATCH + 1
    for _L in range(_base, _hi):
        _LEN_SYM_OF[_L] = _sym

_DIST_SYM_OF: List[int] = [0] * (WINDOW_SIZE + 1)
for _i, (_sym, _extra, _base) in enumerate(_DIST_CODES):
    _hi = _DIST_CODES[_i + 1][2] if _i + 1 < len(_DIST_CODES) \
        else WINDOW_SIZE + 1
    for _d in range(_base, _hi):
        _DIST_SYM_OF[_d] = _sym

# Per-symbol extra-bit counts and bases (length symbols offset by 257).
_LEN_EXTRA = [extra for _, extra, _ in _LENGTH_CODES]
_LEN_BASE = [base for _, _, base in _LENGTH_CODES]
_DIST_EXTRA = [extra for _, extra, _ in _DIST_CODES]
_DIST_BASE = [base for _, _, base in _DIST_CODES]

#: extra-bit count -> format spec for the MSB-first extra-value bits.
_EXTRA_FMT = ["0%db" % _n for _n in range(14)]


def _length_to_code(length: int) -> Tuple[int, int, int]:
    """Map a match length to (symbol, extra_bits, extra_value)."""
    if length > MAX_MATCH:
        return 285, 0, length - 258
    if length < 3:
        raise ValueError(f"unencodable match length {length}")
    sym = _LEN_SYM_OF[length]
    i = sym - 257
    return sym, _LEN_EXTRA[i], length - _LEN_BASE[i]


def _dist_to_code(distance: int) -> Tuple[int, int, int]:
    """Map a match distance to (symbol, extra_bits, extra_value)."""
    if distance > WINDOW_SIZE:
        return 29, 13, distance - 24577
    if distance < 1:
        raise ValueError(f"unencodable match distance {distance}")
    sym = _DIST_SYM_OF[distance]
    return sym, _DIST_EXTRA[sym], distance - _DIST_BASE[sym]


_LENGTH_BY_SYMBOL = {sym: (extra, base) for sym, extra, base in _LENGTH_CODES}
_DIST_BY_SYMBOL = {sym: (extra, base) for sym, extra, base in _DIST_CODES}


def compress(data: bytes) -> bytes:
    """Compress ``data`` into a single self-describing block."""
    tokens = tokenize_packed(data)
    litlen_freq = [0] * _LITLEN_ALPHABET
    dist_freq = [0] * _DIST_ALPHABET
    for tok in tokens:
        if tok < 256:
            litlen_freq[tok] += 1
        else:
            litlen_freq[_LEN_SYM_OF[tok >> 16]] += 1
            dist_freq[_DIST_SYM_OF[tok & 0xFFFF]] += 1
    litlen_freq[_END_OF_BLOCK] += 1

    litlen_enc = HuffmanEncoder(code_lengths_from_frequencies(litlen_freq))
    dist_used = any(dist_freq)
    dist_enc = HuffmanEncoder(code_lengths_from_frequencies(dist_freq)) if dist_used else None

    lit_bits = litlen_enc.bit_strings
    dist_bits = dist_enc.bit_strings if dist_enc else None
    fmt = _EXTRA_FMT
    parts: List[str] = [
        format(len(data), "032b"),
        _code_lengths_bits(litlen_enc.lengths),
        _code_lengths_bits(
            dist_enc.lengths if dist_enc else [0] * _DIST_ALPHABET),
    ]
    append = parts.append
    for tok in tokens:
        if tok < 256:
            append(lit_bits[tok])
        else:
            length = tok >> 16
            distance = tok & 0xFFFF
            sym = _LEN_SYM_OF[length]
            i = sym - 257
            bits = lit_bits[sym]
            extra = _LEN_EXTRA[i]
            if extra:
                bits += format(length - _LEN_BASE[i], fmt[extra])
            dsym = _DIST_SYM_OF[distance]
            bits += dist_bits[dsym]
            dextra = _DIST_EXTRA[dsym]
            if dextra:
                bits += format(distance - _DIST_BASE[dsym], fmt[dextra])
            append(bits)
    append(lit_bits[_END_OF_BLOCK])
    return _bits_to_bytes("".join(parts))


def decompress(
    blob: bytes, limits: Optional[ResourceLimits] = None
) -> bytes:
    """Invert :func:`compress`.

    The declared output size is validated against ``limits`` before any
    allocation, and the token loop stops the moment it would produce more
    bytes than the header declared — a corrupt stream raises a typed
    :class:`~repro.errors.DecodeError` instead of ballooning memory.
    """
    limits = limits or DEFAULT_LIMITS
    with decode_guard("deflate block"):
        r = BitReader(blob)
        expected = r.read_bits(32)
        limits.check("declared deflate output", expected,
                     limits.max_decoded_bytes)
        litlen_dec = HuffmanDecoder(read_code_lengths(r, limits))
        dist_lengths = read_code_lengths(r, limits)
        dist_dec = HuffmanDecoder(dist_lengths) if any(dist_lengths) else None

        decode_litlen = litlen_dec.decode_symbol
        read_bits = r.read_bits
        tokens: List[int] = []
        append = tokens.append
        produced = 0
        while True:
            sym = decode_litlen(r)
            if sym == _END_OF_BLOCK:
                break
            if sym >= _LITLEN_ALPHABET:
                raise CorruptStreamError(f"literal/length symbol {sym} "
                                         "outside the alphabet")
            if sym < 256:
                append(sym)
                produced += 1
            else:
                i = sym - 257
                extra = _LEN_EXTRA[i]
                length = _LEN_BASE[i] + (read_bits(extra) if extra else 0)
                if dist_dec is None:
                    raise CorruptStreamError(
                        "match token but no distance table")
                dsym = dist_dec.decode_symbol(r)
                if dsym >= _DIST_ALPHABET:
                    raise CorruptStreamError(
                        f"invalid distance symbol {dsym}")
                dextra = _DIST_EXTRA[dsym]
                distance = _DIST_BASE[dsym] + (read_bits(dextra) if dextra else 0)
                append((length << 16) | distance)
                produced += length
            if produced > expected:
                raise CorruptStreamError(
                    f"token stream produces more than the declared "
                    f"{expected} bytes")
        out = detokenize_packed(tokens)
        if len(out) != expected:
            raise CorruptStreamError(
                f"decompressed {len(out)} bytes, header said {expected}")
        return out


def compressed_size(data: bytes) -> int:
    """Convenience: size in bytes of ``compress(data)``."""
    return len(compress(data))
