"""Deterministic fault injection for the decode path.

The robustness contract of this reproduction is simple to state: feed any
decoder any bytes, and it either returns the exact artifact it was given
(the mutation hit dead space or cancelled out) or raises a typed
:class:`~repro.errors.DecodeError` — promptly.  No ``IndexError`` leaking
out of a slice, no silent wrong answer, no unbounded loop chewing on a
forged length field.

This module is the harness that checks the contract.  It mutates a known
good container with a small family of byte-level faults — single bit
flips, truncations, byte deletions, duplications, and adjacent swaps (the
classic transmission/storage error shapes) — and classifies what the
decoder does with each mutant:

``intact``
    decoded successfully to a value canonically equal to the original;
``detected``
    raised a :class:`DecodeError` subclass — the desired outcome;
``unchanged``
    the mutation produced the identical blob (e.g. swapping equal bytes);
``untyped``
    raised anything *outside* the taxonomy — a contract violation;
``wrong_answer``
    decoded "successfully" to a different value — silent corruption;
``hang``
    did not return within the deadline.

All randomness comes from a seeded :class:`random.Random`, so a failing
mutation index reproduces exactly; there is no wall-clock randomness
anywhere.  The CLI front end lives in ``python -m repro fuzz``.

The second harness here is *chaos mode* (:func:`chaos_probe`): the same
philosophy aimed at a **live service front end** (:mod:`repro.service`)
instead of an in-process decoder.  It opens raw sockets against a
running server and injects the transport-level failure shapes — corrupt
frames, garbage bytes, mid-frame disconnects, stalls, forged length
fields — asserting after every injection that the server (a) answered
with a structured typed error where the protocol allows one, and (b) is
still alive and serving (a clean ping round-trip succeeds).  The CLI
front end is ``python -m repro chaos``.
"""

from __future__ import annotations

import socket
import struct
import threading
import time
from dataclasses import dataclass, field
from random import Random
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .errors import DecodeError

__all__ = [
    "CHAOS_SCENARIOS",
    "MUTATION_KINDS",
    "ChaosFailure",
    "ChaosReport",
    "NodeKill",
    "apply_mutation",
    "chaos_probe",
    "FuzzFailure",
    "FuzzReport",
    "corrupt_chunk",
    "fuzz_chunked_container",
    "fuzz_decoder",
    "node_kill_schedule",
]

MUTATION_KINDS = ("bit_flip", "truncate", "delete", "duplicate", "swap")

FAILURE_OUTCOMES = ("untyped", "wrong_answer", "hang")


def apply_mutation(blob: bytes, kind: str, rng: Random) -> bytes:
    """Apply one ``kind`` of fault to ``blob`` at a position drawn from
    ``rng``; pure function of its inputs."""
    if kind not in MUTATION_KINDS:
        raise ValueError(f"unknown mutation kind {kind!r}")
    if not blob:
        return blob
    if kind == "bit_flip":
        i = rng.randrange(len(blob))
        return blob[:i] + bytes([blob[i] ^ (1 << rng.randrange(8))]) + blob[i + 1:]
    if kind == "truncate":
        return blob[: rng.randrange(len(blob))]
    if kind == "delete":
        i = rng.randrange(len(blob))
        return blob[:i] + blob[i + 1:]
    if kind == "duplicate":
        i = rng.randrange(len(blob))
        return blob[: i + 1] + blob[i : i + 1] + blob[i + 1:]
    # swap two adjacent bytes
    if len(blob) < 2:
        return blob
    i = rng.randrange(len(blob) - 1)
    return blob[:i] + blob[i + 1 : i + 2] + blob[i : i + 1] + blob[i + 2:]


@dataclass(frozen=True)
class FuzzFailure:
    """One contract-violating mutation, with enough detail to replay it."""

    target: str
    kind: str
    index: int        # mutation ordinal: re-runs reproduce it exactly
    outcome: str      # "untyped" | "wrong_answer" | "hang"
    detail: str


@dataclass
class FuzzReport:
    """Outcome histogram of one fuzzing run against one container."""

    target: str
    seed: int
    mutations: int
    counts: Dict[str, int] = field(default_factory=dict)
    failures: List[FuzzFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        parts = ", ".join(
            f"{name}={self.counts.get(name, 0)}"
            for name in (("intact", "detected", "unchanged", "isolated")
                         + FAILURE_OUTCOMES)
            if self.counts.get(name, 0)
        )
        status = "OK" if self.ok else f"{len(self.failures)} FAILURES"
        return (f"{self.target}: {self.mutations} mutations "
                f"(seed {self.seed}): {parts} -> {status}")


def _call_with_deadline(
    decode: Callable[[bytes], object], blob: bytes, deadline: float
) -> Tuple[str, object]:
    """Run ``decode(blob)`` on a watchdog thread.

    Returns ("value", result), ("error", exception), or ("hang", None).
    A hung decode leaks its (daemon) thread — acceptable for a test
    harness, and the only way to keep the sweep moving without signals.
    """
    box: Dict[str, object] = {}

    def run() -> None:
        try:
            box["value"] = decode(blob)
        except BaseException as exc:  # noqa: BLE001 - classified by caller
            box["error"] = exc

    worker = threading.Thread(target=run, daemon=True)
    worker.start()
    worker.join(deadline)
    if worker.is_alive():
        return "hang", None
    if "error" in box:
        return "error", box["error"]
    return "value", box["value"]


def fuzz_decoder(
    blob: bytes,
    decode: Callable[[bytes], object],
    *,
    target: str = "container",
    mutations: int = 500,
    seed: int = 0,
    deadline: float = 10.0,
    kinds: Sequence[str] = MUTATION_KINDS,
    canonical: Optional[Callable[[object], object]] = None,
) -> FuzzReport:
    """Sweep ``mutations`` seeded faults over ``blob`` through ``decode``.

    ``decode`` must decode the *unmutated* blob successfully; its result
    (projected through ``canonical`` when given — use this when decoded
    objects need normalization before ``==`` is meaningful) is the
    reference against which surviving mutants are compared.  Mutation
    kinds are cycled round-robin so every kind gets ~equal coverage.
    """
    if mutations < 1:
        raise ValueError("mutations must be positive")
    if not kinds:
        raise ValueError("at least one mutation kind required")
    project = canonical if canonical is not None else (lambda value: value)
    reference = project(decode(bytes(blob)))
    rng = Random(seed)
    report = FuzzReport(target=target, seed=seed, mutations=mutations)

    def bump(outcome: str) -> None:
        report.counts[outcome] = report.counts.get(outcome, 0) + 1

    for index in range(mutations):
        kind = kinds[index % len(kinds)]
        mutated = apply_mutation(bytes(blob), kind, rng)
        if mutated == blob:
            bump("unchanged")
            continue
        status, payload = _call_with_deadline(decode, mutated, deadline)
        if status == "hang":
            bump("hang")
            report.failures.append(FuzzFailure(
                target, kind, index, "hang",
                f"no result within {deadline}s"))
        elif status == "error":
            if isinstance(payload, DecodeError):
                bump("detected")
            else:
                bump("untyped")
                report.failures.append(FuzzFailure(
                    target, kind, index, "untyped",
                    f"{type(payload).__name__}: {payload}"))
        else:
            try:
                same = project(payload) == reference
            except Exception as exc:  # canonicalization itself blew up
                same = False
                bump("untyped")
                report.failures.append(FuzzFailure(
                    target, kind, index, "untyped",
                    f"canonicalization failed: {type(exc).__name__}: {exc}"))
                continue
            if same:
                bump("intact")
            else:
                bump("wrong_answer")
                report.failures.append(FuzzFailure(
                    target, kind, index, "wrong_answer",
                    "decode succeeded with a different artifact"))
    return report


# ---------------------------------------------------------------------------
# Chunked containers: corruption isolation
# ---------------------------------------------------------------------------


def corrupt_chunk(blob: bytes, chunk_id: int, rng: Random) -> bytes:
    """Flip one bit strictly inside chunk ``chunk_id`` of a v3 container.

    The position is drawn from ``rng``; the chunk's CRC is left alone, so
    a correct decoder must detect the damage.  Raises ``ValueError`` for
    an empty or out-of-range chunk.
    """
    from .container import container_index

    index = container_index(bytes(blob))
    if not 0 <= chunk_id < len(index.chunks):
        raise ValueError(f"no chunk {chunk_id} "
                         f"(container has {len(index.chunks)})")
    chunk = index.chunks[chunk_id]
    if chunk.length == 0:
        raise ValueError(f"chunk {chunk_id} is empty")
    i = chunk.offset + rng.randrange(chunk.length)
    return (blob[:i] + bytes([blob[i] ^ (1 << rng.randrange(8))])
            + blob[i + 1:])


def fuzz_chunked_container(
    blob: bytes,
    *,
    target: str = "container",
    rounds: int = 0,
    seed: int = 0,
    deadline: float = 10.0,
) -> FuzzReport:
    """Check the *isolation* contract of a seekable (v3) container.

    Each round corrupts one bit inside one chunk (cycling over the
    chunks), then reads every function's span through the partial
    decoder.  The contract:

    * reads of functions in the corrupted chunk raise a typed
      :class:`DecodeError` (``detected``) — never a wrong answer, never
      an untyped exception;
    * reads of functions in *other* chunks return bytes identical to the
      pristine container's (``isolated``) — corruption must not leak
      across chunk boundaries.

    ``rounds`` defaults to two sweeps over the chunk list.
    """
    from .container import container_index, decode_range_bytes

    index = container_index(bytes(blob))
    chunks = [c for c in index.chunks if c.length > 0]
    if not chunks:
        raise ValueError(f"{target}: no non-empty chunks to corrupt")
    if rounds < 1:
        rounds = 2 * len(chunks)
    reference = {
        fn.name: decode_range_bytes(bytes(blob), fn.span_start,
                                    fn.span_length)
        for fn in index.functions
    }
    rng = Random(seed)
    report = FuzzReport(target=target, seed=seed, mutations=rounds)

    def bump(outcome: str) -> None:
        report.counts[outcome] = report.counts.get(outcome, 0) + 1

    for index_ in range(rounds):
        chunk = chunks[index_ % len(chunks)]
        mutated = corrupt_chunk(bytes(blob), chunk.index, rng)
        for fn in index.functions:
            reader = (lambda b, s=fn.span_start, n=fn.span_length:
                      decode_range_bytes(b, s, n))
            status, payload = _call_with_deadline(reader, mutated, deadline)
            hit = fn.chunk == chunk.index
            label = f"chunk {chunk.index} -> read {fn.name!r}"
            if status == "hang":
                bump("hang")
                report.failures.append(FuzzFailure(
                    target, "chunk_corrupt", index_, "hang",
                    f"{label}: no result within {deadline}s"))
            elif status == "error":
                if not isinstance(payload, DecodeError):
                    bump("untyped")
                    report.failures.append(FuzzFailure(
                        target, "chunk_corrupt", index_, "untyped",
                        f"{label}: {type(payload).__name__}: {payload}"))
                elif hit:
                    bump("detected")
                else:
                    bump("untyped")
                    report.failures.append(FuzzFailure(
                        target, "chunk_corrupt", index_, "untyped",
                        f"{label}: corruption leaked across chunks: "
                        f"{type(payload).__name__}: {payload}"))
            else:
                if payload == reference[fn.name]:
                    if hit:
                        # A flip the chunk CRC failed to catch would be a
                        # detector bug even though the bytes came out
                        # right; CRC32 catches all single-bit errors.
                        bump("wrong_answer")
                        report.failures.append(FuzzFailure(
                            target, "chunk_corrupt", index_, "wrong_answer",
                            f"{label}: corrupted chunk decoded without "
                            f"a CRC error"))
                    else:
                        bump("isolated")
                else:
                    bump("wrong_answer")
                    report.failures.append(FuzzFailure(
                        target, "chunk_corrupt", index_, "wrong_answer",
                        f"{label}: decode succeeded with different bytes"))
    return report


# ---------------------------------------------------------------------------
# Cluster chaos: seeded node-kill schedules
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class NodeKill:
    """One scheduled SIGKILL in a cluster chaos run.

    ``at`` is seconds into the batch window; ``restart_at`` is when the
    supervisor brings the node back.  Times are offsets, not wall-clock,
    so a schedule is a pure function of ``(nodes, kills, seed)`` and a
    failing run reproduces exactly.
    """

    node: int          # index into the cluster's node list
    at: float          # seconds into the batch when SIGKILL lands
    restart_at: float  # seconds into the batch when the node restarts


def node_kill_schedule(
    nodes: int,
    kills: int,
    *,
    seed: int = 0,
    window: float = 10.0,
    restart_after: float = 1.0,
) -> List[NodeKill]:
    """A deterministic kill/restart schedule for a chaos batch.

    Kill times are drawn from a seeded :class:`random.Random` across the
    middle 80% of ``window`` (so a kill never races the batch's very
    first or very last request), sorted by time.  Victims cycle over a
    seeded shuffle of the node list, so with ``kills <= nodes`` no node
    dies twice and at least one node is always untouched per cycle.
    """
    if nodes < 1:
        raise ValueError("nodes must be positive")
    if kills < 0:
        raise ValueError("kills must be >= 0")
    if window <= 0 or restart_after <= 0:
        raise ValueError("window and restart_after must be positive")
    rng = Random(seed)
    victims = list(range(nodes))
    rng.shuffle(victims)
    times = sorted(rng.uniform(0.1 * window, 0.9 * window)
                   for _ in range(kills))
    return [
        NodeKill(node=victims[i % nodes], at=t, restart_at=t + restart_after)
        for i, t in enumerate(times)
    ]


# ---------------------------------------------------------------------------
# Chaos mode: fault injection against a live service front end
# ---------------------------------------------------------------------------

CHAOS_SCENARIOS = (
    "corrupt_frame",        # valid framing, flipped payload bit (CRC trips)
    "garbage",              # random bytes that are not a frame at all
    "truncate_disconnect",  # a frame cut off mid-send, then hang up
    "stall",                # a partial frame held open, then hang up
    "oversize_length",      # a header promising an absurd payload length
)


@dataclass(frozen=True)
class ChaosFailure:
    """One robustness-contract violation observed against the server."""

    scenario: str
    index: int      # round ordinal: re-runs with the seed reproduce it
    detail: str


@dataclass
class ChaosReport:
    """Outcome of one chaos run against one live server."""

    host: str
    port: int
    seed: int
    rounds: int
    counts: Dict[str, int] = field(default_factory=dict)
    failures: List[ChaosFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        parts = ", ".join(f"{name}={count}"
                          for name, count in sorted(self.counts.items()))
        status = "OK" if self.ok else f"{len(self.failures)} FAILURES"
        return (f"{self.host}:{self.port}: {self.rounds} chaos rounds "
                f"(seed {self.seed}): {parts} -> {status}")


def _chaos_message(message: dict) -> bytes:
    from .service import protocol

    return protocol.encode_message(message)


def _chaos_read_reply(sock: socket.socket) -> Optional[dict]:
    """One framed reply, or ``None`` when the server closed instead."""
    from .service import protocol

    try:
        payload = protocol.read_frame_sync(sock)
    except DecodeError:
        return None
    if payload is None:
        return None
    return protocol.decode_message(payload)


def _chaos_ping(host: str, port: int, timeout: float,
                sock: Optional[socket.socket] = None) -> Tuple[bool, str]:
    """A clean ping round-trip; on ``sock`` when given, else a fresh
    connection.  Returns (alive, detail)."""
    own = sock is None
    try:
        if own:
            sock = socket.create_connection((host, port), timeout=timeout)
        assert sock is not None
        sock.sendall(_chaos_message({"id": 0, "op": "ping"}))
        reply = _chaos_read_reply(sock)
    except OSError as exc:
        return False, f"ping failed: {type(exc).__name__}: {exc}"
    finally:
        if own and sock is not None:
            sock.close()
    if reply is None:
        return False, "ping got no reply (connection closed)"
    if not reply.get("ok") or not reply.get("result", {}).get("pong"):
        return False, f"ping got unexpected reply {reply!r}"
    return True, "pong"


def chaos_probe(
    host: str,
    port: int,
    *,
    rounds: int = 15,
    seed: int = 0,
    timeout: float = 5.0,
    stall_seconds: float = 0.2,
    scenarios: Sequence[str] = CHAOS_SCENARIOS,
) -> ChaosReport:
    """Inject ``rounds`` transport faults into a live server.

    Scenarios cycle round-robin (like fuzz mutation kinds).  The contract
    checked per round:

    * ``corrupt_frame`` — the server must reply with a structured
      decode-taxonomy error **on the same connection**, and that
      connection must still serve a clean ping afterwards (the frame was
      consumed in full, so the stream is in sync);
    * ``garbage`` / ``oversize_length`` — the server must send a
      structured error reply and may then close (the stream cannot be
      resynchronized);
    * ``truncate_disconnect`` / ``stall`` — no reply owed; the
      connection just dies or dawdles;
    * after **every** round, a fresh-connection ping must succeed — no
      injected fault may take the server down.
    """
    if rounds < 1:
        raise ValueError("rounds must be positive")
    if not scenarios:
        raise ValueError("at least one scenario required")
    unknown = set(scenarios) - set(CHAOS_SCENARIOS)
    if unknown:
        raise ValueError(f"unknown chaos scenarios {sorted(unknown)}")
    rng = Random(seed)
    report = ChaosReport(host=host, port=port, seed=seed, rounds=rounds)

    def bump(outcome: str) -> None:
        report.counts[outcome] = report.counts.get(outcome, 0) + 1

    def fail(scenario: str, index: int, detail: str) -> None:
        bump("violation")
        report.failures.append(ChaosFailure(scenario, index, detail))

    for index in range(rounds):
        scenario = scenarios[index % len(scenarios)]
        frame = _chaos_message({"id": index + 1, "op": "ping"})
        try:
            sock = socket.create_connection((host, port), timeout=timeout)
        except OSError as exc:
            fail(scenario, index, f"could not connect: {exc}")
            break
        try:
            if scenario == "corrupt_frame":
                # Flip one bit inside the payload: length and magic stay
                # valid, the CRC trips, and the stream stays in sync.
                payload_at = 8 + rng.randrange(len(frame) - 12)
                bad = (frame[:payload_at]
                       + bytes([frame[payload_at] ^ (1 << rng.randrange(8))])
                       + frame[payload_at + 1:])
                sock.sendall(bad)
                reply = _chaos_read_reply(sock)
                if reply is None:
                    fail(scenario, index,
                         "no structured reply to a corrupt frame")
                elif (reply.get("ok")
                      or reply.get("error", {}).get("taxonomy") != "decode"):
                    fail(scenario, index,
                         f"expected a decode-taxonomy error, got {reply!r}")
                else:
                    bump("structured_reply")
                    alive, detail = _chaos_ping(host, port, timeout,
                                                sock=sock)
                    if not alive:
                        fail(scenario, index,
                             f"connection did not survive the corrupt "
                             f"frame: {detail}")
                    else:
                        bump("connection_survived")
            elif scenario == "garbage":
                blob = bytes([0x00]) + bytes(
                    rng.getrandbits(8) for _ in range(rng.randrange(15, 63)))
                sock.sendall(blob)
                reply = _chaos_read_reply(sock)
                if reply is None or reply.get("ok"):
                    fail(scenario, index,
                         f"expected a structured error reply, got {reply!r}")
                else:
                    bump("structured_reply")
            elif scenario == "oversize_length":
                from .service import protocol

                header = struct.pack(">4sI", protocol.MAGIC, 0xFFFFFFFF)
                sock.sendall(header)
                reply = _chaos_read_reply(sock)
                if reply is None or reply.get("ok"):
                    fail(scenario, index,
                         f"expected a structured error reply, got {reply!r}")
                elif reply.get("error", {}).get("type") \
                        != "ResourceLimitError":
                    fail(scenario, index,
                         f"expected ResourceLimitError, got {reply!r}")
                else:
                    bump("structured_reply")
            elif scenario == "truncate_disconnect":
                cut = rng.randrange(1, len(frame))
                sock.sendall(frame[:cut])
                bump("disconnected")
            else:  # stall
                cut = rng.randrange(1, len(frame))
                sock.sendall(frame[:cut])
                time.sleep(stall_seconds)
                bump("stalled")
        except OSError as exc:
            # The server may slam the connection mid-scenario; that is
            # within contract for everything but corrupt_frame (handled
            # above via its reply checks).
            bump("connection_reset")
            if scenario == "corrupt_frame":
                fail(scenario, index,
                     f"connection error instead of a structured reply: "
                     f"{exc}")
        finally:
            sock.close()
        alive, detail = _chaos_ping(host, port, timeout)
        if alive:
            bump("alive_after")
        else:
            fail(scenario, index, f"server not alive after {scenario}: "
                                  f"{detail}")
    return report
