"""Incremental recompilation: a one-function edit vs a cold rebuild.

The acceptance metric of the incremental-compilation change: editing one
constant in one lcc function and recompiling with ``compile(prev=...)``
must be at least 5x faster than a cold build of the edited source, while
producing **byte-identical** artifacts at every binary stage (wire,
deflate, BRISC image, VM encoding).  The speedup comes from splicing the
unchanged functions through lower/codegen and replaying the recorded
BRISC builder journal instead of re-running the greedy pattern search.
"""

import time

from conftest import save_table
from repro.bench.tables import render_table
from repro.corpus import suite_source
from repro.pipeline import Toolchain

UNIT = "lcc"

#: next_rand's LCG multiplier.  The edit changes one literal in one
#: function body; the resulting savings perturbation leaves the builder's
#: admission sequence intact, so the journal replay path stays warm (an
#: edit that reorders admissions falls back to a cold build by design).
OLD_CONST = "1103515245"
NEW_CONST = "1103515249"


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def test_one_function_edit_speedup(results_dir, fold_stage_stats):
    source = suite_source(UNIT)
    assert OLD_CONST in source
    # Replace the first occurrence only (it sits in next_rand); the
    # constant also appears in an unrelated sample function.
    edited = source.replace(OLD_CONST, NEW_CONST, 1)

    tc = Toolchain()
    config = tc.config.with_journal()
    cold, cold_seconds = _timed(
        lambda: tc.compile(source, name=UNIT, config=config))
    delta, delta_seconds = _timed(
        lambda: tc.compile(edited, name=UNIT, config=config, prev=cold))

    # The honest baseline: the same edited source, cold, on a toolchain
    # with an empty cache.
    fresh_tc = Toolchain()
    fresh, fresh_seconds = _timed(
        lambda: fresh_tc.compile(edited, name=UNIT, config=config))

    # Byte identity at every binary stage — the incremental path may be
    # fast only because it is *exactly* the cold build, replayed.
    assert delta.brisc.image.blob == fresh.brisc.image.blob
    assert delta.wire_blob == fresh.wire_blob
    assert delta.deflated == fresh.deflated
    assert delta.vm_code_bytes == fresh.vm_code_bytes

    brisc_meta = delta.artifacts["brisc"].meta
    assert brisc_meta.get("replayed") is True
    assert brisc_meta["changed_functions"] == 1
    assert delta.artifacts["lower"].meta.get("derived") is True
    assert delta.artifacts["codegen"].meta.get("derived") is True

    speedup = fresh_seconds / delta_seconds
    assert speedup >= 5.0, (
        f"incremental rebuild only {speedup:.1f}x faster "
        f"({delta_seconds:.2f}s vs {fresh_seconds:.2f}s cold)")

    save_table(results_dir, "incremental", render_table(
        ["build", "seconds", "speedup", "identical"],
        [
            [f"{UNIT} cold (journaled)", f"{cold_seconds:8.2f}", "", ""],
            [f"{UNIT} cold (edited)", f"{fresh_seconds:8.2f}", "1.0x", ""],
            [f"{UNIT} incremental", f"{delta_seconds:8.2f}",
             f"{speedup:.1f}x", "yes"],
        ],
    ))
    fold_stage_stats(tc.stats()["stages"])
    fold_stage_stats(fresh_tc.stats()["stages"])
