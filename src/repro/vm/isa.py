"""The RISC virtual machine instruction set (the OmniVM stand-in).

A RISC ISA in the paper's mold: 16 integer registers (``n0``–``n13``,
``sp``, ``ra``), 8 double registers (``f0``–``f7``), load/store with
register-displacement addressing, fused compare-and-branch (including
immediate comparands, as in the paper's ``ble.i n4,0,$L56``), frame macros
``enter``/``exit``/``spill``/``reload``, a block-copy macro, and a
``sys`` escape to the host runtime.

Two of the ISA's conveniences are *feature-flagged* because the paper's
abstract-machine ablation removes them:

* **immediate instructions** — ALU reg-imm forms and branch-with-immediate
  forms (``li`` stays, as the paper keeps load-immediates);
* **register-displacement addressing** — the ``imm(rb)`` forms of
  loads/stores; without them codegen uses the indirect forms ``ldx``/``stx``
  plus explicit address arithmetic.

Every mnemonic has a binary encoding: one opcode byte, register operands
packed two per byte (nibbles), immediates in 1/2/4-byte little-endian
variants selected per-instruction (this variant machinery is itself the
"ad hoc compression" the ablation studies).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

__all__ = [
    "Operand", "Signature", "InsnSpec", "ISA", "SPEC", "REG_NAMES",
    "REG_SP", "REG_RA", "NUM_IREGS", "NUM_FREGS", "SYSCALLS",
]

NUM_IREGS = 16
NUM_FREGS = 8
REG_SP = 14
REG_RA = 15
REG_NAMES = [f"n{i}" for i in range(14)] + ["sp", "ra"]
FREG_NAMES = [f"f{i}" for i in range(NUM_FREGS)]


class Operand(enum.Enum):
    """Operand kinds, driving both assembly syntax and binary encoding."""

    REG = "reg"      # integer register (nibble)
    FREG = "freg"    # double register (nibble)
    IMM = "imm"      # integer immediate (1/2/4 bytes by variant)
    DIMM = "dimm"    # double immediate (8 bytes)
    LABEL = "label"  # branch target (2 bytes, code offset)
    SYM = "sym"      # call target (2 bytes, function index)


Signature = Tuple[Operand, ...]


@dataclass(frozen=True)
class InsnSpec:
    """Static description of one mnemonic."""

    name: str
    signature: Signature
    group: str          # "mem", "alu", "alui", "branch", "brimm", "move",
                        # "frame", "macro", "flow", "conv"
    needs_immediates: bool = False     # removed by the "-imm" ablation
    needs_regdisp: bool = False        # removed by the "-regdisp" ablation

    @property
    def has_imm(self) -> bool:
        return Operand.IMM in self.signature


_SPECS: List[InsnSpec] = []


def _i(name: str, sig: Signature, group: str, *, imm_feature: bool = False,
       disp_feature: bool = False) -> None:
    _SPECS.append(InsnSpec(name, sig, group, imm_feature, disp_feature))


R, F, I, DI, L, S = (Operand.REG, Operand.FREG, Operand.IMM, Operand.DIMM,
                     Operand.LABEL, Operand.SYM)

# Loads/stores with register-displacement addressing: rd, imm(rb).
for _suffix in ("iw", "ib", "iub", "ih", "iuh"):
    _i(f"ld.{_suffix}", (R, I, R), "mem", disp_feature=True)
for _suffix in ("iw", "ib", "ih"):
    _i(f"st.{_suffix}", (R, I, R), "mem", disp_feature=True)
_i("ld.d", (F, I, R), "mem", disp_feature=True)
_i("st.d", (F, I, R), "mem", disp_feature=True)

# Indirect loads/stores (no displacement) — the de-tuned primitives.
for _suffix in ("iw", "ib", "iub", "ih", "iuh"):
    _i(f"ldx.{_suffix}", (R, R), "mem")
for _suffix in ("iw", "ib", "ih"):
    _i(f"stx.{_suffix}", (R, R), "mem")
_i("ldx.d", (F, R), "mem")
_i("stx.d", (F, R), "mem")

# Frame spill/reload (semantically st/ld from sp, distinct opcodes as in
# the paper's examples).
_i("spill.i", (R, I, R), "frame", disp_feature=True)
_i("reload.i", (R, I, R), "frame", disp_feature=True)

# Moves and immediates.  ``li`` survives every ablation (the paper keeps
# load-immediates as the one primitive).
_i("mov.i", (R, R), "move")
_i("mov.d", (F, F), "move")
_i("li", (R, I), "move")
_i("li.d", (F, DI), "move")
_i("la", (R, S), "move")  # load address of a global/function symbol

# Integer ALU, three-register forms.
for _op in ("add", "sub", "mul", "div", "divu", "rem", "remu",
            "and", "or", "xor", "shl", "shr", "sra"):
    _i(f"{_op}.i", (R, R, R), "alu")
_i("neg.i", (R, R), "alu")
_i("not.i", (R, R), "alu")

# Integer ALU, immediate forms — the "immediate instructions" feature.
for _op in ("add", "sub", "mul", "and", "or", "xor", "shl", "shr", "sra"):
    _i(f"{_op}i.i", (R, R, I), "alui", imm_feature=True)

# Sign/zero extension (for char/short loads already in registers).
_i("sext.b", (R, R), "conv")
_i("zext.b", (R, R), "conv")
_i("sext.h", (R, R), "conv")
_i("zext.h", (R, R), "conv")

# Double ALU and conversions.
for _op in ("add", "sub", "mul", "div"):
    _i(f"{_op}.d", (F, F, F), "alu")
_i("neg.d", (F, F), "alu")
_i("cvt.id", (F, R), "conv")   # int -> double
_i("cvt.ud", (F, R), "conv")   # unsigned -> double
_i("cvt.di", (R, F), "conv")   # double -> int (truncate)
_i("cvt.du", (R, F), "conv")   # double -> unsigned (truncate)

# Fused compare-and-branch, register comparand.
for _cond in ("beq", "bne", "blt", "ble", "bgt", "bge",
              "bltu", "bleu", "bgtu", "bgeu"):
    _i(f"{_cond}.i", (R, R, L), "branch")
# Immediate comparand (the paper's ``ble.i n4,0,$L56``) — feature-flagged.
for _cond in ("beq", "bne", "blt", "ble", "bgt", "bge",
              "bltu", "bleu", "bgtu", "bgeu"):
    _i(f"{_cond}i.i", (R, I, L), "brimm", imm_feature=True)
for _cond in ("beq", "bne", "blt", "ble", "bgt", "bge"):
    _i(f"{_cond}.d", (F, F, L), "branch")

# Control flow.
_i("jmp", (L,), "flow")
_i("call", (S,), "flow")
_i("calli", (R,), "flow")
_i("rjr", (R,), "flow")

# Frame macros (the paper's enter/exit shape: ``enter sp,sp,24``).
_i("enter", (R, R, I), "frame")
_i("exit", (R, R, I), "frame")

# Macro-instructions for blocks of data, and the runtime escape.
_i("blkcpy", (R, R, I), "macro")
_i("sys", (I,), "macro")
_i("hlt", (), "flow")


class ISA:
    """An instruction-set variant: the full machine or a de-tuned one.

    ``immediates=False`` removes ALU-immediate and branch-immediate forms;
    ``regdisp=False`` removes displacement addressing.  The codegen asks
    :meth:`allows` before choosing a form; the encoder sizes are identical
    either way, so compressed/native ratios isolate the feature's effect.
    """

    def __init__(self, immediates: bool = True, regdisp: bool = True,
                 name: Optional[str] = None) -> None:
        self.immediates = immediates
        self.regdisp = regdisp
        if name is None:
            tags = []
            if not immediates:
                tags.append("-imm")
            if not regdisp:
                tags.append("-regdisp")
            name = "RISC" + "".join(tags)
        self.name = name

    def allows(self, spec: InsnSpec) -> bool:
        """Whether this variant's codegen may emit ``spec``."""
        if spec.needs_immediates and not self.immediates:
            return False
        if spec.needs_regdisp and not self.regdisp:
            return False
        return True

    def __repr__(self) -> str:
        return f"ISA({self.name})"


SPEC: Dict[str, InsnSpec] = {spec.name: spec for spec in _SPECS}

# Opcode numbering: the base opcode identifies the mnemonic; the encoder
# adds an immediate-width tag separately (see repro.vm.encode).
OPCODE: Dict[str, int] = {spec.name: i for i, spec in enumerate(_SPECS)}
MNEMONIC: List[str] = [spec.name for spec in _SPECS]

# Runtime services reachable via ``sys``: number -> (name, arg signature,
# return kind).  Arg signature letters: i (int), p (pointer), d (double).
SYSCALLS: Dict[int, Tuple[str, str, str]] = {
    0: ("exit", "i", "v"),
    1: ("putchar", "i", "i"),
    2: ("getchar", "", "i"),
    3: ("malloc", "i", "p"),
    4: ("free", "p", "v"),
    5: ("print_int", "i", "v"),
    6: ("print_str", "p", "v"),
    7: ("print_double", "d", "v"),
    8: ("clock", "", "i"),
    9: ("abort", "", "v"),
}
SYSCALL_BY_NAME: Dict[str, int] = {name: num for num, (name, _, _) in SYSCALLS.items()}
