"""General-purpose compression substrate.

Everything the paper's pipelines need, built from scratch: bit I/O,
move-to-front coding, canonical Huffman, LZ77, a deflate-like container
(the reproduction's "gzip"), an arithmetic coder for the design-space
extreme, and a multi-stream container for split-stream compression.
"""

from . import arith, bitio, deflate, huffman, lz77, mtf, streams
from .bitio import BitReader, BitWriter
from .deflate import compress as deflate_compress
from .deflate import decompress as deflate_decompress
from .huffman import HuffmanDecoder, HuffmanEncoder
from .mtf import mtf_decode, mtf_encode
from .streams import pack_streams, unpack_streams

__all__ = [
    "arith",
    "bitio",
    "deflate",
    "huffman",
    "lz77",
    "mtf",
    "streams",
    "BitReader",
    "BitWriter",
    "HuffmanDecoder",
    "HuffmanEncoder",
    "deflate_compress",
    "deflate_decompress",
    "mtf_decode",
    "mtf_encode",
    "pack_streams",
    "unpack_streams",
]
