"""Patternization: split IR trees into operator patterns + literal streams.

The paper's key move: "patternize out all literals, form one stream for all
patterns and one containing the literal operands associated with each
opcode".  A *pattern* is a tree with every literal replaced by a wildcard;
because every operator has fixed arity, a pattern is fully described by its
prefix-order operator sequence.

Literal width flags: the IR "has been augmented with a few operators with
the suffixes 8 and 16 to flag literals that fit in eight or sixteen bits".
We reproduce that by tagging each literal-bearing operator occurrence with
a width class (0=8-bit, 1=16-bit, 2=32-bit, computed over the zigzag
encoding so negative offsets stay small), so e.g. ``ADDRLP8`` and
``ADDRLP16`` are distinct pattern symbols with separately-sized literal
streams.
"""

from __future__ import annotations

from typing import Dict, List, Tuple, Union

from ..ir.ops import op
from ..ir.tree import IRFunction, Tree

__all__ = [
    "PatternSym", "Pattern", "zigzag", "unzigzag", "width_class",
    "patternize_tree", "rebuild_tree", "stream_key", "normalize_labels",
]

# A pattern symbol: (operator name, width class).  Width class is 0/1/2 for
# int literals, and 0 for everything else (non-int literals and plain ops).
PatternSym = Tuple[str, int]
Pattern = Tuple[PatternSym, ...]

LiteralValue = Union[int, float, str]


def zigzag(value: int) -> int:
    """Map signed to unsigned so small-magnitude values stay small."""
    return (value << 1) ^ (value >> 63) if value < 0 else value << 1


def unzigzag(value: int) -> int:
    """Inverse of :func:`zigzag`."""
    return -(value >> 1) - 1 if value & 1 else value >> 1


def width_class(value: int) -> int:
    """0, 1, or 2 — the paper's 8/16(/32) literal width flag."""
    z = zigzag(value)
    if z < 1 << 8:
        return 0
    if z < 1 << 16:
        return 1
    return 2


def stream_key(sym: PatternSym, literal_kind: str) -> str:
    """The literal-stream name for a pattern symbol.

    Streams are per opcode *and* width class (``ADDRLP8``, ``ADDRLP16``…),
    matching the paper's example streams.
    """
    name, width = sym
    if literal_kind == "int":
        return f"{name}{(8, 16, 32)[width]}"
    return name


def patternize_tree(tree: Tree) -> Tuple[Pattern, List[Tuple[str, LiteralValue]]]:
    """Split ``tree`` into its pattern and its literal list.

    Returns ``(pattern, literals)`` where literals are ``(stream, value)``
    pairs in prefix order — the order the decoder re-consumes them.
    """
    symbols: List[PatternSym] = []
    literals: List[Tuple[str, LiteralValue]] = []
    for node in tree.walk():
        kind = node.op.literal
        if kind == "int":
            assert isinstance(node.value, int)
            sym = (node.op.name, width_class(node.value))
            symbols.append(sym)
            literals.append((stream_key(sym, kind), node.value))
        elif kind == "none":
            symbols.append((node.op.name, 0))
        else:
            assert node.value is not None
            sym = (node.op.name, 0)
            symbols.append(sym)
            literals.append((stream_key(sym, kind), node.value))
    return tuple(symbols), literals


class _LiteralSource:
    """Pulls literals back out of per-stream queues during rebuild."""

    def __init__(self, streams: Dict[str, List[LiteralValue]]) -> None:
        self._streams = streams
        self._pos: Dict[str, int] = {key: 0 for key in streams}

    def take(self, key: str) -> LiteralValue:
        pos = self._pos.get(key, 0)
        stream = self._streams.get(key)
        if stream is None or pos >= len(stream):
            raise ValueError(f"literal stream {key!r} exhausted")
        self._pos[key] = pos + 1
        return stream[pos]


def rebuild_tree(pattern: Pattern, literals: _LiteralSource) -> Tree:
    """Reconstruct a tree from its pattern, pulling literals from streams."""
    pos = 0

    def build() -> Tree:
        nonlocal pos
        if pos >= len(pattern):
            raise ValueError("pattern exhausted mid-tree")
        name, width = pattern[pos]
        pos += 1
        operator = op(name)
        value: LiteralValue = None  # type: ignore[assignment]
        if operator.literal != "none":
            value = literals.take(stream_key((name, width), operator.literal))
        kids = tuple(build() for _ in range(operator.arity))
        if operator.literal == "none":
            return Tree(operator, kids)
        return Tree(operator, kids, value)

    tree = build()
    if pos != len(pattern):
        raise ValueError("pattern has trailing symbols")
    return tree


def normalize_labels(fn: IRFunction) -> IRFunction:
    """Rename labels to dense indices ("0", "1", …) in first-use order.

    Label identity is internal, so the wire format transmits labels as
    small integers; normalizing before encoding makes the round trip exact.
    """
    mapping: Dict[str, str] = {}

    def rename(label: str) -> str:
        if label not in mapping:
            mapping[label] = str(len(mapping))
        return mapping[label]

    def rewrite(tree: Tree) -> Tree:
        kids = tuple(rewrite(k) for k in tree.kids)
        if tree.op.literal == "label":
            assert isinstance(tree.value, str)
            return Tree(tree.op, kids, rename(tree.value))
        if kids != tree.kids:
            return Tree(tree.op, kids, tree.value)
        return tree

    out = IRFunction(
        name=fn.name,
        forest=[rewrite(t) for t in fn.forest],
        frame_size=fn.frame_size,
        param_sizes=list(fn.param_sizes),
        ret_suffix=fn.ret_suffix,
    )
    return out
