"""The benchmark suite: named inputs standing in for the paper's.

The paper's wire-format table measures three programs — a small utility,
lcc (~315 KB of SPARC code) and gcc (~1.38 MB).  The absolute sizes are
out of reach for a Python-hosted reproduction's time budget, but the
*relative* structure (one small hand-written utility, one medium compiler-
shaped program, one large program) is preserved:

* ``wc``     — the hand-written word-count sample (the paper's small row);
* ``lcc``    — every hand-written sample linked together plus a medium
  synthetic body (compiler-shaped: scanners, tables, dispatchers);
* ``gcc``    — a large synthetic program, several times ``lcc``'s size.

``build_input`` compiles a named input once and caches the results at
module level so test and benchmark code can share the work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..cfront import compile_to_ast
from ..codegen import generate_program
from ..ir import IRModule, lower_unit
from ..vm.instr import VMProgram
from ..vm.isa import ISA
from .generator import generate_program_source
from .samples import SAMPLES

__all__ = ["SuiteInput", "SUITE_SIZES", "suite_names", "build_input",
           "link_sources"]

#: Synthetic-function counts for the generated suite members.
SUITE_SIZES: Dict[str, int] = {
    "wc": 0,       # pure hand-written sample
    "lcc": 120,
    "gcc": 420,
}


@dataclass
class SuiteInput:
    """A compiled benchmark input."""

    name: str
    source: str
    module: IRModule
    program: VMProgram


def suite_names() -> List[str]:
    return list(SUITE_SIZES)


def link_sources(sources: List[str]) -> str:
    """Concatenate translation units into one, renaming their mains.

    Each sample keeps a callable ``<name>_main`` entry; a fresh ``main``
    invokes them all, so the linked program remains runnable.
    """
    parts: List[str] = []
    mains: List[str] = []
    for i, src in enumerate(sources):
        renamed = src.replace("int main(void)", f"int sample_main_{i}(void)")
        parts.append(renamed)
        mains.append(f"sample_main_{i}")
    calls = "\n".join(f"    rc += {m}();" for m in mains)
    parts.append(
        "int main(void) {\n    int rc = 0;\n%s\n    return rc;\n}\n" % calls
    )
    return "\n".join(parts)


def _build_source(name: str) -> str:
    if name == "wc":
        return SAMPLES["wc"]
    if name == "lcc":
        # Every hand-written sample, linked, plus a medium synthetic body.
        synth = generate_program_source(functions=SUITE_SIZES["lcc"], seed=7)
        return link_sources(list(SAMPLES.values()) + [synth])
    if name == "gcc":
        synth_a = generate_program_source(functions=SUITE_SIZES["gcc"], seed=11)
        synth_b = generate_program_source(functions=SUITE_SIZES["gcc"] // 2,
                                          seed=13, arrays=6, strings=10)
        return link_sources([synth_a, synth_b])
    raise KeyError(f"unknown suite input {name!r}")


_CACHE: Dict[Tuple[str, str], SuiteInput] = {}


def build_input(name: str, isa: Optional[ISA] = None) -> SuiteInput:
    """Compile a suite input end to end (cached per (name, ISA))."""
    isa = isa or ISA()
    key = (name, isa.name)
    cached = _CACHE.get(key)
    if cached is not None:
        return cached
    source = _build_source(name)
    module = lower_unit(compile_to_ast(source, name), name)
    program = generate_program(module, isa)
    built = SuiteInput(name=name, source=source, module=module, program=program)
    _CACHE[key] = built
    return built
