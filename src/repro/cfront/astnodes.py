"""AST node definitions for the C subset.

Nodes are plain dataclasses.  The parser produces them untyped
(``ctype`` is None); semantic analysis fills in ``ctype`` on expressions
and may rewrite children (inserting implicit conversions, decaying arrays,
folding constants).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

from .ctypes import CType
from .errors import Location

__all__ = [
    "Expr", "IntLit", "FloatLit", "StringLit", "NameRef", "Unary", "Binary",
    "Assign", "Conditional", "Call", "Index", "Member", "Cast", "SizeofType",
    "IncDec", "ImplicitCast",
    "Stmt", "ExprStmt", "Block", "If", "While", "DoWhile", "For", "Return",
    "Break", "Continue", "Switch", "Case", "EmptyStmt", "DeclStmt",
    "Declarator", "VarDecl", "ParamDecl", "FunctionDef", "TranslationUnit",
    "Initializer", "InitList",
]


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass
class Expr:
    """Base expression node; ``ctype`` is set by sema."""

    location: Location
    ctype: Optional[CType] = field(default=None, init=False)


@dataclass
class IntLit(Expr):
    """Integer (or character) literal."""

    value: int = 0


@dataclass
class FloatLit(Expr):
    """Floating literal."""

    value: float = 0.0


@dataclass
class StringLit(Expr):
    """String literal; sema assigns it a char-array type and a label."""

    value: str = ""
    label: Optional[str] = field(default=None, init=False)


@dataclass
class NameRef(Expr):
    """Reference to a declared name; sema links the symbol."""

    name: str = ""
    symbol: object = field(default=None, init=False)


@dataclass
class Unary(Expr):
    """Prefix unary operator: one of ``- + ~ ! * &``."""

    op: str = ""
    operand: Optional[Expr] = None


@dataclass
class Binary(Expr):
    """Binary operator (arithmetic, relational, shift, logical)."""

    op: str = ""
    left: Optional[Expr] = None
    right: Optional[Expr] = None


@dataclass
class Assign(Expr):
    """Assignment; ``op`` is '=' or a compound operator like '+='."""

    op: str = "="
    target: Optional[Expr] = None
    value: Optional[Expr] = None


@dataclass
class Conditional(Expr):
    """The ternary ``cond ? then : else`` operator."""

    cond: Optional[Expr] = None
    then: Optional[Expr] = None
    otherwise: Optional[Expr] = None


@dataclass
class Call(Expr):
    """Function call."""

    func: Optional[Expr] = None
    args: List[Expr] = field(default_factory=list)


@dataclass
class Index(Expr):
    """Array subscript ``base[index]``."""

    base: Optional[Expr] = None
    index: Optional[Expr] = None


@dataclass
class Member(Expr):
    """Member access; ``arrow`` distinguishes ``->`` from ``.``."""

    base: Optional[Expr] = None
    name: str = ""
    arrow: bool = False
    offset: int = field(default=0, init=False)  # set by sema


@dataclass
class Cast(Expr):
    """Explicit cast ``(type)expr``."""

    target: Optional[CType] = None
    operand: Optional[Expr] = None


@dataclass
class ImplicitCast(Expr):
    """Conversion inserted by sema (never produced by the parser)."""

    operand: Optional[Expr] = None


@dataclass
class SizeofType(Expr):
    """``sizeof(type)``; ``sizeof expr`` is folded by sema into IntLit."""

    target: Optional[CType] = None


@dataclass
class IncDec(Expr):
    """Increment/decrement; ``postfix`` selects value semantics."""

    op: str = "++"
    operand: Optional[Expr] = None
    postfix: bool = False


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass
class Stmt:
    """Base statement node."""

    location: Location


@dataclass
class ExprStmt(Stmt):
    """An expression evaluated for effect."""

    expr: Optional[Expr] = None


@dataclass
class EmptyStmt(Stmt):
    """A bare ``;``."""


@dataclass
class Block(Stmt):
    """A ``{ ... }`` compound statement with its own scope."""

    body: List[Stmt] = field(default_factory=list)


@dataclass
class If(Stmt):
    cond: Optional[Expr] = None
    then: Optional[Stmt] = None
    otherwise: Optional[Stmt] = None


@dataclass
class While(Stmt):
    cond: Optional[Expr] = None
    body: Optional[Stmt] = None


@dataclass
class DoWhile(Stmt):
    body: Optional[Stmt] = None
    cond: Optional[Expr] = None


@dataclass
class For(Stmt):
    init: Optional[Union[Expr, "DeclStmt"]] = None
    cond: Optional[Expr] = None
    step: Optional[Expr] = None
    body: Optional[Stmt] = None


@dataclass
class Return(Stmt):
    value: Optional[Expr] = None


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


@dataclass
class Case(Stmt):
    """A ``case value:`` or ``default:`` label plus the labelled statement.

    Switch bodies are parsed as blocks whose items may be Case nodes.
    """

    value: Optional[Expr] = None  # None means default
    body: Optional[Stmt] = None
    const_value: Optional[int] = field(default=None, init=False)  # set by sema


@dataclass
class Switch(Stmt):
    scrutinee: Optional[Expr] = None
    body: Optional[Stmt] = None


# ---------------------------------------------------------------------------
# Declarations
# ---------------------------------------------------------------------------


@dataclass
class Initializer:
    """A scalar initializer expression."""

    location: Location
    expr: Optional[Expr] = None


@dataclass
class InitList:
    """A brace-enclosed initializer list (arrays/structs)."""

    location: Location
    items: List[Union[Initializer, "InitList"]] = field(default_factory=list)


@dataclass
class Declarator:
    """A parsed declarator: the name and its derived type."""

    name: str
    type: CType
    location: Location


@dataclass
class VarDecl:
    """A variable declaration (global or local)."""

    name: str
    type: CType
    location: Location
    init: Optional[Union[Initializer, InitList]] = None
    is_static: bool = False
    is_extern: bool = False
    symbol: object = field(default=None, init=False)


@dataclass
class DeclStmt(Stmt):
    """One or more local variable declarations inside a block."""

    decls: List[VarDecl] = field(default_factory=list)


@dataclass
class ParamDecl:
    """A function parameter."""

    name: str
    type: CType
    location: Location
    symbol: object = field(default=None, init=False)


@dataclass
class FunctionDef:
    """A function definition (or prototype when ``body`` is None)."""

    name: str
    type: CType  # FunctionType
    params: List[ParamDecl]
    location: Location
    body: Optional[Block] = None
    is_static: bool = False


@dataclass
class TranslationUnit:
    """A whole source file: globals and functions in declaration order."""

    globals: List[VarDecl] = field(default_factory=list)
    functions: List[FunctionDef] = field(default_factory=list)
    strings: List[Tuple[str, str]] = field(default_factory=list)  # (label, text)
