"""Edge-case code generation tests: compound assignment through memory,
increment/decrement variants, register pressure, mixed-type corners."""


import repro


def returns(src, **kwargs):
    return repro.run(repro.compile_c(f"int main(void) {{ {src} }}"),
                     **kwargs).exit_code


def prints(src, **kwargs):
    return repro.run(repro.compile_c(src), **kwargs).output


class TestCompoundAssignment:
    def test_through_pointer(self):
        assert returns("int x = 10; int *p = &x; *p += 5; return x;") == 15

    def test_through_array_element(self):
        assert returns(
            "int a[3]; a[1] = 4; a[1] *= 3; return a[1];") == 12

    def test_through_struct_member(self):
        assert returns("""
            struct P { int x; int y; };
            struct P p;
            p.y = 7;
            p.y -= 3;
            return p.y;
        """) == 4

    def test_through_arrow(self):
        assert returns("""
            struct P { int x; };
            struct P p;
            struct P *q = &p;
            q->x = 2;
            q->x <<= 4;
            return q->x;
        """) == 32

    def test_address_evaluated_once(self):
        """The target address of a compound assignment is computed once —
        a side-effecting index must not run twice."""
        assert prints("""
            int a[4];
            int calls = 0;
            int idx(void) { calls++; return 2; }
            int main(void) {
                a[2] = 5;
                a[idx()] += 10;
                print_int(a[2]);
                print_int(calls);
                return 0;
            }
        """) == "151"

    def test_pointer_plus_equals(self):
        assert returns("""
            int a[4];
            a[2] = 42;
            int *p = a;
            p += 2;
            return *p;
        """) == 42

    def test_char_compound_wraps(self):
        assert returns("char c = 120; c += 10; return c;") == 130 - 256

    def test_unsigned_shift_compound(self):
        assert returns(
            "unsigned u = 0x80000000u; u >>= 4; return u == 0x08000000u;"
        ) == 1

    def test_double_compound(self):
        assert prints("""
            int main(void) {
                double d = 1.0;
                d += 0.5;
                d *= 4.0;
                print_double(d);
                return 0;
            }
        """) == "6"


class TestIncDec:
    def test_pre_and_post_mix(self):
        assert prints("""
            int main(void) {
                int i = 5;
                print_int(i++);
                print_int(i);
                print_int(--i);
                print_int(i--);
                print_int(i);
                return 0;
            }
        """) == "56554"

    def test_pointer_increment_scales(self):
        assert returns("""
            int a[3];
            a[0] = 1; a[1] = 2; a[2] = 3;
            int *p = a;
            p++;
            ++p;
            return *p;
        """) == 3

    def test_char_pointer_increment(self):
        assert prints("""
            int main(void) {
                char *s = "xyz";
                s++;
                putchar(*s);
                return 0;
            }
        """) == "y"

    def test_double_increment(self):
        assert prints("""
            int main(void) {
                double d = 1.5;
                d++;
                print_double(d);
                return 0;
            }
        """) == "2.5"

    def test_postfix_in_expression(self):
        assert returns("int i = 3; int j = i++ * 2; return j * 10 + i;") == 64

    def test_increment_through_deref(self):
        assert returns("int x = 9; int *p = &x; (*p)++; return x;") == 10

    def test_char_increment_wraps(self):
        assert returns("char c = 127; c++; return c;") == -128


class TestRegisterPressure:
    def test_deep_expression_tree(self):
        # A balanced tree of depth ~5 (needs ~6 registers with SU
        # order); variables defeat constant folding.
        decls = "; ".join(f"int v{i} = {i}" for i in range(1, 9)) + ";"
        deep = ("((v1+v2)*(v3+v4)) + ((v5+v6)*(v7+v8)) "
                "+ ((v1+v2)*(v3+v4)) * v2")
        expected = ((1 + 2) * (3 + 4) + (5 + 6) * (7 + 8)
                    + ((1 + 2) * (3 + 4)) * 2)
        assert returns(f"{decls} return {deep};") == expected

    def test_very_deep_right_nested(self):
        decls = "int a = 1;"
        expr = "a"
        value = 1
        for i in range(2, 12):
            expr = f"(a + {expr} * 2)"
            value = 1 + value * 2
        assert returns(f"{decls} return {expr};") == value

    def test_many_live_locals(self):
        body = "; ".join(f"int x{i} = {i}" for i in range(20)) + ";"
        total = " + ".join(f"x{i}" for i in range(20))
        assert returns(f"{body} return {total};") == sum(range(20))


class TestMixedTypes:
    def test_char_short_int_chain(self):
        assert returns("""
            char c = 100;
            short s = c * 2;
            int i = s * 300;
            return i;
        """) == 60000

    def test_short_param_roundtrip(self):
        assert prints("""
            int twice(short s) { return s * 2; }
            int main(void) { print_int(twice(-300)); return 0; }
        """) == "-600"

    def test_unsigned_to_double(self):
        assert prints("""
            int main(void) {
                unsigned u = 0xC0000000u;  /* > INT_MAX */
                double d = u;
                print_double(d / 1073741824.0);
                return 0;
            }
        """) == "3"

    def test_double_to_unsigned(self):
        assert returns(
            "double d = 3000000000.0; unsigned u = d;"
            " return u == 3000000000u;") == 1

    def test_comparison_of_mixed_signedness(self):
        # -1 converts to UINT_MAX in the unsigned comparison.
        assert returns("unsigned u = 5u; int i = -1; return u < i;") == 1

    def test_ternary_mixing_int_double(self):
        assert prints("""
            int main(void) {
                int flag = 1;
                print_double(flag ? 1 : 2.5);
                return 0;
            }
        """) == "1"


class TestCallsEdge:
    def test_call_in_condition(self):
        assert prints("""
            int check(int v) { return v > 3; }
            int main(void) {
                if (check(5)) print_int(1);
                else print_int(0);
                return 0;
            }
        """) == "1"

    def test_call_in_loop_condition(self):
        assert prints("""
            int limit(void) { return 4; }
            int main(void) {
                int n = 0;
                for (int i = 0; i < limit(); i++) n++;
                print_int(n);
                return 0;
            }
        """) == "4"

    def test_nested_calls_three_deep(self):
        assert prints("""
            int inc(int x) { return x + 1; }
            int main(void) { print_int(inc(inc(inc(0)))); return 0; }
        """) == "3"

    def test_call_args_evaluated_left_to_right(self):
        assert prints("""
            int log_val(int tag) { print_int(tag); return tag; }
            int sum2(int a, int b) { return a + b; }
            int main(void) {
                int r = sum2(log_val(1), log_val(2));
                print_int(r);
                return 0;
            }
        """) == "123"

    def test_recursive_with_doubles(self):
        assert prints("""
            double power(double base, int n) {
                return n == 0 ? 1.0 : base * power(base, n - 1);
            }
            int main(void) { print_double(power(2.0, 10)); return 0; }
        """) == "1024"

    def test_many_mixed_args(self):
        assert prints("""
            double mix(int a, double b, int c, double d) {
                return a + b + c + d;
            }
            int main(void) { print_double(mix(1, 2.5, 3, 4.25)); return 0; }
        """) == "10.75"


class TestWideUnsignedConstants:
    """Regression: unsigned constants above 2^31 (e.g. CRC polynomials)
    must encode as two's-complement immediates, not overflow."""

    def test_big_unsigned_literal(self):
        assert returns(
            "unsigned u = 0xedb88320u; return u == 0xedb88320u;") == 1

    def test_big_unsigned_arithmetic(self):
        assert returns("""
            unsigned c = 0xffffffffu;
            c = 0xedb88320u ^ (c >> 1);
            return (int)(c % 1000u);
        """) == (0xEDB88320 ^ (0xFFFFFFFF >> 1)) % 1000

    def test_branch_immediate_with_big_unsigned(self):
        assert returns("""
            unsigned u = 0x80000000u;
            if (u == 0x80000000u) return 7;
            return 0;
        """) == 7
