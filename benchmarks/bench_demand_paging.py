"""Demand paging over seekable (v3) containers.

The tentpole claim: chunked containers let a client fetch *one function*
without shipping or decompressing the whole unit.  This bench measures
what that costs and what it buys:

* the seekability tax — v3 container size vs the flat v2 container,
  split into block-index and per-chunk CRC overhead;
* per-function fetch sizes (header + covering chunks) against the whole
  container, through a *live* service round-trip (``fetch_function``);
* the intro's paging and delivery models re-run on the measured chunk
  size distribution instead of the uniform ``PAGE_SIZE`` guess.
"""

import statistics

from conftest import save_table
from repro.bench import render_table
from repro.container import GreedyPlacement, container_index
from repro.system import (
    LAN_10M, MODEM_28_8, PagingConfig, Representation, delivery_time,
    paging_run,
)

UNITS = ("wc", "lzss", "stackvm")
CHUNK_BYTES = 512   # wire chunks (decoded-image bytes)
BRISC_CHUNK_BYTES = 64  # BRISC code is ~6x denser; keep several chunks


def _modules(toolchain, units):
    for unit in units:
        from repro.corpus import get_sample

        res = toolchain.compile(get_sample(unit), name=unit,
                                stages=("lower", "brisc"))
        yield unit, res.module, res.brisc.image.blob


def test_seekability_tax_and_fetch_sizes(benchmark, results_dir, toolchain):
    """One-function fetches must transfer strictly fewer bytes than the
    whole unit; the index + CRC overhead buying that stays small."""
    from repro.brisc.encode import repack_v3
    from repro.wire import encode_module, encode_module_v3

    def measure():
        rows = []
        for unit, module, bri2 in _modules(toolchain, UNITS):
            v2 = encode_module(module)
            v3 = encode_module_v3(module,
                                  placement=GreedyPlacement(CHUNK_BYTES))
            bri3 = repack_v3(bri2, GreedyPlacement(BRISC_CHUNK_BYTES))
            rows.append((unit, "wire", v2, v3))
            rows.append((unit, "brisc", bri2, bri3))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    table = []
    for unit, fmt, v2, v3 in rows:
        index = container_index(v3)
        fetches = [sum(n for _, n in index.ranges_for_function(fn.name))
                   for fn in index.functions]
        # The acceptance criterion: every one-function fetch moves
        # strictly fewer bytes than shipping the whole container.
        if len(index.chunks) > 1:
            for fetched in fetches:
                assert fetched < len(v3), (unit, fmt, fetched, len(v3))
        crc_bytes = 4 * (len(index.chunks) + 1)  # chunk CRCs + header CRC
        table.append([
            unit, fmt, str(len(v2)), str(len(v3)),
            f"{len(v3) / len(v2) - 1:+.1%}",
            str(index.header_bytes), str(crc_bytes),
            str(len(index.chunks)),
            str(min(fetches)),
            str(int(statistics.median(fetches))),
            f"{statistics.median(fetches) / len(v3):.0%}",
        ])
    text = render_table(
        ["unit", "format", "v2 B", "v3 B", "tax", "index B", "crc B",
         "chunks", "min fetch", "med fetch", "med/total"],
        table)
    save_table(results_dir, "demand_paging", text)


def test_live_fetch_round_trip(benchmark, results_dir):
    """A real server serves one function for fewer bytes than the unit."""
    from repro.corpus import get_sample
    from repro.service import (
        BackgroundService, CompressionService, ServiceClient, ServiceConfig,
    )
    from repro.wire import decode_function

    source = get_sample("wc")

    def measure():
        service = BackgroundService(CompressionService(
            config=ServiceConfig(port=0)))
        with service:
            with ServiceClient(port=service.port, timeout=60.0) as client:
                cold = client.fetch_function(
                    source, "main", name="wc", chunk_bytes=CHUNK_BYTES)
                warm = client.fetch_function(
                    source, "main", name="wc", chunk_bytes=CHUNK_BYTES)
                stats = client.stats()["service"]
        return cold, warm, stats

    cold, warm, stats = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert cold["transferred"] < cold["total_bytes"]
    assert warm["cache_hit"]
    assert decode_function(cold["blob"], "main").name == "main"
    counters = stats["range_ops"]["fetch_function"]
    text = render_table(
        ["round", "transferred", "total", "store"],
        [["cold", str(cold["transferred"]), str(cold["total_bytes"]),
          "miss"],
         ["warm", str(warm["transferred"]), str(warm["total_bytes"]),
          "hit"],
         ["bytes served", str(stats["bytes_served"]), "",
          f"{counters['hits']} hit / {counters['misses']} miss"]])
    save_table(results_dir, "demand_paging_service", text)


def test_models_on_measured_chunks(benchmark, results_dir, toolchain):
    """Paging and delivery arithmetic on the real chunk distribution."""
    from repro.brisc.encode import repack_v3
    from repro.native import PentiumLike

    def measure():
        from repro.corpus import get_sample

        res = toolchain.compile(get_sample("wc"), name="wc",
                                stages=("codegen", "brisc"))
        bri3 = repack_v3(res.brisc.image.blob,
                         GreedyPlacement(BRISC_CHUNK_BYTES))
        native = PentiumLike().program_size(res.program)
        return native, bri3

    native, bri3 = benchmark.pedantic(measure, rounds=1, iterations=1)
    index = container_index(bri3)
    chunks = [c.length for c in index.chunks]
    config = PagingConfig(fault_seconds=0.010)

    uniform = paging_run(native, len(bri3), 1_000_000, config)
    measured = paging_run(native, len(bri3), 1_000_000, config,
                          compressed_chunks=chunks)
    rows = []
    for strategy in uniform:
        rows.append([
            strategy,
            str(uniform[strategy].pages_faulted),
            f"{uniform[strategy].total_seconds:.4f}",
            str(measured[strategy].pages_faulted),
            f"{measured[strategy].total_seconds:.4f}",
        ])
    # Delivery: whole container vs the median one-function fetch.
    fetches = [sum(n for _, n in index.ranges_for_function(fn.name))
               for fn in index.functions]
    one = int(statistics.median(fetches))
    for link in (MODEM_28_8, LAN_10M):
        whole = delivery_time(Representation("whole", len(bri3)), link)
        part = delivery_time(Representation("one-function", one), link)
        rows.append([
            f"deliver/{link.name}",
            f"{len(bri3)} B", f"{whole.total_seconds:.3f}s",
            f"{one} B", f"{part.total_seconds:.3f}s",
        ])
        assert part.total_seconds <= whole.total_seconds
    text = render_table(
        ["strategy", "uniform faults", "uniform s",
         "measured chunks", "measured s"], rows)
    save_table(results_dir, "demand_paging_models", text)
