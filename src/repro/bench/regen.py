"""Cached regeneration of the EXPERIMENTS.md tables (``repro tables``).

Rebuilds the paper's Table 1 (wire sizes), Table 2 (BRISC results), and
Table 3 (abstract-machine ablation) rows **incrementally**: a state file
records, per suite unit, the source digest, the content-addressed stage
keys the pipeline would use, and the previously measured rows.  A unit
is re-measured only when its source or its keys changed; everything else
is served from the state file, so a no-op rerun measures zero units.

The stage keys double as a **churn detector**: if a unit's source digest
is unchanged but any stage key differs, a code or configuration change
invalidated cached artifacts without changing the input — the exact
failure mode that silently degrades warm-cache build times.  ``tables``
warns on churn (``--check`` turns the warning into a failing exit), and
compares the pipeline's cache hit-rate against the previous run's.

Rendered tables always land in the results directory
(``table1.txt``/``table2.txt``/``table3.txt``); ``--write-experiments``
additionally patches the auto-generated block of ``EXPERIMENTS.md``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import math
import os
from typing import Any, Dict, List, Optional, Tuple

from ..corpus import suite_names, suite_source
from ..pipeline import default_toolchain
from .measure import (
    AblationRow, BriscRow, WireRow, ablation_rows, brisc_row, wire_row,
)
from .tables import ablation_table, brisc_table, wire_table

__all__ = ["regenerate_tables", "render_report"]

#: State-file layout version (bump on incompatible changes).
STATE_SCHEMA = 1

#: Which units feed which table (mirrors benchmarks/bench_table*.py):
#: Table 1 measures every suite unit, Table 2 skips gcc (its interpreter
#: workload dominates the run), Table 3 ablates lcc only.
T2_UNITS = ("wc", "lcc")
T3_UNIT = "lcc"

#: Markers bounding the auto-generated block in EXPERIMENTS.md.
MARK_BEGIN = "<!-- repro-tables:begin -->"
MARK_END = "<!-- repro-tables:end -->"


def _digest(text: str) -> str:
    return hashlib.sha256(text.encode()).hexdigest()


def _nan_to_none(row: Dict[str, Any]) -> Dict[str, Any]:
    return {k: (None if isinstance(v, float) and math.isnan(v) else v)
            for k, v in row.items()}


def _none_to_nan(row: Dict[str, Any], cls) -> Dict[str, Any]:
    floats = {f.name for f in dataclasses.fields(cls)
              if f.type in ("float", float)}
    return {k: (float("nan") if v is None and k in floats else v)
            for k, v in row.items()}


def _unit_keys(toolchain, name: str, source: str) -> Dict[str, str]:
    """Every stage key the three tables depend on for one unit."""
    keys = dict(toolchain.stage_keys(source, name))
    if name == T3_UNIT:
        from ..codegen import ABLATION_VARIANTS

        for isa in ABLATION_VARIANTS:
            config = toolchain.config.with_isa(isa)
            variant = toolchain.stage_keys(source, name, ("brisc",), config)
            keys[f"ablation:{isa.name}:brisc"] = variant["brisc"]
    return keys


def _measure_unit(name: str, skip_interp: bool) -> Dict[str, Any]:
    """Measure every table row this unit contributes (the slow path)."""
    rows: Dict[str, Any] = {
        "t1": _nan_to_none(dataclasses.asdict(wire_row(name))),
    }
    if name in T2_UNITS:
        row = brisc_row(name, measure_interp=not skip_interp)
        rows["t2"] = _nan_to_none(dataclasses.asdict(row))
    if name == T3_UNIT:
        rows["t3"] = [dataclasses.asdict(r) for r in ablation_rows(name)]
    return rows


def _load_state(path: str) -> Dict[str, Any]:
    try:
        with open(path) as f:
            state = json.load(f)
    except (OSError, ValueError):
        return {}
    if state.get("schema") != STATE_SCHEMA:
        return {}
    return state


def regenerate_tables(
    units: Optional[List[str]] = None,
    state_path: str = "benchmarks/results/tables_state.json",
    skip_interp: bool = False,
    toolchain=None,
) -> Dict[str, Any]:
    """Rebuild the table rows for ``units``, re-measuring only what changed.

    Returns a report dict: per-unit status (``measured``/``cached``/
    ``churn``), the assembled rows, counters, and hit-rate trend info.
    The updated state is written back to ``state_path``.
    """
    toolchain = toolchain or default_toolchain()
    if units is None:
        units = list(suite_names())
    unknown = sorted(set(units) - set(suite_names()))
    if unknown:
        raise KeyError(f"unknown suite units {unknown} "
                       f"(have: {sorted(suite_names())})")
    state = _load_state(state_path)
    known: Dict[str, Any] = state.get("units", {})
    statuses: Dict[str, str] = {}
    churned: Dict[str, List[str]] = {}
    rows: Dict[str, Any] = {}

    for name in units:
        source = suite_source(name)
        digest = _digest(source)
        keys = _unit_keys(toolchain, name, source)
        entry = known.get(name)
        if entry is not None and entry.get("source_digest") == digest:
            if entry.get("stage_keys") == keys:
                statuses[name] = "cached"
                rows[name] = entry["rows"]
                continue
            # Same source, different keys: cache-key churn.  Every
            # artifact this unit had cached is now unreachable; re-measure
            # and report which stages moved.
            old = entry.get("stage_keys", {})
            churned[name] = sorted(
                set(old) ^ set(keys)
                | {s for s in set(old) & set(keys) if old[s] != keys[s]}
            )
            statuses[name] = "churn"
        else:
            statuses[name] = "measured"
        rows[name] = _measure_unit(name, skip_interp)
        known[name] = {"source_digest": digest, "stage_keys": keys,
                       "rows": rows[name]}

    measured = sum(1 for s in statuses.values() if s != "cached")
    tc_stats = toolchain.stats()
    hit_rate = tc_stats["totals"]["hit_rate"]
    prev_hit_rate = state.get("hit_rate")
    hit_rate_dropped = (measured > 0 and prev_hit_rate is not None
                        and hit_rate < prev_hit_rate - 0.05)

    state = {"schema": STATE_SCHEMA, "units": known, "hit_rate": hit_rate}
    directory = os.path.dirname(state_path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    tmp = state_path + ".tmp"
    with open(tmp, "w") as f:
        json.dump(state, f, indent=2, sort_keys=True)
    os.replace(tmp, state_path)

    return {
        "units": units,
        "statuses": statuses,
        "churn": churned,
        "rows": rows,
        "measured": measured,
        "cached": sum(1 for s in statuses.values() if s == "cached"),
        "hit_rate": hit_rate,
        "prev_hit_rate": prev_hit_rate,
        "hit_rate_dropped": hit_rate_dropped,
        "state_path": state_path,
    }


def render_report(report: Dict[str, Any]) -> Tuple[str, str, str]:
    """Render the three tables from a :func:`regenerate_tables` report."""
    rows = report["rows"]
    t1 = wire_table(
        WireRow(**_none_to_nan(rows[u]["t1"], WireRow))
        for u in report["units"] if "t1" in rows[u]
    )
    t2 = brisc_table(
        BriscRow(**_none_to_nan(rows[u]["t2"], BriscRow))
        for u in report["units"] if "t2" in rows.get(u, {})
    )
    t3 = ""
    for u in report["units"]:
        if "t3" in rows.get(u, {}):
            t3 = ablation_table(
                AblationRow(**r) for r in rows[u]["t3"])
            break
    return t1, t2, t3


def write_results(report: Dict[str, Any], results_dir: str) -> List[str]:
    """Write ``table1.txt``..``table3.txt`` under ``results_dir``."""
    os.makedirs(results_dir, exist_ok=True)
    written: List[str] = []
    for stem, text in zip(("table1", "table2", "table3"),
                          render_report(report)):
        if not text:
            continue
        path = os.path.join(results_dir, f"{stem}.txt")
        with open(path, "w") as f:
            f.write(text + "\n")
        written.append(path)
    return written


def patch_experiments(report: Dict[str, Any],
                      path: str = "EXPERIMENTS.md") -> bool:
    """Replace the auto-generated block in ``EXPERIMENTS.md``.

    The block lives between :data:`MARK_BEGIN`/:data:`MARK_END` markers;
    it is appended if missing.  Returns whether the file changed.
    """
    t1, t2, t3 = render_report(report)
    parts = ["", MARK_BEGIN,
             "## Regenerated tables (`python -m repro tables`)", ""]
    for title, text in (("Table 1 — wire-format sizes", t1),
                        ("Table 2 — BRISC results", t2),
                        ("Table 3 — abstract-machine ablation", t3)):
        if not text:
            continue
        parts += [f"### {title}", "", "```text", text, "```", ""]
    parts += [MARK_END, ""]
    block = "\n".join(parts)
    try:
        with open(path) as f:
            doc = f.read()
    except OSError:
        return False
    if MARK_BEGIN in doc and MARK_END in doc:
        head, rest = doc.split(MARK_BEGIN, 1)
        _, tail = rest.split(MARK_END, 1)
        new_doc = head.rstrip("\n") + "\n" + block + tail.lstrip("\n")
    else:
        new_doc = doc.rstrip("\n") + "\n" + block
    if new_doc == doc:
        return False
    with open(path, "w") as f:
        f.write(new_doc)
    return True


def summary_line(report: Dict[str, Any]) -> str:
    """The one-line machine-greppable outcome (CI asserts on it)."""
    churn = sum(1 for s in report["statuses"].values() if s == "churn")
    return (f"units: {len(report['units'])} · "
            f"re-measured: {report['measured']} · "
            f"cached: {report['cached']} · "
            f"churn: {churn}")
