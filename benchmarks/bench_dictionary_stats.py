"""F1 — BRISC generation statistics.

The paper reports compressor internals: 93,211 candidates tested for
gcc-2.6.3, a final dictionary of 1232 patterns (981 for the lcc program),
at most 244 successor patterns per Markov context, and a 224-pattern base
instruction set.  This bench regenerates those statistics for our suite
and checks their magnitudes and monotonicity.
"""


from conftest import save_table
from repro.bench import compressed_suite, render_table


def test_dictionary_statistics(benchmark, results_dir):
    names = ["wc", "lcc"]
    cps = benchmark.pedantic(
        lambda: {n: compressed_suite(n) for n in names},
        rounds=1, iterations=1)

    rows = []
    for name in names:
        cp = cps[name]
        rows.append([
            name,
            str(cp.build.candidates_tested),
            str(cp.build.base_patterns),
            str(cp.build.dictionary_size),
            str(cp.image.pattern_count),
            str(cp.image.max_successors),
            str(cp.build.passes),
        ])
    text = render_table(
        ["program", "candidates", "base", "dictionary", "used patterns",
         "max successors", "passes"],
        rows)
    save_table(results_dir, "dictionary_stats", text)

    wc, lcc = cps["wc"], cps["lcc"]
    # Shape claims mirroring the paper's numbers:
    # candidates scale strongly with program size (93,211 for gcc).
    assert lcc.build.candidates_tested > 50 * max(1, wc.build.candidates_tested)
    # a large input learns a real dictionary beyond the base patterns
    # (981/1232 in the paper).
    assert lcc.build.dictionary_size > lcc.build.base_patterns
    # every context's successor table fits the opcode byte (≤244 in the
    # paper; ≤256 with our escape).
    assert lcc.image.max_successors <= 256


def test_candidate_generation_throughput(benchmark):
    """One full greedy pass over the wc program (the compressor's hot
    loop), as a tracked micro-benchmark."""
    from repro.brisc.builder import BriscBuilder
    from repro.corpus import build_input

    program = build_input("wc").program

    def one_pass():
        builder = BriscBuilder(program, k=20)
        return builder._gather_candidates()

    savings = benchmark(one_pass)
    assert savings is not None
