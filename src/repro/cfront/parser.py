"""Recursive-descent parser for the C subset.

Produces the untyped AST of :mod:`repro.cfront.astnodes`.  The grammar is
classic C89 minus the preprocessor, bitfields, and old-style (K&R)
definitions; typedefs, structs, unions, enums, multi-dimensional arrays,
function pointers and initializer lists are supported.

Type names are resolved during parsing (the classic typedef ambiguity), so
the parser owns a scope stack mirroring the one sema rebuilds; only
typedef names and struct tags are recorded here.
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

from . import ctypes as ct
from .astnodes import (
    Assign, Binary, Block, Break, Call, Case, Cast, Conditional, Continue,
    DeclStmt, Declarator, DoWhile, EmptyStmt, Expr, ExprStmt, FloatLit, For,
    FunctionDef, If, IncDec, Index, InitList, Initializer, IntLit, Member,
    NameRef, ParamDecl, Return, SizeofType, Stmt, StringLit, Switch,
    TranslationUnit, Unary, VarDecl, While,
)
from .ctypes import (
    ArrayType, CType, FunctionType, PointerType, StructMember, StructType,
)
from .errors import CompileError
from .lexer import tokenize
from .symbols import Scope, Storage, Symbol
from .tokens import Token, TokenKind as TK

__all__ = ["Parser", "parse"]

_TYPE_STARTERS = {
    TK.KW_VOID, TK.KW_CHAR, TK.KW_SHORT, TK.KW_INT, TK.KW_LONG,
    TK.KW_FLOAT, TK.KW_DOUBLE, TK.KW_SIGNED, TK.KW_UNSIGNED,
    TK.KW_STRUCT, TK.KW_UNION, TK.KW_ENUM, TK.KW_CONST,
}

_ASSIGN_OPS = {
    TK.ASSIGN: "=", TK.PLUS_ASSIGN: "+=", TK.MINUS_ASSIGN: "-=",
    TK.STAR_ASSIGN: "*=", TK.SLASH_ASSIGN: "/=", TK.PERCENT_ASSIGN: "%=",
    TK.AMP_ASSIGN: "&=", TK.PIPE_ASSIGN: "|=", TK.CARET_ASSIGN: "^=",
    TK.LSHIFT_ASSIGN: "<<=", TK.RSHIFT_ASSIGN: ">>=",
}

# Binary operator precedence levels, lowest first.
_BINARY_LEVELS: List[List[Tuple[TK, str]]] = [
    [(TK.PIPEPIPE, "||")],
    [(TK.AMPAMP, "&&")],
    [(TK.PIPE, "|")],
    [(TK.CARET, "^")],
    [(TK.AMP, "&")],
    [(TK.EQ, "=="), (TK.NE, "!=")],
    [(TK.LT, "<"), (TK.GT, ">"), (TK.LE, "<="), (TK.GE, ">=")],
    [(TK.LSHIFT, "<<"), (TK.RSHIFT, ">>")],
    [(TK.PLUS, "+"), (TK.MINUS, "-")],
    [(TK.STAR, "*"), (TK.SLASH, "/"), (TK.PERCENT, "%")],
]


class Parser:
    """Parses a token stream into a :class:`TranslationUnit`."""

    def __init__(self, tokens: List[Token]) -> None:
        self.tokens = tokens
        self.pos = 0
        self.scope = Scope()  # typedef names + struct tags + enum constants
        self.unit = TranslationUnit()
        self._anon_tag = 0

    # -- token plumbing ------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        i = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[i]

    def _at(self, kind: TK) -> bool:
        return self._peek().kind is kind

    def _advance(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind is not TK.EOF:
            self.pos += 1
        return tok

    def _accept(self, kind: TK) -> Optional[Token]:
        if self._at(kind):
            return self._advance()
        return None

    def _expect(self, kind: TK) -> Token:
        if not self._at(kind):
            raise CompileError(
                f"expected '{kind.value}', found {self._peek()!r}",
                self._peek().location,
            )
        return self._advance()

    def _error(self, message: str) -> CompileError:
        return CompileError(message, self._peek().location)

    # -- entry point -----------------------------------------------------

    def parse_unit(self) -> TranslationUnit:
        """Parse the whole translation unit."""
        while not self._at(TK.EOF):
            self._external_declaration()
        return self.unit

    # -- type parsing ------------------------------------------------------

    def _starts_type(self, offset: int = 0) -> bool:
        tok = self._peek(offset)
        if tok.kind in _TYPE_STARTERS:
            return True
        if tok.kind is TK.IDENT:
            sym = self.scope.lookup(tok.text)
            return sym is not None and sym.storage is Storage.TYPEDEF
        return False

    def _parse_base_type(self) -> CType:
        """Parse declaration specifiers (minus storage class) into a type."""
        while self._accept(TK.KW_CONST):
            pass
        tok = self._peek()
        if tok.kind is TK.KW_STRUCT or tok.kind is TK.KW_UNION:
            result: CType = self._parse_struct(tok.kind is TK.KW_UNION)
        elif tok.kind is TK.KW_ENUM:
            result = self._parse_enum()
        elif tok.kind is TK.IDENT:
            sym = self.scope.lookup(tok.text)
            if sym is None or sym.storage is not Storage.TYPEDEF:
                raise self._error(f"unknown type name '{tok.text}'")
            self._advance()
            result = sym.type
        else:
            result = self._parse_builtin_type()
        while self._accept(TK.KW_CONST):
            pass
        return result

    def _parse_builtin_type(self) -> CType:
        """Combine primitive type keywords (e.g. ``unsigned long``)."""
        signedness: Optional[bool] = None
        base: Optional[str] = None
        longs = 0
        seen_any = False
        while True:
            k = self._peek().kind
            if k is TK.KW_SIGNED:
                signedness = True
            elif k is TK.KW_UNSIGNED:
                signedness = False
            elif k is TK.KW_VOID:
                base = "void"
            elif k is TK.KW_CHAR:
                base = "char"
            elif k is TK.KW_SHORT:
                base = "short"
            elif k is TK.KW_INT:
                base = base or "int"
            elif k is TK.KW_LONG:
                longs += 1
            elif k is TK.KW_FLOAT or k is TK.KW_DOUBLE:
                base = "double"
            elif k is TK.KW_CONST:
                pass
            else:
                break
            seen_any = True
            self._advance()
        if not seen_any:
            raise self._error("expected a type")
        if base == "void":
            return ct.VOID
        if base == "double":
            return ct.DOUBLE
        if base == "char":
            if signedness is False:
                return ct.UCHAR
            return ct.CHAR
        if base == "short":
            return ct.USHORT if signedness is False else ct.SHORT
        if longs:
            return ct.ULONG if signedness is False else ct.LONG
        return ct.UINT if signedness is False else ct.INT

    def _parse_struct(self, is_union: bool) -> StructType:
        self._advance()  # struct/union
        tag_tok = self._accept(TK.IDENT)
        if tag_tok is None and not self._at(TK.LBRACE):
            raise self._error("struct requires a tag or a definition")
        if tag_tok is not None:
            tag = tag_tok.text
        else:
            self._anon_tag += 1
            tag = f"<anon{self._anon_tag}>"
        has_body = self._at(TK.LBRACE)
        struct = self.scope.lookup_tag(tag, here_only=has_body) if tag_tok else None
        if struct is None and tag_tok is not None and not has_body:
            struct = self.scope.lookup_tag(tag)
        if struct is None:
            struct = StructType(tag, is_union)
            self.scope.declare_tag(tag, struct)
        if has_body:
            if struct.complete:
                raise self._error(f"redefinition of '{struct}'")
            self._advance()  # {
            members: List[StructMember] = []
            while not self._at(TK.RBRACE):
                base = self._parse_base_type()
                while True:
                    decl = self._parse_declarator(base)
                    if isinstance(decl.type, FunctionType):
                        raise CompileError("struct member cannot be a function", decl.location)
                    members.append(StructMember(decl.name, decl.type))
                    if not self._accept(TK.COMMA):
                        break
                self._expect(TK.SEMI)
            self._expect(TK.RBRACE)
            try:
                struct.define(members)
            except ValueError as exc:
                raise self._error(str(exc)) from None
        return struct

    def _parse_enum(self) -> CType:
        self._advance()  # enum
        self._accept(TK.IDENT)  # tag, unused: enums are just ints here
        if self._accept(TK.LBRACE):
            next_value = 0
            while not self._at(TK.RBRACE):
                name_tok = self._expect(TK.IDENT)
                if self._accept(TK.ASSIGN):
                    next_value = self._parse_constant_int()
                sym = Symbol(
                    name_tok.text, ct.INT, Storage.ENUM_CONST,
                    name_tok.location, enum_value=next_value,
                )
                self.scope.declare(sym)
                next_value += 1
                if not self._accept(TK.COMMA):
                    break
            self._expect(TK.RBRACE)
        return ct.INT

    def _parse_constant_int(self) -> int:
        """Parse a (very) constant expression: used for enum values only.

        Full constant expressions elsewhere (array sizes, case labels) are
        folded by sema; enum values must be known during parsing, so only
        literals, prior enum constants, unary +/-, and | of those allowed.
        """
        expr = self._conditional()
        value = _fold_const(expr, self.scope)
        if value is None:
            raise CompileError("enum value must be a constant expression", expr.location)
        return value

    def _parse_declarator(self, base: CType) -> Declarator:
        """Parse pointer/array/function declarator structure around a name."""
        while self._accept(TK.STAR):
            while self._accept(TK.KW_CONST):
                pass
            base = PointerType(base)
        # Parenthesized declarators, e.g. int (*fp)(int).
        if self._at(TK.LPAREN) and (
            self._peek(1).kind is TK.STAR or self._peek(1).kind is TK.LPAREN
        ):
            self._advance()
            # Parse the inner declarator against a placeholder, then graft.
            inner = self._parse_declarator(ct.VOID)
            self._expect(TK.RPAREN)
            inner_params = self._last_params  # the named params, if any
            suffix = self._parse_declarator_suffix(base)
            self._last_params = inner_params
            grafted = _graft(inner.type, suffix)
            return Declarator(inner.name, grafted, inner.location)
        name_tok = self._accept(TK.IDENT)
        name = name_tok.text if name_tok else ""
        loc = name_tok.location if name_tok else self._peek().location
        full = self._parse_declarator_suffix(base)
        return Declarator(name, full, loc)

    def _parse_declarator_suffix(self, base: CType) -> CType:
        """Parse trailing ``[N]`` and ``(params)`` declarator parts."""
        if self._at(TK.LPAREN):
            self._advance()
            params, variadic = self._parse_param_types()
            self._expect(TK.RPAREN)
            ret = self._parse_declarator_suffix(base)
            self._last_params = params  # recovered by _function_definition
            return FunctionType(ret, tuple(p.type for p in params), variadic)
        if self._at(TK.LBRACKET):
            self._advance()
            count: Optional[int] = None
            if not self._at(TK.RBRACKET):
                expr = self._conditional()
                count = _fold_const(expr, self.scope)
                if count is None or count < 0:
                    raise CompileError("array size must be a non-negative constant",
                                       expr.location)
            self._expect(TK.RBRACKET)
            element = self._parse_declarator_suffix(base)
            return ArrayType(element, count)
        return base

    def _parse_param_types(self) -> Tuple[List[ParamDecl], bool]:
        params: List[ParamDecl] = []
        variadic = False
        if self._at(TK.RPAREN):
            return params, variadic
        if self._at(TK.KW_VOID) and self._peek(1).kind is TK.RPAREN:
            self._advance()
            return params, variadic
        while True:
            if self._accept(TK.ELLIPSIS):
                variadic = True
                break
            base = self._parse_base_type()
            decl = self._parse_declarator(base)
            ptype = decl.type
            # Arrays and functions decay to pointers in parameter lists.
            if isinstance(ptype, ArrayType):
                ptype = PointerType(ptype.element)
            elif isinstance(ptype, FunctionType):
                ptype = PointerType(ptype)
            params.append(ParamDecl(decl.name, ptype, decl.location))
            if not self._accept(TK.COMMA):
                break
        return params, variadic

    # -- external declarations -------------------------------------------

    def _external_declaration(self) -> None:
        is_typedef = bool(self._accept(TK.KW_TYPEDEF))
        is_static = bool(self._accept(TK.KW_STATIC))
        is_extern = bool(self._accept(TK.KW_EXTERN))
        base = self._parse_base_type()
        if self._accept(TK.SEMI):
            return  # bare struct/enum declaration
        first = True
        while True:
            decl = self._parse_declarator(base)
            if is_typedef:
                if not decl.name:
                    raise CompileError("typedef requires a name", decl.location)
                self.scope.declare(
                    Symbol(decl.name, decl.type, Storage.TYPEDEF, decl.location)
                )
            elif isinstance(decl.type, FunctionType):
                if first and self._at(TK.LBRACE):
                    self._function_definition(decl, is_static)
                    return
                self.unit.functions.append(
                    FunctionDef(decl.name, decl.type, [], decl.location,
                                body=None, is_static=is_static)
                )
            else:
                if not decl.name:
                    raise CompileError("declaration requires a name", decl.location)
                init = None
                if self._accept(TK.ASSIGN):
                    init = self._parse_initializer()
                self.unit.globals.append(
                    VarDecl(decl.name, decl.type, decl.location, init,
                            is_static=is_static, is_extern=is_extern)
                )
            first = False
            if not self._accept(TK.COMMA):
                break
        self._expect(TK.SEMI)

    def _function_definition(self, decl: Declarator, is_static: bool) -> None:
        assert isinstance(decl.type, FunctionType)
        # Re-parse parameters to recover names: _parse_declarator kept only
        # the types in the FunctionType, so walk back isn't possible —
        # instead _parse_declarator_suffix stashes them below.
        params = self._last_params or []
        body = self._block()
        self.unit.functions.append(
            FunctionDef(decl.name, decl.type, params, decl.location, body, is_static)
        )

    # Parameter names of the most recent '(...)' suffix, for definitions.
    _last_params: Optional[List[ParamDecl]] = None

    # -- statements --------------------------------------------------------

    def _block(self) -> Block:
        lbrace = self._expect(TK.LBRACE)
        body: List[Stmt] = []
        while not self._at(TK.RBRACE):
            if self._at(TK.EOF):
                raise self._error("unexpected end of file inside block")
            body.append(self._statement())
        self._expect(TK.RBRACE)
        return Block(lbrace.location, body)

    def _statement(self) -> Stmt:
        tok = self._peek()
        k = tok.kind
        if k is TK.LBRACE:
            return self._block()
        if k is TK.SEMI:
            self._advance()
            return EmptyStmt(tok.location)
        if k is TK.KW_IF:
            return self._if_statement()
        if k is TK.KW_WHILE:
            self._advance()
            self._expect(TK.LPAREN)
            cond = self._expression()
            self._expect(TK.RPAREN)
            return While(tok.location, cond, self._statement())
        if k is TK.KW_DO:
            self._advance()
            body = self._statement()
            self._expect(TK.KW_WHILE)
            self._expect(TK.LPAREN)
            cond = self._expression()
            self._expect(TK.RPAREN)
            self._expect(TK.SEMI)
            return DoWhile(tok.location, body, cond)
        if k is TK.KW_FOR:
            return self._for_statement()
        if k is TK.KW_RETURN:
            self._advance()
            value = None if self._at(TK.SEMI) else self._expression()
            self._expect(TK.SEMI)
            return Return(tok.location, value)
        if k is TK.KW_BREAK:
            self._advance()
            self._expect(TK.SEMI)
            return Break(tok.location)
        if k is TK.KW_CONTINUE:
            self._advance()
            self._expect(TK.SEMI)
            return Continue(tok.location)
        if k is TK.KW_SWITCH:
            return self._switch_statement()
        if k is TK.KW_CASE or k is TK.KW_DEFAULT:
            return self._case_statement()
        if k is TK.KW_GOTO:
            raise self._error("goto is not supported by this C subset")
        if self._starts_type() or k is TK.KW_STATIC:
            return self._local_declaration()
        expr = self._expression()
        self._expect(TK.SEMI)
        return ExprStmt(tok.location, expr)

    def _if_statement(self) -> If:
        tok = self._advance()
        self._expect(TK.LPAREN)
        cond = self._expression()
        self._expect(TK.RPAREN)
        then = self._statement()
        otherwise = self._statement() if self._accept(TK.KW_ELSE) else None
        return If(tok.location, cond, then, otherwise)

    def _for_statement(self) -> For:
        tok = self._advance()
        self._expect(TK.LPAREN)
        init: Optional[Union[Expr, DeclStmt]] = None
        if self._starts_type():
            init = self._local_declaration()
        elif not self._at(TK.SEMI):
            init = self._expression()
            self._expect(TK.SEMI)
        else:
            self._advance()
        cond = None if self._at(TK.SEMI) else self._expression()
        self._expect(TK.SEMI)
        step = None if self._at(TK.RPAREN) else self._expression()
        self._expect(TK.RPAREN)
        return For(tok.location, init, cond, step, self._statement())

    def _switch_statement(self) -> Switch:
        tok = self._advance()
        self._expect(TK.LPAREN)
        scrutinee = self._expression()
        self._expect(TK.RPAREN)
        return Switch(tok.location, scrutinee, self._statement())

    def _case_statement(self) -> Case:
        tok = self._advance()
        value: Optional[Expr] = None
        if tok.kind is TK.KW_CASE:
            value = self._conditional()
        self._expect(TK.COLON)
        # A case label may be immediately followed by another label or '}'.
        if self._at(TK.KW_CASE) or self._at(TK.KW_DEFAULT) or self._at(TK.RBRACE):
            body: Stmt = EmptyStmt(tok.location)
        else:
            body = self._statement()
        return Case(tok.location, value, body)

    def _local_declaration(self) -> DeclStmt:
        loc = self._peek().location
        is_static = bool(self._accept(TK.KW_STATIC))
        base = self._parse_base_type()
        decls: List[VarDecl] = []
        if self._accept(TK.SEMI):  # bare struct/enum declaration
            return DeclStmt(loc, decls)
        while True:
            decl = self._parse_declarator(base)
            if not decl.name:
                raise CompileError("declaration requires a name", decl.location)
            init = None
            if self._accept(TK.ASSIGN):
                init = self._parse_initializer()
            decls.append(VarDecl(decl.name, decl.type, decl.location, init,
                                 is_static=is_static))
            if not self._accept(TK.COMMA):
                break
        self._expect(TK.SEMI)
        return DeclStmt(loc, decls)

    def _parse_initializer(self) -> Union[Initializer, InitList]:
        tok = self._peek()
        if tok.kind is TK.LBRACE:
            self._advance()
            items: List[Union[Initializer, InitList]] = []
            while not self._at(TK.RBRACE):
                items.append(self._parse_initializer())
                if not self._accept(TK.COMMA):
                    break
            self._expect(TK.RBRACE)
            return InitList(tok.location, items)
        return Initializer(tok.location, self._assignment())

    # -- expressions -------------------------------------------------------

    def _expression(self) -> Expr:
        """Full expression including the comma operator."""
        expr = self._assignment()
        while self._at(TK.COMMA):
            loc = self._advance().location
            right = self._assignment()
            expr = Binary(loc, ",", expr, right)
        return expr

    def _assignment(self) -> Expr:
        left = self._conditional()
        op = _ASSIGN_OPS.get(self._peek().kind)
        if op is None:
            return left
        loc = self._advance().location
        value = self._assignment()
        return Assign(loc, op, left, value)

    def _conditional(self) -> Expr:
        cond = self._binary(0)
        if not self._at(TK.QUESTION):
            return cond
        loc = self._advance().location
        then = self._expression()
        self._expect(TK.COLON)
        otherwise = self._conditional()
        return Conditional(loc, cond, then, otherwise)

    def _binary(self, level: int) -> Expr:
        if level >= len(_BINARY_LEVELS):
            return self._cast_expr()
        left = self._binary(level + 1)
        ops = _BINARY_LEVELS[level]
        while True:
            tok = self._peek()
            matched = None
            for kind, name in ops:
                if tok.kind is kind:
                    matched = name
                    break
            if matched is None:
                return left
            self._advance()
            right = self._binary(level + 1)
            left = Binary(tok.location, matched, left, right)

    def _cast_expr(self) -> Expr:
        if self._at(TK.LPAREN) and self._starts_type(1):
            loc = self._advance().location
            base = self._parse_base_type()
            # Abstract declarator: pointers/arrays without a name.
            decl = self._parse_declarator(base)
            self._expect(TK.RPAREN)
            operand = self._cast_expr()
            return Cast(loc, decl.type, operand)
        return self._unary()

    def _unary(self) -> Expr:
        tok = self._peek()
        k = tok.kind
        if k is TK.PLUSPLUS or k is TK.MINUSMINUS:
            self._advance()
            return IncDec(tok.location, tok.kind.value, self._unary(), postfix=False)
        if k in (TK.MINUS, TK.PLUS, TK.TILDE, TK.BANG, TK.STAR, TK.AMP):
            self._advance()
            return Unary(tok.location, tok.text, self._cast_expr())
        if k is TK.KW_SIZEOF:
            self._advance()
            if self._at(TK.LPAREN) and self._starts_type(1):
                self._advance()
                base = self._parse_base_type()
                decl = self._parse_declarator(base)
                self._expect(TK.RPAREN)
                return SizeofType(tok.location, decl.type)
            # sizeof expr: wrap the operand; sema computes the size.
            return Unary(tok.location, "sizeof", self._unary())
        return self._postfix()

    def _postfix(self) -> Expr:
        expr = self._primary()
        while True:
            tok = self._peek()
            k = tok.kind
            if k is TK.LPAREN:
                self._advance()
                args: List[Expr] = []
                if not self._at(TK.RPAREN):
                    while True:
                        args.append(self._assignment())
                        if not self._accept(TK.COMMA):
                            break
                self._expect(TK.RPAREN)
                expr = Call(tok.location, expr, args)
            elif k is TK.LBRACKET:
                self._advance()
                index = self._expression()
                self._expect(TK.RBRACKET)
                expr = Index(tok.location, expr, index)
            elif k is TK.DOT:
                self._advance()
                name = self._expect(TK.IDENT).text
                expr = Member(tok.location, expr, name, arrow=False)
            elif k is TK.ARROW:
                self._advance()
                name = self._expect(TK.IDENT).text
                expr = Member(tok.location, expr, name, arrow=True)
            elif k is TK.PLUSPLUS or k is TK.MINUSMINUS:
                self._advance()
                expr = IncDec(tok.location, tok.kind.value, expr, postfix=True)
            else:
                return expr

    def _primary(self) -> Expr:
        tok = self._peek()
        k = tok.kind
        if k is TK.INT_LIT or k is TK.CHAR_LIT:
            self._advance()
            assert isinstance(tok.value, int)
            return IntLit(tok.location, tok.value)
        if k is TK.FLOAT_LIT:
            self._advance()
            assert isinstance(tok.value, float)
            return FloatLit(tok.location, tok.value)
        if k is TK.STRING_LIT:
            self._advance()
            assert isinstance(tok.value, str)
            return StringLit(tok.location, tok.value)
        if k is TK.IDENT:
            self._advance()
            # Enum constants fold to literals here (the parser owns the
            # scope they were declared in).  Note: a local variable cannot
            # shadow an enum constant in this subset.
            sym = self.scope.lookup(tok.text)
            from .symbols import Storage as _St
            if sym is not None and sym.storage is _St.ENUM_CONST:
                return IntLit(tok.location, sym.enum_value)
            return NameRef(tok.location, tok.text)
        if k is TK.LPAREN:
            self._advance()
            expr = self._expression()
            self._expect(TK.RPAREN)
            return expr
        raise self._error(f"expected an expression, found {tok!r}")


def _graft(inner: CType, suffix: CType) -> CType:
    """Replace the VOID placeholder at the core of ``inner`` with ``suffix``.

    Supports the parenthesized-declarator forms we accept: pointer chains
    and array/function wrappers around the placeholder.
    """
    if isinstance(inner, PointerType):
        return PointerType(_graft(inner.target, suffix))
    if isinstance(inner, ArrayType):
        return ArrayType(_graft(inner.element, suffix), inner.count)
    if isinstance(inner, FunctionType):
        return FunctionType(_graft(inner.ret, suffix), inner.params, inner.variadic)
    return suffix


def _fold_const(expr: Expr, scope: Scope) -> Optional[int]:
    """Best-effort integer constant folding during parsing."""
    if isinstance(expr, IntLit):
        return expr.value
    if isinstance(expr, NameRef):
        sym = scope.lookup(expr.name)
        if sym is not None and sym.storage is Storage.ENUM_CONST:
            return sym.enum_value
        return None
    if isinstance(expr, Unary) and expr.operand is not None:
        val = _fold_const(expr.operand, scope)
        if val is None:
            return None
        if expr.op == "-":
            return -val
        if expr.op == "+":
            return val
        if expr.op == "~":
            return ~val
        if expr.op == "!":
            return int(not val)
        return None
    if isinstance(expr, Binary) and expr.left is not None and expr.right is not None:
        a = _fold_const(expr.left, scope)
        b = _fold_const(expr.right, scope)
        if a is None or b is None:
            return None
        ops = {
            "+": lambda: a + b, "-": lambda: a - b, "*": lambda: a * b,
            "|": lambda: a | b, "&": lambda: a & b, "^": lambda: a ^ b,
            "<<": lambda: a << b, ">>": lambda: a >> b,
            "/": lambda: _cdiv(a, b), "%": lambda: _cmod(a, b),
            "==": lambda: int(a == b), "!=": lambda: int(a != b),
            "<": lambda: int(a < b), ">": lambda: int(a > b),
            "<=": lambda: int(a <= b), ">=": lambda: int(a >= b),
        }
        fn = ops.get(expr.op)
        return fn() if fn else None
    return None


def _cdiv(a: int, b: int) -> int:
    """C-style (truncating) integer division."""
    if b == 0:
        raise ZeroDivisionError("division by zero in constant expression")
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


def _cmod(a: int, b: int) -> int:
    """C-style remainder (sign follows the dividend)."""
    return a - _cdiv(a, b) * b


def parse(source: str, filename: str = "<input>") -> TranslationUnit:
    """Tokenize and parse ``source`` into an untyped AST."""
    return Parser(tokenize(source, filename)).parse_unit()
