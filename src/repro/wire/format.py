"""The wire format: encoder and decoder.

The paper's recipe, step for step:

1. compile to trees (done upstream in :mod:`repro.ir`);
2. patternize; one stream of operator patterns, one literal stream per
   opcode+width class;
3. move-to-front code every stream in isolation (0 = novel symbol);
4. Huffman-code the MTF indices (but not the MTF tables / novel values);
5. encode the novel values in 1/2/4-byte (or string) form and deflate every
   stream in isolation (the paper's per-stream gzip).

The container is self-describing; :func:`decode_module` reconstructs the
IR module exactly (labels are normalized to dense indices first, which is
the only — purely internal — renaming).
"""

from __future__ import annotations

import struct
import zlib
from typing import Dict, List, Optional, Sequence, Tuple

from ..compress import huffman
from ..compress.bitio import read_uvarint, take_bytes, write_uvarint
from ..compress.mtf import mtf_decode, mtf_encode
from ..compress.streams import pack_streams, unpack_streams
from ..container.chunking import (
    ChunkPlacement, ChunkRecord, ContainerIndex, FunctionExtent,
    FunctionRecord, GreedyPlacement, validate_placement,
)
from ..errors import (
    CorruptStreamError, DEFAULT_LIMITS, ResourceLimits,
    TruncatedStreamError, UnsupportedFormatError, decode_guard,
)
from ..ir.ops import op
from ..ir.tree import GlobalData, IRFunction, IRModule, PtrInit, ScalarInit
from .patternize import (
    Pattern, _LiteralSource, normalize_labels, patternize_tree, rebuild_tree,
    unzigzag, zigzag,
)

__all__ = [
    "container_index", "decode_function", "decode_module", "decode_range",
    "encode_module", "encode_module_v3", "function_image", "stream_breakdown",
    "wire_size",
]

# The fourth magic byte is the container version: "WIR1" blobs (the seed
# format) carry no checksums and remain readable; "WIR2" blobs checksum
# every stream (CRC32, verified before decode); "WIR3" blobs are the
# seekable chunked layout (header + block index + per-chunk CRC32) decoded
# by the v3 section below.  Anything else is rejected with
# UnsupportedFormatError.
_MAGIC_PREFIX = b"WIR"
_MAGIC_V1 = b"WIR1"
_MAGIC = b"WIR2"
_MAGIC_V3 = b"WIR3"


# ---------------------------------------------------------------------------
# Novel-value serialization (the "MTF tables", kept out of the Huffman pass)
# ---------------------------------------------------------------------------


def _pack_int_novels(values: List[int]) -> bytes:
    out = bytearray()
    for v in values:
        write_uvarint(out, zigzag(v))
    return bytes(out)


def _unpack_int_novels(data: bytes, count: int) -> List[int]:
    # Each novel costs at least one byte, so the count cannot exceed the
    # bytes available — reject forged counts before allocating.
    if count > len(data):
        raise TruncatedStreamError(
            f"novel stream promises {count} ints, only {len(data)} bytes")
    values: List[int] = []
    pos = 0
    for _ in range(count):
        z, pos = read_uvarint(data, pos)
        values.append(unzigzag(z))
    return values


def _pack_str_novels(values: List[str]) -> bytes:
    out = bytearray()
    for v in values:
        raw = v.encode("utf-8")
        write_uvarint(out, len(raw))
        out.extend(raw)
    return bytes(out)


def _unpack_str_novels(data: bytes, count: int) -> List[str]:
    if count > len(data):
        raise TruncatedStreamError(
            f"novel stream promises {count} strings, only {len(data)} bytes")
    values: List[str] = []
    pos = 0
    for _ in range(count):
        n, pos = read_uvarint(data, pos)
        DEFAULT_LIMITS.check("string novel length", n,
                             DEFAULT_LIMITS.max_name_bytes)
        raw, pos = take_bytes(data, pos, n, "string novel")
        values.append(raw.decode("utf-8"))
    return values


def _pack_float_novels(values: List[float]) -> bytes:
    return struct.pack("<%dd" % len(values), *values)


def _unpack_float_novels(data: bytes, count: int) -> List[float]:
    if count * 8 > len(data):
        raise TruncatedStreamError(
            f"novel stream promises {count} doubles, only {len(data)} bytes")
    return list(struct.unpack_from("<%dd" % count, data))


def _pack_pattern_novels(patterns: List[Pattern]) -> bytes:
    """Each pattern: uvarint length, then one byte per operator.

    Opcodes fit in 7 bits; the common width class 0 (8-bit literals and
    literal-free operators) uses the bare opcode byte, wider literals set
    the high bit and append a width byte.
    """
    out = bytearray()
    for pattern in patterns:
        write_uvarint(out, len(pattern))
        for name, width in pattern:
            opcode = op(name).opcode
            if width == 0:
                out.append(opcode)
            else:
                out.append(0x80 | opcode)
                out.append(width)
    return bytes(out)


def _unpack_pattern_novels(data: bytes, count: int) -> List[Pattern]:
    from ..ir.ops import OPS

    if count > len(data):
        raise TruncatedStreamError(
            f"novel stream promises {count} patterns, only {len(data)} bytes")
    by_opcode = {o.opcode: o.name for o in OPS.values()}
    patterns: List[Pattern] = []
    pos = 0
    for _ in range(count):
        n, pos = read_uvarint(data, pos)
        if n > len(data) - pos:
            raise TruncatedStreamError(
                f"pattern promises {n} operators, stream too short")
        syms = []
        for _ in range(n):
            if pos >= len(data):
                raise TruncatedStreamError("truncated pattern novel")
            byte = data[pos]
            pos += 1
            opcode = byte & 0x7F
            name = by_opcode.get(opcode)
            if name is None:
                raise CorruptStreamError(f"unknown opcode {opcode} in pattern")
            if byte & 0x80:
                if pos >= len(data):
                    raise TruncatedStreamError("pattern missing width byte")
                syms.append((name, data[pos]))
                pos += 1
            else:
                syms.append((name, 0))
        patterns.append(tuple(syms))
    return patterns


# ---------------------------------------------------------------------------
# MTF + Huffman per stream
# ---------------------------------------------------------------------------


def _encode_mtf_stream(values: List) -> Tuple[bytes, List]:
    """MTF+Huffman a stream; returns (index_bytes, novel_values)."""
    indices, novels = mtf_encode(values)
    alphabet = (max(indices) + 1) if indices else 1
    packed = huffman.encode_symbols(indices, alphabet)
    return packed, novels


def _decode_mtf_stream(
    index_bytes: bytes, novels: List, limits: Optional[ResourceLimits] = None
) -> List:
    indices = huffman.decode_symbols(index_bytes, limits)
    return mtf_decode(indices, novels)


# ---------------------------------------------------------------------------
# Meta stream (globals + function headers; "code segments" stay elsewhere)
# ---------------------------------------------------------------------------


def _pack_globals_meta(out: bytearray, globals_: List[GlobalData]) -> None:
    write_uvarint(out, len(globals_))
    for g in globals_:
        raw = g.name.encode("utf-8")
        write_uvarint(out, len(raw))
        out.extend(raw)
        write_uvarint(out, g.size)
        write_uvarint(out, g.align)
        out.append(1 if g.is_string else 0)
        write_uvarint(out, len(g.items))
        for item in g.items:
            if isinstance(item, ScalarInit):
                if isinstance(item.value, float) or item.size == 8:
                    out.append(1)
                    write_uvarint(out, item.offset)
                    out.extend(struct.pack("<d", float(item.value)))
                else:
                    out.append(0)
                    write_uvarint(out, item.offset)
                    write_uvarint(out, item.size)
                    write_uvarint(out, zigzag(int(item.value)))
            else:
                out.append(2)
                write_uvarint(out, item.offset)
                raw = item.symbol.encode("utf-8")
                write_uvarint(out, len(raw))
                out.extend(raw)


def _pack_fn_header(out: bytearray, fn: IRFunction) -> None:
    raw = fn.name.encode("utf-8")
    write_uvarint(out, len(raw))
    out.extend(raw)
    write_uvarint(out, fn.frame_size)
    out.append(ord(fn.ret_suffix))
    write_uvarint(out, len(fn.param_sizes))
    for size in fn.param_sizes:
        write_uvarint(out, size)


def _pack_meta(module: IRModule, tree_counts: List[int]) -> bytes:
    out = bytearray()
    name_raw = module.name.encode("utf-8")
    write_uvarint(out, len(name_raw))
    out.extend(name_raw)
    _pack_globals_meta(out, module.globals)
    write_uvarint(out, len(module.functions))
    for fn, count in zip(module.functions, tree_counts):
        _pack_fn_header(out, fn)
        write_uvarint(out, count)
    return bytes(out)


def _read_name(data: bytes, pos: int, what: str) -> Tuple[str, int]:
    n, pos = read_uvarint(data, pos)
    DEFAULT_LIMITS.check(f"{what} length", n, DEFAULT_LIMITS.max_name_bytes)
    raw, pos = take_bytes(data, pos, n, what)
    return raw.decode("utf-8"), pos


def _read_byte(data: bytes, pos: int, what: str) -> Tuple[int, int]:
    if pos >= len(data):
        raise TruncatedStreamError(f"meta stream ends before {what}")
    return data[pos], pos + 1


def _unpack_globals_meta(data: bytes, pos: int) -> Tuple[List[GlobalData], int]:
    nglobals, pos = read_uvarint(data, pos)
    if nglobals > len(data) - pos:  # every global costs several bytes
        raise TruncatedStreamError(
            f"meta promises {nglobals} globals, stream too short")
    globals_: List[GlobalData] = []
    for _ in range(nglobals):
        name, pos = _read_name(data, pos, "global name")
        size, pos = read_uvarint(data, pos)
        align, pos = read_uvarint(data, pos)
        flag, pos = _read_byte(data, pos, "global flags")
        is_string = bool(flag)
        nitems, pos = read_uvarint(data, pos)
        if nitems > len(data) - pos:
            raise TruncatedStreamError(
                f"global {name!r} promises {nitems} items, stream too short")
        g = GlobalData(name, size, align, is_string=is_string)
        for _ in range(nitems):
            tag, pos = _read_byte(data, pos, "initializer tag")
            offset, pos = read_uvarint(data, pos)
            if tag == 0:
                isize, pos = read_uvarint(data, pos)
                z, pos = read_uvarint(data, pos)
                g.items.append(ScalarInit(offset, isize, unzigzag(z)))
            elif tag == 1:
                raw, pos = take_bytes(data, pos, 8, "double initializer")
                g.items.append(ScalarInit(offset, 8,
                                          struct.unpack("<d", raw)[0]))
            elif tag == 2:
                symbol, pos = _read_name(data, pos, "pointer symbol")
                g.items.append(PtrInit(offset, symbol))
            else:
                raise CorruptStreamError(f"unknown initializer tag {tag}")
        globals_.append(g)
    return globals_, pos


def _read_fn_header(data: bytes, pos: int) -> Tuple[IRFunction, int]:
    name, pos = _read_name(data, pos, "function name")
    frame_size, pos = read_uvarint(data, pos)
    suffix_byte, pos = _read_byte(data, pos, "return suffix")
    ret_suffix = chr(suffix_byte)
    nparams, pos = read_uvarint(data, pos)
    if nparams > len(data) - pos:
        raise TruncatedStreamError(
            f"function {name!r} promises {nparams} params, "
            "stream too short")
    params = []
    for _ in range(nparams):
        size, pos = read_uvarint(data, pos)
        params.append(size)
    return IRFunction(name, [], frame_size, params, ret_suffix), pos


def _unpack_meta(
    data: bytes, limits: Optional[ResourceLimits] = None
) -> Tuple[IRModule, List[int]]:
    limits = limits or DEFAULT_LIMITS
    name, pos = _read_name(data, 0, "module name")
    module = IRModule(name)
    module.globals, pos = _unpack_globals_meta(data, pos)
    nfuncs, pos = read_uvarint(data, pos)
    limits.check("function count", nfuncs, limits.max_functions)
    if nfuncs > len(data) - pos:
        raise TruncatedStreamError(
            f"meta promises {nfuncs} functions, stream too short")
    tree_counts: List[int] = []
    for _ in range(nfuncs):
        fn, pos = _read_fn_header(data, pos)
        count, pos = read_uvarint(data, pos)
        module.functions.append(fn)
        tree_counts.append(count)
    return module, tree_counts


# ---------------------------------------------------------------------------
# Public API
# ---------------------------------------------------------------------------


def _collect_streams(module: IRModule) -> Tuple[
    List[Pattern], Dict[str, List], List[int], IRModule
]:
    """Patternize the whole module.

    Returns (pattern stream, literal streams, per-function tree counts,
    label-normalized module).
    """
    normalized = IRModule(module.name, list(module.globals), [])
    pattern_stream: List[Pattern] = []
    literal_streams: Dict[str, List] = {}
    tree_counts: List[int] = []
    for fn in module.functions:
        fn = normalize_labels(fn)
        normalized.functions.append(fn)
        tree_counts.append(len(fn.forest))
        for tree in fn.forest:
            pattern, literals = patternize_tree(tree)
            pattern_stream.append(pattern)
            for key, value in literals:
                literal_streams.setdefault(key, []).append(value)
    return pattern_stream, literal_streams, tree_counts, normalized


def _stream_kind(key: str) -> str:
    """Literal kind of a stream key: int, label, sym, or float."""
    base = key.rstrip("0123456789")
    kind = op(base).literal if base in _op_names() else "int"
    return kind


def _op_names():
    from ..ir.ops import OPS

    return OPS


def _pack_code_streams(
    pattern_stream: List[Pattern], literal_streams: Dict[str, List]
) -> Dict[str, bytes]:
    """Serialize the pattern + literal streams (everything but "meta")."""
    streams: Dict[str, bytes] = {}
    idx_bytes, novel_patterns = _encode_mtf_stream(pattern_stream)
    streams["patterns.idx"] = idx_bytes
    novel_blob = bytearray()
    write_uvarint(novel_blob, len(novel_patterns))
    novel_blob.extend(_pack_pattern_novels(novel_patterns))
    streams["patterns.new"] = bytes(novel_blob)

    # Symbol names referenced by ADDRGP streams go into a shared symbol
    # table (like the baseline's external symbol table); the code streams
    # carry small indices.
    symtab: List[str] = []
    sym_index: Dict[str, int] = {}
    for key, values in literal_streams.items():
        kind = _stream_kind(key)
        if kind == "label":
            values = [int(v) for v in values]
            kind = "int"
        elif kind == "sym":
            indexed = []
            for name in values:
                idx = sym_index.get(name)
                if idx is None:
                    idx = sym_index[name] = len(symtab)
                    symtab.append(name)
                indexed.append(idx)
            values = indexed
            kind = "int"
        idx_bytes, novels = _encode_mtf_stream(values)
        streams[f"lit.{key}.idx"] = idx_bytes
        blob = bytearray()
        write_uvarint(blob, len(novels))
        if kind == "int":
            blob.extend(_pack_int_novels(novels))
        else:  # float
            blob.extend(_pack_float_novels(novels))
        streams[f"lit.{key}.new"] = bytes(blob)

    blob = bytearray()
    write_uvarint(blob, len(symtab))
    blob.extend(_pack_str_novels(symtab))
    streams["symtab"] = bytes(blob)
    return streams


def encode_module(module: IRModule, compress: bool = True,
                  codec: str = "deflate") -> bytes:
    """Encode ``module`` into the wire format (WIR2: per-stream CRC32).

    ``codec`` picks the per-stream entropy coder; the flag byte each
    stream carries makes the choice self-describing, so decoding needs
    no matching knob.
    """
    pattern_stream, literal_streams, tree_counts, normalized = (
        _collect_streams(module)
    )
    streams = _pack_code_streams(pattern_stream, literal_streams)
    streams["meta"] = _pack_meta(normalized, tree_counts)
    return _MAGIC + pack_streams(streams, compress=compress, checksums=True,
                                 codec=codec)


def _container_streams(
    blob: bytes, limits: Optional[ResourceLimits] = None
) -> Dict[str, bytes]:
    """Validate the magic/version and unpack the stream container.

    ``WIR1`` (the seed format, no checksums) and ``WIR2`` (per-stream
    CRC32) both decode; any other magic or version raises
    :class:`~repro.errors.UnsupportedFormatError`.
    """
    if _wire_version(blob) == 3:
        raise UnsupportedFormatError(
            "WIR3 containers are chunked, not a flat stream container")
    return unpack_streams(blob[4:], limits=limits)


def _wire_version(blob: bytes) -> int:
    """The container version byte, validated; typed error otherwise."""
    if len(blob) < 4 or blob[:3] != _MAGIC_PREFIX:
        raise UnsupportedFormatError("not a wire-format blob")
    if blob[3:4] not in (b"1", b"2", b"3"):
        raise UnsupportedFormatError(
            f"wire container version {blob[3:4]!r} is not supported")
    return blob[3] - ord("0")


def _required_stream(streams: Dict[str, bytes], name: str) -> bytes:
    data = streams.get(name)
    if data is None:
        raise CorruptStreamError(f"container is missing the {name!r} stream")
    return data


def decode_module(
    blob: bytes, limits: Optional[ResourceLimits] = None
) -> IRModule:
    """Decode a wire blob back into an IR module.

    Every count, index, and length is validated against the remaining
    input and against ``limits``; malformed blobs raise a typed
    :class:`~repro.errors.DecodeError` subclass, never an untyped
    exception.
    """
    limits = limits or DEFAULT_LIMITS
    if _wire_version(blob) == 3:
        return _decode_module_v3(blob, limits)
    streams = _container_streams(blob, limits)
    with decode_guard("wire module"):
        module, tree_counts = _unpack_meta(
            _required_stream(streams, "meta"), limits)
        trees = _decode_trees(streams, limits)
        if sum(tree_counts) != len(trees):
            raise CorruptStreamError(
                f"function headers promise {sum(tree_counts)} trees but the "
                f"pattern stream holds {len(trees)}")
        cursor = 0
        for fn, count in zip(module.functions, tree_counts):
            fn.forest.extend(trees[cursor:cursor + count])
            cursor += count
        return module


def _decode_trees(
    streams: Dict[str, bytes], limits: Optional[ResourceLimits] = None
) -> List:
    """Decode the code streams (patterns + literals + symtab) into the
    flat tree list, in pattern-stream order."""
    novel_data = _required_stream(streams, "patterns.new")
    count, pos = read_uvarint(novel_data, 0)
    novel_patterns = _unpack_pattern_novels(novel_data[pos:], count)
    pattern_stream = _decode_mtf_stream(
        _required_stream(streams, "patterns.idx"), novel_patterns, limits)

    symtab_blob = _required_stream(streams, "symtab")
    count, pos = read_uvarint(symtab_blob, 0)
    symtab = _unpack_str_novels(symtab_blob[pos:], count)

    literal_streams: Dict[str, List] = {}
    for name in streams:
        if not name.startswith("lit.") or not name.endswith(".idx"):
            continue
        key = name[4:-4]
        kind = _stream_kind(key)
        novel_blob = _required_stream(streams, f"lit.{key}.new")
        count, pos = read_uvarint(novel_blob, 0)
        if kind in ("label", "int", "sym"):
            novels: List = _unpack_int_novels(novel_blob[pos:], count)
        else:
            novels = _unpack_float_novels(novel_blob[pos:], count)
        values = _decode_mtf_stream(streams[name], novels, limits)
        if kind == "label":
            values = [str(v) for v in values]
        elif kind == "sym":
            resolved = []
            for v in values:
                if not isinstance(v, int) or not 0 <= v < len(symtab):
                    raise CorruptStreamError(
                        f"symbol index {v!r} outside the symbol table")
                resolved.append(symtab[v])
            values = resolved
        literal_streams[key] = values

    source = _LiteralSource(literal_streams)
    return [rebuild_tree(pattern, source) for pattern in pattern_stream]


def wire_size(module: IRModule, code_only: bool = False) -> int:
    """Size in bytes of the wire encoding of ``module``.

    With ``code_only`` the meta stream (global data images, symbol names,
    function headers) is excluded — the paper "compresses only code
    segments", and its conventional-code baseline carries no symbol table
    either, so Table-1 comparisons use this metric.
    """
    blob = encode_module(module)
    if not code_only:
        return len(blob)
    streams = unpack_streams(blob[4:])
    without_meta = pack_streams(
        {k: v for k, v in streams.items() if k not in ("meta", "symtab")},
        checksums=True)
    return 4 + len(without_meta)


def stream_breakdown(module: IRModule) -> Dict[str, int]:
    """Per-stream compressed sizes (for size-analysis reports)."""
    pattern_stream, literal_streams, tree_counts, normalized = (
        _collect_streams(module)
    )
    blob = encode_module(module)
    streams = unpack_streams(blob[4:])
    from ..compress import deflate

    return {name: len(deflate.compress(data)) for name, data in streams.items()}


# ---------------------------------------------------------------------------
# WIR3: the seekable chunked container
# ---------------------------------------------------------------------------
#
# Layout:
#
#   "WIR3" | crc32(header) u32 LE | uvarint header_len | header | chunks
#
# The header carries the module name, the globals (same packing as the v2
# meta stream), the function headers — each with its chunk id and its span
# length in the *decoded address space* (see :func:`function_image`) — and
# the chunk table: per chunk, the offset (relative to the chunk area),
# stored length, and CRC32.  Each chunk is a self-contained v2-style
# stream container (``pack_streams``) holding the pattern/literal/symtab
# streams of just its member functions plus a "counts" stream of their
# per-function tree counts, so decoding any one chunk never touches
# another chunk's bytes.


def function_image(fn: IRFunction) -> bytes:
    """A function's bytes in the decoded address space.

    The v3 "address space" is the concatenation of every function's
    canonical IR dump (header line + one tree per line), in module
    order — a stable, byte-exact rendering of a full decode that
    ``decode_range`` can slice without decompressing unrelated chunks.
    """
    from ..ir.dump import dump_function

    return (dump_function(fn) + "\n").encode("utf-8")


def _function_streams(
    functions: Sequence[IRFunction],
) -> Tuple[List[Pattern], Dict[str, List]]:
    """Patternize already-normalized functions into chunk-local streams."""
    pattern_stream: List[Pattern] = []
    literal_streams: Dict[str, List] = {}
    for fn in functions:
        for tree in fn.forest:
            pattern, literals = patternize_tree(tree)
            pattern_stream.append(pattern)
            for key, value in literals:
                literal_streams.setdefault(key, []).append(value)
    return pattern_stream, literal_streams


def _chunk_payload(members: Sequence[IRFunction], compress: bool) -> bytes:
    pattern_stream, literal_streams = _function_streams(members)
    streams = _pack_code_streams(pattern_stream, literal_streams)
    counts = bytearray()
    for fn in members:
        write_uvarint(counts, len(fn.forest))
    streams["counts"] = bytes(counts)
    return pack_streams(streams, compress=compress, checksums=True)


def encode_module_v3(
    module: IRModule,
    compress: bool = True,
    placement: Optional[ChunkPlacement] = None,
) -> bytes:
    """Encode ``module`` as a seekable WIR3 container.

    ``placement`` decides which functions share a chunk (default:
    :class:`~repro.container.chunking.GreedyPlacement`).  Placement
    extents are sized in decoded-address-space bytes (the span lengths),
    so the chunk cap is a bound on how much decoded code one chunk
    serves, independent of deflate luck.
    """
    normalized = [normalize_labels(fn) for fn in module.functions]
    images = [function_image(fn) for fn in normalized]
    extents = [FunctionExtent(fn.name, len(image))
               for fn, image in zip(normalized, images)]
    placement = placement or GreedyPlacement()
    groups = validate_placement(placement.place(extents), len(normalized))
    chunk_of: Dict[int, int] = {}
    for cid, members in enumerate(groups):
        for index in members:
            chunk_of[index] = cid
    chunk_blobs = [
        _chunk_payload([normalized[i] for i in members], compress)
        for members in groups
    ]

    header = bytearray()
    name_raw = module.name.encode("utf-8")
    write_uvarint(header, len(name_raw))
    header.extend(name_raw)
    _pack_globals_meta(header, module.globals)
    write_uvarint(header, len(normalized))
    for index, fn in enumerate(normalized):
        _pack_fn_header(header, fn)
        write_uvarint(header, chunk_of[index])
        write_uvarint(header, len(images[index]))
    write_uvarint(header, len(chunk_blobs))
    offset = 0
    for chunk_blob in chunk_blobs:
        write_uvarint(header, offset)
        write_uvarint(header, len(chunk_blob))
        header.extend(zlib.crc32(chunk_blob).to_bytes(4, "little"))
        offset += len(chunk_blob)

    # The header deflates like the v2 meta stream did; the CRC covers the
    # raw (decompressed) header so index corruption is caught either way.
    from ..compress import deflate

    packed_header = deflate.compress(bytes(header))
    prefix = bytearray(_MAGIC_V3)
    prefix.extend(zlib.crc32(bytes(header)).to_bytes(4, "little"))
    write_uvarint(prefix, len(packed_header))
    return bytes(prefix) + packed_header + b"".join(chunk_blobs)


def _parse_v3_header(blob: bytes, limits: ResourceLimits) -> Tuple[bytes, int]:
    """Verify the WIR3 prefix framing; returns (header, header_bytes).

    ``header_bytes`` is the chunk-area base offset — the prefix every
    partial read must hold.
    """
    from ..compress import deflate

    stored, pos = take_bytes(blob, 4, 4, "wire header CRC")
    hlen, pos = read_uvarint(blob, pos)
    limits.check("wire header size", hlen, limits.max_decoded_bytes)
    packed, pos = take_bytes(blob, pos, hlen, "wire container header")
    header = deflate.decompress(packed, limits)
    if zlib.crc32(header) != int.from_bytes(stored, "little"):
        raise CorruptStreamError("wire container header CRC mismatch")
    return header, pos


def _unpack_v3_header(
    header: bytes, limits: ResourceLimits
) -> Tuple[IRModule, List[Tuple[int, int]], List[Tuple[int, int, int]]]:
    """Parse a WIR3 header into (module skeleton, per-function
    (chunk id, span length), per-chunk (offset, length, crc32))."""
    name, pos = _read_name(header, 0, "module name")
    module = IRModule(name)
    module.globals, pos = _unpack_globals_meta(header, pos)
    nfuncs, pos = read_uvarint(header, pos)
    limits.check("function count", nfuncs, limits.max_functions)
    if nfuncs > len(header) - pos:
        raise TruncatedStreamError(
            f"header promises {nfuncs} functions, header too short")
    fn_meta: List[Tuple[int, int]] = []
    for _ in range(nfuncs):
        fn, pos = _read_fn_header(header, pos)
        chunk_id, pos = read_uvarint(header, pos)
        span_len, pos = read_uvarint(header, pos)
        module.functions.append(fn)
        fn_meta.append((chunk_id, span_len))
    nchunks, pos = read_uvarint(header, pos)
    limits.check("chunk count", nchunks, limits.max_streams)
    if nchunks * 6 > len(header) - pos:  # each chunk costs >= 6 bytes
        raise TruncatedStreamError(
            f"header promises {nchunks} chunks, header too short")
    chunk_meta: List[Tuple[int, int, int]] = []
    for _ in range(nchunks):
        offset, pos = read_uvarint(header, pos)
        length, pos = read_uvarint(header, pos)
        raw, pos = take_bytes(header, pos, 4, "chunk CRC")
        chunk_meta.append((offset, length, int.from_bytes(raw, "little")))
    for chunk_id, _ in fn_meta:
        if chunk_id >= nchunks:
            raise CorruptStreamError(
                f"function references chunk {chunk_id} of {nchunks}")
    return module, fn_meta, chunk_meta


def container_index(
    blob: bytes, limits: Optional[ResourceLimits] = None
) -> ContainerIndex:
    """Parse the block index of a WIR3 container (no chunk decoding)."""
    limits = limits or DEFAULT_LIMITS
    if _wire_version(blob) != 3:
        raise UnsupportedFormatError(
            f"{blob[:4]!r} is not a seekable (WIR3) container")
    with decode_guard("wire container index"):
        header, base = _parse_v3_header(blob, limits)
        module, fn_meta, chunk_meta = _unpack_v3_header(header, limits)
        index = ContainerIndex(
            kind="wire", version=3,
            total_bytes=base + sum(length for _, length, _ in chunk_meta),
            header_bytes=base)
        members: Dict[int, List[int]] = {}
        span = 0
        for i, (fn, (chunk_id, span_len)) in enumerate(
                zip(module.functions, fn_meta)):
            index.functions.append(
                FunctionRecord(i, fn.name, chunk_id, span, span_len))
            members.setdefault(chunk_id, []).append(i)
            span += span_len
        for cid, (offset, length, crc) in enumerate(chunk_meta):
            index.chunks.append(
                ChunkRecord(cid, base + offset, length, crc,
                            tuple(members.get(cid, ()))))
        return index


def _decode_v3_chunk(
    blob: bytes, chunk: ChunkRecord, limits: ResourceLimits
) -> Tuple[List[int], List]:
    """CRC-check and decode one chunk; returns (tree counts, trees)."""
    if chunk.offset + chunk.length > len(blob):
        raise TruncatedStreamError(
            f"chunk {chunk.index} extent [{chunk.offset}, "
            f"{chunk.offset + chunk.length}) beyond the {len(blob)}-byte "
            f"container")
    payload = blob[chunk.offset:chunk.offset + chunk.length]
    if zlib.crc32(payload) != chunk.crc32:
        raise CorruptStreamError(f"chunk {chunk.index} CRC mismatch")
    streams = unpack_streams(payload, limits=limits)
    counts_data = _required_stream(streams, "counts")
    counts: List[int] = []
    pos = 0
    while pos < len(counts_data):
        count, pos = read_uvarint(counts_data, pos)
        counts.append(count)
    if len(counts) != len(chunk.members):
        raise CorruptStreamError(
            f"chunk {chunk.index} holds {len(counts)} functions, the index "
            f"maps {len(chunk.members)} to it")
    trees = _decode_trees(streams, limits)
    if sum(counts) != len(trees):
        raise CorruptStreamError(
            f"chunk {chunk.index} promises {sum(counts)} trees but decodes "
            f"{len(trees)}")
    return counts, trees


def _decode_chunk_functions(
    blob: bytes,
    module: IRModule,
    chunk: ChunkRecord,
    limits: ResourceLimits,
) -> None:
    """Fill in the forests of one chunk's member functions, in place."""
    counts, trees = _decode_v3_chunk(blob, chunk, limits)
    cursor = 0
    for member, count in zip(chunk.members, counts):
        module.functions[member].forest.extend(trees[cursor:cursor + count])
        cursor += count


def _decode_module_v3(blob: bytes, limits: ResourceLimits) -> IRModule:
    with decode_guard("wire module"):
        header, base = _parse_v3_header(blob, limits)
        module, _, _ = _unpack_v3_header(header, limits)
    index = container_index(blob, limits)
    with decode_guard("wire module"):
        for chunk in index.chunks:
            _decode_chunk_functions(blob, module, chunk, limits)
        return module


def decode_function(
    blob: bytes, name: str, limits: Optional[ResourceLimits] = None
) -> IRFunction:
    """Decode one function by name, touching only its covering chunk.

    On a WIR3 blob this verifies the header CRC and the target chunk's
    CRC only — corruption elsewhere in the container is invisible, which
    is the isolation property the fuzz harness checks.  v1/v2 blobs fall
    back to a full decode.  The result is exactly the function a full
    :func:`decode_module` would return.
    """
    limits = limits or DEFAULT_LIMITS
    if _wire_version(blob) != 3:
        module = decode_module(blob, limits)
        for fn in module.functions:
            if fn.name == name:
                return fn
        raise CorruptStreamError(
            f"container has no function {name!r} "
            f"(have: {[f.name for f in module.functions]})")
    index = container_index(blob, limits)
    record = index.function(name)
    with decode_guard("wire module"):
        header, _ = _parse_v3_header(blob, limits)
        module, _, _ = _unpack_v3_header(header, limits)
        _decode_chunk_functions(blob, module, index.chunks[record.chunk],
                                limits)
        return module.functions[record.index]


def decode_range(
    blob: bytes, start: int, length: int,
    limits: Optional[ResourceLimits] = None,
) -> bytes:
    """Decoded-address-space bytes ``[start, start+length)``.

    Byte-identical to concatenating :func:`function_image` over a full
    :func:`decode_module` and slicing — but on a WIR3 blob only the
    chunks covering the requested span are CRC-checked and decompressed.
    Out-of-range spans clamp like a Python slice; negative arguments
    raise a typed error.
    """
    limits = limits or DEFAULT_LIMITS
    if start < 0 or length < 0:
        raise CorruptStreamError(
            f"invalid range request start={start} length={length}")
    end = start + length
    if _wire_version(blob) != 3:
        whole = b"".join(function_image(fn)
                         for fn in decode_module(blob, limits).functions)
        return whole[start:end]
    index = container_index(blob, limits)
    records = index.functions_in_span(start, length)
    with decode_guard("wire module"):
        header, _ = _parse_v3_header(blob, limits)
        module, _, _ = _unpack_v3_header(header, limits)
        for cid in sorted({record.chunk for record in records}):
            _decode_chunk_functions(blob, module, index.chunks[cid], limits)
        out = bytearray()
        for record in sorted(records, key=lambda r: r.span_start):
            image = function_image(module.functions[record.index])
            if len(image) != record.span_length:
                raise CorruptStreamError(
                    f"function {record.name!r} decodes to {len(image)} span "
                    f"bytes, the index promises {record.span_length}")
            lo = max(start, record.span_start)
            hi = min(end, record.span_start + record.span_length)
            out.extend(image[lo - record.span_start:hi - record.span_start])
        return bytes(out)
