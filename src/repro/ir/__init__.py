"""lcc-style tree IR: operators, trees, AST lowering, and dumps."""

from .dump import dump_function, dump_module, format_tree
from .lower import lower_unit, suffix_of
from .ops import OPS, Op, op
from .tree import (
    GlobalData, IRFunction, IRModule, PtrInit, ScalarInit, T, Tree,
)

__all__ = [
    "GlobalData", "IRFunction", "IRModule", "OPS", "Op", "PtrInit",
    "ScalarInit", "T", "Tree", "dump_function", "dump_module", "format_tree",
    "lower_unit", "op", "suffix_of",
]
