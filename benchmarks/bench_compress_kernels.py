"""Micro-benchmarks of the compression substrate kernels.

Not a paper table — these track the throughput of the from-scratch
primitives (deflate, Huffman, MTF, arithmetic coding) that every pipeline
stage rests on, so regressions in the substrate are visible.
"""

import random

import pytest

from repro.compress import arith, deflate
from repro.compress.huffman import decode_symbols, encode_symbols
from repro.compress.lz77 import detokenize, tokenize
from repro.compress.mtf import mtf_decode, mtf_encode


@pytest.fixture(scope="module")
def code_like_data():
    rng = random.Random(7)
    chunk = bytes(rng.randrange(256) for _ in range(64))
    return b"".join(
        chunk[: rng.randrange(16, 64)] for _ in range(300)
    )


def test_deflate_compress(benchmark, code_like_data):
    blob = benchmark(lambda: deflate.compress(code_like_data))
    assert deflate.decompress(blob) == code_like_data


def test_deflate_decompress(benchmark, code_like_data):
    blob = deflate.compress(code_like_data)
    out = benchmark(lambda: deflate.decompress(blob))
    assert out == code_like_data


def test_lz77_tokenize(benchmark, code_like_data):
    tokens = benchmark(lambda: tokenize(code_like_data))
    assert detokenize(tokens) == code_like_data


def test_huffman_roundtrip(benchmark):
    rng = random.Random(3)
    symbols = [min(63, int(rng.expovariate(0.2))) for _ in range(20_000)]

    def roundtrip():
        blob = encode_symbols(symbols, 64)
        return decode_symbols(blob)

    out = benchmark(roundtrip)
    assert out == symbols


def test_mtf_roundtrip(benchmark):
    rng = random.Random(5)
    stream = [rng.choice([4, 8, 12, 16, 20, 24]) for _ in range(20_000)]

    def roundtrip():
        indices, novel = mtf_encode(stream)
        return mtf_decode(indices, novel)

    assert benchmark(roundtrip) == stream


def test_arith_order1(benchmark):
    data = b"the quick brown fox " * 100

    def roundtrip():
        blob = arith.compress(data, order=1)
        return arith.decompress(blob, order=1)

    assert benchmark.pedantic(roundtrip, rounds=1, iterations=1) == data
