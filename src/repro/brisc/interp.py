"""Direct interpretation of BRISC images — no decompression pass.

The interpreter fetches at byte offsets inside the compressed code,
resolves the opcode byte through the Markov context tables, unpacks the
operand bytes, and executes the pattern's parts through the same
instruction semantics as the plain VM interpreter
(:meth:`repro.vm.interp.Interpreter._exec`).

Two modes:

* ``cache_decoded=False`` — true interpretation in place: every visit to a
  slot re-decodes it.  This is the configuration whose overhead the paper's
  "BRISC interpreted" column measures (they saw ~12x against native code).
* ``cache_decoded=True`` — memoize decoded slots, amortizing decode cost
  (closer to a threaded interpreter; used by tests for speed).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..errors import CorruptStreamError
from ..vm.instr import VMFunction, VMProgram
from ..vm.interp import Interpreter, VMError
from ..vm.isa import Operand
from .encode import decode_slot, parse_image, symbol_names
from .markov import CTX_BB, CTX_ENTRY, ESCAPE

__all__ = ["BriscInterpreter", "run_image"]

_Group = Tuple[Tuple[str, tuple], ...]


class BriscInterpreter(Interpreter):
    """Executes a BRISC image in place."""

    def __init__(
        self,
        image: bytes,
        memory_size: int = 1 << 20,
        max_steps: int = 50_000_000,
        stdin: str = "",
        cache_decoded: bool = True,
        count_opcodes: bool = False,
    ) -> None:
        decoded = parse_image(image)
        self._image = decoded
        self._sym_names: List[str] = symbol_names(decoded)
        shell = VMProgram("brisc", entry=decoded.entry)
        shell.globals = list(decoded.globals)
        for fn in decoded.functions:
            shell.functions.append(
                VMFunction(fn.name, frame_size=fn.frame_size,
                           param_bytes=fn.param_bytes)
            )
        self._cache_decoded = cache_decoded
        self._slot_cache: Dict[Tuple[int, int], Tuple[_Group, int, int]] = {}
        self.slots_decoded = 0
        super().__init__(shell, memory_size=memory_size, max_steps=max_steps,
                         stdin=stdin, count_opcodes=count_opcodes)

    def _resolve_function(self, fn: VMFunction):
        return []  # execution decodes from the image instead

    # -- fetch/decode --------------------------------------------------------

    def _fetch_slot(self, func: int, offset: int) -> Tuple[_Group, int, int]:
        """Decode the slot at ``offset``: (group, next_offset, pattern_id)."""
        if self._cache_decoded:
            cached = self._slot_cache.get((func, offset))
            if cached is not None:
                return cached
        fn = self._image.functions[func]
        ctx = self._context_at(func, offset)
        pattern, instrs, next_offset = decode_slot(self._image, fn, offset, ctx,
                                                    self._sym_names)
        self.slots_decoded += 1
        pid = self._pattern_id(fn, offset, ctx)
        group: List[Tuple[str, tuple]] = []
        for instr in instrs:
            ops: List[object] = []
            for kind, value in zip(instr.spec.signature, instr.operands):
                if kind is Operand.LABEL:
                    ops.append(int(str(value)[1:]))  # "L<offset>" -> offset
                elif kind is Operand.SYM:
                    ops.append(self._resolve_sym(value))
                else:
                    ops.append(value)
            group.append((instr.name, tuple(ops)))
        result = (tuple(group), next_offset, pid)
        if self._cache_decoded:
            self._slot_cache[(func, offset)] = result
        return result

    def _pattern_id(self, fn, offset: int, ctx: int) -> int:
        """The pattern id at ``offset``, with the context-table lookup
        guarded so a corrupt image raises a typed error, never a bare
        ``KeyError``/``IndexError``, even if a decode path misses a check."""
        byte = fn.code[offset]
        if byte == ESCAPE:
            return int.from_bytes(fn.code[offset + 1 : offset + 3], "little")
        table = self._image.tables.get(ctx)
        if table is None or byte >= len(table):
            raise CorruptStreamError(
                f"invalid opcode byte {byte} in context {ctx}")
        return table[byte]

    def _resolve_sym(self, value) -> Tuple[str, int]:
        name = str(value)
        if name in self._func_index:
            return ("func", self._func_index[name])
        if name in self.symbols:
            return ("data", self.symbols[name])
        raise VMError(f"undefined symbol {name!r}")

    def _context_at(self, func: int, offset: int) -> int:
        """Context for decoding at ``offset``.

        Sequential execution tracks the previous pattern id; this method is
        only called on control-transfer entry points (offset 0 or a basic
        block start), where the special contexts apply — which is exactly
        why the paper gives block beginnings their own contexts.
        """
        if offset == 0:
            return CTX_ENTRY
        fn = self._image.functions[func]
        if offset in fn.bb_offsets:
            return CTX_BB
        raise VMError(f"jump into mid-block offset {offset}")

    # -- execution -----------------------------------------------------------

    def _loop(self, func: int, pc: int) -> int:
        prev_pid: Optional[int] = None
        while True:
            if self.exit_code is not None:
                return self.exit_code
            fn = self._image.functions[func]
            if pc >= len(fn.code):
                raise VMError(f"fell off the end of {fn.name}")
            # Sequential decode can use the tracked previous pattern id
            # unless this offset begins a basic block.
            if pc == 0 or prev_pid is None or pc in fn.bb_offsets:
                group, next_pc, pid = self._fetch_slot(func, pc)
            else:
                group, next_pc, pid = self._fetch_sequential(func, pc, prev_pid)
            start_func, start_pc = func, pc
            pc = next_pc
            for name, ops in group:
                func, pc, halt = self._exec(name, ops, func, pc)
                if halt is not None:
                    return halt
            prev_pid = pid if (func == start_func and pc == next_pc) else None

    def _fetch_sequential(
        self, func: int, offset: int, prev_pid: int
    ) -> Tuple[_Group, int, int]:
        """Decode using the previous pattern's context (fall-through)."""
        if self._cache_decoded:
            cached = self._slot_cache.get((func, offset))
            if cached is not None:
                return cached
        fn = self._image.functions[func]
        pattern, instrs, next_offset = decode_slot(
            self._image, fn, offset, prev_pid, self._sym_names)
        self.slots_decoded += 1
        pid = self._pattern_id(fn, offset, prev_pid)
        group: List[Tuple[str, tuple]] = []
        for instr in instrs:
            ops: List[object] = []
            for kind, value in zip(instr.spec.signature, instr.operands):
                if kind is Operand.LABEL:
                    ops.append(int(str(value)[1:]))
                elif kind is Operand.SYM:
                    ops.append(self._resolve_sym(value))
                else:
                    ops.append(value)
            group.append((instr.name, tuple(ops)))
        result = (tuple(group), next_offset, pid)
        if self._cache_decoded:
            self._slot_cache[(func, offset)] = result
        return result


def run_image(
    image: bytes,
    entry: Optional[str] = None,
    args: Tuple[int, ...] = (),
    max_steps: int = 50_000_000,
    stdin: str = "",
    cache_decoded: bool = True,
):
    """Interpret a BRISC image to completion."""
    interp = BriscInterpreter(image, max_steps=max_steps, stdin=stdin,
                              cache_decoded=cache_decoded)
    return interp.run(entry, args)
