"""The Toolchain facade: staged compilation, caching, batch parallelism.

``Toolchain().compile(source)`` replaces the ad-hoc
``lower_unit(compile_to_ast(...))`` + ``generate_program(...)`` chains
that every entry point used to re-wire by hand.  Artifacts are
content-addressed (SHA-256 chained over source, unit name, stage name,
and stage configuration), so recompiling an unchanged unit is a cache
hit at every stage.  ``compile_many`` fans a corpus out over a process
pool with deterministic result ordering and per-unit error isolation.
"""

from __future__ import annotations

import hashlib
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, replace
from typing import (
    Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple,
)

from ..cfront import CompileError
from ..errors import CancelledWorkError
from .artifacts import Artifact, BatchItem, CompilationResult
from .cache import ArtifactCache, DiskCache, MemoryCache, TieredCache
from .config import PipelineConfig
from .stages import STAGES, resolve_stages

__all__ = ["SCHEMA_VERSION", "BuilderStats", "StageStats", "Toolchain"]

#: Bump to invalidate every cached artifact (on-disk entries included)
#: whenever a stage's output format changes incompatibly.
SCHEMA_VERSION = "2"  # "2": wire/BRISC containers grew version+CRC framing

#: Failures that mean "this host cannot run a process pool at all"
#: (sandboxes without semaphores, missing _multiprocessing, ...).
_POOL_UNAVAILABLE = (OSError, PermissionError, ImportError)


@dataclass
class StageStats:
    """Per-stage accounting across a toolchain's lifetime.

    ``replays`` counts the subset of ``runs`` served by the incremental
    delta compiler (:mod:`repro.pipeline.incremental`) instead of the
    cold stage; ``hit_rate`` is cache hits over total requests — the
    number the ``tables`` trend tracker diffs between runs.
    """

    runs: int = 0
    cache_hits: int = 0
    seconds: float = 0.0
    bytes_out: int = 0
    replays: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.runs + self.cache_hits
        return self.cache_hits / total if total else 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {"runs": self.runs, "cache_hits": self.cache_hits,
                "seconds": self.seconds, "bytes": self.bytes_out,
                "replays": self.replays,
                "hit_rate": round(self.hit_rate, 6)}


@dataclass
class BuilderStats:
    """BRISC dictionary-builder accounting across a toolchain's lifetime.

    Aggregated from the per-pass counters the brisc stage records in its
    artifact meta (cache hits contribute nothing — no build ran).
    """

    builds: int = 0
    passes: int = 0
    candidates: int = 0
    admitted: int = 0
    seconds: float = 0.0

    def note(self, meta: Dict[str, Any]) -> None:
        pass_rows = meta.get("builder_passes")
        if pass_rows is None:  # artifact predates the per-pass counters
            return
        self.builds += 1
        self.passes += len(pass_rows)
        self.candidates += sum(p["candidates"] for p in pass_rows)
        self.admitted += sum(p["admitted"] for p in pass_rows)
        self.seconds += meta.get("builder_seconds", 0.0)

    def as_dict(self) -> Dict[str, Any]:
        return {"builds": self.builds, "passes": self.passes,
                "candidates": self.candidates, "admitted": self.admitted,
                "seconds": self.seconds}


def _digest(text: str) -> str:
    return hashlib.sha256(text.encode()).hexdigest()


class Toolchain:
    """Compiles translation units through the staged pipeline.

    ``disk_cache=True`` (or a ``cache_dir``) layers an on-disk backend
    under the in-memory LRU so artifacts survive the process; a custom
    ``cache`` overrides both.
    """

    def __init__(
        self,
        config: Optional[PipelineConfig] = None,
        cache: Optional[ArtifactCache] = None,
        disk_cache: bool = False,
        cache_dir=None,
        capacity: int = 512,
    ) -> None:
        self.config = config or PipelineConfig()
        if cache is None:
            memory = MemoryCache(capacity)
            if disk_cache or cache_dir is not None:
                cache = TieredCache(memory, DiskCache(cache_dir))
            else:
                cache = memory
        self.cache = cache
        self._stats: Dict[str, StageStats] = {
            s.name: StageStats() for s in STAGES
        }
        self._builder_stats = BuilderStats()
        # Stats mutation happens on whichever thread runs the compile —
        # the service front end shares one toolchain across concurrent
        # request threads, so every counter update takes this lock.
        self._stats_lock = threading.Lock()

    # -- single-unit compilation ------------------------------------------

    def stage_keys(
        self,
        source: str,
        name: str = "<input>",
        stages: Optional[Sequence[str]] = None,
        config: Optional[PipelineConfig] = None,
    ) -> Dict[str, str]:
        """The content-addressed cache keys :meth:`compile` would use for
        ``source``, without compiling anything.  The ``tables`` command
        diffs these between runs to detect cache-key churn (a key that
        changed while the source did not)."""
        config = config or self.config
        base_key = _digest(f"{SCHEMA_VERSION}|{name}|{source}")
        keys: Dict[str, str] = {}
        for stage in resolve_stages(stages):
            parent = (base_key if stage.requires is None
                      else keys[stage.requires])
            keys[stage.name] = _digest(
                f"{parent}|{stage.name}|{stage.config_fragment(config)}")
        return keys

    def compile(
        self,
        source: str,
        name: str = "<input>",
        stages: Optional[Sequence[str]] = None,
        config: Optional[PipelineConfig] = None,
        cancel: Optional[Callable[[], bool]] = None,
        prev: Optional[CompilationResult] = None,
    ) -> CompilationResult:
        """Run ``source`` through the selected stages (all by default).

        Upstream dependencies of a requested stage run (or hit cache)
        automatically.  Raises :class:`repro.cfront.CompileError` on
        front-end errors.

        ``cancel``, when given, is polled before each stage; once it
        returns true the compile raises
        :class:`repro.errors.CancelledWorkError` instead of starting the
        next stage.  This is how the service front end makes a deadline
        actually stop pipeline work instead of merely abandoning the
        thread (already-finished stages stay cached, so a retry resumes
        where the cancelled attempt left off).

        ``prev`` — a previous :class:`CompilationResult` for the same
        unit — switches cache misses to **delta mode**: per-function
        stage outputs are derived from the previous build where the
        incremental layer can prove byte-identity, and fall back to the
        cold stage where it cannot (see
        :mod:`repro.pipeline.incremental`).  Cache keys are unchanged,
        so delta-derived artifacts are interchangeable with cold ones.
        """
        config = config or self.config
        selected = resolve_stages(stages)
        keys = self.stage_keys(source, name, stages, config)
        delta = None
        if prev is not None:
            from .incremental import DeltaCompiler

            delta = DeltaCompiler(prev, source, config)
        artifacts: Dict[str, Artifact] = {}
        for stage in selected:
            if cancel is not None and cancel():
                raise CancelledWorkError(
                    f"compile of {name!r} cancelled before stage "
                    f"{stage.name!r}")
            key = keys[stage.name]
            stats = self._stats[stage.name]
            cached = self.cache.get(key)
            if cached is not None:
                with self._stats_lock:
                    stats.cache_hits += 1
                artifacts[stage.name] = replace(cached, from_cache=True)
                continue
            upstream = (source if stage.requires is None
                        else artifacts[stage.requires].payload)
            t0 = time.perf_counter()
            derived = (delta.derive(stage, upstream, name, config)
                       if delta is not None else None)
            if derived is not None:
                payload, size, meta = derived
            else:
                payload, size, meta = stage.run(upstream, name, config)
            dt = time.perf_counter() - t0
            artifact = Artifact(stage=stage.name, unit=name, key=key,
                                payload=payload, size=size, seconds=dt,
                                meta=meta)
            with self._stats_lock:
                stats.runs += 1
                stats.seconds += dt
                stats.bytes_out += size
                if derived is not None:
                    stats.replays += 1
                if stage.name == "brisc":
                    self._builder_stats.note(meta)
            self.cache.put(key, artifact)
            artifacts[stage.name] = artifact
        return CompilationResult(unit=name, source=source,
                                 artifacts=artifacts, config=config)

    # -- corpus-level shared dictionaries ---------------------------------

    def shared_dictionary(
        self,
        units: Iterable[Tuple[str, str]],
        config: Optional[PipelineConfig] = None,
    ):
        """Build (or fetch) the corpus's shared BRISC dictionary.

        The key is content-addressed over the schema version, the brisc
        stage's configuration fragment, and every unit's name and source
        (order-independent), so it caches — and federates between
        cluster nodes — exactly like a stage artifact.  Corpus members
        compile to VM programs through the ordinary stage cache first,
        so repeated builds share the front-end work.

        Returns a :class:`repro.brisc.SharedDictionary`; pass it to
        :meth:`PipelineConfig.with_shared_dict` to warm-start unit
        compiles.
        """
        from ..brisc.shared import build_shared_dictionary

        config = config or self.config
        # The shared dictionary must not depend on (or recurse into) a
        # previously configured warm start.
        config = replace(config, brisc_shared_dict=None)
        brisc_stage = next(s for s in STAGES if s.name == "brisc")
        unit_list = sorted((str(name), source) for name, source in units)
        corpus_digest = _digest("|".join(
            f"{_digest(name)}:{_digest(source)}" for name, source in unit_list
        ))
        key = _digest(f"{SCHEMA_VERSION}|shared-dict|"
                      f"{brisc_stage.config_fragment(config)}|{corpus_digest}")
        cached = self.cache.get(key)
        stats = self._shared_dict_stats()
        if cached is not None:
            with self._stats_lock:
                stats.cache_hits += 1
            return cached.payload
        programs = [
            self.compile(source, name=name, stages=("codegen",),
                         config=config).program
            for name, source in unit_list
        ]
        t0 = time.perf_counter()
        shared, build = build_shared_dictionary(
            programs, k=config.brisc_k,
            abundant_memory=config.brisc_abundant_memory,
            max_passes=config.brisc_max_passes,
            workers=config.brisc_workers)
        dt = time.perf_counter() - t0
        size = len(shared.serialize())
        artifact = Artifact(
            stage="shared-dict", unit="<corpus>", key=key, payload=shared,
            size=size, seconds=dt,
            meta={"units": len(unit_list), "patterns": len(shared),
                  "builder_passes": [
                      {"candidates": p.candidates, "admitted": p.admitted,
                       "seconds": round(p.seconds, 6)}
                      for p in build.pass_stats],
                  "builder_seconds": round(build.seconds, 6)})
        with self._stats_lock:
            stats.runs += 1
            stats.seconds += dt
            stats.bytes_out += size
        self.cache.put(key, artifact)
        return shared

    def _shared_dict_stats(self) -> StageStats:
        """The shared-dictionary accounting row (created on first use so
        toolchains that never build one report the classic six stages)."""
        with self._stats_lock:
            return self._stats.setdefault("shared-dict", StageStats())

    def compile_file(
        self,
        path: str,
        stages: Optional[Sequence[str]] = None,
        config: Optional[PipelineConfig] = None,
    ) -> CompilationResult:
        """Read ``path`` and compile it, named after the file."""
        with open(path) as f:
            source = f.read()
        return self.compile(source, name=path, stages=stages, config=config)

    # -- batch compilation ------------------------------------------------

    def compile_many(
        self,
        units: Iterable[Tuple[str, str]],
        workers: Optional[int] = None,
        stages: Optional[Sequence[str]] = None,
        config: Optional[PipelineConfig] = None,
        timeout: Optional[float] = None,
        prev: Optional[Dict[str, CompilationResult]] = None,
    ) -> List[BatchItem]:
        """Compile ``(name, source)`` units, optionally in parallel.

        Results come back in input order regardless of completion order.
        A unit that fails with :class:`CompileError` yields a
        :class:`BatchItem` carrying the error; the rest of the batch is
        unaffected.  ``workers`` <= 1 (or ``None``) compiles serially;
        higher values use a :class:`ProcessPoolExecutor`, falling back to
        serial execution where process pools are unavailable.  Worker
        artifacts are folded back into this toolchain's cache and stats.

        Resilience: ``timeout`` bounds the seconds one unit may take in a
        worker — an overdue unit becomes an error item (``error_type``
        ``"Timeout"``) instead of stalling the batch.  If the pool dies
        underneath the batch (a worker killed by the OS), the unfinished
        units get one fresh pool; after a second death they finish on the
        serial path, which cannot enforce ``timeout``.

        ``prev`` maps unit names to their previous
        :class:`CompilationResult`; units with an entry compile in delta
        mode (see :meth:`compile`).  Delta batches always run serially —
        previous builds carry live journals and shared IR objects that
        are expensive to pickle into a pool, and a one-function edit
        rarely leaves enough cold work to amortize workers.
        """
        unit_list = [(str(name), source) for name, source in units]
        if prev is None and workers is not None and workers > 1 and unit_list:
            try:
                return self._compile_parallel(unit_list, workers, stages,
                                              config, timeout)
            except _POOL_UNAVAILABLE:
                pass  # no process support (sandbox, missing semaphores)
        return self._compile_serial(unit_list, stages, config, prev=prev)

    def _compile_serial(self, unit_list, stages, config, start: int = 0,
                        prev=None) -> List[BatchItem]:
        return [
            self._serial_item(start + i, name, source, stages, config,
                              prev=None if prev is None else prev.get(name))
            for i, (name, source) in enumerate(unit_list)
        ]

    def _serial_item(self, index, name, source, stages, config,
                     prev=None) -> BatchItem:
        t0 = time.perf_counter()
        try:
            result = self.compile(source, name=name, stages=stages,
                                  config=config, prev=prev)
            return BatchItem(index=index, unit=name, result=result,
                             seconds=time.perf_counter() - t0)
        except CompileError as exc:
            return BatchItem(index=index, unit=name, error=str(exc),
                             error_type=type(exc).__name__,
                             seconds=time.perf_counter() - t0)

    def _compile_parallel(self, unit_list, workers, stages, config,
                          timeout) -> List[BatchItem]:
        config = config or self.config
        stage_names = tuple(stages) if stages is not None else None
        items: Dict[int, BatchItem] = {}
        pending = list(enumerate(unit_list))
        # First pool, plus one fresh pool after a transient worker death or
        # a timed-out (possibly wedged) worker.
        for _ in range(2):
            if not pending:
                break
            pending = self._pool_pass(pending, workers, stage_names, config,
                                      timeout, items)
        for index, (name, source) in pending:  # degraded: finish serially
            items[index] = self._serial_item(index, name, source, stage_names,
                                             config)
        return [items[index] for index in sorted(items)]

    def _pool_pass(self, pending, workers, stage_names, config, timeout,
                   items) -> List[Tuple[int, Tuple[str, str]]]:
        """Run one pool over ``pending`` units, recording finished items.

        Returns the units still owed a result because the pool broke or a
        unit timed out (the timed-out unit itself is recorded as an error
        and not returned — its worker may be wedged for good).
        """
        remaining = dict(pending)
        pool = ProcessPoolExecutor(max_workers=workers)
        try:
            futures = {
                index: pool.submit(_compile_worker, name, source, config,
                                   stage_names)
                for index, (name, source) in pending
            }
            for index, (name, _) in pending:
                try:
                    outcome = futures[index].result(timeout=timeout)
                except FutureTimeout:
                    items[index] = BatchItem(
                        index=index, unit=name,
                        error=f"unit exceeded the {timeout}s timeout",
                        error_type="Timeout", seconds=float(timeout))
                    del remaining[index]
                    return sorted(remaining.items())
                except BrokenProcessPool:
                    return sorted(remaining.items())
                self._fold_outcome(index, name, outcome, items)
                del remaining[index]
        except BrokenProcessPool:  # died during submission
            return sorted(remaining.items())
        finally:
            pool.shutdown(wait=False, cancel_futures=True)
        return []

    def _fold_outcome(self, index, name, outcome, items) -> None:
        """Record one worker outcome, folding artifacts into our cache."""
        if outcome[0] == "ok":
            _, result, worker_stats, seconds = outcome
            for artifact in result.artifacts.values():
                if artifact.stage == "brisc" and not artifact.from_cache:
                    with self._stats_lock:
                        self._builder_stats.note(artifact.meta)
                self.cache.put(artifact.key, artifact)
            with self._stats_lock:
                for stage_name, stat in worker_stats.items():
                    mine = self._stats.setdefault(stage_name, StageStats())
                    mine.runs += stat["runs"]
                    mine.cache_hits += stat["cache_hits"]
                    mine.seconds += stat["seconds"]
                    mine.bytes_out += stat["bytes"]
                    mine.replays += stat.get("replays", 0)
            items[index] = BatchItem(index=index, unit=name, result=result,
                                     seconds=seconds)
        else:
            _, error_type, message, seconds = outcome
            items[index] = BatchItem(index=index, unit=name, error=message,
                                     error_type=error_type, seconds=seconds)

    # -- stats ------------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """Per-stage runs/hits/seconds/bytes plus cache hit counters, the
        BRISC builder's aggregated per-pass accounting, and cross-stage
        totals (with the overall hit rate CI diffs between runs)."""
        with self._stats_lock:
            runs = sum(s.runs for s in self._stats.values())
            hits = sum(s.cache_hits for s in self._stats.values())
            return {
                "stages": {
                    name: s.as_dict() for name, s in self._stats.items()
                },
                "cache": self.cache.stats(),
                "brisc_builder": self._builder_stats.as_dict(),
                "totals": {
                    "runs": runs,
                    "cache_hits": hits,
                    "replays": sum(s.replays for s in self._stats.values()),
                    "seconds": sum(s.seconds for s in self._stats.values()),
                    "hit_rate": round(hits / (runs + hits), 6)
                                if runs + hits else 0.0,
                },
            }

    def reset_stats(self) -> None:
        with self._stats_lock:
            for name in self._stats:
                self._stats[name] = StageStats()
            self._builder_stats = BuilderStats()


def _compile_worker(name: str, source: str, config: PipelineConfig,
                    stage_names: Optional[Tuple[str, ...]]):
    """Process-pool entry: compile one unit in a fresh toolchain.

    Returns a picklable tagged tuple so a unit's ``CompileError`` never
    aborts the batch (exception classes with rich constructor arguments
    do not survive the pickle round-trip reliably).
    """
    toolchain = Toolchain(config=config)
    t0 = time.perf_counter()
    try:
        result = toolchain.compile(source, name=name, stages=stage_names)
    except CompileError as exc:
        return ("error", type(exc).__name__, str(exc),
                time.perf_counter() - t0)
    stage_stats = toolchain.stats()["stages"]
    return ("ok", result, stage_stats, time.perf_counter() - t0)
