"""The small blocking client for the service front end.

One :class:`ServiceClient` holds one connection and issues framed JSON
requests sequentially (open several clients for concurrency).  A failed
request raises :class:`RemoteServiceError`, which re-exposes the
server's structured error — class name, taxonomy, ``retryable`` and
``retry_after`` — so callers branch on fields, not message strings.

Two robustness layers live here rather than in every caller:

* **transport** — the socket timeout applies to connect, send, and
  receive, so a silently dead peer surfaces as a typed, *retryable*
  :class:`~repro.errors.TruncatedStreamError` instead of a hang; any
  transport failure closes the socket, and the next request reconnects
  (every service op is idempotent — content-addressed compilation — so
  a resend after an ambiguous failure is safe);
* **retry** — ``request(..., retries=N)`` (or a client-wide default)
  retries retryable structured errors and transport errors with
  jittered exponential backoff, honoring the server's ``retry_after``
  hint as a floor.  The budget exhausted, the last error propagates
  unchanged, so callers (the CLI's exit 75, the cluster router) still
  see the structured failure.
"""

from __future__ import annotations

import base64
import socket
import time
import zlib
from random import Random
from typing import Any, Dict, List, Optional

from ..errors import DecodeError, ServiceError, TruncatedStreamError
from . import protocol

__all__ = ["RemoteServiceError", "ServiceClient"]


class RemoteServiceError(ServiceError):
    """A structured error reply from the server.

    ``error_type`` is the server-side exception class name (e.g.
    ``"DeadlineExceededError"``, ``"CorruptStreamError"``), ``taxonomy``
    the family (``service`` / ``decode`` / ``compile`` / ``internal``).
    """

    def __init__(self, error: Dict[str, Any]) -> None:
        super().__init__(error.get("message", "service error"))
        self.error_type = str(error.get("type", "unknown"))
        self.taxonomy = str(error.get("taxonomy", "unknown"))
        self.retryable = bool(error.get("retryable", False))
        self.retry_after = error.get("retry_after")

    def __str__(self) -> str:
        hint = " (retryable)" if self.retryable else ""
        return f"{self.error_type}: {super().__str__()}{hint}"


#: Transport-level failures worth a reconnect-and-retry: the peer died,
#: the connection dropped mid-frame, or the reply bytes were mangled.
_TRANSPORT_ERRORS = (DecodeError, ConnectionError, OSError)


class ServiceClient:
    """Blocking, single-connection client; usable as a context manager.

    ``retries`` sets the default retry budget for every request issued
    through this client (``request`` can override per call); ``rng``
    seeds the backoff jitter for deterministic tests.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 7117,
                 timeout: float = 30.0, retries: int = 0,
                 backoff_base: float = 0.05, backoff_max: float = 2.0,
                 rng: Optional[Random] = None) -> None:
        if retries < 0:
            raise ValueError("retries must be >= 0")
        if backoff_base <= 0 or backoff_max < backoff_base:
            raise ValueError("need 0 < backoff_base <= backoff_max")
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retries = retries
        self.backoff_base = backoff_base
        self.backoff_max = backoff_max
        self._rng = rng if rng is not None else Random()
        self._sock: Optional[socket.socket] = None
        self._next_id = 0

    def __enter__(self) -> "ServiceClient":
        self.connect()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def connect(self) -> None:
        if self._sock is None:
            self._sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout)

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None

    # -- request plumbing --------------------------------------------------

    def request(self, op: str, retries: Optional[int] = None,
                **fields: Any) -> Dict[str, Any]:
        """Send one request; return the reply's ``result`` object.

        Raises :class:`RemoteServiceError` on a structured error reply
        and :class:`repro.errors.DecodeError` when the transport itself
        misbehaves (corrupt reply frame, connection cut mid-reply, send
        or receive timed out).  ``retries`` (default: the client-wide
        budget) re-sends after retryable structured errors and after any
        transport error, sleeping a jittered exponential backoff — never
        less than the server's ``retry_after`` hint — between attempts.
        """
        budget = self.retries if retries is None else retries
        if budget < 0:
            raise ValueError("retries must be >= 0")
        attempt = 0
        while True:
            try:
                return self._request_once(op, fields)
            except RemoteServiceError as exc:
                if not exc.retryable or attempt >= budget:
                    raise
                delay = self._backoff(attempt, exc.retry_after)
            except _TRANSPORT_ERRORS:
                # _request_once already closed the socket; the next
                # attempt reconnects.  Every op is idempotent, so a
                # resend after an ambiguous failure cannot double-apply.
                if attempt >= budget:
                    raise
                delay = self._backoff(attempt, None)
            attempt += 1
            time.sleep(delay)

    def _request_once(self, op: str, fields: Dict[str, Any]) -> Dict[str, Any]:
        self.connect()
        assert self._sock is not None
        self._next_id += 1
        message = {"id": self._next_id, "op": op}
        message.update({k: v for k, v in fields.items() if v is not None})
        try:
            self._sock.sendall(protocol.encode_message(message))
            payload = protocol.read_frame_sync(self._sock)
        except socket.timeout as exc:
            # A dead-but-undetected peer: surface as a typed transport
            # error instead of letting callers hang on retry logic.
            self.close()
            raise TruncatedStreamError(
                f"timed out awaiting a reply to {op!r} after "
                f"{self.timeout}s") from exc
        except (DecodeError, OSError):
            # Corrupt reply or dropped connection: the stream can no
            # longer be trusted, so the socket must not serve the next
            # request.  close() forces a clean reconnect.
            self.close()
            raise
        if payload is None:
            # The server closed instead of replying: surface as a
            # truncated exchange so retry logic can treat it uniformly.
            self.close()
            raise TruncatedStreamError(
                f"connection closed before a reply to {op!r}")
        reply = protocol.decode_message(payload)
        if reply.get("ok"):
            return reply.get("result", {})
        raise RemoteServiceError(reply.get("error", {}))

    def _backoff(self, attempt: int, retry_after: Optional[float]) -> float:
        """Full-jitter exponential backoff, floored at the server hint."""
        cap = min(self.backoff_max, self.backoff_base * (2 ** attempt))
        delay = self._rng.uniform(0.0, cap)
        if retry_after is not None:
            delay = max(delay, float(retry_after))
        return min(delay, self.backoff_max)

    # -- convenience ops ---------------------------------------------------

    def ping(self) -> Dict[str, Any]:
        return self.request("ping")

    def ready(self) -> Dict[str, Any]:
        return self.request("ready")

    def stats(self) -> Dict[str, Any]:
        return self.request("stats")

    def shutdown(self) -> Dict[str, Any]:
        return self.request("shutdown")

    def sleep(self, seconds: float,
              deadline: Optional[float] = None,
              name: Optional[str] = None) -> Dict[str, Any]:
        return self.request("sleep", seconds=seconds, deadline=deadline,
                            name=name)

    def compile(self, source: str, name: str = "<client>",
                stages: Optional[List[str]] = None,
                deadline: Optional[float] = None) -> Dict[str, Any]:
        return self.request("compile", source=source, name=name,
                            stages=stages, deadline=deadline)

    def wire(self, source: str, name: str = "<client>",
             deadline: Optional[float] = None) -> bytes:
        result = self.request("wire", source=source, name=name,
                              deadline=deadline)
        return base64.b64decode(result["blob_b64"])

    def brisc(self, source: str, name: str = "<client>",
              deadline: Optional[float] = None) -> bytes:
        result = self.request("brisc", source=source, name=name,
                              deadline=deadline)
        return base64.b64decode(result["blob_b64"])

    def verify(self, blob: bytes,
               deadline: Optional[float] = None,
               function: Optional[str] = None) -> Dict[str, Any]:
        return self.request(
            "verify", blob_b64=base64.b64encode(blob).decode("ascii"),
            deadline=deadline, function=function)

    # -- cache federation --------------------------------------------------

    def cache_peek(self, key: str) -> Optional[int]:
        """Size of the peer's warm-store entry for ``key``, or ``None``."""
        result = self.request("cache_peek", key=key)
        return int(result["bytes"]) if result.get("present") else None

    def cache_pull(self, key: str) -> Optional[bytes]:
        """The peer's serialized artifact for ``key``, CRC-verified on
        arrival; ``None`` when absent.  A CRC mismatch (bytes damaged in
        flight) raises :class:`~repro.errors.CorruptStreamError`."""
        result = self.request("cache_pull", key=key)
        if not result.get("present"):
            return None
        blob = base64.b64decode(result["blob_b64"])
        want = int(result.get("crc32", -1))
        got = zlib.crc32(blob)
        if got != want:
            from ..errors import CorruptStreamError

            raise CorruptStreamError(
                f"cache_pull of {key[:12]}… failed its CRC: stored "
                f"{want:#010x}, computed {got:#010x}")
        return blob

    # -- demand paging -----------------------------------------------------

    def _materialize(self, result: Dict[str, Any]) -> Dict[str, Any]:
        """Decode the reply's segments and rebuild the sparse container.

        ``result["blob"]`` becomes a container of the advertised total
        size with only the fetched ranges filled in — decodable for the
        requested function/span, zero everywhere else.
        """
        from ..container import assemble_sparse

        segments = [(int(seg["offset"]), base64.b64decode(seg["b64"]))
                    for seg in result.get("segments", [])]
        result["blob"] = assemble_sparse(int(result["total_bytes"]), segments)
        return result

    def fetch_function(self, source: str, function: str,
                       name: str = "<client>", format: str = "wire",
                       chunk_bytes: Optional[int] = None,
                       deadline: Optional[float] = None) -> Dict[str, Any]:
        """Fetch only the byte ranges covering one function."""
        return self._materialize(self.request(
            "fetch_function", source=source, name=name, function=function,
            format=format, chunk_bytes=chunk_bytes, deadline=deadline))

    def fetch_range(self, source: str, start: int, length: int,
                    name: str = "<client>", format: str = "wire",
                    chunk_bytes: Optional[int] = None,
                    deadline: Optional[float] = None) -> Dict[str, Any]:
        """Fetch the byte ranges covering a decoded-address-space span."""
        return self._materialize(self.request(
            "fetch_range", source=source, name=name, start=start,
            length=length, format=format, chunk_bytes=chunk_bytes,
            deadline=deadline))
