"""Backward-compat goldens: every shipped container version still decodes.

``tests/golden/`` pins one blob per (unit, format, version) — WIR1/WIR2
wire containers and BRI1/BRI2 BRISC images for ``fib`` and ``wc`` — plus
the canonical text dump each must decode to (``*.ir.txt`` for wire,
``*.vm.txt`` for BRISC).  The seekable-v3 work refactored both decoders'
shared paths; these tests hold the old formats to byte-identical
behaviour across that and every future refactor.
"""

import pathlib

import pytest

from repro.brisc import decode_image
from repro.ir import dump_module
from repro.vm import format_function
from repro.wire import decode_function, decode_module
from repro.wire.format import _wire_version

GOLDEN = pathlib.Path(__file__).parent / "golden"

UNITS = ("fib", "wc")


def vm_dump(program) -> str:
    return "\n\n".join(format_function(fn) for fn in program.functions) + "\n"


class TestWireGoldens:
    @pytest.mark.parametrize("unit", UNITS)
    @pytest.mark.parametrize("version", (1, 2))
    def test_decodes_to_pinned_ir(self, unit, version):
        blob = (GOLDEN / f"{unit}.wir{version}").read_bytes()
        assert _wire_version(blob) == version
        dump = dump_module(decode_module(blob)) + "\n"
        assert dump == (GOLDEN / f"{unit}.ir.txt").read_text()

    @pytest.mark.parametrize("version", (1, 2))
    def test_versions_agree(self, version):
        """v1 and v2 goldens of the same unit decode identically."""
        v1 = dump_module(decode_module((GOLDEN / "wc.wir1").read_bytes()))
        vn = dump_module(decode_module(
            (GOLDEN / f"wc.wir{version}").read_bytes()))
        assert v1 == vn

    @pytest.mark.parametrize("unit", UNITS)
    def test_decode_function_on_legacy_blobs(self, unit):
        """Function-granular reads work on pre-chunking containers too
        (via a full decode under the hood)."""
        blob = (GOLDEN / f"{unit}.wir1").read_bytes()
        module = decode_module(blob)
        for fn in module.functions:
            picked = decode_function(blob, fn.name)
            assert picked.name == fn.name
            assert len(picked.forest) == len(fn.forest)


class TestBriscGoldens:
    @pytest.mark.parametrize("unit", UNITS)
    @pytest.mark.parametrize("version", (1, 2))
    def test_decodes_to_pinned_vm(self, unit, version):
        blob = (GOLDEN / f"{unit}.bri{version}").read_bytes()
        program = decode_image(blob)
        assert vm_dump(program) == (GOLDEN / f"{unit}.vm.txt").read_text()

    @pytest.mark.parametrize("unit", UNITS)
    def test_decode_function_on_legacy_images(self, unit):
        from repro.brisc.encode import decode_function as brisc_fn

        blob = (GOLDEN / f"{unit}.bri1").read_bytes()
        program = decode_image(blob)
        for fn in program.functions:
            assert brisc_fn(blob, fn.name).name == fn.name
