
int fib(int n) { if (n < 2) return n; return fib(n - 1) + fib(n - 2); }
int acc;
int main(void) {
  int i;
  for (i = 0; i < 10; i = i + 1) acc = acc + fib(i);
  print_int(acc);
  putchar('\n');
  return 0;
}
