"""AST-to-IR lowering tests, including the paper's worked example."""

import pytest

from repro.cfront import compile_to_ast
from repro.cfront.errors import CompileError
from repro.ir import dump_function, lower_unit
from repro.ir.tree import PtrInit, ScalarInit
from repro.wire.patternize import normalize_labels


def lower(src, name="m"):
    return lower_unit(compile_to_ast(src, name), name)


def forest_ops(fn):
    return [t.op.name for t in fn.forest]


class TestPaperExample:
    """The paper lowers `salt` to a specific lcc tree shape."""

    SRC = """
    int salt(int j, int i) {
        if (j > 0) {
            pepper(i, j);
            j--;
        }
        return j;
    }
    """

    def test_forest_shape(self):
        fn = lower(self.SRC).function("salt")
        names = forest_ops(fn)
        # The paper's sequence: LEI branch, two ARGIs, CALLI, the j--
        # assignment, the label, and the return.
        assert names == ["LEI", "ARGI", "ARGI", "CALLI", "ASGNI",
                         "LABELV", "RETI"]

    def test_branch_compares_against_zero(self):
        fn = lower(self.SRC).function("salt")
        branch = fn.forest[0]
        assert branch.kids[1].op.name == "CNSTI"
        assert branch.kids[1].value == 0

    def test_decrement_is_sub_of_one(self):
        fn = lower(self.SRC).function("salt")
        asgn = fn.forest[4]
        assert asgn.op.name == "ASGNI"
        sub = asgn.kids[1]
        assert sub.op.name == "SUBI"
        assert sub.kids[1].value == 1

    def test_args_precede_call(self):
        fn = lower(self.SRC).function("salt")
        names = forest_ops(fn)
        assert names.index("ARGI") < names.index("CALLI")

    def test_dump_matches_paper_notation(self):
        fn = lower(self.SRC).function("salt")
        text = dump_function(fn)
        assert "ARGI(INDIRI(ADDRFP8[" in text
        assert "CALLI(ADDRGP[pepper])" in text
        assert "SUBI(INDIRI(ADDRFP8[0]), CNSTI8[1])" in text


class TestControlFlow:
    def test_while_tests_at_bottom(self):
        fn = lower("void f(int n) { while (n) n--; }").function("f")
        names = forest_ops(fn)
        # jump to test, body label, ..., test label, conditional branch back
        assert names[0] == "JUMPV"
        assert "NEI" in names or "GTI" in names

    def test_if_else_has_two_labels(self):
        fn = lower("int f(int x) { if (x) return 1; else return 2; }") \
            .function("f")
        labels = [t for t in fn.forest if t.op.name == "LABELV"]
        assert len(labels) == 2

    def test_for_loop_structure(self):
        fn = lower("int f(void) { int s = 0;"
                   " for (int i = 0; i < 4; i++) s += i; return s; }") \
            .function("f")
        names = forest_ops(fn)
        assert "LTI" in names  # the bottom test
        assert names.count("LABELV") >= 3

    def test_break_jumps_to_end(self):
        fn = lower("void f(void) { while (1) break; }").function("f")
        assert "JUMPV" in forest_ops(fn)

    def test_switch_lowering_has_dispatch_chain(self):
        fn = lower("""
            int f(int x) {
                switch (x) {
                case 1: return 10;
                case 2: return 20;
                default: return 0;
                }
            }""").function("f")
        eqs = [t for t in fn.forest if t.op.name == "EQI"]
        assert len(eqs) == 2

    def test_logical_and_short_circuits(self):
        fn = lower("int f(int a, int b) { if (a && b) return 1; return 0; }") \
            .function("f")
        branches = [t for t in fn.forest if t.op.is_branch]
        assert len(branches) == 2  # one test per operand

    def test_missing_return_synthesized(self):
        fn = lower("int f(void) { }").function("f")
        assert fn.forest[-1].op.name == "RETI"

    def test_void_return_synthesized(self):
        fn = lower("void f(void) { }").function("f")
        assert fn.forest[-1].op.name == "RETV"


class TestExpressions:
    def test_char_load_sign_extends(self):
        fn = lower("int f(char *s) { return *s; }").function("f")
        text = dump_function(fn)
        assert "CVCI(INDIRC(" in text

    def test_unsigned_char_load_zero_extends(self):
        fn = lower("int f(unsigned char *s) { return *s; }").function("f")
        assert "CVUCI(INDIRC(" in dump_function(fn)

    def test_pointer_index_scaled(self):
        fn = lower("int f(int *a, int i) { return a[i]; }").function("f")
        text = dump_function(fn)
        assert "MULI" in text and "ADDP" in text

    def test_char_index_not_scaled(self):
        fn = lower("char f(char *a, int i) { return a[i]; }").function("f")
        assert "MULI" not in dump_function(fn)

    def test_constant_index_folds_to_offset(self):
        fn = lower("int f(int *a) { return a[3]; }").function("f")
        text = dump_function(fn)
        assert "CNSTI8[12]" in text
        assert "MULI" not in text

    def test_pointer_difference_divides(self):
        fn = lower("int f(int *a, int *b) { return a - b; }").function("f")
        text = dump_function(fn)
        assert "SUBU" in text and "DIVI" in text

    def test_struct_member_store(self):
        fn = lower("struct P { int x; int y; };"
                   "void f(struct P *p) { p->y = 1; }").function("f")
        text = dump_function(fn)
        assert "ADDP(INDIRP(ADDRFP8[0]), CNSTI8[4])" in text

    def test_struct_assignment_uses_asgnb(self):
        fn = lower("struct P { int x; int y; };"
                   "void f(struct P *a, struct P *b) { *a = *b; }") \
            .function("f")
        assert "ASGNB" in forest_ops(fn)

    def test_double_arithmetic(self):
        fn = lower("double f(double a, double b) { return a * b + 1.0; }") \
            .function("f")
        text = dump_function(fn)
        assert "MULD" in text and "ADDD" in text and "CNSTD[1.0]" in text

    def test_int_to_double_conversion(self):
        fn = lower("double f(int x) { return x; }").function("f")
        assert "CVID" in dump_function(fn)

    def test_unsigned_division(self):
        fn = lower("unsigned f(unsigned a, unsigned b) { return a / b; }") \
            .function("f")
        assert "DIVU" in forest_ops(fn)[0] or "DIVU" in dump_function(fn)

    def test_call_result_through_temp(self):
        fn = lower("int g(void); int f(void) { return g() + 1; }") \
            .function("f")
        names = forest_ops(fn)
        assert names[0] == "ASGNI"  # call captured into a temp
        assert names[-1] == "RETI"

    def test_nested_call_hoisted_before_args(self):
        fn = lower("int g(int x); int f(void) { return g(g(1)); }") \
            .function("f")
        names = forest_ops(fn)
        # inner ARG/CALL pair completes before the outer ARG appears
        first_call = names.index("ASGNI")
        assert names[:first_call].count("ARGI") == 1

    def test_conditional_value_uses_temp(self):
        fn = lower("int f(int c) { return c ? 3 : 4; }").function("f")
        names = forest_ops(fn)
        assert names.count("ASGNI") == 2

    def test_postfix_increment_preserves_old_value(self):
        fn = lower("int f(int x) { return x++; }").function("f")
        text = dump_function(fn)
        # old value saved to a temp before the update
        assert text.count("ASGNI") == 2

    def test_comma_discards_left(self):
        fn = lower("int f(int a) { return (a, 5); }").function("f")
        ret = fn.forest[-1]
        assert ret.kids[0].value == 5


class TestFramesAndGlobals:
    def test_param_offsets_sequential(self):
        fn = lower("int f(int a, int b, int c) { return a + b + c; }") \
            .function("f")
        text = dump_function(fn)
        assert "ADDRFP8[0]" in text
        assert "ADDRFP8[4]" in text
        assert "ADDRFP8[8]" in text

    def test_double_param_aligned(self):
        fn = lower("double f(int a, double d) { return d; }").function("f")
        assert fn.param_sizes == [4, 8]
        assert "ADDRFP8[8]" in dump_function(fn)

    def test_frame_size_covers_locals(self):
        fn = lower("int f(void) { int a[10]; a[0] = 1; return a[0]; }") \
            .function("f")
        assert fn.frame_size >= 40

    def test_global_scalar_init(self):
        mod = lower("int x = 42;")
        g = next(g for g in mod.globals if g.name == "x")
        assert g.items == [ScalarInit(0, 4, 42)]

    def test_global_array_init(self):
        mod = lower("int a[3] = {1, 2};")
        g = next(g for g in mod.globals if g.name == "a")
        assert ScalarInit(0, 4, 1) in g.items
        assert ScalarInit(4, 4, 2) in g.items

    def test_global_string_pointer(self):
        mod = lower('char *s = "hi";')
        g = next(g for g in mod.globals if g.name == "s")
        assert isinstance(g.items[0], PtrInit)

    def test_global_function_pointer(self):
        mod = lower("int f(int x) { return x; } int (*fp)(int) = f;")
        g = next(g for g in mod.globals if g.name == "fp")
        assert g.items == [PtrInit(0, "f")]

    def test_string_global_emitted(self):
        mod = lower('char *s = "ab";')
        strings = [g for g in mod.globals if g.is_string]
        assert strings and strings[0].size == 3

    def test_struct_valued_params_rejected(self):
        with pytest.raises(CompileError):
            lower("struct P { int x; };"
                  "int f(struct P p) { return p.x; }"
                  "int main(void) { struct P q; q.x = 1; return f(q); }")


class TestLabelNormalization:
    def test_labels_become_dense_indices(self):
        fn = lower("void f(int n) { while (n) n--; if (n) n = 1; }") \
            .function("f")
        norm = normalize_labels(fn)
        labels = [t.value for t in norm.forest if t.op.name == "LABELV"]
        assert all(label.isdigit() for label in labels)

    def test_normalization_preserves_structure(self):
        fn = lower("void f(int n) { while (n) n--; }").function("f")
        norm = normalize_labels(fn)
        assert [t.op.name for t in norm.forest] == forest_ops(fn)
