"""The paper's worked example, end to end.

Usage::

    python examples/paper_example.py

Reproduces the `salt`/`pepper` walkthrough: the lcc trees of section 3,
the patternized streams with MTF coding, the OmniVM-style RISC code of
section 4.4, the candidate specializations of `enter sp,sp,24` and
`spill.i`, the 16 combination candidates, and the cost-benefit rejection
(B = P − W < 0) that leaves a small program uncompressed.
"""

import repro
from repro.brisc import compress
from repro.brisc.builder import BriscBuilder
from repro.brisc.cost import CostModel
from repro.brisc.pattern import DictPattern, pattern_of_instr
from repro.cfront import compile_to_ast
from repro.compress.mtf import mtf_encode
from repro.ir import dump_function, lower_unit
from repro.vm.asm import format_function
from repro.wire import patternize_tree

SALT = """
int salt(int j, int i) {
    if (j > 0) {
        pepper(i, j);
        j--;
    }
    return j;
}
int pepper(int a, int b) { return a * b; }
int main(void) { return salt(3, 4); }
"""


def main() -> None:
    print("== section 3: the lcc trees ==")
    module = lower_unit(compile_to_ast(SALT, "salt"), "salt")
    print(dump_function(module.function("salt")))

    print("\n== patternized operator stream (literals -> wildcards) ==")
    for tree in module.function("salt").forest:
        pattern, literals = patternize_tree(tree)
        ops = " ".join(f"{name}{'*' if True else ''}" for name, _ in pattern)
        print(f"  {ops:60s}  literals: "
              f"{[v for _, v in literals]}")

    print("\n== MTF coding of a literal stream (the paper's [72 72 68 ...]"
          " example) ==")
    indices, novel = mtf_encode([72, 72, 68, 72, 68, 68, 68, 68])
    print(f"  stream [72 72 68 72 68 68 68 68] -> indices {indices},"
          f" novel {novel}")

    print("\n== section 4: the RISC VM code for salt ==")
    program = repro.compile_c(SALT, "salt")
    print(format_function(program.function("salt")))

    print("\n== candidate operand specializations (one field at a time) ==")
    salt = program.function("salt")
    for instr in salt.code[:3]:
        specs = pattern_of_instr(instr).specializations(instr)
        print(f"  {str(instr):28s} -> {', '.join(str(s) for s in specs)}")

    print("\n== opcode combination: the 16 pairs for instructions 1 and 2 ==")
    builder = BriscBuilder(program)
    fn = builder.slots.functions[0]
    a_set = builder._augmented_set(fn.slots[0])
    b_set = builder._augmented_set(fn.slots[1])
    print(f"  |augmented set 1| = {len(a_set)},"
          f" |augmented set 2| = {len(b_set)},"
          f" candidates = {len(a_set) * len(b_set)}")

    print("\n== the cost-benefit metric on [enter sp,*,*] ==")
    cost = CostModel()
    enter = salt.code[0]
    spec = pattern_of_instr(enter).specializations(enter)[0]
    cand = DictPattern((spec,))
    w = cost.working_set_cost(cand)
    benefit = cost.benefit(cand, bytes_saved=1)  # one occurrence, one byte
    print(f"  candidate {cand}")
    print(f"  W (avg Pentium/PPC template bytes) = {w}")
    print(f"  B = P - W = {benefit}   (negative, so it is rejected —"
          " exactly the paper's outcome)")

    print("\n== compressing the whole (small) program ==")
    cp = compress(program)
    print(f"  dictionary: {cp.build.dictionary_size} patterns"
          f" (base {cp.build.base_patterns}; nothing learned, as the paper"
          " predicts for small inputs)")
    print(f"  image: {cp.size} bytes; code segment"
          f" {cp.image.code_segment_size} bytes")
    result = repro.brisc.run_image(cp.image.blob)
    print(f"  interpreted in place: salt(3, 4) leaves j = "
          f"{result.exit_code}")


if __name__ == "__main__":
    main()
