"""BRISC instruction patterns.

A *pattern* is a VM instruction shape with some fields burned in (operand
specialization) and possibly several instructions fused (opcode
combination).  The paper's notation::

    [ld.iw *,4(sp)]          one-part pattern, two burned fields
    <[mov.i nl,n4],[mov.i nO,n2]>   two-part combined pattern

Field widths: unspecified (wildcard) fields are packed into the operand
byte stream — registers as nibbles, immediates in one of four classes
(``n4``: a nibble scaled by 4, the paper's ``-x4`` suffix; ``b``/``h``/``w``:
1/2/4 bytes), labels and symbols as 2 bytes, double immediates as 8 bytes.
A pattern fixes the width class of each wildcard, so the byte length of an
encoded instruction is fully determined by its opcode — the property that
keeps BRISC randomly addressable and directly interpretable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple, Union

from ..compress.bitio import read_uvarint, take_bytes, write_uvarint
from ..errors import CorruptStreamError, TruncatedStreamError
from ..vm.instr import Instr
from ..vm.isa import MNEMONIC, Operand, SPEC

__all__ = [
    "Field", "Wildcard", "Burned", "InsnPattern", "DictPattern",
    "pattern_of_instr", "imm_class",
]

# Wildcard width classes and their encoded sizes.
_NIBBLE_CLASSES = {"r", "f", "n4"}
_BYTE_SIZES = {"b": 1, "h": 2, "w": 4, "l": 2, "s": 2, "d": 8}

FieldValue = Union[int, float, str]


def imm_class(value: int) -> str:
    """Smallest width class holding an integer immediate."""
    if value % 4 == 0 and 0 <= value < 64:
        return "n4"
    if -128 <= value < 128:
        return "b"
    if -32768 <= value < 32768:
        return "h"
    return "w"


@dataclass(frozen=True)
class Wildcard:
    """An unspecified field: carried in the operand bytes.

    ``cls`` is one of r/f/n4/b/h/w/l/s/d.
    """

    cls: str

    def __str__(self) -> str:
        return "*" if self.cls in ("r", "f") else f"*{self.cls}"


@dataclass(frozen=True)
class Burned:
    """A specialized field: its value lives in the dictionary entry."""

    value: FieldValue

    def __str__(self) -> str:
        return str(self.value)


Field = Union[Wildcard, Burned]


def _field_kind(kind: Operand, value: FieldValue) -> str:
    if kind is Operand.REG:
        return "r"
    if kind is Operand.FREG:
        return "f"
    if kind is Operand.IMM:
        assert isinstance(value, int)
        return imm_class(value)
    if kind is Operand.LABEL:
        return "l"
    if kind is Operand.SYM:
        return "s"
    return "d"


@dataclass(frozen=True)
class InsnPattern:
    """One instruction's pattern: mnemonic + per-field spec."""

    name: str
    fields: Tuple[Field, ...]

    # The generated dataclass __hash__ re-hashes the whole field tree on
    # every dict/set lookup; the greedy builder performs millions of such
    # lookups against long-lived pattern instances, so memoize per
    # instance.  The cache never crosses process boundaries (see
    # __getstate__): str hashes are salted per interpreter.
    def __hash__(self) -> int:
        h = self.__dict__.get("_hash")
        if h is None:
            h = hash((self.name, self.fields))
            self.__dict__["_hash"] = h
        return h

    def __getstate__(self) -> dict:
        return {"name": self.name, "fields": self.fields}

    def matches(self, instr: Instr) -> bool:
        """Does ``instr`` fit this pattern (burned fields equal, wildcards
        wide enough)?"""
        if instr.name != self.name:
            return False
        spec = SPEC[self.name]
        for field, kind, value in zip(self.fields, spec.signature, instr.operands):
            if isinstance(field, Burned):
                if field.value != value:
                    return False
            else:
                if kind is Operand.IMM:
                    assert isinstance(value, int)
                    if not _class_holds(field.cls, value):
                        return False
        return True

    def wildcard_values(self, instr: Instr) -> List[Tuple[str, FieldValue]]:
        """The (class, value) pairs an encoder must emit for ``instr``."""
        out: List[Tuple[str, FieldValue]] = []
        for field, value in zip(self.fields, instr.operands):
            if isinstance(field, Wildcard):
                out.append((field.cls, value))
        return out

    def specializations(self, instr: Instr) -> List["InsnPattern"]:
        """All one-more-field-burned versions of this pattern w.r.t. the
        concrete instruction (the paper specializes one field at a time)."""
        out: List[InsnPattern] = []
        for i, field in enumerate(self.fields):
            if isinstance(field, Wildcard):
                new_fields = list(self.fields)
                new_fields[i] = Burned(instr.operands[i])
                out.append(InsnPattern(self.name, tuple(new_fields)))
        return out

    def __str__(self) -> str:
        from ..vm.isa import FREG_NAMES, REG_NAMES

        spec = SPEC[self.name]
        parts = []
        for field, kind in zip(self.fields, spec.signature):
            if isinstance(field, Burned) and kind is Operand.REG:
                parts.append(REG_NAMES[int(field.value)])
            elif isinstance(field, Burned) and kind is Operand.FREG:
                parts.append(FREG_NAMES[int(field.value)])
            else:
                parts.append(str(field))
        inner = ",".join(parts)
        return f"[{self.name} {inner}]" if inner else f"[{self.name}]"


def _class_holds(cls: str, value: int) -> bool:
    if cls == "n4":
        return value % 4 == 0 and 0 <= value < 64
    if cls == "b":
        return -128 <= value < 128
    if cls == "h":
        return -32768 <= value < 32768
    return True


def pattern_of_instr(instr: Instr) -> InsnPattern:
    """The all-wildcard base pattern of a concrete instruction."""
    spec = SPEC[instr.name]
    fields = tuple(
        Wildcard(_field_kind(kind, value))
        for kind, value in zip(spec.signature, instr.operands)
    )
    return InsnPattern(instr.name, fields)


# Value-keyed caches shared by every DictPattern instance: the greedy
# builder re-creates equal patterns constantly (one per candidate
# occurrence), so instance-level caching alone would miss the hot loop.
# Keys are the (frozen, hashable) patterns themselves; both caches are
# process-lifetime, bounded by the number of distinct patterns seen.
_ENCODED_SIZE_CACHE: dict = {}
_DICT_SIZE_CACHE: dict = {}


@dataclass(frozen=True)
class DictPattern:
    """A dictionary entry: one or more (possibly specialized) parts.

    Control-transfer instructions may appear only in the final part, so a
    taken branch never leaves a half-executed pattern and return addresses
    always point at pattern boundaries.
    """

    parts: Tuple[InsnPattern, ...]

    # Same per-instance hash memoization as InsnPattern: equal patterns
    # are re-looked-up constantly by the builder's value-keyed caches.
    def __hash__(self) -> int:
        h = self.__dict__.get("_hash")
        if h is None:
            h = hash((self.parts,))
            self.__dict__["_hash"] = h
        return h

    def __getstate__(self) -> dict:
        return {"parts": self.parts}

    def matches(self, insns: Sequence[Instr]) -> bool:
        """Does the concrete instruction sequence fit this pattern?"""
        if len(insns) != len(self.parts):
            return False
        return all(p.matches(i) for p, i in zip(self.parts, insns))

    def operand_layout(self) -> Tuple[int, List[str]]:
        """Encoded operand size in bytes and the flat wildcard class list.

        Cached per instance (the pattern is frozen, so the layout never
        changes); callers must not mutate the returned class list.
        """
        cached = self.__dict__.get("_layout")
        if cached is None:
            classes = [
                f.cls
                for part in self.parts
                for f in part.fields
                if isinstance(f, Wildcard)
            ]
            nibbles = sum(1 for c in classes if c in _NIBBLE_CLASSES)
            whole = sum(
                _BYTE_SIZES[c] for c in classes if c not in _NIBBLE_CLASSES)
            cached = ((nibbles + 1) // 2 + whole, classes)
            self.__dict__["_layout"] = cached
        return cached

    def operand_bytes(self) -> int:
        """Encoded operand size in bytes."""
        return self.operand_layout()[0]

    def encoded_size(self) -> int:
        """Size of one occurrence: opcode byte + operand bytes.

        Value-cached across instances: the builder's pair loop constructs
        a fresh ``DictPattern`` per candidate occurrence, and the same
        candidate recurs at many sites and across passes.
        """
        size = _ENCODED_SIZE_CACHE.get(self)
        if size is None:
            size = 1 + self.operand_layout()[0]
            _ENCODED_SIZE_CACHE[self] = size
        return size

    def wildcard_values(self, insns: Sequence[Instr]) -> List[Tuple[str, FieldValue]]:
        out: List[Tuple[str, FieldValue]] = []
        for part, instr in zip(self.parts, insns):
            out.extend(part.wildcard_values(instr))
        return out

    def is_control_ok(self) -> bool:
        """Control transfers only in the final part."""
        for part in self.parts[:-1]:
            if SPEC[part.name].group == "flow" or SPEC[part.name].group in (
                "branch", "brimm"
            ) or part.name == "sys":
                return False
        return True

    def dictionary_size(self) -> int:
        """Bytes this entry occupies in the transmitted dictionary.

        Value-cached like :meth:`encoded_size` (serialization is by far
        the most expensive per-candidate computation in the builder).
        """
        size = _DICT_SIZE_CACHE.get(self)
        if size is None:
            size = len(serialize_pattern(self))
            _DICT_SIZE_CACHE[self] = size
        return size

    def __str__(self) -> str:
        if len(self.parts) == 1:
            return str(self.parts[0])
        return "<" + ",".join(str(p) for p in self.parts) + ">"


# ---------------------------------------------------------------------------
# Dictionary serialization
# ---------------------------------------------------------------------------

_MNEMONIC_ID = {name: i for i, name in enumerate(MNEMONIC)}
_CLS_ID = {c: i for i, c in enumerate(("r", "f", "n4", "b", "h", "w", "l", "s", "d"))}
_CLS_BY_ID = {i: c for c, i in _CLS_ID.items()}


def serialize_pattern(pattern: DictPattern) -> bytes:
    """Serialize a dictionary entry.

    Layout: part count; per part: mnemonic id, then per field a tag byte
    (0x80 | class for wildcards, class for burned) followed by the burned
    value when present.
    """
    out = bytearray()
    write_uvarint(out, len(pattern.parts))
    for part in pattern.parts:
        write_uvarint(out, _MNEMONIC_ID[part.name])
        spec = SPEC[part.name]
        for field, kind in zip(part.fields, spec.signature):
            if isinstance(field, Wildcard):
                out.append(0x80 | _CLS_ID[field.cls])
                continue
            value = field.value
            if kind in (Operand.REG, Operand.FREG):
                out.append(0x00)
                out.append(int(value) & 0xF)
            elif kind is Operand.IMM:
                out.append(0x01)
                z = int(value)
                write_uvarint(out, (z << 1) ^ (z >> 63) if z < 0 else z << 1)
            elif kind is Operand.DIMM:
                out.append(0x02)
                import struct

                out += struct.pack("<d", float(value))
            else:  # LABEL / SYM burned as strings
                out.append(0x03)
                raw = str(value).encode("utf-8")
                write_uvarint(out, len(raw))
                out += raw
    return bytes(out)


def deserialize_pattern(data: bytes, pos: int) -> Tuple[DictPattern, int]:
    """Inverse of :func:`serialize_pattern`; returns (pattern, new_pos).

    Every field is bounds-checked: a forged mnemonic id, wildcard class,
    tag byte, or string length raises a typed :class:`DecodeError` instead
    of an ``IndexError``/``KeyError`` or a silently short slice.
    """
    import struct

    nparts, pos = read_uvarint(data, pos)
    if nparts < 1 or nparts > len(data) - pos:
        raise CorruptStreamError(f"pattern with impossible part count {nparts}")
    parts: List[InsnPattern] = []
    for _ in range(nparts):
        mid, pos = read_uvarint(data, pos)
        if mid >= len(MNEMONIC):
            raise CorruptStreamError(f"unknown mnemonic id {mid}")
        name = MNEMONIC[mid]
        spec = SPEC[name]
        fields: List[Field] = []
        for kind in spec.signature:
            if pos >= len(data):
                raise TruncatedStreamError("pattern ends before a field tag")
            tag = data[pos]
            pos += 1
            if tag & 0x80:
                cls = _CLS_BY_ID.get(tag & 0x7F)
                if cls is None:
                    raise CorruptStreamError(
                        f"unknown wildcard class id {tag & 0x7F}")
                fields.append(Wildcard(cls))
            elif tag == 0x00:
                raw, pos = take_bytes(data, pos, 1, "burned register")
                fields.append(Burned(raw[0]))
            elif tag == 0x01:
                z, pos = read_uvarint(data, pos)
                fields.append(Burned(-(z >> 1) - 1 if z & 1 else z >> 1))
            elif tag == 0x02:
                raw, pos = take_bytes(data, pos, 8, "burned double")
                fields.append(Burned(struct.unpack("<d", raw)[0]))
            elif tag == 0x03:
                n, pos = read_uvarint(data, pos)
                raw, pos = take_bytes(data, pos, n, "burned string")
                fields.append(Burned(raw.decode("utf-8")))
            else:
                raise CorruptStreamError(f"unknown field tag {tag:#x}")
        parts.append(InsnPattern(name, tuple(fields)))
    return DictPattern(tuple(parts)), pos
