"""Shared-dictionary warm starts, candidate pruning, and stage accounting.

Covers the acceptance criteria of the BRISC-bottleneck change:

* incremental candidate pruning produces a dictionary (and pass stats)
  byte-identical to the re-score-everything reference builder;
* pass statistics are identical under any worker count, and the build's
  ``seconds`` is exactly the per-pass sum;
* a shared dictionary round-trips through its wire form with a stable
  content digest, warm-starts per-unit builds (admitted right after the
  base patterns), and keeps warm-started image sizes within 1% of cold;
* the shared-dictionary artifact participates in the brisc stage's
  content-addressed cache key while ``brisc_workers`` stays excluded
  (the PR 3 invariant);
* a cold full compile reports nonzero runs for every executed stage, and
  worker stats folded into the parent keep their cache-hit counts.
"""

import pytest

import repro
from repro.brisc import SharedDictionary, build_shared_dictionary, compress
from repro.brisc.builder import build_dictionary
from repro.brisc.shared import merge_slot_programs
from repro.pipeline import STAGE_NAMES, Toolchain

SMALL = """
int sq(int x) { return x * x; }
int main(void) { print_int(sq(7)); putchar('\\n'); return 0; }
"""

#: Repetitive bodies so the greedy builder runs several passes at small k.
UNIT_A = "\n".join(
    f"int f{i}(int a, int b) {{ return a * {i} + b; }}" for i in range(40)
) + "\nint main(void) { return f1(1, 2); }"

UNIT_B = "\n".join(
    f"int g{i}(int a) {{ return (a ^ {i}) + {i}; }}" for i in range(30)
) + "\nint main(void) { return g1(4); }"


def _fingerprint(result):
    slots = [
        [(str(s.pattern), s.insns) for s in fn.slots]
        for fn in result.slots.functions
    ]
    return ([str(p) for p in result.dictionary], slots,
            result.candidates_tested, result.passes, result.base_patterns,
            [(p.candidates, p.admitted) for p in result.pass_stats])


# ---------------------------------------------------------------------------
# incremental pruning
# ---------------------------------------------------------------------------


class TestPruning:
    def test_pruned_build_matches_unpruned_reference(self):
        """Dropping below-floor candidates and re-scanning only changed
        functions must reproduce the full-rescan build exactly — same
        dictionary, same slots, same per-pass candidate counts."""
        pruned = build_dictionary(repro.compile_c(UNIT_A), k=6)
        reference = build_dictionary(repro.compile_c(UNIT_A), k=6,
                                     prune=False)
        assert pruned.passes > 1  # multi-pass, or the test proves nothing
        assert _fingerprint(pruned) == _fingerprint(reference)

    def test_pass_stats_identical_under_workers(self):
        """PassStats (and their sum, BuildResult.seconds) must not depend
        on the worker count."""
        prog = repro.compile_c(UNIT_A)
        serial = build_dictionary(prog, k=6)
        parallel = build_dictionary(prog, k=6, workers=2)
        assert [(p.candidates, p.admitted) for p in serial.pass_stats] == \
            [(p.candidates, p.admitted) for p in parallel.pass_stats]
        assert _fingerprint(serial) == _fingerprint(parallel)
        for result in (serial, parallel):
            assert result.seconds == sum(p.seconds for p in result.pass_stats)


# ---------------------------------------------------------------------------
# shared dictionaries
# ---------------------------------------------------------------------------


class TestSharedDictionary:
    @pytest.fixture(scope="class")
    def shared(self):
        programs = [repro.compile_c(UNIT_A, "a"), repro.compile_c(UNIT_B, "b")]
        shared, build = build_shared_dictionary(programs, k=6)
        assert build.passes >= 1
        return shared

    def test_corpus_build_deterministic_under_workers(self):
        """The whole-corpus build — merge, candidate scan, admission —
        must be byte-identical for any worker count, down to the shared
        dictionary's content digest and the per-pass statistics."""
        programs = [repro.compile_c(UNIT_A, "a"), repro.compile_c(UNIT_B, "b")]
        serial_dict, serial = build_shared_dictionary(programs, k=6)
        programs = [repro.compile_c(UNIT_A, "a"), repro.compile_c(UNIT_B, "b")]
        parallel_dict, parallel = build_shared_dictionary(
            programs, k=6, workers=2)
        assert serial_dict.digest == parallel_dict.digest
        assert serial_dict.serialize() == parallel_dict.serialize()
        assert _fingerprint(serial) == _fingerprint(parallel)

    def test_serialization_roundtrip_preserves_digest(self, shared):
        assert len(shared) > 0
        back = SharedDictionary.deserialize(shared.serialize())
        assert back.digest == shared.digest
        assert [str(p) for p in back.patterns] == \
            [str(p) for p in shared.patterns]

    def test_digest_tracks_content(self, shared):
        smaller = SharedDictionary(patterns=shared.patterns[:-1])
        assert smaller.digest != shared.digest

    def test_merge_keeps_every_function_in_order(self):
        a = repro.compile_c(UNIT_A, "a")
        b = repro.compile_c(UNIT_B, "b")
        merged = merge_slot_programs([a, b])
        names = [fn.name for fn in merged.functions]
        assert len(names) == len(a.functions) + len(b.functions)

    def test_warm_start_admits_after_base_patterns(self, shared):
        result = build_dictionary(repro.compile_c(UNIT_A, "a"), k=6,
                                  warm_start=shared.patterns)
        assert 0 < result.warm_patterns <= len(shared)
        warm = result.dictionary[
            result.base_patterns:result.base_patterns + result.warm_patterns]
        # The warm block is a subsequence of the shared dictionary (only
        # patterns that duplicate a base pattern are skipped).
        shared_strs = iter(str(p) for p in shared.patterns)
        for pattern in warm:
            assert any(str(pattern) == s for s in shared_strs)

    def test_warm_start_image_within_one_percent(self, shared):
        cold = compress(repro.compile_c(UNIT_A, "a"), k=6)
        warm = compress(repro.compile_c(UNIT_A, "a"), k=6,
                        warm_start=shared.patterns)
        assert warm.build.warm_patterns > 0
        # 1% with a small absolute allowance for tiny images (a couple of
        # corpus dictionary entries can exceed 1% of a 2 KB unit).
        assert abs(warm.size - cold.size) <= max(64, int(0.01 * cold.size))

    def test_no_warm_start_is_byte_identical_to_reference(self):
        """With the warm start disabled the builder output is unchanged."""
        cold = compress(repro.compile_c(UNIT_A, "a"), k=6)
        again = compress(repro.compile_c(UNIT_A, "a"), k=6, warm_start=None)
        assert again.image.blob == cold.image.blob
        assert again.build.warm_patterns == 0


# ---------------------------------------------------------------------------
# pipeline integration: cache keys and accounting
# ---------------------------------------------------------------------------


class TestSharedDictCacheKeys:
    def _shared(self, tc):
        return tc.shared_dictionary([("a.c", UNIT_A), ("b.c", UNIT_B)])

    def test_shared_dict_participates_in_brisc_key(self):
        tc = Toolchain()
        tc.compile(SMALL, name="u", stages=("brisc",))
        shared = self._shared(tc)
        config = tc.config.with_shared_dict(shared)
        res = tc.compile(SMALL, name="u", stages=("brisc",), config=config)
        # A different dictionary digest is a different artifact.
        assert not res.artifact("brisc").from_cache
        again = tc.compile(SMALL, name="u", stages=("brisc",), config=config)
        assert again.artifact("brisc").from_cache

    def test_brisc_workers_stay_excluded_with_shared_dict(self):
        """PR 3 invariant: worker count never churns the cache key, with
        or without a warm-start dictionary in the configuration."""
        tc = Toolchain()
        shared = self._shared(tc)
        config = tc.config.with_shared_dict(shared)
        tc.compile(SMALL, name="u", stages=("brisc",), config=config)
        res = tc.compile(SMALL, name="u", stages=("brisc",),
                         config=config.with_brisc(workers=2))
        assert res.artifact("brisc").from_cache

    def test_corpus_content_addresses_the_shared_dict(self):
        tc = Toolchain()
        self._shared(tc)
        stats = tc.stats()["stages"]["shared-dict"]
        assert stats["runs"] == 1 and stats["cache_hits"] == 0
        # Same corpus (either unit order) is a cache hit...
        tc.shared_dictionary([("b.c", UNIT_B), ("a.c", UNIT_A)])
        stats = tc.stats()["stages"]["shared-dict"]
        assert stats["runs"] == 1 and stats["cache_hits"] == 1
        # ...while a different corpus rebuilds.
        tc.shared_dictionary([("a.c", UNIT_A)])
        assert tc.stats()["stages"]["shared-dict"]["runs"] == 2

    def test_warm_meta_recorded_on_the_artifact(self):
        tc = Toolchain()
        shared = self._shared(tc)
        config = tc.config.with_shared_dict(shared)
        res = tc.compile(UNIT_A, name="a.c", stages=("brisc",), config=config)
        assert res.artifact("brisc").meta["builder_warm_patterns"] > 0


class TestStageAccounting:
    def test_cold_compile_reports_nonzero_runs_for_every_stage(self):
        """Regression: a cold full compile must never report a stage it
        executed as ``0 runs, 0.000s``."""
        tc = Toolchain()
        tc.compile(SMALL, name="u")  # every stage
        stages = tc.stats()["stages"]
        for name in STAGE_NAMES:
            assert stages[name]["runs"] == 1, name
            assert stages[name]["seconds"] > 0, name

    def test_shared_dict_cache_hit_charges_no_runs_or_seconds(self):
        """The pipeline_stats shared-dict row must not bill a cache-hit
        corpus build as if the dictionary were rebuilt: a hit adds one
        cache hit and nothing else."""
        tc = Toolchain()
        tc.shared_dictionary([("a.c", UNIT_A), ("b.c", UNIT_B)])
        before = tc.stats()["stages"]["shared-dict"]
        tc.shared_dictionary([("a.c", UNIT_A), ("b.c", UNIT_B)])
        after = tc.stats()["stages"]["shared-dict"]
        assert after["runs"] == before["runs"]
        assert after["seconds"] == before["seconds"]
        assert after["cache_hits"] == before["cache_hits"] + 1

    def test_brisc_cache_hit_not_charged_build_seconds(self):
        """Same pin for the brisc stage under a warm-start dictionary."""
        tc = Toolchain()
        shared = tc.shared_dictionary([("a.c", UNIT_A), ("b.c", UNIT_B)])
        config = tc.config.with_shared_dict(shared)
        tc.compile(SMALL, name="u", stages=("brisc",), config=config)
        before = tc.stats()["stages"]["brisc"]
        tc.compile(SMALL, name="u", stages=("brisc",), config=config)
        after = tc.stats()["stages"]["brisc"]
        assert after["runs"] == before["runs"]
        assert after["seconds"] == before["seconds"]
        assert after["cache_hits"] == before["cache_hits"] + 1
        assert after["hit_rate"] > before["hit_rate"]

    def test_fold_outcome_keeps_worker_cache_hits(self):
        """Worker stats folded into the parent toolchain must preserve
        cache hits, not just runs/seconds/bytes."""
        worker = Toolchain()
        worker.compile(SMALL, name="u", stages=("wire",))
        result = worker.compile(SMALL, name="u", stages=("wire",))
        parent = Toolchain()
        items = [None]
        parent._fold_outcome(
            0, "u", ("ok", result, worker.stats()["stages"], 0.01), items)
        stages = parent.stats()["stages"]
        assert stages["parse"]["runs"] == 1
        assert stages["parse"]["cache_hits"] == 1
        assert items[0].result is result
