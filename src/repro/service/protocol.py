"""The service wire protocol: length-prefixed, CRC-framed JSON messages.

One frame::

    +------+----------+---------------------+----------+
    | RSV1 | length u32 | payload (JSON, utf-8) | crc32 u32 |
    +------+----------+---------------------+----------+

``length`` counts payload bytes only; ``crc32`` covers the payload.  Both
integers are big-endian.  The framing deliberately mirrors the artifact
containers (WIR2/BRI2): a flipped bit anywhere in the payload fails the
CRC and surfaces as a typed :class:`~repro.errors.CorruptStreamError`
instead of a JSON parse crash or — worse — a silently wrong request.

Error classification drives the server's connection policy:

* :class:`CorruptStreamError` (bad CRC, undecodable JSON) — the frame was
  fully consumed, so the stream is still in sync: reply with a structured
  error and keep the connection;
* :class:`UnsupportedFormatError` (wrong magic) and
  :class:`ResourceLimitError` (length field beyond the frame bound) — the
  stream cannot be resynchronized: reply, then close;
* :class:`TruncatedStreamError` — the peer vanished mid-frame: close.

``error_payload`` maps any exception from the :mod:`repro.errors`
taxonomies (plus :class:`repro.cfront.CompileError`) to the structured
reply dict, carrying ``retryable`` / ``retry_after`` so clients can act
without parsing message strings.
"""

from __future__ import annotations

import json
import socket
import struct
import zlib
from typing import Any, Dict, Optional

from ..errors import (
    CorruptStreamError, ResourceLimitError, ServiceError,
    TruncatedStreamError, UnsupportedFormatError, decode_guard,
)

__all__ = [
    "MAGIC",
    "MAX_FRAME_BYTES",
    "decode_message",
    "encode_frame",
    "encode_message",
    "error_payload",
    "read_frame_async",
    "read_frame_sync",
    "recoverable",
]

MAGIC = b"RSV1"

#: Ceiling on one frame's payload.  Far above any real request (sources
#: are kilobytes, container blobs megabytes) while keeping a forged
#: length field from ballooning server memory.
MAX_FRAME_BYTES = 64 * 1024 * 1024

_HEADER = struct.Struct(">4sI")
_TRAILER = struct.Struct(">I")


def encode_frame(payload: bytes, max_frame: int = MAX_FRAME_BYTES) -> bytes:
    """Wrap ``payload`` in the magic + length + CRC32 frame."""
    if len(payload) > max_frame:
        raise ResourceLimitError(
            f"frame payload of {len(payload)} bytes exceeds the "
            f"{max_frame}-byte frame bound")
    return (_HEADER.pack(MAGIC, len(payload)) + payload
            + _TRAILER.pack(zlib.crc32(payload)))


def check_frame(header: bytes, max_frame: int = MAX_FRAME_BYTES) -> int:
    """Validate a frame header, returning the payload length."""
    magic, length = _HEADER.unpack(header)
    if magic != MAGIC:
        raise UnsupportedFormatError(
            f"bad frame magic {magic!r} (want {MAGIC!r})")
    if length > max_frame:
        raise ResourceLimitError(
            f"frame promises {length} bytes, above the {max_frame}-byte "
            f"frame bound")
    return length


def check_payload(payload: bytes, trailer: bytes) -> bytes:
    """Verify the CRC trailer over ``payload``."""
    (want,) = _TRAILER.unpack(trailer)
    got = zlib.crc32(payload)
    if got != want:
        raise CorruptStreamError(
            f"frame CRC mismatch: stored {want:#010x}, computed {got:#010x}")
    return payload


def encode_message(message: Dict[str, Any]) -> bytes:
    """Frame one JSON message."""
    return encode_frame(json.dumps(message, sort_keys=True).encode("utf-8"))


def decode_message(payload: bytes) -> Dict[str, Any]:
    """Parse a verified frame payload into a message dict."""
    with decode_guard("service message"):
        message = json.loads(payload.decode("utf-8"))
        if not isinstance(message, dict):
            raise CorruptStreamError(
                f"service message must be an object, got "
                f"{type(message).__name__}")
        return message


def recoverable(exc: Exception) -> bool:
    """True when the connection's framing survived ``exc`` — the frame
    was consumed in full, so the server may reply and keep reading."""
    if isinstance(exc, (TruncatedStreamError, UnsupportedFormatError,
                        ResourceLimitError)):
        return False
    return isinstance(exc, CorruptStreamError)


# ---------------------------------------------------------------------------
# Blocking reader (client side and chaos harness)
# ---------------------------------------------------------------------------


def _recv_exact(sock: socket.socket, n: int, what: str) -> bytes:
    chunks = bytearray()
    while len(chunks) < n:
        try:
            chunk = sock.recv(n - len(chunks))
        except socket.timeout as exc:
            raise TruncatedStreamError(
                f"timed out awaiting {what} ({len(chunks)}/{n} bytes)"
            ) from exc
        if not chunk:
            raise TruncatedStreamError(
                f"connection closed awaiting {what} ({len(chunks)}/{n} bytes)")
        chunks.extend(chunk)
    return bytes(chunks)


def read_frame_sync(
    sock: socket.socket, max_frame: int = MAX_FRAME_BYTES
) -> Optional[bytes]:
    """Read one frame from a blocking socket; ``None`` on clean EOF."""
    try:
        first = sock.recv(1)
    except socket.timeout as exc:
        raise TruncatedStreamError("timed out awaiting a frame") from exc
    if not first:
        return None
    header = first + _recv_exact(sock, _HEADER.size - 1, "frame header")
    length = check_frame(header, max_frame)
    payload = _recv_exact(sock, length, "frame payload")
    trailer = _recv_exact(sock, _TRAILER.size, "frame CRC")
    return check_payload(payload, trailer)


# ---------------------------------------------------------------------------
# Async reader (server connection loop and cluster router)
# ---------------------------------------------------------------------------


async def read_frame_async(reader, max_frame: int = MAX_FRAME_BYTES
                           ) -> Optional[bytes]:
    """Read one frame from an :class:`asyncio.StreamReader`; ``None`` on
    clean EOF between frames, typed errors for everything else."""
    import asyncio

    try:
        header = await reader.readexactly(_HEADER.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise TruncatedStreamError(
            f"connection closed {len(exc.partial)} bytes into a frame "
            f"header") from exc
    length = check_frame(header, max_frame)
    try:
        rest = await reader.readexactly(length + _TRAILER.size)
    except asyncio.IncompleteReadError as exc:
        raise TruncatedStreamError(
            f"connection closed mid-frame ({len(exc.partial)}/"
            f"{length + _TRAILER.size} bytes)") from exc
    return check_payload(rest[:length], rest[length:])


# ---------------------------------------------------------------------------
# Structured error replies
# ---------------------------------------------------------------------------


def error_payload(exc: Exception) -> Dict[str, Any]:
    """The structured ``error`` object for a failed request.

    ``type`` is the exception class name (stable across the taxonomies),
    ``taxonomy`` names the family, and ``retryable`` / ``retry_after``
    carry the service hierarchy's retry hints.
    """
    from ..cfront import CompileError
    from ..errors import DecodeError

    if isinstance(exc, ServiceError):
        taxonomy = "service"
    elif isinstance(exc, DecodeError):
        taxonomy = "decode"
    elif isinstance(exc, CompileError):
        taxonomy = "compile"
    else:
        taxonomy = "internal"
    payload: Dict[str, Any] = {
        "type": type(exc).__name__,
        "taxonomy": taxonomy,
        "message": str(exc),
        "retryable": bool(getattr(exc, "retryable", False)),
    }
    retry_after = getattr(exc, "retry_after", None)
    if retry_after is not None:
        payload["retry_after"] = retry_after
    return payload
