"""Move-to-front coding tests, including the paper's worked example."""

import pytest
from hypothesis import given, strategies as st

from repro.compress.mtf import MoveToFront, mtf_decode, mtf_encode


def test_paper_addrlp_stream_example():
    """The paper MTF-codes the ADDRLP stream [72 72 68 72 68 68 68 68]
    to [0 1 0 2 2 1 1 1] with 0 denoting a previously-unseen symbol."""
    indices, novel = mtf_encode([72, 72, 68, 72, 68, 68, 68, 68])
    assert indices == [0, 1, 0, 2, 2, 1, 1, 1]
    assert novel == [72, 68]


def test_decode_paper_example():
    assert mtf_decode([0, 1, 0, 2, 2, 1, 1, 1], [72, 68]) == \
        [72, 72, 68, 72, 68, 68, 68, 68]


def test_empty_stream():
    assert mtf_encode([]) == ([], [])
    assert mtf_decode([], []) == []


def test_all_distinct_symbols_are_novel():
    indices, novel = mtf_encode(["a", "b", "c"])
    assert indices == [0, 0, 0]
    assert novel == ["a", "b", "c"]


def test_repeated_symbol_stays_at_front():
    indices, novel = mtf_encode([5, 5, 5, 5])
    assert indices == [0, 1, 1, 1]
    assert novel == [5]


def test_locality_yields_small_indices():
    """A stream alternating between two symbols never needs index > 2."""
    indices, _ = mtf_encode([1, 2, 1, 2, 1, 2, 1, 2])
    assert max(indices) <= 2


def test_decode_rejects_bad_index():
    with pytest.raises(ValueError):
        mtf_decode([5], [1])


def test_decode_rejects_missing_novel():
    with pytest.raises(ValueError):
        mtf_decode([0, 0], [1])


@given(st.lists(st.integers(-1000, 1000)))
def test_mtf_roundtrip_ints(stream):
    indices, novel = mtf_encode(stream)
    assert mtf_decode(indices, novel) == stream


@given(st.lists(st.text(max_size=5)))
def test_mtf_roundtrip_strings(stream):
    indices, novel = mtf_encode(stream)
    assert mtf_decode(indices, novel) == stream


@given(st.lists(st.integers(-1000, 1000)))
def test_novel_order_is_first_appearance(stream):
    _, novel = mtf_encode(stream)
    seen = []
    for s in stream:
        if s not in seen:
            seen.append(s)
    assert novel == seen


# ---------------------------------------------------------------------------
# Equivalence against the original O(alphabet)-per-symbol implementations
# (the table-driven coders must be drop-in, index for index)
# ---------------------------------------------------------------------------


def _reference_mtf_encode(symbols):
    """The original list-walking escape-based encoder, kept as an oracle."""
    table = []
    indices = []
    novel = []
    for sym in symbols:
        if sym in table:
            idx = table.index(sym)
            indices.append(idx + 1)
            del table[idx]
        else:
            indices.append(0)
            novel.append(sym)
        table.insert(0, sym)
    return indices, novel


def _reference_classic_encode(data, alphabet_size):
    """The original ``table.index`` per-symbol fixed-alphabet transform."""
    table = list(range(alphabet_size))
    out = []
    for sym in data:
        idx = table.index(sym)
        out.append(idx)
        if idx:
            del table[idx]
            table.insert(0, sym)
    return out


@given(st.lists(st.integers(-50, 50)))
def test_encode_matches_reference(stream):
    assert mtf_encode(stream) == _reference_mtf_encode(stream)


@given(st.lists(st.sampled_from(["ADDRLP4", "INDIRI4", "CNSTI4", "ASGNI4"])))
def test_encode_matches_reference_on_symbols(stream):
    assert mtf_encode(stream) == _reference_mtf_encode(stream)


@given(st.lists(st.integers(0, 400), max_size=2000))
def test_encode_matches_reference_past_byte_table(stream):
    """Equivalence holds across the bytearray->list table spill at 256
    distinct symbols."""
    assert mtf_encode(stream) == _reference_mtf_encode(stream)


@given(st.lists(st.integers(0, 255)), st.sampled_from([16, 256, 300]))
def test_classic_encode_matches_reference(data, alphabet_size):
    data = [d % alphabet_size for d in data]
    coder = MoveToFront(alphabet_size)
    assert coder.encode(data) == _reference_classic_encode(data, alphabet_size)


class TestClassicMoveToFront:
    def test_identity_alphabet(self):
        m = MoveToFront(4)
        assert m.encode([0, 1, 2, 3]) == [0, 1, 2, 3]

    def test_repeats_become_zero(self):
        m = MoveToFront(16)
        assert m.encode([7, 7, 7]) == [7, 0, 0]

    @given(st.lists(st.integers(0, 255)))
    def test_roundtrip(self, data):
        m = MoveToFront(256)
        assert m.decode(m.encode(data)) == data

    def test_rejects_empty_alphabet(self):
        with pytest.raises(ValueError):
            MoveToFront(0)
