"""Measurement-runner tests (on the small suite input, for speed)."""


from repro.bench import (
    ablation_table, brisc_table, render_table, vm_code_bytes,
    wire_row, wire_table,
)
from repro.bench.measure import WireRow, BriscRow, AblationRow
from repro.corpus import build_input


class TestWireRow:
    def test_wc_row_fields(self):
        row = wire_row("wc")
        assert row.conventional > 0
        assert row.gzipped > 0
        assert row.wire > 0

    def test_factor_definition(self):
        row = WireRow("x", conventional=500, gzipped=200, wire=100)
        assert row.wire_factor == 5.0

    def test_cached(self):
        assert wire_row("wc") is wire_row("wc")


class TestVmCodeBytes:
    def test_nonempty_and_deterministic(self):
        inp = build_input("wc")
        a = vm_code_bytes(inp.program)
        b = vm_code_bytes(inp.program)
        assert a == b and len(a) > 0


class TestTables:
    def test_render_alignment(self):
        text = render_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")
        assert set(lines[1]) <= {"-", " "}

    def test_wire_table_renders(self):
        text = wire_table([WireRow("gcc", 1_381_304, 380_451, 287_260)])
        assert "gcc" in text and "4.81x" in text

    def test_brisc_table_renders(self):
        row = BriscRow("icc", 100, 0.54, 0.48, 2.5, 1.08, 12.0)
        text = brisc_table([row])
        assert "0.54" in text and "12.0x" in text

    def test_ablation_table_renders(self):
        rows = [
            AblationRow("RISC", 100, 54),
            AblationRow("minus both", 100, 59),
        ]
        text = ablation_table(rows)
        assert "0.54" in text and "0.59" in text
