"""Markov model tests, including context splitting.

"If more than 256 instructions can follow I, the compressor splits I into
two instruction patterns."  Real corpus inputs rarely trigger this, so the
split path is exercised with a synthetic slot program engineered to give
one pattern more than 255 distinct successors.
"""

import pytest

from repro.brisc.markov import CTX_BB, CTX_ENTRY, MarkovModel, build_markov
from repro.brisc.pattern import DictPattern, pattern_of_instr
from repro.brisc.slots import Slot, SlotFunction, SlotProgram
from repro.vm.instr import Instr


def _slot(instr, block_start=False):
    return Slot(insns=(instr,),
                pattern=DictPattern((pattern_of_instr(instr),)),
                is_block_start=block_start)


def _make_program(slots):
    fn = SlotFunction("f", slots=slots)
    fn.slots[0].is_block_start = True
    return SlotProgram("t", functions=[fn])


class TestBasics:
    def test_single_function_contexts(self):
        slots = [
            _slot(Instr("li", (0, 1))),
            _slot(Instr("mov.i", (1, 0))),
            _slot(Instr("hlt", ())),
        ]
        model, fn_ids = build_markov(_make_program(slots))
        assert CTX_ENTRY in model.tables
        # mov follows li, hlt follows mov.
        li_id = fn_ids[0][0]
        mov_id = fn_ids[0][1]
        assert model.tables[li_id] == [mov_id]

    def test_block_start_uses_bb_context(self):
        slots = [
            _slot(Instr("li", (0, 1))),
            _slot(Instr("mov.i", (1, 0)), block_start=True),
            _slot(Instr("hlt", ())),
        ]
        model, fn_ids = build_markov(_make_program(slots))
        li_id = fn_ids[0][0]
        mov_id = fn_ids[0][1]
        assert CTX_BB in model.tables
        assert mov_id in model.tables[CTX_BB]
        # li's own successor table must NOT contain mov (the bb context
        # absorbed the transition).
        assert mov_id not in model.tables.get(li_id, [])

    def test_no_splits_on_small_input(self):
        slots = [_slot(Instr("li", (0, i))) for i in range(10)]
        slots.append(_slot(Instr("hlt", ())))
        model, _ = build_markov(_make_program(slots))
        assert model.splits == 0


class TestSplitting:
    def _overflow_program(self, successors=300):
        """One 'hub' pattern followed by `successors` distinct patterns."""
        hub = Instr("mov.i", (0, 0))
        slots = []
        for i in range(successors):
            slots.append(_slot(hub))
            # Distinct successor: li with a distinct large immediate burned
            # into a fully-specialized pattern, making each unique.
            target = Instr("li", (1, 1000 + i))
            p = pattern_of_instr(target)
            for _ in range(2):
                p = p.specializations(target)[0]
            slots.append(Slot(insns=(target,), pattern=DictPattern((p,))))
        slots.append(_slot(Instr("hlt", ())))
        return _make_program(slots)

    def test_overflowing_context_is_split(self):
        program = self._overflow_program(300)
        model, fn_ids = build_markov(program)
        assert model.splits >= 1
        # Every pattern context now fits the byte limit.
        for ctx, table in model.tables.items():
            if ctx >= 0:
                assert len(table) <= 255

    def test_split_preserves_pattern_semantics(self):
        program = self._overflow_program(300)
        model, fn_ids = build_markov(program)
        # The clone points at the same DictPattern object contents.
        ids = fn_ids[0]
        hub_ids = {ids[i] for i in range(0, len(ids) - 1, 2)}
        assert len(hub_ids) >= 2  # original + clone(s) in use
        patterns = {model.patterns[i] for i in hub_ids}
        assert len(patterns) == 1  # same semantics

    def test_under_limit_not_split(self):
        program = self._overflow_program(200)
        model, _ = build_markov(program)
        assert model.splits == 0


class TestSerializationCost:
    def test_serialized_size_counts_every_entry(self):
        slots = [
            _slot(Instr("li", (0, 1))),
            _slot(Instr("mov.i", (1, 0))),
            _slot(Instr("hlt", ())),
        ]
        model, _ = build_markov(_make_program(slots))
        assert model.serialized_size() >= sum(
            2 * len(t) for t in model.tables.values())
