"""Table 2 — BRISC results (paper section "Results", K=20).

The paper's table reports, per benchmark and relative to Visual C++ 5.0
Pentium executables: BRISC size (≈ gzip size), JIT code-generation speed
(2.5 MB/s of produced Pentium code on a 120 MHz Pentium), JIT runtime
(within 1.08x of native including compile time), and interpreted runtime
(a typical 12x penalty).

Absolute numbers are not reproducible on a Python-hosted VM (the repro
band for this paper flags interpretation/JIT speeds as unfaithful); the
shape checks below assert the relations that *are* substrate-independent:
sizes ≪ native, JIT throughput ≫ interpretation throughput, interpretation
meaningfully slower than direct execution, and JIT runtime close to 1x.
"""

import pytest

from conftest import save_table
from repro.bench import brisc_row, brisc_table, compressed_suite
from repro.bench.measure import interp_overhead
from repro.brisc import run_image
from repro.jit import jit_compile

SUITE = ["wc", "lcc"]


@pytest.mark.parametrize("name", SUITE)
def test_jit_throughput(benchmark, name):
    """JIT MB/s of produced native code (the paper's 2.5 MB/s metric)."""
    cp = compressed_suite(name)
    result = benchmark(lambda: jit_compile(cp.image.blob))
    benchmark.extra_info["mb_per_second"] = result.mb_per_second
    assert result.output_bytes > 0


def test_brisc_interpretation_kernel(benchmark):
    """In-place interpretation of the compressed wc program."""
    cp = compressed_suite("wc")
    result = benchmark.pedantic(
        lambda: run_image(cp.image.blob, cache_decoded=False),
        rounds=1, iterations=1)
    assert result.exit_code == 0


def test_table2_rows(benchmark, results_dir):
    rows = benchmark.pedantic(
        lambda: [brisc_row(n) for n in SUITE], rounds=1, iterations=1)
    save_table(results_dir, "table2_brisc", brisc_table(rows))

    lcc = next(r for r in rows if r.name == "lcc")
    # Shape claim 1: BRISC is far below native size and in gzip's
    # neighbourhood (the paper: "competitive with gzip in code size").
    assert lcc.brisc_rel < 0.85
    assert lcc.brisc_rel < 3.0 * lcc.gzip_rel
    # Shape claim 2: the JIT is fast in absolute produced-bytes terms and
    # its amortized runtime is close to native (paper: 1.02-1.08x).
    assert lcc.jit_mb_per_s > 0.1
    assert lcc.jit_runtime_ratio < 2.0
    # Shape claim 3: interpretation costs real overhead over direct
    # execution of the uncompressed program (paper: ~12x vs native; here
    # measured against the plain VM interpreter on the same substrate).
    assert lcc.interp_ratio > 1.5


def test_interp_overhead_direction(benchmark):
    """The decode-every-visit interpreter must be slower than the VM."""
    vm_s, brisc_s, ratio = benchmark.pedantic(
        lambda: interp_overhead("wc"), rounds=1, iterations=1)
    assert ratio > 1.0
