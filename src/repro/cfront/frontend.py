"""Front-end driver: source text in, checked AST out."""

from __future__ import annotations

from .astnodes import TranslationUnit
from .parser import parse
from .sema import analyze

__all__ = ["compile_to_ast"]


def compile_to_ast(source: str, filename: str = "<input>") -> TranslationUnit:
    """Lex, parse, and semantically check ``source``.

    Raises :class:`repro.cfront.errors.CompileError` on any failure.
    """
    return analyze(parse(source, filename))
