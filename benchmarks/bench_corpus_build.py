"""End-to-end corpus build timing — the BRISC-bottleneck acceptance metric.

Compiling the three suite units cold through every compressed format is
dominated by the BRISC stage's greedy dictionary construction.  This
bench builds the corpus three ways through fresh (memory-cache)
toolchains and lands the rows in ``pipeline_stats.txt``:

* **cold** — every unit from source, no shared dictionary: times the
  incremental-pruning + table-driven builder on its own.
* **warm + shared-dict build** — first corpus build with a shared
  dictionary: pays the corpus-level construction once (the artifact is
  content-addressed, so it caches and federates like any stage output).
* **warm (shared cached)** — the steady state: the shared dictionary
  comes from cache and each unit's builder only scores deltas against
  the corpus patterns.

The PR 5 baseline row is the same cold measurement taken with the
pre-pruning builder (commit 416ff87) on the host that wrote the results
table; the cold build must now beat it by at least 2x.
"""

import time

from conftest import save_table

from repro.bench import render_table

#: BRISC-stage seconds for the cold corpus build with the PR 5 builder
#: (commit 416ff87: table-driven kernels, no candidate pruning, no
#: candidate interning), measured on the results-table host.
PR5_BRISC_SECONDS = 89.7

UNITS = ("wc", "lcc", "gcc")


def _corpus():
    from repro.corpus import suite_source

    return [(name, suite_source(name)) for name in UNITS]


def _build(units, warm):
    """One corpus build through a fresh toolchain; returns stats."""
    from repro.pipeline import Toolchain

    tc = Toolchain()
    t0 = time.perf_counter()
    config = tc.config
    if warm:
        config = config.with_shared_dict(tc.shared_dictionary(units))
    results = [
        tc.compile(source, name=name, stages=("wire", "brisc", "deflate"),
                   config=config)
        for name, source in units
    ]
    wall = time.perf_counter() - t0
    stages = tc.stats()["stages"]
    brisc = stages["brisc"]["seconds"] + stages.get(
        "shared-dict", {"seconds": 0.0})["seconds"]
    return tc, results, wall, brisc


def test_corpus_build_timings(results_dir, corpus_timings, fold_stage_stats):
    units = _corpus()
    cold_tc, cold_results, cold_wall, cold_brisc = _build(units, warm=False)

    warm_tc, warm_results, warm_wall, warm_brisc = _build(units, warm=True)

    # Steady state: the shared dictionary is a cache hit (fetched from
    # the warm toolchain's store), so only the per-unit warm-started
    # builders run.  A fresh toolchain keeps its unit artifacts cold.
    from repro.pipeline import Toolchain

    t0 = time.perf_counter()
    steady_tc = Toolchain()
    steady_config = steady_tc.config.with_shared_dict(
        warm_tc.shared_dictionary(units))
    steady_results = [
        steady_tc.compile(source, name=name,
                          stages=("wire", "brisc", "deflate"),
                          config=steady_config)
        for name, source in units
    ]
    steady_wall = time.perf_counter() - t0
    steady_brisc = steady_tc.stats()["stages"]["brisc"]["seconds"]

    # These builds went through private toolchains; fold their stage
    # stats into the session report so pipeline_stats.txt shows the
    # stages this bench demonstrably ran.
    for tc in (cold_tc, warm_tc, steady_tc):
        fold_stage_stats(tc.stats()["stages"])

    # Warm-started images must stay within 1% of the cold compressed
    # sizes at corpus level (the shared patterns change slot choices, not
    # quality); tiny units get a 64-byte absolute allowance because a
    # couple of corpus dictionary entries can exceed 1% of a 2 KB image.
    cold_total = sum(r.brisc.size for r in cold_results)
    warm_total = sum(r.brisc.size for r in warm_results)
    assert abs(warm_total - cold_total) <= cold_total * 0.01
    for cold_r, warm_r in zip(cold_results, warm_results):
        cold_size = cold_r.brisc.size
        assert abs(warm_r.brisc.size - cold_size) <= max(64, cold_size * 0.01)
    for warm_r, steady_r in zip(warm_results, steady_results):
        assert steady_r.brisc.image.blob == warm_r.brisc.image.blob

    rows = [
        ("cold, PR 5 builder (416ff87)", PR5_BRISC_SECONDS,
         PR5_BRISC_SECONDS, len(units)),
        ("cold", cold_wall, cold_brisc, len(units)),
        ("warm + shared-dict build", warm_wall, warm_brisc, len(units)),
        ("warm (shared cached)", steady_wall, steady_brisc, len(units)),
    ]
    corpus_timings.extend(rows)
    save_table(results_dir, "corpus_build", render_table(
        ["corpus build", "seconds", "brisc s", "units"],
        [[v, f"{w:8.2f}", f"{b:8.2f}", str(u)] for v, w, b, u in rows],
    ))

    # Tentpole acceptance: >= 2x faster than the PR 5 builder cold.
    assert cold_brisc * 2 <= PR5_BRISC_SECONDS
