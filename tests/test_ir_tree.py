"""IR tree structure and dump tests."""

import pytest

from repro.ir import OPS, T, dump_function, format_tree, op
from repro.ir.tree import IRFunction, IRModule, Tree


class TestOps:
    def test_registry_has_paper_operators(self):
        for name in ("ASGNI", "INDIRI", "ADDRLP", "ADDRGP", "ADDRFP",
                     "CNSTC", "LEI", "ARGI", "CALLI", "RETI", "LABELV",
                     "JUMPV", "SUBI", "CVCI"):
            assert name in OPS

    def test_opcodes_dense_and_stable(self):
        codes = [o.opcode for o in OPS.values()]
        assert sorted(codes) == list(range(len(OPS)))

    def test_branch_predicate(self):
        assert op("LEI").is_branch
        assert op("GEU").is_branch
        assert not op("ADDI").is_branch

    def test_unknown_op_raises(self):
        with pytest.raises(KeyError):
            op("FROB")


class TestTree:
    def test_arity_enforced(self):
        with pytest.raises(ValueError):
            T("ADDI", T("CNSTI", value=1))  # ADDI needs 2 kids

    def test_literal_required(self):
        with pytest.raises(ValueError):
            Tree(op("CNSTI"))  # missing literal

    def test_literal_forbidden(self):
        with pytest.raises(ValueError):
            Tree(op("ADDI"), (T("CNSTI", value=1), T("CNSTI", value=2)),
                 value=9)

    def test_walk_prefix_order(self):
        tree = T("ADDI", T("CNSTI", value=1),
                 T("MULI", T("CNSTI", value=2), T("CNSTI", value=3)))
        names = [n.op.name for n in tree.walk()]
        assert names == ["ADDI", "CNSTI", "MULI", "CNSTI", "CNSTI"]

    def test_size(self):
        tree = T("ADDI", T("CNSTI", value=1), T("CNSTI", value=2))
        assert tree.size == 3

    def test_equality_structural(self):
        a = T("ADDI", T("CNSTI", value=1), T("CNSTI", value=2))
        b = T("ADDI", T("CNSTI", value=1), T("CNSTI", value=2))
        assert a == b
        assert hash(a) == hash(b)


class TestDump:
    def test_width_suffix_8(self):
        assert format_tree(T("CNSTI", value=1)) == "CNSTI8[1]"

    def test_width_suffix_16(self):
        assert format_tree(T("CNSTI", value=1000)) == "CNSTI16[1000]"

    def test_no_suffix_for_wide(self):
        assert format_tree(T("CNSTI", value=100000)) == "CNSTI[100000]"

    def test_width_flags_disabled(self):
        assert format_tree(T("CNSTI", value=1), width_flags=False) == \
            "CNSTI[1]"

    def test_nested(self):
        tree = T("ASGNI", T("ADDRLP", value=72),
                 T("SUBI", T("INDIRI", T("ADDRLP", value=72)),
                   T("CNSTC", value=1)))
        assert format_tree(tree) == \
            "ASGNI(ADDRLP8[72], SUBI(INDIRI(ADDRLP8[72]), CNSTC8[1]))"

    def test_dump_function_header(self):
        fn = IRFunction("f", [T("RETV")], frame_size=8, param_sizes=[4])
        text = dump_function(fn)
        assert text.splitlines()[0] == "; f frame=8 params=[4]"


class TestModule:
    def test_function_lookup(self):
        m = IRModule("m", functions=[IRFunction("a"), IRFunction("b")])
        assert m.function("b").name == "b"
        with pytest.raises(KeyError):
            m.function("c")

    def test_node_count(self):
        fn = IRFunction("f", [T("RETI", T("CNSTI", value=1))])
        m = IRModule("m", functions=[fn])
        assert m.node_count() == 2
