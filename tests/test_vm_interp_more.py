"""Additional interpreter semantics: double branches, conversions,
block copies, frame macros, and accounting corners."""

import pytest

from repro.vm.asm import parse_function
from repro.vm.instr import VMProgram
from repro.vm.interp import Interpreter, VMError, run_program


def run_asm(body, entry="main", **kwargs):
    fn = parse_function(body, entry)
    return run_program(VMProgram("t", functions=[fn]), **kwargs)


def run_value(body, **kwargs):
    return run_asm(body + "\nhlt", **kwargs).exit_code


class TestDoubleBranches:
    def _cmp(self, op, a, b):
        return run_value(f"""
            li.d f0,{a}
            li.d f1,{b}
            {op} f0,f1,$yes
            li n0,0
            hlt
            $yes:
            li n0,1
        """)

    def test_beq(self):
        assert self._cmp("beq.d", 1.5, 1.5) == 1
        assert self._cmp("beq.d", 1.5, 1.6) == 0

    def test_bne(self):
        assert self._cmp("bne.d", 1.5, 1.6) == 1

    def test_blt_bgt(self):
        assert self._cmp("blt.d", 1.0, 2.0) == 1
        assert self._cmp("bgt.d", 1.0, 2.0) == 0

    def test_ble_bge(self):
        assert self._cmp("ble.d", 2.0, 2.0) == 1
        assert self._cmp("bge.d", 2.0, 2.0) == 1


class TestConversions:
    def test_negative_double_to_int_truncates_toward_zero(self):
        assert run_value("li.d f0,-3.99\ncvt.di n0,f0") == -3

    def test_unsigned_conversion_large(self):
        # 3e9 doesn't fit an int32 but fits a uint32.
        assert run_value("""
            li.d f0,3000000000.0
            cvt.du n1,f0
            li n2,-1294967296
            sub.i n0,n1,n2
        """) == 0

    def test_int_to_double_exact(self):
        assert run_value("""
            li n1,123456789
            cvt.id f0,n1
            cvt.di n0,f0
        """) == 123456789

    def test_unsigned_to_double(self):
        assert run_value("""
            li n1,-1
            cvt.ud f0,n1
            li.d f1,4294967295.0
            beq.d f0,f1,$ok
            li n0,0
            hlt
            $ok:
            li n0,1
        """) == 1


class TestFrameMacros:
    def test_enter_exit_restore_sp(self):
        assert run_value("""
            mov.i n1,sp
            enter sp,sp,64
            exit sp,sp,64
            sub.i n0,n1,sp
        """) == 0

    def test_spill_reload_roundtrip(self):
        assert run_value("""
            enter sp,sp,32
            li n1,777
            spill.i n1,8(sp)
            li n1,0
            reload.i n0,8(sp)
            exit sp,sp,32
        """) == 777


class TestBlockCopy:
    def test_copy_within_stack(self):
        assert run_value("""
            li n1,305419896
            st.iw n1,-32(sp)
            mov.i n2,sp
            addi.i n2,n2,-32
            mov.i n3,sp
            addi.i n3,n3,-16
            blkcpy n3,n2,4
            ld.iw n0,-16(sp)
        """) == 305419896

    def test_zero_length_copy(self):
        assert run_value("""
            mov.i n2,sp
            addi.i n2,n2,-8
            blkcpy n2,n2,0
            li n0,5
        """) == 5

    def test_copy_out_of_range_faults(self):
        with pytest.raises(VMError):
            run_value("li n1,16\nli n2,0\nblkcpy n1,n2,8")


class TestAccounting:
    def test_interpreter_reusable_state_isolated(self):
        fn = parse_function("li n0,9\nhlt", "main")
        program = VMProgram("t", functions=[fn])
        a = Interpreter(program)
        b = Interpreter(program)
        assert a.run().exit_code == 9
        assert b.steps == 0  # untouched by a's run

    def test_output_accumulates_in_order(self):
        out = run_asm("""
            li n1,72
            st.iw n1,-4(sp)
            sys 1
            li n1,105
            st.iw n1,-4(sp)
            sys 1
            hlt
        """).output
        assert out == "Hi"

    def test_memory_size_configurable(self):
        fn = parse_function("li n0,1\nhlt", "main")
        program = VMProgram("t", functions=[fn])
        interp = Interpreter(program, memory_size=1 << 16)
        assert interp.run().exit_code == 1

    def test_print_double_formats_compactly(self):
        out = run_asm("""
            li.d f0,0.5
            st.d f0,-8(sp)
            sys 7
            hlt
        """).output
        assert out == "0.5"
