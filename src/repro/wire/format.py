"""The wire format: encoder and decoder.

The paper's recipe, step for step:

1. compile to trees (done upstream in :mod:`repro.ir`);
2. patternize; one stream of operator patterns, one literal stream per
   opcode+width class;
3. move-to-front code every stream in isolation (0 = novel symbol);
4. Huffman-code the MTF indices (but not the MTF tables / novel values);
5. encode the novel values in 1/2/4-byte (or string) form and deflate every
   stream in isolation (the paper's per-stream gzip).

The container is self-describing; :func:`decode_module` reconstructs the
IR module exactly (labels are normalized to dense indices first, which is
the only — purely internal — renaming).
"""

from __future__ import annotations

import struct
from typing import Dict, List, Optional, Tuple

from ..compress import huffman
from ..compress.bitio import read_uvarint, take_bytes, write_uvarint
from ..compress.mtf import mtf_decode, mtf_encode
from ..compress.streams import pack_streams, unpack_streams
from ..errors import (
    CorruptStreamError, DEFAULT_LIMITS, ResourceLimits,
    TruncatedStreamError, UnsupportedFormatError, decode_guard,
)
from ..ir.ops import op
from ..ir.tree import GlobalData, IRFunction, IRModule, PtrInit, ScalarInit
from .patternize import (
    Pattern, _LiteralSource, normalize_labels, patternize_tree, rebuild_tree,
    unzigzag, zigzag,
)

__all__ = ["encode_module", "decode_module", "wire_size", "stream_breakdown"]

# The fourth magic byte is the container version: "WIR1" blobs (the seed
# format) carry no checksums and remain readable; "WIR2" blobs checksum
# every stream (CRC32, verified before decode).  Anything else is rejected
# with UnsupportedFormatError.
_MAGIC_PREFIX = b"WIR"
_MAGIC_V1 = b"WIR1"
_MAGIC = b"WIR2"


# ---------------------------------------------------------------------------
# Novel-value serialization (the "MTF tables", kept out of the Huffman pass)
# ---------------------------------------------------------------------------


def _pack_int_novels(values: List[int]) -> bytes:
    out = bytearray()
    for v in values:
        write_uvarint(out, zigzag(v))
    return bytes(out)


def _unpack_int_novels(data: bytes, count: int) -> List[int]:
    # Each novel costs at least one byte, so the count cannot exceed the
    # bytes available — reject forged counts before allocating.
    if count > len(data):
        raise TruncatedStreamError(
            f"novel stream promises {count} ints, only {len(data)} bytes")
    values: List[int] = []
    pos = 0
    for _ in range(count):
        z, pos = read_uvarint(data, pos)
        values.append(unzigzag(z))
    return values


def _pack_str_novels(values: List[str]) -> bytes:
    out = bytearray()
    for v in values:
        raw = v.encode("utf-8")
        write_uvarint(out, len(raw))
        out.extend(raw)
    return bytes(out)


def _unpack_str_novels(data: bytes, count: int) -> List[str]:
    if count > len(data):
        raise TruncatedStreamError(
            f"novel stream promises {count} strings, only {len(data)} bytes")
    values: List[str] = []
    pos = 0
    for _ in range(count):
        n, pos = read_uvarint(data, pos)
        DEFAULT_LIMITS.check("string novel length", n,
                             DEFAULT_LIMITS.max_name_bytes)
        raw, pos = take_bytes(data, pos, n, "string novel")
        values.append(raw.decode("utf-8"))
    return values


def _pack_float_novels(values: List[float]) -> bytes:
    return struct.pack("<%dd" % len(values), *values)


def _unpack_float_novels(data: bytes, count: int) -> List[float]:
    if count * 8 > len(data):
        raise TruncatedStreamError(
            f"novel stream promises {count} doubles, only {len(data)} bytes")
    return list(struct.unpack_from("<%dd" % count, data))


def _pack_pattern_novels(patterns: List[Pattern]) -> bytes:
    """Each pattern: uvarint length, then one byte per operator.

    Opcodes fit in 7 bits; the common width class 0 (8-bit literals and
    literal-free operators) uses the bare opcode byte, wider literals set
    the high bit and append a width byte.
    """
    out = bytearray()
    for pattern in patterns:
        write_uvarint(out, len(pattern))
        for name, width in pattern:
            opcode = op(name).opcode
            if width == 0:
                out.append(opcode)
            else:
                out.append(0x80 | opcode)
                out.append(width)
    return bytes(out)


def _unpack_pattern_novels(data: bytes, count: int) -> List[Pattern]:
    from ..ir.ops import OPS

    if count > len(data):
        raise TruncatedStreamError(
            f"novel stream promises {count} patterns, only {len(data)} bytes")
    by_opcode = {o.opcode: o.name for o in OPS.values()}
    patterns: List[Pattern] = []
    pos = 0
    for _ in range(count):
        n, pos = read_uvarint(data, pos)
        if n > len(data) - pos:
            raise TruncatedStreamError(
                f"pattern promises {n} operators, stream too short")
        syms = []
        for _ in range(n):
            if pos >= len(data):
                raise TruncatedStreamError("truncated pattern novel")
            byte = data[pos]
            pos += 1
            opcode = byte & 0x7F
            name = by_opcode.get(opcode)
            if name is None:
                raise CorruptStreamError(f"unknown opcode {opcode} in pattern")
            if byte & 0x80:
                if pos >= len(data):
                    raise TruncatedStreamError("pattern missing width byte")
                syms.append((name, data[pos]))
                pos += 1
            else:
                syms.append((name, 0))
        patterns.append(tuple(syms))
    return patterns


# ---------------------------------------------------------------------------
# MTF + Huffman per stream
# ---------------------------------------------------------------------------


def _encode_mtf_stream(values: List) -> Tuple[bytes, List]:
    """MTF+Huffman a stream; returns (index_bytes, novel_values)."""
    indices, novels = mtf_encode(values)
    alphabet = (max(indices) + 1) if indices else 1
    packed = huffman.encode_symbols(indices, alphabet)
    return packed, novels


def _decode_mtf_stream(
    index_bytes: bytes, novels: List, limits: Optional[ResourceLimits] = None
) -> List:
    indices = huffman.decode_symbols(index_bytes, limits)
    return mtf_decode(indices, novels)


# ---------------------------------------------------------------------------
# Meta stream (globals + function headers; "code segments" stay elsewhere)
# ---------------------------------------------------------------------------


def _pack_meta(module: IRModule, tree_counts: List[int]) -> bytes:
    out = bytearray()
    name_raw = module.name.encode("utf-8")
    write_uvarint(out, len(name_raw))
    out.extend(name_raw)
    write_uvarint(out, len(module.globals))
    for g in module.globals:
        raw = g.name.encode("utf-8")
        write_uvarint(out, len(raw))
        out.extend(raw)
        write_uvarint(out, g.size)
        write_uvarint(out, g.align)
        out.append(1 if g.is_string else 0)
        write_uvarint(out, len(g.items))
        for item in g.items:
            if isinstance(item, ScalarInit):
                if isinstance(item.value, float) or item.size == 8:
                    out.append(1)
                    write_uvarint(out, item.offset)
                    out.extend(struct.pack("<d", float(item.value)))
                else:
                    out.append(0)
                    write_uvarint(out, item.offset)
                    write_uvarint(out, item.size)
                    write_uvarint(out, zigzag(int(item.value)))
            else:
                out.append(2)
                write_uvarint(out, item.offset)
                raw = item.symbol.encode("utf-8")
                write_uvarint(out, len(raw))
                out.extend(raw)
    write_uvarint(out, len(module.functions))
    for fn, count in zip(module.functions, tree_counts):
        raw = fn.name.encode("utf-8")
        write_uvarint(out, len(raw))
        out.extend(raw)
        write_uvarint(out, fn.frame_size)
        out.append(ord(fn.ret_suffix))
        write_uvarint(out, len(fn.param_sizes))
        for size in fn.param_sizes:
            write_uvarint(out, size)
        write_uvarint(out, count)
    return bytes(out)


def _read_name(data: bytes, pos: int, what: str) -> Tuple[str, int]:
    n, pos = read_uvarint(data, pos)
    DEFAULT_LIMITS.check(f"{what} length", n, DEFAULT_LIMITS.max_name_bytes)
    raw, pos = take_bytes(data, pos, n, what)
    return raw.decode("utf-8"), pos


def _read_byte(data: bytes, pos: int, what: str) -> Tuple[int, int]:
    if pos >= len(data):
        raise TruncatedStreamError(f"meta stream ends before {what}")
    return data[pos], pos + 1


def _unpack_meta(
    data: bytes, limits: Optional[ResourceLimits] = None
) -> Tuple[IRModule, List[int]]:
    limits = limits or DEFAULT_LIMITS
    name, pos = _read_name(data, 0, "module name")
    module = IRModule(name)
    nglobals, pos = read_uvarint(data, pos)
    if nglobals > len(data) - pos:  # every global costs several bytes
        raise TruncatedStreamError(
            f"meta promises {nglobals} globals, stream too short")
    for _ in range(nglobals):
        name, pos = _read_name(data, pos, "global name")
        size, pos = read_uvarint(data, pos)
        align, pos = read_uvarint(data, pos)
        flag, pos = _read_byte(data, pos, "global flags")
        is_string = bool(flag)
        nitems, pos = read_uvarint(data, pos)
        if nitems > len(data) - pos:
            raise TruncatedStreamError(
                f"global {name!r} promises {nitems} items, stream too short")
        g = GlobalData(name, size, align, is_string=is_string)
        for _ in range(nitems):
            tag, pos = _read_byte(data, pos, "initializer tag")
            offset, pos = read_uvarint(data, pos)
            if tag == 0:
                isize, pos = read_uvarint(data, pos)
                z, pos = read_uvarint(data, pos)
                g.items.append(ScalarInit(offset, isize, unzigzag(z)))
            elif tag == 1:
                raw, pos = take_bytes(data, pos, 8, "double initializer")
                g.items.append(ScalarInit(offset, 8,
                                          struct.unpack("<d", raw)[0]))
            elif tag == 2:
                symbol, pos = _read_name(data, pos, "pointer symbol")
                g.items.append(PtrInit(offset, symbol))
            else:
                raise CorruptStreamError(f"unknown initializer tag {tag}")
        module.globals.append(g)
    nfuncs, pos = read_uvarint(data, pos)
    limits.check("function count", nfuncs, limits.max_functions)
    if nfuncs > len(data) - pos:
        raise TruncatedStreamError(
            f"meta promises {nfuncs} functions, stream too short")
    tree_counts: List[int] = []
    for _ in range(nfuncs):
        name, pos = _read_name(data, pos, "function name")
        frame_size, pos = read_uvarint(data, pos)
        suffix_byte, pos = _read_byte(data, pos, "return suffix")
        ret_suffix = chr(suffix_byte)
        nparams, pos = read_uvarint(data, pos)
        if nparams > len(data) - pos:
            raise TruncatedStreamError(
                f"function {name!r} promises {nparams} params, "
                "stream too short")
        params = []
        for _ in range(nparams):
            size, pos = read_uvarint(data, pos)
            params.append(size)
        count, pos = read_uvarint(data, pos)
        module.functions.append(
            IRFunction(name, [], frame_size, params, ret_suffix)
        )
        tree_counts.append(count)
    return module, tree_counts


# ---------------------------------------------------------------------------
# Public API
# ---------------------------------------------------------------------------


def _collect_streams(module: IRModule) -> Tuple[
    List[Pattern], Dict[str, List], List[int], IRModule
]:
    """Patternize the whole module.

    Returns (pattern stream, literal streams, per-function tree counts,
    label-normalized module).
    """
    normalized = IRModule(module.name, list(module.globals), [])
    pattern_stream: List[Pattern] = []
    literal_streams: Dict[str, List] = {}
    tree_counts: List[int] = []
    for fn in module.functions:
        fn = normalize_labels(fn)
        normalized.functions.append(fn)
        tree_counts.append(len(fn.forest))
        for tree in fn.forest:
            pattern, literals = patternize_tree(tree)
            pattern_stream.append(pattern)
            for key, value in literals:
                literal_streams.setdefault(key, []).append(value)
    return pattern_stream, literal_streams, tree_counts, normalized


def _stream_kind(key: str) -> str:
    """Literal kind of a stream key: int, label, sym, or float."""
    base = key.rstrip("0123456789")
    kind = op(base).literal if base in _op_names() else "int"
    return kind


def _op_names():
    from ..ir.ops import OPS

    return OPS


def encode_module(module: IRModule, compress: bool = True) -> bytes:
    """Encode ``module`` into the wire format (WIR2: per-stream CRC32)."""
    pattern_stream, literal_streams, tree_counts, normalized = (
        _collect_streams(module)
    )
    streams: Dict[str, bytes] = {}
    streams["meta"] = _pack_meta(normalized, tree_counts)

    idx_bytes, novel_patterns = _encode_mtf_stream(pattern_stream)
    streams["patterns.idx"] = idx_bytes
    novel_blob = bytearray()
    write_uvarint(novel_blob, len(novel_patterns))
    novel_blob.extend(_pack_pattern_novels(novel_patterns))
    streams["patterns.new"] = bytes(novel_blob)

    # Symbol names referenced by ADDRGP streams go into a shared symbol
    # table (like the baseline's external symbol table); the code streams
    # carry small indices.
    symtab: List[str] = []
    sym_index: Dict[str, int] = {}
    for key, values in literal_streams.items():
        kind = _stream_kind(key)
        if kind == "label":
            values = [int(v) for v in values]
            kind = "int"
        elif kind == "sym":
            indexed = []
            for name in values:
                idx = sym_index.get(name)
                if idx is None:
                    idx = sym_index[name] = len(symtab)
                    symtab.append(name)
                indexed.append(idx)
            values = indexed
            kind = "int"
        idx_bytes, novels = _encode_mtf_stream(values)
        streams[f"lit.{key}.idx"] = idx_bytes
        blob = bytearray()
        write_uvarint(blob, len(novels))
        if kind == "int":
            blob.extend(_pack_int_novels(novels))
        else:  # float
            blob.extend(_pack_float_novels(novels))
        streams[f"lit.{key}.new"] = bytes(blob)

    blob = bytearray()
    write_uvarint(blob, len(symtab))
    blob.extend(_pack_str_novels(symtab))
    streams["symtab"] = bytes(blob)

    return _MAGIC + pack_streams(streams, compress=compress, checksums=True)


def _container_streams(
    blob: bytes, limits: Optional[ResourceLimits] = None
) -> Dict[str, bytes]:
    """Validate the magic/version and unpack the stream container.

    ``WIR1`` (the seed format, no checksums) and ``WIR2`` (per-stream
    CRC32) both decode; any other magic or version raises
    :class:`~repro.errors.UnsupportedFormatError`.
    """
    if len(blob) < 4 or blob[:3] != _MAGIC_PREFIX:
        raise UnsupportedFormatError("not a wire-format blob")
    if blob[3:4] not in (b"1", b"2"):
        raise UnsupportedFormatError(
            f"wire container version {blob[3:4]!r} is not supported")
    return unpack_streams(blob[4:], limits=limits)


def _required_stream(streams: Dict[str, bytes], name: str) -> bytes:
    data = streams.get(name)
    if data is None:
        raise CorruptStreamError(f"container is missing the {name!r} stream")
    return data


def decode_module(
    blob: bytes, limits: Optional[ResourceLimits] = None
) -> IRModule:
    """Decode a wire blob back into an IR module.

    Every count, index, and length is validated against the remaining
    input and against ``limits``; malformed blobs raise a typed
    :class:`~repro.errors.DecodeError` subclass, never an untyped
    exception.
    """
    limits = limits or DEFAULT_LIMITS
    streams = _container_streams(blob, limits)
    with decode_guard("wire module"):
        module, tree_counts = _unpack_meta(
            _required_stream(streams, "meta"), limits)

        novel_data = _required_stream(streams, "patterns.new")
        count, pos = read_uvarint(novel_data, 0)
        novel_patterns = _unpack_pattern_novels(novel_data[pos:], count)
        pattern_stream = _decode_mtf_stream(
            _required_stream(streams, "patterns.idx"), novel_patterns, limits)

        symtab_blob = _required_stream(streams, "symtab")
        count, pos = read_uvarint(symtab_blob, 0)
        symtab = _unpack_str_novels(symtab_blob[pos:], count)

        literal_streams: Dict[str, List] = {}
        for name in streams:
            if not name.startswith("lit.") or not name.endswith(".idx"):
                continue
            key = name[4:-4]
            kind = _stream_kind(key)
            novel_blob = _required_stream(streams, f"lit.{key}.new")
            count, pos = read_uvarint(novel_blob, 0)
            if kind in ("label", "int", "sym"):
                novels: List = _unpack_int_novels(novel_blob[pos:], count)
            else:
                novels = _unpack_float_novels(novel_blob[pos:], count)
            values = _decode_mtf_stream(streams[name], novels, limits)
            if kind == "label":
                values = [str(v) for v in values]
            elif kind == "sym":
                resolved = []
                for v in values:
                    if not isinstance(v, int) or not 0 <= v < len(symtab):
                        raise CorruptStreamError(
                            f"symbol index {v!r} outside the symbol table")
                    resolved.append(symtab[v])
                values = resolved
            literal_streams[key] = values

        if sum(tree_counts) != len(pattern_stream):
            raise CorruptStreamError(
                f"function headers promise {sum(tree_counts)} trees but the "
                f"pattern stream holds {len(pattern_stream)}")
        source = _LiteralSource(literal_streams)
        cursor = 0
        for fn, count in zip(module.functions, tree_counts):
            for _ in range(count):
                fn.forest.append(rebuild_tree(pattern_stream[cursor], source))
                cursor += 1
        return module


def wire_size(module: IRModule, code_only: bool = False) -> int:
    """Size in bytes of the wire encoding of ``module``.

    With ``code_only`` the meta stream (global data images, symbol names,
    function headers) is excluded — the paper "compresses only code
    segments", and its conventional-code baseline carries no symbol table
    either, so Table-1 comparisons use this metric.
    """
    blob = encode_module(module)
    if not code_only:
        return len(blob)
    streams = unpack_streams(blob[4:])
    without_meta = pack_streams(
        {k: v for k, v in streams.items() if k not in ("meta", "symtab")},
        checksums=True)
    return 4 + len(without_meta)


def stream_breakdown(module: IRModule) -> Dict[str, int]:
    """Per-stream compressed sizes (for size-analysis reports)."""
    pattern_stream, literal_streams, tree_counts, normalized = (
        _collect_streams(module)
    )
    blob = encode_module(module)
    streams = unpack_streams(blob[4:])
    from ..compress import deflate

    return {name: len(deflate.compress(data)) for name, data in streams.items()}
