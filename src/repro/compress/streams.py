"""Multi-stream container used by the wire format.

The paper's central trick is to "divide the stream of code into several
smaller streams, one holding the operators and one holding the literal
operands for each operator", compressing each in isolation so the LZ stage
sees homogeneous data.  This container frames a set of named byte streams
and optionally runs each through the deflate-like compressor.

Layout (all integers LEB128):

    count
    repeat count times:
        name_len, name (utf-8), flags, [crc32 (4 bytes LE, when flag 2)],
        payload_len, payload

Flag 1 marks a deflate-compressed payload; flag 2 marks a CRC32 of the
*stored* payload bytes, verified before any decompression, so a flipped
bit in transit is reported as :class:`~repro.errors.CorruptStreamError`
up front rather than surfacing mid-Huffman-rebuild.  Flag 4 marks an
arithmetic-coded payload (the ``codec="arith"`` ratio-over-speed knob);
the flag rides with each stream, so readers decode mixed containers
without out-of-band configuration.  Readers accept both checksummed and
legacy (CRC-less) entries.
"""

from __future__ import annotations

import zlib
from typing import Dict, Mapping, Optional, Tuple

from ..errors import (
    CorruptStreamError, DEFAULT_LIMITS, ResourceLimits, TruncatedStreamError,
    decode_guard,
)
from . import deflate
from .bitio import read_uvarint, take_bytes, write_uvarint

__all__ = ["pack_streams", "unpack_streams", "stream_sizes"]

_FLAG_DEFLATE = 1
_FLAG_CRC32 = 2
_FLAG_ARITH = 4


def pack_streams(
    streams: Mapping[str, bytes],
    compress: bool = True,
    checksums: bool = False,
    codec: str = "deflate",
) -> bytes:
    """Serialize named byte streams, compressing each in isolation.

    When ``compress`` is true each stream is run through ``codec``
    (``"deflate"`` or the order-1 adaptive arithmetic coder, ``"arith"``)
    unless the compressed form would be larger (tiny streams), in which
    case it is stored raw — the flag byte records which happened.
    ``checksums`` appends a CRC32 per stream (4 bytes each) so the
    receiver can detect corruption before decoding.
    """
    if codec not in ("deflate", "arith"):
        raise ValueError(f"unknown stream codec {codec!r}")
    out = bytearray()
    write_uvarint(out, len(streams))
    for name in sorted(streams):
        payload = streams[name]
        flags = 0
        if compress:
            if codec == "arith":
                from . import arith

                packed = arith.compress(payload, order=1)
                codec_flag = _FLAG_ARITH
            else:
                packed = deflate.compress(payload)
                codec_flag = _FLAG_DEFLATE
            if len(packed) < len(payload):
                payload = packed
                flags = codec_flag
        if checksums:
            flags |= _FLAG_CRC32
        raw_name = name.encode("utf-8")
        write_uvarint(out, len(raw_name))
        out.extend(raw_name)
        out.append(flags)
        if checksums:
            out.extend(zlib.crc32(payload).to_bytes(4, "little"))
        write_uvarint(out, len(payload))
        out.extend(payload)
    return bytes(out)


def unpack_streams(
    blob: bytes, limits: Optional[ResourceLimits] = None
) -> Dict[str, bytes]:
    """Invert :func:`pack_streams`, validating every count and checksum.

    Raises a typed :class:`~repro.errors.DecodeError` subclass on any
    malformed input; ``limits`` bounds what the container may allocate.
    """
    limits = limits or DEFAULT_LIMITS
    with decode_guard("stream container"):
        streams: Dict[str, bytes] = {}
        decoded_total = 0
        count, pos = read_uvarint(blob, 0)
        limits.check("stream count", count, limits.max_streams)
        for _ in range(count):
            name_len, pos = read_uvarint(blob, pos)
            limits.check("stream name length", name_len, limits.max_name_bytes)
            raw_name, pos = take_bytes(blob, pos, name_len, "stream name")
            name = raw_name.decode("utf-8")
            if pos >= len(blob):
                raise TruncatedStreamError("truncated stream container")
            flags = blob[pos]
            pos += 1
            if flags & ~(_FLAG_DEFLATE | _FLAG_CRC32 | _FLAG_ARITH):
                raise CorruptStreamError(
                    f"unknown stream flags {flags:#x} for {name!r}")
            if (flags & _FLAG_DEFLATE) and (flags & _FLAG_ARITH):
                raise CorruptStreamError(
                    f"stream {name!r} claims two codecs at once")
            crc = None
            if flags & _FLAG_CRC32:
                crc_raw, pos = take_bytes(blob, pos, 4, "stream checksum")
                crc = int.from_bytes(crc_raw, "little")
            payload_len, pos = read_uvarint(blob, pos)
            limits.check("stream payload", payload_len,
                         limits.max_decoded_bytes)
            payload, pos = take_bytes(blob, pos, payload_len,
                                      f"stream {name!r} payload")
            if crc is not None and zlib.crc32(payload) != crc:
                raise CorruptStreamError(
                    f"stream {name!r} failed its CRC32 check")
            if flags & _FLAG_DEFLATE:
                payload = deflate.decompress(payload, limits=limits)
            elif flags & _FLAG_ARITH:
                from . import arith

                # The coded stream leads with its decoded length (32-bit
                # big-endian); bound it before decoding allocates.
                declared = int.from_bytes(payload[:4], "big")
                limits.check("decoded stream bytes", declared,
                             limits.max_decoded_bytes)
                payload = arith.decompress(payload, order=1)
            decoded_total += len(payload)
            limits.check("decoded container bytes", decoded_total,
                         limits.max_decoded_bytes)
            if name in streams:
                raise CorruptStreamError(f"duplicate stream {name!r}")
            streams[name] = payload
        return streams


def stream_sizes(streams: Mapping[str, bytes]) -> Dict[str, Tuple[int, int]]:
    """Per-stream (raw, deflate-compressed) sizes, for size breakdowns."""
    return {
        name: (len(data), len(deflate.compress(data)))
        for name, data in streams.items()
    }
