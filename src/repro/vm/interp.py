"""The VM interpreter: loads a :class:`VMProgram` and executes it.

Memory model: a flat little-endian byte array.  Globals are laid out from
``GLOBAL_BASE`` up, the heap (a bump allocator behind ``malloc``) follows,
and the stack grows down from the top.  Function and return addresses live
in distinguishable high ranges so function pointers and ``ra`` values can
be stored to memory and reloaded like any other 32-bit word.

The interpreter counts executed instructions; ``clock`` (syscall 8) returns
that count, which gives corpus programs a deterministic timing source.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..ir.tree import PtrInit, ScalarInit
from .instr import VMFunction, VMProgram
from .isa import NUM_FREGS, NUM_IREGS, Operand, REG_RA, REG_SP, SYSCALLS

__all__ = ["VMError", "ExecutionResult", "Interpreter", "run_program",
           "GLOBAL_BASE", "FUNC_ADDR_BASE"]

GLOBAL_BASE = 0x1000
FUNC_ADDR_BASE = 0x4000_0000
RET_ADDR_BASE = 0x5000_0000
HALT_ADDR = 0x5FFF_FFFF

_U32 = 0xFFFF_FFFF


def _s32(value: int) -> int:
    """Wrap to canonical signed 32-bit."""
    value &= _U32
    return value - 0x1_0000_0000 if value >= 0x8000_0000 else value


def _u32(value: int) -> int:
    return value & _U32


class VMError(Exception):
    """Any runtime fault: bad memory access, bad opcode, step overrun."""


@dataclass
class ExecutionResult:
    """What a program run produced."""

    exit_code: int
    output: str
    steps: int
    opcode_counts: Dict[str, int] = field(default_factory=dict)


class Interpreter:
    """Executes a linked VM program."""

    def __init__(
        self,
        program: VMProgram,
        memory_size: int = 1 << 20,
        max_steps: int = 50_000_000,
        stdin: str = "",
        count_opcodes: bool = False,
    ) -> None:
        self.program = program
        self.memory = bytearray(memory_size)
        self.max_steps = max_steps
        self.iregs = [0] * NUM_IREGS
        self.fregs = [0.0] * NUM_FREGS
        self.steps = 0
        self.output: List[str] = []
        self._stdin = stdin
        self._stdin_pos = 0
        self.exit_code: Optional[int] = None
        self.count_opcodes = count_opcodes
        self.opcode_counts: Dict[str, int] = {}
        self._func_index = {fn.name: i for i, fn in enumerate(program.functions)}
        self.symbols: Dict[str, int] = {}
        self._load_globals()
        self._resolved = [self._resolve_function(fn) for fn in program.functions]

    # -- loading -----------------------------------------------------------

    def _load_globals(self) -> None:
        address = GLOBAL_BASE
        for g in self.program.globals:
            address = (address + g.align - 1) // g.align * g.align
            self.symbols[g.name] = address
            address += max(1, g.size)
        self.heap_base = (address + 7) // 8 * 8
        self.heap_ptr = self.heap_base
        # Function "addresses" for function pointers.
        for i, fn in enumerate(self.program.functions):
            self.symbols[fn.name] = FUNC_ADDR_BASE + i
        # Apply initializers (after all symbols exist, for PtrInit).
        for g in self.program.globals:
            base = self.symbols[g.name]
            for item in g.items:
                if isinstance(item, ScalarInit):
                    if isinstance(item.value, float) or item.size == 8:
                        self.memory[base + item.offset : base + item.offset + 8] = (
                            struct.pack("<d", float(item.value))
                        )
                    else:
                        raw = int(item.value) & ((1 << (item.size * 8)) - 1)
                        self.memory[base + item.offset : base + item.offset + item.size] = (
                            raw.to_bytes(item.size, "little")
                        )
                else:
                    assert isinstance(item, PtrInit)
                    target = self.symbols.get(item.symbol)
                    if target is None:
                        raise VMError(f"undefined symbol {item.symbol!r} in "
                                      f"initializer of {g.name}")
                    self.memory[base + item.offset : base + item.offset + 4] = (
                        target.to_bytes(4, "little")
                    )

    def _resolve_function(self, fn: VMFunction):
        """Pre-resolve labels and symbols to numbers for fast dispatch."""
        resolved = []
        for instr in fn.code:
            ops: List[object] = []
            for kind, value in zip(instr.spec.signature, instr.operands):
                if kind is Operand.LABEL:
                    assert isinstance(value, str)
                    if value not in fn.labels:
                        raise VMError(f"undefined label {value!r} in {fn.name}")
                    ops.append(fn.labels[value])
                elif kind is Operand.SYM:
                    assert isinstance(value, str)
                    if value in self._func_index:
                        ops.append(("func", self._func_index[value]))
                    elif value in self.symbols:
                        ops.append(("data", self.symbols[value]))
                    else:
                        raise VMError(f"undefined symbol {value!r} in {fn.name}")
                else:
                    ops.append(value)
            resolved.append((instr.name, tuple(ops)))
        return resolved

    # -- memory helpers ------------------------------------------------------

    def _check(self, address: int, size: int) -> None:
        if address < GLOBAL_BASE or address + size > len(self.memory):
            raise VMError(f"memory access out of range: {address:#x}+{size}")

    def load(self, address: int, size: int, signed: bool) -> int:
        self._check(address, size)
        return int.from_bytes(self.memory[address : address + size], "little",
                              signed=signed)

    def store(self, address: int, size: int, value: int) -> None:
        self._check(address, size)
        raw = value & ((1 << (size * 8)) - 1)
        self.memory[address : address + size] = raw.to_bytes(size, "little")

    def load_double(self, address: int) -> float:
        self._check(address, 8)
        return struct.unpack("<d", self.memory[address : address + 8])[0]

    def store_double(self, address: int, value: float) -> None:
        self._check(address, 8)
        self.memory[address : address + 8] = struct.pack("<d", value)

    def read_cstring(self, address: int) -> str:
        out = []
        while True:
            byte = self.load(address, 1, signed=False)
            if byte == 0:
                return "".join(out)
            out.append(chr(byte))
            address += 1
            if len(out) > 1 << 20:
                raise VMError("unterminated string")

    # -- syscalls ----------------------------------------------------------

    def _syscall(self, number: int) -> None:
        try:
            name, argsig, ret = SYSCALLS[number]
        except KeyError:
            raise VMError(f"unknown syscall {number}") from None
        sp = _u32(self.iregs[REG_SP])
        total = sum(8 if c == "d" else 4 for c in argsig)
        args: List[object] = []
        offset = sp - total
        for c in argsig:
            if c == "d":
                args.append(self.load_double(offset))
                offset += 8
            else:
                signed = c == "i"
                args.append(self.load(offset, 4, signed=signed))
                offset += 4
        result: object = 0
        if name == "exit":
            self.exit_code = int(args[0])  # type: ignore[arg-type]
        elif name == "abort":
            raise VMError("abort() called")
        elif name == "putchar":
            self.output.append(chr(int(args[0]) & 0xFF))  # type: ignore[arg-type]
            result = args[0]
        elif name == "getchar":
            if self._stdin_pos < len(self._stdin):
                result = ord(self._stdin[self._stdin_pos])
                self._stdin_pos += 1
            else:
                result = -1
        elif name == "malloc":
            size = max(1, int(args[0]))  # type: ignore[arg-type]
            aligned = (size + 7) // 8 * 8
            address = self.heap_ptr
            if address + aligned > len(self.memory) - (1 << 16):
                raise VMError("out of heap memory")
            self.heap_ptr += aligned
            result = address
        elif name == "free":
            result = 0
        elif name == "print_int":
            self.output.append(str(_s32(int(args[0]))))  # type: ignore[arg-type]
        elif name == "print_str":
            self.output.append(self.read_cstring(int(args[0])))  # type: ignore[arg-type]
        elif name == "print_double":
            self.output.append(f"{args[0]:.6g}")
        elif name == "clock":
            result = self.steps & 0x7FFF_FFFF
        if ret == "d":
            self.fregs[0] = float(result)  # pragma: no cover - no d syscalls yet
        elif ret != "v":
            self.iregs[0] = _s32(int(result))  # type: ignore[arg-type]

    # -- execution ---------------------------------------------------------

    def run(self, entry: Optional[str] = None, args: Tuple[int, ...] = ()) -> ExecutionResult:
        """Execute from ``entry`` (default the program's entry) to halt."""
        entry = entry or self.program.entry
        if entry not in self._func_index:
            raise VMError(f"no entry function {entry!r}")
        func = self._func_index[entry]
        sp = len(self.memory) - 16
        # Push integer arguments for the entry function, mirroring the
        # caller convention (args stored immediately below sp).
        total = 4 * len(args)
        for i, arg in enumerate(args):
            self.store(sp - total + 4 * i, 4, arg)
        self.iregs[REG_SP] = sp
        self.iregs[REG_RA] = _s32(HALT_ADDR)
        pc = 0
        exit_code = self._loop(func, pc)
        return ExecutionResult(
            exit_code=exit_code,
            output="".join(self.output),
            steps=self.steps,
            opcode_counts=dict(self.opcode_counts),
        )

    def _loop(self, func: int, pc: int) -> int:
        code = self._resolved[func]
        while True:
            if self.exit_code is not None:
                return self.exit_code
            if pc >= len(code):
                raise VMError(
                    f"fell off the end of {self.program.functions[func].name}")
            name, ops = code[pc]
            pc += 1
            new_func, pc, halt = self._exec(name, ops, func, pc)
            if halt is not None:
                return halt
            if new_func != func:
                func = new_func
                code = self._resolved[func]

    def _exec(self, name: str, ops, func: int, pc: int):
        """Execute one instruction; returns (func, pc, halt_value_or_None).

        ``pc`` is the fall-through continuation (already advanced); control
        transfers overwrite it.  Shared by the plain interpreter and the
        BRISC in-place interpreter.
        """
        regs = self.iregs
        fregs = self.fregs
        self.steps += 1
        if self.steps > self.max_steps:
            raise VMError(f"exceeded {self.max_steps} steps")
        if self.count_opcodes:
            counts = self.opcode_counts
            counts[name] = counts.get(name, 0) + 1
        if True:
            # --- memory ---
            if name == "ld.iw":
                regs[ops[0]] = _s32(self.load(_u32(regs[ops[2]]) + ops[1], 4, True))
            elif name == "st.iw":
                self.store(_u32(regs[ops[2]]) + ops[1], 4, regs[ops[0]])
            elif name == "ld.ib":
                regs[ops[0]] = self.load(_u32(regs[ops[2]]) + ops[1], 1, True)
            elif name == "ld.iub":
                regs[ops[0]] = self.load(_u32(regs[ops[2]]) + ops[1], 1, False)
            elif name == "ld.ih":
                regs[ops[0]] = self.load(_u32(regs[ops[2]]) + ops[1], 2, True)
            elif name == "ld.iuh":
                regs[ops[0]] = self.load(_u32(regs[ops[2]]) + ops[1], 2, False)
            elif name == "st.ib":
                self.store(_u32(regs[ops[2]]) + ops[1], 1, regs[ops[0]])
            elif name == "st.ih":
                self.store(_u32(regs[ops[2]]) + ops[1], 2, regs[ops[0]])
            elif name == "ld.d":
                fregs[ops[0]] = self.load_double(_u32(regs[ops[2]]) + ops[1])
            elif name == "st.d":
                self.store_double(_u32(regs[ops[2]]) + ops[1], fregs[ops[0]])
            elif name == "spill.i":
                self.store(_u32(regs[ops[2]]) + ops[1], 4, regs[ops[0]])
            elif name == "reload.i":
                regs[ops[0]] = _s32(self.load(_u32(regs[ops[2]]) + ops[1], 4, True))
            elif name == "ldx.iw":
                regs[ops[0]] = _s32(self.load(_u32(regs[ops[1]]), 4, True))
            elif name == "stx.iw":
                self.store(_u32(regs[ops[1]]), 4, regs[ops[0]])
            elif name == "ldx.ib":
                regs[ops[0]] = self.load(_u32(regs[ops[1]]), 1, True)
            elif name == "ldx.iub":
                regs[ops[0]] = self.load(_u32(regs[ops[1]]), 1, False)
            elif name == "ldx.ih":
                regs[ops[0]] = self.load(_u32(regs[ops[1]]), 2, True)
            elif name == "ldx.iuh":
                regs[ops[0]] = self.load(_u32(regs[ops[1]]), 2, False)
            elif name == "stx.ib":
                self.store(_u32(regs[ops[1]]), 1, regs[ops[0]])
            elif name == "stx.ih":
                self.store(_u32(regs[ops[1]]), 2, regs[ops[0]])
            elif name == "ldx.d":
                fregs[ops[0]] = self.load_double(_u32(regs[ops[1]]))
            elif name == "stx.d":
                self.store_double(_u32(regs[ops[1]]), fregs[ops[0]])

            # --- moves ---
            elif name == "mov.i":
                regs[ops[0]] = regs[ops[1]]
            elif name == "li":
                regs[ops[0]] = _s32(ops[1])
            elif name == "la":
                kind, value = ops[1]
                regs[ops[0]] = _s32(FUNC_ADDR_BASE + value if kind == "func"
                                    else value)
            elif name == "mov.d":
                fregs[ops[0]] = fregs[ops[1]]
            elif name == "li.d":
                fregs[ops[0]] = float(ops[1])

            # --- integer alu ---
            elif name == "add.i":
                regs[ops[0]] = _s32(regs[ops[1]] + regs[ops[2]])
            elif name == "sub.i":
                regs[ops[0]] = _s32(regs[ops[1]] - regs[ops[2]])
            elif name == "mul.i":
                regs[ops[0]] = _s32(regs[ops[1]] * regs[ops[2]])
            elif name == "div.i":
                regs[ops[0]] = _s32(_divtrunc(regs[ops[1]], regs[ops[2]]))
            elif name == "divu.i":
                b = _u32(regs[ops[2]])
                if b == 0:
                    raise VMError("division by zero")
                regs[ops[0]] = _s32(_u32(regs[ops[1]]) // b)
            elif name == "rem.i":
                regs[ops[0]] = _s32(_remtrunc(regs[ops[1]], regs[ops[2]]))
            elif name == "remu.i":
                b = _u32(regs[ops[2]])
                if b == 0:
                    raise VMError("division by zero")
                regs[ops[0]] = _s32(_u32(regs[ops[1]]) % b)
            elif name == "and.i":
                regs[ops[0]] = _s32(regs[ops[1]] & regs[ops[2]])
            elif name == "or.i":
                regs[ops[0]] = _s32(regs[ops[1]] | regs[ops[2]])
            elif name == "xor.i":
                regs[ops[0]] = _s32(regs[ops[1]] ^ regs[ops[2]])
            elif name == "shl.i":
                regs[ops[0]] = _s32(_u32(regs[ops[1]]) << (regs[ops[2]] & 31))
            elif name == "shr.i":
                regs[ops[0]] = _s32(_u32(regs[ops[1]]) >> (regs[ops[2]] & 31))
            elif name == "sra.i":
                regs[ops[0]] = _s32(regs[ops[1]] >> (regs[ops[2]] & 31))
            elif name == "neg.i":
                regs[ops[0]] = _s32(-regs[ops[1]])
            elif name == "not.i":
                regs[ops[0]] = _s32(~regs[ops[1]])

            # --- immediate alu ---
            elif name == "addi.i":
                regs[ops[0]] = _s32(regs[ops[1]] + ops[2])
            elif name == "subi.i":
                regs[ops[0]] = _s32(regs[ops[1]] - ops[2])
            elif name == "muli.i":
                regs[ops[0]] = _s32(regs[ops[1]] * ops[2])
            elif name == "andi.i":
                regs[ops[0]] = _s32(regs[ops[1]] & ops[2])
            elif name == "ori.i":
                regs[ops[0]] = _s32(regs[ops[1]] | ops[2])
            elif name == "xori.i":
                regs[ops[0]] = _s32(regs[ops[1]] ^ ops[2])
            elif name == "shli.i":
                regs[ops[0]] = _s32(_u32(regs[ops[1]]) << (ops[2] & 31))
            elif name == "shri.i":
                regs[ops[0]] = _s32(_u32(regs[ops[1]]) >> (ops[2] & 31))
            elif name == "srai.i":
                regs[ops[0]] = _s32(regs[ops[1]] >> (ops[2] & 31))

            # --- extensions ---
            elif name == "sext.b":
                regs[ops[0]] = _s32((regs[ops[1]] & 0xFF) - 0x100
                                    if regs[ops[1]] & 0x80 else regs[ops[1]] & 0xFF)
            elif name == "zext.b":
                regs[ops[0]] = regs[ops[1]] & 0xFF
            elif name == "sext.h":
                regs[ops[0]] = _s32((regs[ops[1]] & 0xFFFF) - 0x1_0000
                                    if regs[ops[1]] & 0x8000 else regs[ops[1]] & 0xFFFF)
            elif name == "zext.h":
                regs[ops[0]] = regs[ops[1]] & 0xFFFF

            # --- double alu / conversions ---
            elif name == "add.d":
                fregs[ops[0]] = fregs[ops[1]] + fregs[ops[2]]
            elif name == "sub.d":
                fregs[ops[0]] = fregs[ops[1]] - fregs[ops[2]]
            elif name == "mul.d":
                fregs[ops[0]] = fregs[ops[1]] * fregs[ops[2]]
            elif name == "div.d":
                if fregs[ops[2]] == 0.0:
                    raise VMError("floating division by zero")
                fregs[ops[0]] = fregs[ops[1]] / fregs[ops[2]]
            elif name == "neg.d":
                fregs[ops[0]] = -fregs[ops[1]]
            elif name == "cvt.id":
                fregs[ops[0]] = float(regs[ops[1]])
            elif name == "cvt.ud":
                fregs[ops[0]] = float(_u32(regs[ops[1]]))
            elif name == "cvt.di":
                fregs_val = fregs[ops[1]]
                regs[ops[0]] = _s32(int(fregs_val))
            elif name == "cvt.du":
                regs[ops[0]] = _s32(int(fregs[ops[1]]) & _U32)

            # --- branches ---
            elif name == "beq.i":
                if regs[ops[0]] == regs[ops[1]]:
                    pc = ops[2]
            elif name == "bne.i":
                if regs[ops[0]] != regs[ops[1]]:
                    pc = ops[2]
            elif name == "blt.i":
                if regs[ops[0]] < regs[ops[1]]:
                    pc = ops[2]
            elif name == "ble.i":
                if regs[ops[0]] <= regs[ops[1]]:
                    pc = ops[2]
            elif name == "bgt.i":
                if regs[ops[0]] > regs[ops[1]]:
                    pc = ops[2]
            elif name == "bge.i":
                if regs[ops[0]] >= regs[ops[1]]:
                    pc = ops[2]
            elif name == "bltu.i":
                if _u32(regs[ops[0]]) < _u32(regs[ops[1]]):
                    pc = ops[2]
            elif name == "bleu.i":
                if _u32(regs[ops[0]]) <= _u32(regs[ops[1]]):
                    pc = ops[2]
            elif name == "bgtu.i":
                if _u32(regs[ops[0]]) > _u32(regs[ops[1]]):
                    pc = ops[2]
            elif name == "bgeu.i":
                if _u32(regs[ops[0]]) >= _u32(regs[ops[1]]):
                    pc = ops[2]
            elif name == "beqi.i":
                if regs[ops[0]] == ops[1]:
                    pc = ops[2]
            elif name == "bnei.i":
                if regs[ops[0]] != ops[1]:
                    pc = ops[2]
            elif name == "blti.i":
                if regs[ops[0]] < ops[1]:
                    pc = ops[2]
            elif name == "blei.i":
                if regs[ops[0]] <= ops[1]:
                    pc = ops[2]
            elif name == "bgti.i":
                if regs[ops[0]] > ops[1]:
                    pc = ops[2]
            elif name == "bgei.i":
                if regs[ops[0]] >= ops[1]:
                    pc = ops[2]
            elif name == "bltui.i":
                if _u32(regs[ops[0]]) < _u32(ops[1]):
                    pc = ops[2]
            elif name == "bleui.i":
                if _u32(regs[ops[0]]) <= _u32(ops[1]):
                    pc = ops[2]
            elif name == "bgtui.i":
                if _u32(regs[ops[0]]) > _u32(ops[1]):
                    pc = ops[2]
            elif name == "bgeui.i":
                if _u32(regs[ops[0]]) >= _u32(ops[1]):
                    pc = ops[2]
            elif name == "beq.d":
                if fregs[ops[0]] == fregs[ops[1]]:
                    pc = ops[2]
            elif name == "bne.d":
                if fregs[ops[0]] != fregs[ops[1]]:
                    pc = ops[2]
            elif name == "blt.d":
                if fregs[ops[0]] < fregs[ops[1]]:
                    pc = ops[2]
            elif name == "ble.d":
                if fregs[ops[0]] <= fregs[ops[1]]:
                    pc = ops[2]
            elif name == "bgt.d":
                if fregs[ops[0]] > fregs[ops[1]]:
                    pc = ops[2]
            elif name == "bge.d":
                if fregs[ops[0]] >= fregs[ops[1]]:
                    pc = ops[2]

            # --- control flow ---
            elif name == "jmp":
                pc = ops[0]
            elif name == "call":
                kind, index = ops[0]
                if kind != "func":
                    raise VMError("call target is not a function")
                regs[REG_RA] = _s32(RET_ADDR_BASE | (func << 16) | pc)
                func = index
                pc = 0
            elif name == "calli":
                target = _u32(regs[ops[0]])
                if not FUNC_ADDR_BASE <= target < FUNC_ADDR_BASE + len(self.program.functions):
                    raise VMError(f"indirect call to non-function {target:#x}")
                regs[REG_RA] = _s32(RET_ADDR_BASE | (func << 16) | pc)
                func = target - FUNC_ADDR_BASE
                pc = 0
            elif name == "rjr":
                target = _u32(regs[ops[0]])
                if target == HALT_ADDR:
                    return func, pc, _s32(regs[0])
                if not RET_ADDR_BASE <= target < RET_ADDR_BASE + 0x0FFF_0000:
                    raise VMError(f"return to non-return address {target:#x}")
                func = (target - RET_ADDR_BASE) >> 16
                pc = target & 0xFFFF

            # --- frame ---
            elif name == "enter":
                regs[ops[0]] = _s32(regs[ops[1]] - ops[2])
            elif name == "exit":
                regs[ops[0]] = _s32(regs[ops[1]] + ops[2])

            # --- macros ---
            elif name == "blkcpy":
                dst = _u32(regs[ops[0]])
                src = _u32(regs[ops[1]])
                n = ops[2]
                self._check(dst, n)
                self._check(src, n)
                self.memory[dst : dst + n] = bytes(self.memory[src : src + n])
            elif name == "sys":
                self._syscall(ops[0])
                if self.exit_code is not None:
                    return func, pc, self.exit_code
            elif name == "hlt":
                return func, pc, _s32(regs[0])
            else:
                raise VMError(f"unimplemented instruction {name}")
        return func, pc, None


def _divtrunc(a: int, b: int) -> int:
    if b == 0:
        raise VMError("division by zero")
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


def _remtrunc(a: int, b: int) -> int:
    return a - _divtrunc(a, b) * b


def run_program(
    program: VMProgram,
    entry: Optional[str] = None,
    args: Tuple[int, ...] = (),
    max_steps: int = 50_000_000,
    stdin: str = "",
    count_opcodes: bool = False,
) -> ExecutionResult:
    """Convenience wrapper: build an interpreter and run to completion."""
    interp = Interpreter(program, max_steps=max_steps, stdin=stdin,
                         count_opcodes=count_opcodes)
    return interp.run(entry, args)
