"""Synthetic C program generator.

The paper measures lcc (~315 KB of SPARC code), gcc (~1.4 MB) and a small
utility.  We cannot ship those sources, so this generator synthesizes
programs of any requested size with the statistical texture of real C
code: small arithmetic helper functions, loop nests over global arrays,
switch-based dispatchers, string scanners, struct field manipulation, and
call graphs into earlier functions.  Generation is deterministic in the
seed, every loop is bounded, every index is masked in range, and every
division is guarded, so generated programs always terminate and run
identically everywhere.

The point is not to fool a human reader — it is to present the compressors
with realistic operator/operand distributions (frame offsets with spatial
locality, repeated code-generation idioms, skewed opcode frequencies),
which is what both of the paper's compressors exploit.
"""

from __future__ import annotations

import random
from typing import List

__all__ = ["GeneratorConfig", "generate_program_source"]


class GeneratorConfig:
    """Knobs for the generator."""

    def __init__(
        self,
        functions: int = 40,
        seed: int = 1,
        arrays: int = 4,
        structs: int = 2,
        strings: int = 6,
    ) -> None:
        self.functions = functions
        self.seed = seed
        self.arrays = arrays
        self.structs = structs
        self.strings = strings


_WORDS = [
    "node", "edge", "token", "frame", "block", "page", "cache", "index",
    "table", "entry", "state", "count", "queue", "score", "width", "depth",
]


class _Generator:
    def __init__(self, config: GeneratorConfig) -> None:
        self.cfg = config
        self.rng = random.Random(config.seed)
        self.lines: List[str] = []
        self.int_fns: List[str] = []  # int f(int, int)
        self.arr_fns: List[str] = []  # int f(int*, int)
        self.str_fns: List[str] = []  # int f(char*)
        self._tmp = 0

    # -- helpers -----------------------------------------------------------

    def _name(self, prefix: str, i: int) -> str:
        return f"{prefix}{self.cfg.seed}_{self.rng.choice(_WORDS)}_{i}"

    def _int_expr(self, vars_: List[str], depth: int = 0) -> str:
        r = self.rng
        if depth > 2 or r.random() < 0.35:
            choice = r.random()
            if choice < 0.45 and vars_:
                return r.choice(vars_)
            if choice < 0.75:
                return str(r.randint(0, 255))
            if choice < 0.9 and vars_:
                return f"(g{self.cfg.seed}_arr{r.randrange(self.cfg.arrays)}[({r.choice(vars_)}) & 15])"
            return str(r.randint(0, 65535))
        op = r.choice(["+", "-", "*", "&", "|", "^", "<<", ">>"])
        left = self._int_expr(vars_, depth + 1)
        right = self._int_expr(vars_, depth + 1)
        if op in ("<<", ">>"):
            right = str(r.randint(1, 7))
        return f"({left} {op} {right})"

    def _guarded_div(self, vars_: List[str]) -> str:
        r = self.rng
        num = self._int_expr(vars_, 2)
        den = f"(({self._int_expr(vars_, 2)} & 7) + 1)"
        return f"({num} {'/' if r.random() < 0.6 else '%'} {den})"

    def _call_expr(self, vars_: List[str]) -> str:
        r = self.rng
        pool = []
        if self.int_fns:
            pool.append("int")
        if self.arr_fns:
            pool.append("arr")
        if not pool:
            return self._int_expr(vars_)
        kind = r.choice(pool)
        if kind == "int":
            fn = r.choice(self.int_fns[-12:])
            return f"{fn}({self._int_expr(vars_, 1)}, {self._int_expr(vars_, 1)})"
        fn = r.choice(self.arr_fns[-8:])
        return f"{fn}(g{self.cfg.seed}_arr{r.randrange(self.cfg.arrays)}, {r.randint(4, 16)})"

    # -- statement generators ------------------------------------------------

    def _stmts(self, vars_: List[str], indent: str, budget: int) -> List[str]:
        out: List[str] = []
        r = self.rng
        while budget > 0:
            roll = r.random()
            if roll < 0.3:
                v = r.choice(vars_)
                out.append(f"{indent}{v} = {self._int_expr(vars_)};")
                budget -= 1
            elif roll < 0.42:
                v = r.choice(vars_)
                op = r.choice(["+=", "-=", "^=", "|=", "&="])
                out.append(f"{indent}{v} {op} {self._int_expr(vars_, 2)};")
                budget -= 1
            elif roll < 0.52:
                v = r.choice(vars_)
                out.append(f"{indent}{v} = {self._guarded_div(vars_)};")
                budget -= 1
            elif roll < 0.62 and self.int_fns:
                v = r.choice(vars_)
                out.append(f"{indent}{v} = {self._call_expr(vars_)};")
                budget -= 1
            elif roll < 0.74:
                cond_var = r.choice(vars_)
                cmp_op = r.choice(["<", ">", "<=", ">=", "==", "!="])
                out.append(f"{indent}if ({cond_var} {cmp_op} {r.randint(0, 128)}) {{")
                out.extend(self._stmts(vars_, indent + "    ", min(2, budget)))
                if r.random() < 0.4:
                    out.append(f"{indent}}} else {{")
                    out.extend(self._stmts(vars_, indent + "    ", 1))
                out.append(f"{indent}}}")
                budget -= 3
            elif roll < 0.86:
                i = f"i{self._tmp}"
                self._tmp += 1
                bound = r.randint(2, 8)
                out.append(f"{indent}for (int {i} = 0; {i} < {bound}; {i}++) {{")
                arr = f"g{self.cfg.seed}_arr{r.randrange(self.cfg.arrays)}"
                v = r.choice(vars_)
                body = r.random()
                if body < 0.5:
                    out.append(f"{indent}    {v} += {arr}[{i} & 15] + {i};")
                else:
                    out.append(f"{indent}    {arr}[{i} & 15] = {v} + {i} * "
                               f"{r.randint(1, 9)};")
                out.append(f"{indent}}}")
                budget -= 2
            else:
                v = r.choice(vars_)
                cases = r.randint(2, 5)
                out.append(f"{indent}switch ({v} & {2 ** (cases - 1) - 1 if cases > 1 else 1}) {{")
                for c in range(cases):
                    out.append(f"{indent}case {c}: {v} "
                               f"{r.choice(['+=', '-=', '^='])} {r.randint(1, 99)}; break;")
                out.append(f"{indent}default: {v} = {r.randint(0, 9)}; break;")
                out.append(f"{indent}}}")
                budget -= 3
        return out

    # -- function generators ---------------------------------------------

    def _int_function(self, index: int) -> None:
        name = self._name("calc", index)
        r = self.rng
        nlocals = r.randint(1, 4)
        locals_ = [f"t{i}" for i in range(nlocals)]
        vars_ = ["a", "b"] + locals_
        self.lines.append(f"int {name}(int a, int b) {{")
        for i, v in enumerate(locals_):
            self.lines.append(f"    int {v} = {self._int_expr(['a', 'b'], 2)};")
        self.lines.extend(self._stmts(vars_, "    ", r.randint(3, 8)))
        self.lines.append(f"    return {self._int_expr(vars_)};")
        self.lines.append("}")
        self.lines.append("")
        self.int_fns.append(name)

    def _array_function(self, index: int) -> None:
        name = self._name("scan", index)
        r = self.rng
        self.lines.append(f"int {name}(int *data, int n) {{")
        self.lines.append("    int acc = 0;")
        self.lines.append("    for (int i = 0; i < n; i++) {")
        kind = r.random()
        if kind < 0.35:
            self.lines.append(f"        acc += data[i & 15] * {r.randint(1, 7)};")
        elif kind < 0.7:
            self.lines.append("        if (data[i & 15] > acc) acc = data[i & 15];")
        else:
            self.lines.append(f"        acc = acc * {r.randint(2, 31)} + data[i & 15];")
        self.lines.append("    }")
        self.lines.append("    return acc;")
        self.lines.append("}")
        self.lines.append("")
        self.arr_fns.append(name)

    def _string_function(self, index: int) -> None:
        name = self._name("text", index)
        r = self.rng
        self.lines.append(f"int {name}(char *s) {{")
        kind = r.random()
        if kind < 0.4:
            self.lines.append("    int n = 0;")
            self.lines.append("    while (*s) { n++; s++; }")
            self.lines.append("    return n;")
        elif kind < 0.7:
            self.lines.append(f"    unsigned h = {r.randint(3, 9999)}u;")
            self.lines.append(f"    while (*s) {{ h = h * {r.choice([17, 31, 33, 65599])}u"
                              " + (unsigned)*s; s++; }")
            self.lines.append("    return (int)(h & 0x7fffffffu);")
        else:
            ch = r.choice(["'a'", "'e'", "' '", "'0'"])
            self.lines.append("    int count = 0;")
            self.lines.append(f"    while (*s) {{ if (*s == {ch}) count++; s++; }}")
            self.lines.append("    return count;")
        self.lines.append("}")
        self.lines.append("")
        self.str_fns.append(name)

    def _struct_function(self, index: int, struct_index: int) -> None:
        name = self._name("walk", index)
        s = f"S{self.cfg.seed}_{struct_index}"
        self.lines.append(f"int {name}(struct {s} *p, int n) {{")
        self.lines.append("    int total = 0;")
        self.lines.append("    for (int i = 0; i < n; i++) {")
        self.lines.append("        total += p[i & 7].x + p[i & 7].y * 2;")
        self.lines.append("        p[i & 7].tag = total & 255;")
        self.lines.append("    }")
        self.lines.append("    return total;")
        self.lines.append("}")
        self.lines.append("")
        self.int_fns.append(name)  # callable shape differs; kept out of pools
        self.int_fns.pop()
        self._struct_fns.append((name, struct_index))

    _struct_fns: List

    # -- driver ------------------------------------------------------------

    def generate(self) -> str:
        r = self.rng
        self._struct_fns = []
        self.lines.append("/* synthetic corpus program (deterministic; "
                          f"seed={self.cfg.seed}, functions={self.cfg.functions}) */")
        for i in range(self.cfg.structs):
            self.lines.append(
                f"struct S{self.cfg.seed}_{i} {{ int x; int y; int tag; }};")
        for i in range(self.cfg.arrays):
            init = ", ".join(str(r.randint(0, 99)) for _ in range(16))
            self.lines.append(f"int g{self.cfg.seed}_arr{i}[16] = {{{init}}};")
        for i in range(self.cfg.structs):
            self.lines.append(
                f"struct S{self.cfg.seed}_{i} g{self.cfg.seed}_objs{i}[8];")
        for i in range(self.cfg.strings):
            words = " ".join(r.choice(_WORDS) for _ in range(r.randint(3, 10)))
            self.lines.append(f'char *g{self.cfg.seed}_str{i} = "{words}";')
        self.lines.append("")

        for i in range(self.cfg.functions):
            roll = r.random()
            if roll < 0.55:
                self._int_function(i)
            elif roll < 0.75:
                self._array_function(i)
            elif roll < 0.9:
                self._string_function(i)
            else:
                self._struct_function(i, r.randrange(self.cfg.structs))

        # main: call a deterministic sample of everything, fold the
        # results, and print one checksum.
        self.lines.append("int main(void) {")
        self.lines.append("    int acc = 0;")
        for fn in self.int_fns[:: max(1, len(self.int_fns) // 24)]:
            a, b = r.randint(0, 99), r.randint(0, 99)
            self.lines.append(f"    acc = acc * 31 + {fn}({a}, {b});")
        for fn in self.arr_fns[:: max(1, len(self.arr_fns) // 12)]:
            self.lines.append(f"    acc ^= {fn}(g{self.cfg.seed}_arr{r.randrange(self.cfg.arrays)}, 16);")
        for fn in self.str_fns[:: max(1, len(self.str_fns) // 12)]:
            self.lines.append(f"    acc += {fn}(g{self.cfg.seed}_str{r.randrange(self.cfg.strings)});")
        for fn, si in self._struct_fns[:8]:
            self.lines.append(f"    acc ^= {fn}(g{self.cfg.seed}_objs{si}, 8);")
        self.lines.append("    print_int(acc);")
        self.lines.append("    putchar('\\n');")
        self.lines.append("    return 0;")
        self.lines.append("}")
        return "\n".join(self.lines)


def generate_program_source(
    functions: int = 40, seed: int = 1, **kwargs
) -> str:
    """Generate a deterministic synthetic C program."""
    config = GeneratorConfig(functions=functions, seed=seed, **kwargs)
    return _Generator(config).generate()
