"""The BRISC cost-benefit metric: B = P − W.

``P`` is the program-size reduction a candidate pattern would buy (bytes
saved across all matching occurrences, minus the bytes the pattern itself
occupies in the transmitted dictionary).

``W`` is the decompressor working-set cost: the paper estimates it "by
averaging the size in bytes of decompression table instruction sequences
for the Pentium and PowerPC 601 chips" — the native template the
interpreter/JIT keeps per dictionary entry.  In abundant-memory mode the
paper sets ``B = P``; the ``abundant_memory`` flag reproduces that.
"""

from __future__ import annotations

from typing import Dict

from ..native.targets import PPCLike, PentiumLike
from ..vm.instr import Instr
from ..vm.isa import Operand, SPEC
from .pattern import Burned, DictPattern, InsnPattern

__all__ = ["CostModel", "representative_instr"]

_REP_IMM = {"n4": 4, "b": 1, "h": 1000, "w": 100000}


def representative_instr(part: InsnPattern) -> Instr:
    """A concrete instruction standing in for a pattern part.

    Burned fields use their burned values; wildcards get representative
    values of their width class, so native template sizes are realistic.
    """
    spec = SPEC[part.name]
    operands = []
    for field, kind in zip(part.fields, spec.signature):
        if isinstance(field, Burned):
            operands.append(field.value)
            continue
        if kind in (Operand.REG, Operand.FREG):
            operands.append(0)
        elif kind is Operand.IMM:
            operands.append(_REP_IMM[field.cls])
        elif kind is Operand.DIMM:
            operands.append(0.0)
        else:
            operands.append("@0")
    return Instr(part.name, tuple(operands))


class CostModel:
    """Computes W (and caches it) for dictionary candidates."""

    def __init__(self, abundant_memory: bool = False) -> None:
        self.abundant_memory = abundant_memory
        self._pentium = PentiumLike()
        self._ppc = PPCLike()
        self._cache: Dict[DictPattern, int] = {}

    def working_set_cost(self, pattern: DictPattern) -> int:
        """W: average native template bytes for this dictionary entry."""
        if self.abundant_memory:
            return 0
        cached = self._cache.get(pattern)
        if cached is not None:
            return cached
        pentium = 0
        ppc = 0
        for part in pattern.parts:
            rep = representative_instr(part)
            pentium += self._pentium.instr_size(rep)
            ppc += self._ppc.instr_size(rep)
        cost = (pentium + ppc + 1) // 2
        self._cache[pattern] = cost
        return cost

    def benefit(self, pattern: DictPattern, bytes_saved: int) -> int:
        """B = P − W, where P already includes the dictionary-entry cost."""
        p = bytes_saved - pattern.dictionary_size()
        return p - self.working_set_cost(pattern)
