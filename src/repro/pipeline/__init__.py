"""The staged compilation pipeline: stages, artifacts, caching, batching.

Every entry point (CLI, benchmarks, examples, the corpus suite) routes
through one :class:`Toolchain` so compiled artifacts are shared instead
of re-derived::

    from repro.pipeline import Toolchain

    tc = Toolchain()                       # in-memory artifact cache
    res = tc.compile(source, name="app")   # runs parse→…→deflate
    res.program                            # the linked VM program
    res.wire_blob, res.brisc               # compressed representations
    res.sizes()                            # per-representation bytes
    tc.stats()                             # per-stage runs/hits/seconds

    items = tc.compile_many(units, workers=4)   # parallel batch,
    [it.result or it.error for it in items]     # per-unit isolation

``default_toolchain()`` returns the process-wide shared instance (used
by :mod:`repro.corpus` and :mod:`repro.bench` so tests and benchmarks
reuse each other's artifacts); set ``REPRO_DISK_CACHE=1`` to have it
persist artifacts under ``~/.cache/repro/`` (or ``$REPRO_CACHE_DIR``).
"""

from __future__ import annotations

import os
from typing import Optional

from .artifacts import Artifact, BatchItem, CompilationResult
from .cache import (
    ArtifactCache, DiskCache, MemoryCache, TieredCache, default_cache_dir,
)
from .config import PipelineConfig
from .stages import STAGE_NAMES, STAGES, Stage, resolve_stages, vm_code_bytes
from .toolchain import SCHEMA_VERSION, BuilderStats, StageStats, Toolchain

__all__ = [
    "Artifact", "ArtifactCache", "BatchItem", "BuilderStats",
    "CompilationResult", "DiskCache", "MemoryCache", "PipelineConfig",
    "SCHEMA_VERSION", "STAGES", "STAGE_NAMES", "Stage", "StageStats",
    "TieredCache", "Toolchain", "default_cache_dir", "default_toolchain",
    "resolve_stages", "vm_code_bytes",
]

_DEFAULT: Optional[Toolchain] = None


def default_toolchain() -> Toolchain:
    """The process-wide shared toolchain (created on first use)."""
    global _DEFAULT
    if _DEFAULT is None:
        disk = os.environ.get("REPRO_DISK_CACHE", "") not in ("", "0")
        _DEFAULT = Toolchain(disk_cache=disk)
    return _DEFAULT
