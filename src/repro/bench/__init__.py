"""Measurement runners and table formatting shared by benchmarks."""

from .measure import (
    AblationRow, BriscRow, WireRow, ablation_rows, brisc_row,
    compressed_suite, interp_overhead, vm_code_bytes, wire_row,
)
from .tables import ablation_table, brisc_table, render_table, wire_table

__all__ = [
    "AblationRow", "BriscRow", "WireRow", "ablation_rows", "ablation_table",
    "brisc_row", "brisc_table", "compressed_suite", "interp_overhead",
    "render_table", "vm_code_bytes", "wire_row", "wire_table",
]
