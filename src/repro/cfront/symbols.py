"""Symbol tables and scopes for the C subset.

Symbols carry the storage class distinctions the IR lowering needs:
globals become ``ADDRG``, parameters ``ADDRF``, and locals ``ADDRL``
(exactly lcc's three address operators, which the paper's wire-format
example relies on).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional

from .ctypes import CType, FunctionType, StructType
from .errors import CompileError, Location

__all__ = ["Storage", "Symbol", "Scope"]


def _is_implicit_fn(t: CType) -> bool:
    """True for the signature given to implicitly declared functions."""
    return isinstance(t, FunctionType) and not t.params and t.variadic


class Storage(enum.Enum):
    """Where a symbol lives — selects the IR address operator."""

    GLOBAL = "global"
    PARAM = "param"
    LOCAL = "local"
    FUNCTION = "function"
    ENUM_CONST = "enum"
    TYPEDEF = "typedef"


@dataclass
class Symbol:
    """A declared name."""

    name: str
    type: CType
    storage: Storage
    location: Location
    enum_value: int = 0  # for ENUM_CONST
    defined: bool = False  # functions/globals: has a body/initializer
    frame_offset: Optional[int] = None  # assigned during IR lowering


class Scope:
    """A lexical scope with separate namespaces for ordinary names and tags.

    C keeps struct/union/enum tags in their own namespace; typedef names
    live in the ordinary namespace (they shadow like variables).
    """

    def __init__(self, parent: Optional["Scope"] = None) -> None:
        self.parent = parent
        self.names: Dict[str, Symbol] = {}
        self.tags: Dict[str, StructType] = {}

    def is_global(self) -> bool:
        return self.parent is None

    # -- ordinary namespace -------------------------------------------------

    def declare(self, symbol: Symbol) -> Symbol:
        """Add ``symbol`` to this scope, rejecting incompatible redeclaration.

        Redeclaring a function prototype (same type) is allowed, as is an
        extern redeclaration of a global.
        """
        prior = self.names.get(symbol.name)
        if prior is not None:
            # An implicitly declared function (int f(...) with no fixed
            # params) is superseded by any explicit declaration, and an
            # explicit one tolerates a later implicit use.
            if prior.storage is Storage.FUNCTION and symbol.storage is Storage.FUNCTION:
                if _is_implicit_fn(prior.type):
                    prior.type = symbol.type
                    prior.defined = prior.defined or symbol.defined
                    return prior
                if _is_implicit_fn(symbol.type):
                    return prior
            same_linkage = prior.storage == symbol.storage and prior.type == symbol.type
            redeclarable = prior.storage in (Storage.FUNCTION, Storage.GLOBAL)
            if not (redeclarable and same_linkage):
                raise CompileError(
                    f"redeclaration of '{symbol.name}' (first declared at {prior.location})",
                    symbol.location,
                )
            if symbol.defined and prior.defined and prior.storage is Storage.FUNCTION:
                raise CompileError(f"redefinition of '{symbol.name}'", symbol.location)
            prior.defined = prior.defined or symbol.defined
            return prior
        self.names[symbol.name] = symbol
        return symbol

    def lookup(self, name: str) -> Optional[Symbol]:
        """Find ``name``, walking outward through enclosing scopes."""
        scope: Optional[Scope] = self
        while scope is not None:
            sym = scope.names.get(name)
            if sym is not None:
                return sym
            scope = scope.parent
        return None

    # -- tag namespace -------------------------------------------------------

    def declare_tag(self, tag: str, struct: StructType) -> None:
        self.tags[tag] = struct

    def lookup_tag(self, tag: str, here_only: bool = False) -> Optional[StructType]:
        """Find a struct/union tag; ``here_only`` restricts to this scope."""
        if here_only:
            return self.tags.get(tag)
        scope: Optional[Scope] = self
        while scope is not None:
            s = scope.tags.get(tag)
            if s is not None:
                return s
            scope = scope.parent
        return None
