"""Paging/working-set model: the paper's memory-bottleneck scenario.

The introduction's motivating measurements: "we have seen the CPU idle for
most of the time during paging, so compressing pages can increase total
performance even though the CPU must decompress or interpret the page
contents.  Another profile shows that many functions are called just once,
so reduced paging could pay for their interpretation overhead."

The model: a program has N code pages; a fraction of its functions is
cold (touched once).  Total time = CPU execution time + page-fault stalls.
Storing code compressed shrinks the number of pages to fault in; the price
is an interpretation multiplier on the instructions executed from
compressed pages.  :func:`paging_run` computes both sides so benchmarks
can locate the crossover the paper claims.

The fetch unit need not be a uniform ``PAGE_SIZE`` guess: the seekable v3
containers (:mod:`repro.container`) demand-fetch whole *chunks*, whose
sizes a :class:`~repro.container.ContainerIndex` reports exactly.  Pass
those measured sizes as ``native_chunks``/``compressed_chunks`` and each
fault costs one service time plus the chunk's transfer time, so the model
runs on the distribution the container actually ships.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

__all__ = ["PagingConfig", "PagingResult", "chunk_faults", "paging_run",
           "working_set_pages"]

PAGE_SIZE = 4096


@dataclass
class PagingConfig:
    """Machine and workload parameters for the model."""

    page_size: int = PAGE_SIZE
    fault_seconds: float = 0.010       # disk page-fault service time (HDD era)
    cpu_seconds_per_instr: float = 1e-8
    interp_slowdown: float = 12.0      # the paper's measured BRISC penalty
    cold_fraction: float = 0.6         # fraction of code executed only once
    transfer_bytes_per_second: float = 4_000_000.0  # HDD-era streaming rate


@dataclass
class PagingResult:
    """Time breakdown for one storage strategy."""

    strategy: str
    pages_faulted: int
    fault_seconds: float
    cpu_seconds: float

    @property
    def total_seconds(self) -> float:
        return self.fault_seconds + self.cpu_seconds


def working_set_pages(code_bytes: int, page_size: int = PAGE_SIZE) -> int:
    """Pages needed to hold ``code_bytes`` of code."""
    return (code_bytes + page_size - 1) // page_size


def chunk_faults(chunks: Sequence[int],
                 config: PagingConfig = PagingConfig()) -> Tuple[int, float]:
    """(faults, stall seconds) to demand-fetch every chunk in ``chunks``.

    Each chunk is one fault: a fixed service time (seek/interrupt) plus
    its bytes at the device's streaming rate — so many small chunks pay
    in seeks, few large ones in transfer, exactly the placement trade-off
    :class:`~repro.container.ChunkPlacement` policies navigate.
    """
    for size in chunks:
        if size < 0:
            raise ValueError(f"chunk sizes must be >= 0, got {size}")
    stall = (len(chunks) * config.fault_seconds
             + sum(chunks) / config.transfer_bytes_per_second)
    return len(chunks), stall


def _faults(code_bytes: int, chunks: Optional[Sequence[int]],
            config: PagingConfig) -> Tuple[int, float]:
    """One strategy's fault count and stall time.

    With a measured chunk list, fetch units are the chunks themselves;
    without one, fall back to the uniform-page approximation (flat
    service time per page, as the original model assumed).
    """
    if chunks is not None:
        return chunk_faults(chunks, config)
    pages = working_set_pages(code_bytes, config.page_size)
    return pages, pages * config.fault_seconds


def _split_chunks(chunks: Sequence[int],
                  hot_fraction: float) -> Tuple[list, list]:
    """(hot prefix, cold suffix) splitting at ``hot_fraction`` of bytes.

    Profile-guided placement (:class:`~repro.container.HotColdPlacement`)
    lays hot chunks first, so the prefix is the hot working set.
    """
    target = sum(chunks) * hot_fraction
    acc = 0.0
    for i, size in enumerate(chunks):
        if acc >= target:
            return list(chunks[:i]), list(chunks[i:])
        acc += size
    return list(chunks), []


def paging_run(
    native_bytes: int,
    compressed_bytes: int,
    instructions_executed: int,
    config: PagingConfig = PagingConfig(),
    native_chunks: Optional[Sequence[int]] = None,
    compressed_chunks: Optional[Sequence[int]] = None,
) -> Dict[str, PagingResult]:
    """Model one cold-start run under three storage strategies.

    * ``native``: all pages faulted in as native code; CPU runs at 1x.
    * ``compressed-interpreted``: compressed pages faulted; every
      instruction pays the interpretation slowdown.
    * ``hybrid``: hot code (executed more than once) is kept native; the
      cold fraction stays compressed and is interpreted in place — the
      paper's "many functions are called just once" design point.

    ``native_chunks``/``compressed_chunks`` replace the uniform-page
    guess with a measured fetch-unit distribution (e.g. the chunk
    lengths of a v3 container index); either may be omitted to keep the
    page approximation for that side.
    """
    cpu_native = instructions_executed * config.cpu_seconds_per_instr
    native_faults, native_stall = _faults(
        native_bytes, native_chunks, config)
    compressed_faults, compressed_stall = _faults(
        compressed_bytes, compressed_chunks, config)

    results: Dict[str, PagingResult] = {}
    results["native"] = PagingResult(
        strategy="native",
        pages_faulted=native_faults,
        fault_seconds=native_stall,
        cpu_seconds=cpu_native,
    )
    results["compressed-interpreted"] = PagingResult(
        strategy="compressed-interpreted",
        pages_faulted=compressed_faults,
        fault_seconds=compressed_stall,
        cpu_seconds=cpu_native * config.interp_slowdown,
    )
    # Hybrid: cold code stays compressed (and contributes its compressed
    # fetch units + interpreted execution); hot code is native.  Cold
    # code executes only once, so its instruction share is far below its
    # byte share; approximate its dynamic share as cold_fraction * 5% of
    # executed instructions.
    cold = config.cold_fraction
    if native_chunks is not None:
        hot_native, _ = _split_chunks(native_chunks, 1 - cold)
        hot_faults, hot_stall = chunk_faults(hot_native, config)
    else:
        hot_faults, hot_stall = _faults(
            int(native_bytes * (1 - cold)), None, config)
    if compressed_chunks is not None:
        _, cold_compressed = _split_chunks(compressed_chunks, 1 - cold)
        cold_faults, cold_stall = chunk_faults(cold_compressed, config)
    else:
        cold_faults, cold_stall = _faults(
            int(compressed_bytes * cold), None, config)
    cold_dynamic_share = cold * 0.05
    cpu_hybrid = cpu_native * (
        (1 - cold_dynamic_share) + cold_dynamic_share * config.interp_slowdown
    )
    results["hybrid"] = PagingResult(
        strategy="hybrid",
        pages_faulted=hot_faults + cold_faults,
        fault_seconds=hot_stall + cold_stall,
        cpu_seconds=cpu_hybrid,
    )
    return results
