"""Textual assembly for the VM: formatter and parser.

Syntax mirrors the paper's examples::

    enter sp,sp,24
    spill.i n4,16(sp)
    ld.iw n0,4(sp)
    ble.i n4,0,$L56
    call pepper
    rjr ra

Labels are written ``$name:`` on their own line; branch targets reference
them as ``$name``.
"""

from __future__ import annotations

import re
from typing import Dict, List

from .instr import Instr, VMFunction
from .isa import FREG_NAMES, Operand, REG_NAMES, SPEC

__all__ = ["format_instr", "format_function", "parse_function"]

_REG_BY_NAME = {name: i for i, name in enumerate(REG_NAMES)}
_FREG_BY_NAME = {name: i for i, name in enumerate(FREG_NAMES)}

# Mnemonics displayed in the rd, imm(rb) addressing style.
_MEM_STYLE = re.compile(r"^(ld|st|spill|reload)\.")


def format_instr(instr: Instr) -> str:
    """Render one instruction as assembly text."""
    spec = instr.spec
    parts: List[str] = []
    for kind, value in zip(spec.signature, instr.operands):
        if kind is Operand.REG:
            parts.append(REG_NAMES[int(value)])
        elif kind is Operand.FREG:
            parts.append(FREG_NAMES[int(value)])
        elif kind is Operand.IMM:
            parts.append(str(value))
        elif kind is Operand.DIMM:
            parts.append(repr(float(value)))
        elif kind is Operand.LABEL:
            parts.append(f"${value}")
        else:  # SYM
            parts.append(str(value))
    if _MEM_STYLE.match(instr.name) and len(parts) == 3:
        # rd, imm(rb) addressing style.
        return f"{instr.name} {parts[0]},{parts[1]}({parts[2]})"
    if not parts:
        return instr.name
    return f"{instr.name} {','.join(parts)}"


def format_function(fn: VMFunction) -> str:
    """Render a whole function with interleaved labels."""
    by_index: Dict[int, List[str]] = {}
    for label, index in fn.labels.items():
        by_index.setdefault(index, []).append(label)
    lines = [f"; {fn.name} frame={fn.frame_size} params={fn.param_bytes}"]
    for i, instr in enumerate(fn.code):
        for label in by_index.get(i, ()):
            lines.append(f"${label}:")
        lines.append(f"    {format_instr(instr)}")
    for label in by_index.get(len(fn.code), ()):
        lines.append(f"${label}:")
    return "\n".join(lines)


_MEM_RE = re.compile(r"^(-?\d+)\((\w+)\)$")


def _parse_operand(kind: Operand, text: str) -> object:
    text = text.strip()
    if kind is Operand.REG:
        if text not in _REG_BY_NAME:
            raise ValueError(f"unknown register {text!r}")
        return _REG_BY_NAME[text]
    if kind is Operand.FREG:
        if text not in _FREG_BY_NAME:
            raise ValueError(f"unknown float register {text!r}")
        return _FREG_BY_NAME[text]
    if kind is Operand.IMM:
        return int(text, 0)
    if kind is Operand.DIMM:
        return float(text)
    if kind is Operand.LABEL:
        if not text.startswith("$"):
            raise ValueError(f"label operand must start with $: {text!r}")
        return text[1:]
    return text  # SYM


def parse_function(text: str, name: str = "fn") -> VMFunction:
    """Parse assembly text (as produced by :func:`format_function`)."""
    fn = VMFunction(name)
    for raw in text.splitlines():
        line = raw.split(";", 1)[0].strip()
        if not line:
            continue
        if line.startswith("$") and line.endswith(":"):
            fn.define_label(line[1:-1])
            continue
        mnemonic, _, rest = line.partition(" ")
        spec = SPEC.get(mnemonic)
        if spec is None:
            raise ValueError(f"unknown mnemonic {mnemonic!r}")
        rest = rest.strip()
        operand_texts: List[str] = []
        if rest:
            # Normalize the imm(rb) form into two operands.
            m = None
            parts = [p.strip() for p in rest.split(",")]
            expanded: List[str] = []
            for part in parts:
                m = _MEM_RE.match(part)
                if m:
                    expanded.append(m.group(1))
                    expanded.append(m.group(2))
                else:
                    expanded.append(part)
            operand_texts = expanded
        if len(operand_texts) != len(spec.signature):
            raise ValueError(
                f"{mnemonic}: expected {len(spec.signature)} operands, "
                f"got {len(operand_texts)} in {line!r}"
            )
        operands = tuple(
            _parse_operand(kind, text)
            for kind, text in zip(spec.signature, operand_texts)
        )
        fn.emit(Instr(mnemonic, operands))  # type: ignore[arg-type]
    return fn
