"""BRISC image encoding/decoding and Markov model tests."""

import pytest

import repro
from repro.brisc import compress, decompress
from repro.brisc.encode import parse_image
from repro.brisc.markov import CTX_BB, CTX_ENTRY, build_markov
from repro.brisc.slots import build_slots
from repro.corpus.samples import SAMPLES
from repro.vm import run_program


def compile_sample(name):
    return repro.compile_c(SAMPLES[name], name)


class TestMarkov:
    def test_special_contexts_exist(self):
        prog = compile_sample("wc")
        model, _ = build_markov(build_slots(prog))
        assert CTX_ENTRY in model.tables
        assert CTX_BB in model.tables

    def test_tables_ordered_by_frequency(self):
        prog = compile_sample("calc")
        model, _ = build_markov(build_slots(prog))
        for table in model.tables.values():
            assert len(table) == len(set(table))  # no duplicates

    def test_all_successor_tables_fit_a_byte(self):
        prog = compile_sample("sort")
        model, _ = build_markov(build_slots(prog))
        # The paper: "at most 244 instruction patterns can follow" any
        # pattern; our limit is 255 with escapes.
        assert model.max_successors() <= 256


class TestImageStructure:
    def test_parse_image_fields(self):
        cp = compress(compile_sample("wc"))
        image = parse_image(cp.image.blob)
        assert image.entry == "main"
        assert image.patterns
        assert image.functions
        assert CTX_ENTRY in image.tables

    def test_breakdown_sums_to_less_than_total(self):
        cp = compress(compile_sample("wc"))
        assert sum(cp.image.breakdown.values()) <= cp.image.size

    def test_code_segment_size(self):
        cp = compress(compile_sample("wc"))
        assert cp.image.code_segment_size == (
            cp.image.breakdown["code"] + cp.image.breakdown["dictionary"]
            + cp.image.breakdown["tables"])

    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError):
            parse_image(b"NOPE" + bytes(20))

    def test_opcode_plus_operand_bytes_equal_code(self):
        cp = compress(compile_sample("wc"))
        assert cp.image.opcode_bytes + cp.image.operand_bytes == \
            cp.image.breakdown["code"]


class TestRoundTrip:
    @pytest.mark.parametrize("name", ["wc", "calc", "strings", "queens"])
    def test_decompressed_program_runs_identically(self, name):
        prog = compile_sample(name)
        base = run_program(prog)
        cp = compress(prog)
        back = decompress(cp.image.blob)
        redo = run_program(back)
        assert (redo.exit_code, redo.output) == (base.exit_code, base.output)

    def test_decompressed_instruction_stream_equivalent(self):
        prog = compile_sample("wc")
        cp = compress(prog)
        back = decompress(cp.image.blob)
        # Same instruction multiset per function (labels renamed).
        for a, b in zip(prog.functions, back.functions):
            assert a.name == b.name
            assert len(a.code) == len(b.code)
            assert [i.name for i in a.code] == [i.name for i in b.code]

    def test_frame_metadata_preserved(self):
        prog = compile_sample("wc")
        back = decompress(compress(prog).image.blob)
        for a, b in zip(prog.functions, back.functions):
            assert a.frame_size == b.frame_size
            assert a.param_bytes == b.param_bytes

    def test_globals_preserved(self):
        prog = compile_sample("wc")
        back = decompress(compress(prog).image.blob)
        assert {g.name for g in back.globals} == \
            {g.name for g in prog.globals}


class TestRandomAccess:
    def test_block_starts_decodable_independently(self):
        """The defining BRISC property: decoding may begin at any basic
        block boundary (that is what the special Markov contexts buy)."""
        from repro.brisc.encode import decode_slot, symbol_names

        cp = compress(compile_sample("calc"))
        image = parse_image(cp.image.blob)
        names = symbol_names(image)
        for fn in image.functions:
            for offset in sorted(fn.bb_offsets):
                pattern, instrs, nxt = decode_slot(image, fn, offset,
                                                   CTX_BB, names)
                assert instrs
                assert nxt > offset

    def test_function_entries_decodable(self):
        from repro.brisc.encode import decode_slot, symbol_names

        cp = compress(compile_sample("strings"))
        image = parse_image(cp.image.blob)
        names = symbol_names(image)
        for fn in image.functions:
            pattern, instrs, _ = decode_slot(image, fn, 0, CTX_ENTRY, names)
            assert instrs[0].name == "enter"


class TestContainerIntegrity:
    """BRI2 framing: version byte, whole-payload CRC, legacy decode."""

    def test_new_images_are_bri2_with_crc(self):
        import zlib

        blob = compress(compile_sample("wc")).image.blob
        assert blob[:4] == b"BRI2"
        stored = int.from_bytes(blob[4:8], "little")
        assert zlib.crc32(blob[8:]) == stored

    def test_legacy_bri1_images_still_decode(self):
        blob = compress(compile_sample("wc")).image.blob
        legacy = b"BRI1" + blob[8:]  # strip the CRC, downgrade the magic
        assert decompress(legacy) == decompress(blob)

    def test_unknown_version_rejected(self):
        from repro.errors import UnsupportedFormatError

        blob = compress(compile_sample("wc")).image.blob
        with pytest.raises(UnsupportedFormatError):
            parse_image(b"BRI9" + blob[4:])

    def test_crc_catches_payload_corruption(self):
        from repro.errors import CorruptStreamError

        blob = bytearray(compress(compile_sample("wc")).image.blob)
        blob[len(blob) // 2] ^= 0x01
        with pytest.raises(CorruptStreamError):
            parse_image(bytes(blob))

    def test_truncation_is_typed(self):
        from repro.errors import DecodeError

        blob = compress(compile_sample("wc")).image.blob
        for cut in (2, 6, len(blob) // 2):
            with pytest.raises(DecodeError):
                parse_image(blob[:cut])

    def test_legacy_image_still_runs(self):
        from repro.brisc import run_image

        cp = compress(compile_sample("wc"))
        legacy = b"BRI1" + cp.image.blob[8:]
        assert run_image(legacy, stdin="two words\n").output == \
            run_image(cp.image.blob, stdin="two words\n").output
