"""VM binary encoding round-trip tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.vm.encode import (
    decode_function, decode_instr, encode_function, encode_instr,
    encoded_opcodes,
)
from repro.vm.instr import Instr, VMFunction
from repro.vm.isa import MNEMONIC, Operand, SPEC


def test_opcode_space_fits_one_byte():
    assert encoded_opcodes() <= 256


def test_opcode_count_same_magnitude_as_paper():
    """The paper's base instruction set has 224 patterns; ours is the same
    order of magnitude (mnemonics expanded by immediate width)."""
    assert 120 <= encoded_opcodes() <= 256


class TestInstrRoundtrip:
    def test_simple_alu(self):
        i = Instr("add.i", (1, 2, 3))
        blob = encode_instr(i)
        back, pos = decode_instr(blob, 0)
        assert back == i and pos == len(blob)

    def test_imm_width_selection(self):
        small = encode_instr(Instr("li", (0, 5)))
        medium = encode_instr(Instr("li", (0, 5000)))
        large = encode_instr(Instr("li", (0, 500000)))
        assert len(small) < len(medium) < len(large)

    def test_negative_immediates(self):
        for value in (-1, -128, -129, -40000, -2**31):
            i = Instr("addi.i", (1, 2, value))
            back, _ = decode_instr(encode_instr(i), 0)
            assert back.operands[2] == value

    def test_double_immediate(self):
        i = Instr("li.d", (3, 2.5))
        back, _ = decode_instr(encode_instr(i), 0)
        assert back.operands == (3, 2.5)

    def test_no_operand_instr(self):
        i = Instr("hlt", ())
        assert decode_instr(encode_instr(i), 0)[0] == i

    def test_mem_instruction(self):
        i = Instr("ld.iw", (0, 16, 14))
        back, _ = decode_instr(encode_instr(i), 0)
        assert back == i

    def test_bad_opcode_rejected(self):
        with pytest.raises(ValueError):
            decode_instr(b"\xff\x00\x00", 0)


def _random_instr(draw):
    name = draw(st.sampled_from(MNEMONIC))
    spec = SPEC[name]
    operands = []
    for kind in spec.signature:
        if kind in (Operand.REG, Operand.FREG):
            operands.append(draw(st.integers(0, 15 if kind is Operand.REG else 7)))
        elif kind is Operand.IMM:
            operands.append(draw(st.integers(-2**31, 2**31 - 1)))
        elif kind is Operand.DIMM:
            operands.append(draw(st.floats(allow_nan=False, allow_infinity=False,
                                           width=32)))
        elif kind is Operand.LABEL:
            operands.append("L0")
        else:
            operands.append("sym0")
    return Instr(name, tuple(operands))


@st.composite
def instrs(draw):
    return _random_instr(draw)


@given(st.lists(instrs(), min_size=1, max_size=30))
@settings(max_examples=60, deadline=None)
def test_function_roundtrip_property(instr_list):
    fn = VMFunction("t")
    fn.define_label("L0")
    for i in instr_list:
        fn.emit(i)
    blob = encode_function(fn, {"sym0": 3})
    back = decode_function(blob, "t")
    assert len(back.code) == len(fn.code)
    for a, b in zip(fn.code, back.code):
        assert a.name == b.name
        # Register and immediate operands must match exactly; labels and
        # symbols come back as resolved placeholders.
        for kind, av, bv in zip(a.spec.signature, a.operands, b.operands):
            if kind in (Operand.REG, Operand.FREG, Operand.IMM):
                assert av == bv
            elif kind is Operand.DIMM:
                assert av == pytest.approx(bv)


def test_function_label_offsets_resolved():
    fn = VMFunction("loop")
    fn.define_label("top")
    fn.emit(Instr("addi.i", (0, 0, 1)))
    fn.emit(Instr("blti.i", (0, 10, "top")))
    blob = encode_function(fn)
    back = decode_function(blob, "loop")
    # The branch target decodes to offset 0, the first instruction.
    target = back.code[1].operands[2]
    assert target == "@0"
    assert back.labels["@0"] == 0


def test_encode_deterministic():
    fn = VMFunction("d")
    fn.emit(Instr("li", (2, 77)))
    fn.emit(Instr("mov.i", (0, 2)))
    assert encode_function(fn) == encode_function(fn)
