"""A deflate-like compressed container: LZ77 tokens + canonical Huffman.

This is the reproduction's stand-in for gzip (the paper's final pipeline
stage and its "packaged LZ compression" baseline).  The format mirrors
DEFLATE's structure — a literal/length alphabet and a distance alphabet,
each with extra bits, both Huffman-coded — but uses a simpler header (raw
4-bit code lengths) and a single block.

Public API::

    compress(data)   -> bytes
    decompress(blob) -> bytes

Tests cross-check against :mod:`zlib` for ratio sanity, but nothing in the
library depends on zlib.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..errors import (
    CorruptStreamError, DEFAULT_LIMITS, ResourceLimits, decode_guard,
)
from .bitio import BitReader, BitWriter
from .huffman import (
    HuffmanDecoder,
    HuffmanEncoder,
    code_lengths_from_frequencies,
    read_code_lengths,
    write_code_lengths,
)
from .lz77 import Literal, Match, Token, detokenize, tokenize

__all__ = ["compress", "decompress", "compressed_size"]

_END_OF_BLOCK = 256

# DEFLATE length codes: (symbol, extra_bits, base_length).
_LENGTH_CODES: List[Tuple[int, int, int]] = []


def _build_length_codes() -> None:
    bases = [
        (257, 0, 3), (258, 0, 4), (259, 0, 5), (260, 0, 6), (261, 0, 7),
        (262, 0, 8), (263, 0, 9), (264, 0, 10), (265, 1, 11), (266, 1, 13),
        (267, 1, 15), (268, 1, 17), (269, 2, 19), (270, 2, 23), (271, 2, 27),
        (272, 2, 31), (273, 3, 35), (274, 3, 43), (275, 3, 51), (276, 3, 59),
        (277, 4, 67), (278, 4, 83), (279, 4, 99), (280, 4, 115), (281, 5, 131),
        (282, 5, 163), (283, 5, 195), (284, 5, 227), (285, 0, 258),
    ]
    _LENGTH_CODES.extend(bases)


_build_length_codes()

_DIST_CODES: List[Tuple[int, int, int]] = [
    (0, 0, 1), (1, 0, 2), (2, 0, 3), (3, 0, 4), (4, 1, 5), (5, 1, 7),
    (6, 2, 9), (7, 2, 13), (8, 3, 17), (9, 3, 25), (10, 4, 33), (11, 4, 49),
    (12, 5, 65), (13, 5, 97), (14, 6, 129), (15, 6, 193), (16, 7, 257),
    (17, 7, 385), (18, 8, 513), (19, 8, 769), (20, 9, 1025), (21, 9, 1537),
    (22, 10, 2049), (23, 10, 3073), (24, 11, 4097), (25, 11, 6145),
    (26, 12, 8193), (27, 12, 12289), (28, 13, 16385), (29, 13, 24577),
]

_LITLEN_ALPHABET = 286
_DIST_ALPHABET = 30


def _length_to_code(length: int) -> Tuple[int, int, int]:
    """Map a match length to (symbol, extra_bits, extra_value)."""
    for sym, extra, base in reversed(_LENGTH_CODES):
        if length >= base:
            return sym, extra, length - base
    raise ValueError(f"unencodable match length {length}")


def _dist_to_code(distance: int) -> Tuple[int, int, int]:
    """Map a match distance to (symbol, extra_bits, extra_value)."""
    for sym, extra, base in reversed(_DIST_CODES):
        if distance >= base:
            return sym, extra, distance - base
    raise ValueError(f"unencodable match distance {distance}")


_LENGTH_BY_SYMBOL = {sym: (extra, base) for sym, extra, base in _LENGTH_CODES}
_DIST_BY_SYMBOL = {sym: (extra, base) for sym, extra, base in _DIST_CODES}


def compress(data: bytes) -> bytes:
    """Compress ``data`` into a single self-describing block."""
    tokens = tokenize(data)
    litlen_freq = [0] * _LITLEN_ALPHABET
    dist_freq = [0] * _DIST_ALPHABET
    for tok in tokens:
        if isinstance(tok, Literal):
            litlen_freq[tok.byte] += 1
        else:
            sym, _, _ = _length_to_code(tok.length)
            litlen_freq[sym] += 1
            dsym, _, _ = _dist_to_code(tok.distance)
            dist_freq[dsym] += 1
    litlen_freq[_END_OF_BLOCK] += 1

    litlen_enc = HuffmanEncoder(code_lengths_from_frequencies(litlen_freq))
    dist_used = any(dist_freq)
    dist_enc = HuffmanEncoder(code_lengths_from_frequencies(dist_freq)) if dist_used else None

    w = BitWriter()
    w.write_bits(len(data), 32)
    write_code_lengths(w, litlen_enc.lengths)
    write_code_lengths(w, dist_enc.lengths if dist_enc else [0] * _DIST_ALPHABET)
    for tok in tokens:
        if isinstance(tok, Literal):
            litlen_enc.encode_symbol(w, tok.byte)
        else:
            sym, extra, value = _length_to_code(tok.length)
            litlen_enc.encode_symbol(w, sym)
            if extra:
                w.write_bits(value, extra)
            dsym, dextra, dvalue = _dist_to_code(tok.distance)
            assert dist_enc is not None
            dist_enc.encode_symbol(w, dsym)
            if dextra:
                w.write_bits(dvalue, dextra)
    litlen_enc.encode_symbol(w, _END_OF_BLOCK)
    return w.getvalue()


def decompress(
    blob: bytes, limits: Optional[ResourceLimits] = None
) -> bytes:
    """Invert :func:`compress`.

    The declared output size is validated against ``limits`` before any
    allocation, and the token loop stops the moment it would produce more
    bytes than the header declared — a corrupt stream raises a typed
    :class:`~repro.errors.DecodeError` instead of ballooning memory.
    """
    limits = limits or DEFAULT_LIMITS
    with decode_guard("deflate block"):
        r = BitReader(blob)
        expected = r.read_bits(32)
        limits.check("declared deflate output", expected,
                     limits.max_decoded_bytes)
        litlen_dec = HuffmanDecoder(read_code_lengths(r, limits))
        dist_lengths = read_code_lengths(r, limits)
        dist_dec = HuffmanDecoder(dist_lengths) if any(dist_lengths) else None

        tokens: List[Token] = []
        produced = 0
        while True:
            sym = litlen_dec.decode_symbol(r)
            if sym == _END_OF_BLOCK:
                break
            if sym >= _LITLEN_ALPHABET:
                raise CorruptStreamError(f"literal/length symbol {sym} "
                                         "outside the alphabet")
            if sym < 256:
                tokens.append(Literal(sym))
                produced += 1
            else:
                try:
                    extra, base = _LENGTH_BY_SYMBOL[sym]
                except KeyError:
                    raise CorruptStreamError(
                        f"invalid length symbol {sym}") from None
                length = base + (r.read_bits(extra) if extra else 0)
                if dist_dec is None:
                    raise CorruptStreamError(
                        "match token but no distance table")
                dsym = dist_dec.decode_symbol(r)
                try:
                    dextra, dbase = _DIST_BY_SYMBOL[dsym]
                except KeyError:
                    raise CorruptStreamError(
                        f"invalid distance symbol {dsym}") from None
                distance = dbase + (r.read_bits(dextra) if dextra else 0)
                tokens.append(Match(length, distance))
                produced += length
            if produced > expected:
                raise CorruptStreamError(
                    f"token stream produces more than the declared "
                    f"{expected} bytes")
        out = detokenize(tokens)
        if len(out) != expected:
            raise CorruptStreamError(
                f"decompressed {len(out)} bytes, header said {expected}")
        return out


def compressed_size(data: bytes) -> int:
    """Convenience: size in bytes of ``compress(data)``."""
    return len(compress(data))
