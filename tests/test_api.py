"""Public API surface tests: determinism, error reporting, conveniences."""

import pytest

import repro
from repro.brisc import compress
from repro.cfront.errors import CompileError, Diagnostics, Location
from repro.vm.instr import Instr, VMFunction, VMProgram


class TestCompileC:
    def test_compile_and_run(self):
        program = repro.compile_c("int main(void) { return 41 + 1; }")
        assert repro.run(program).exit_code == 42

    def test_version_string(self):
        assert repro.__version__

    def test_compile_error_carries_location(self):
        with pytest.raises(CompileError) as info:
            repro.compile_c("int main(void) { return x; }", "prog.c")
        assert "prog.c:" in str(info.value)
        assert info.value.location is not None
        assert info.value.location.filename == "prog.c"

    def test_subpackages_reachable(self):
        assert repro.brisc.compress is compress
        assert callable(repro.wire.encode_module)
        assert callable(repro.compress.deflate_compress)


class TestDeterminism:
    SRC = """
    int mix(int a, int b) { return (a ^ b) * 31 + (a >> 3); }
    int main(void) { print_int(mix(1234, 5678)); return 0; }
    """

    def test_codegen_deterministic(self):
        a = repro.compile_c(self.SRC)
        b = repro.compile_c(self.SRC)
        for fa, fb in zip(a.functions, b.functions):
            assert fa.code == fb.code
            assert fa.labels == fb.labels

    def test_brisc_image_deterministic(self):
        a = compress(repro.compile_c(self.SRC))
        b = compress(repro.compile_c(self.SRC))
        assert a.image.blob == b.image.blob

    def test_wire_deterministic(self):
        from repro.cfront import compile_to_ast
        from repro.ir import lower_unit
        from repro.wire import encode_module

        m1 = lower_unit(compile_to_ast(self.SRC, "m"), "m")
        m2 = lower_unit(compile_to_ast(self.SRC, "m"), "m")
        assert encode_module(m1) == encode_module(m2)


class TestErrors:
    def test_location_str(self):
        loc = Location("f.c", 3, 9)
        assert str(loc) == "f.c:3:9"

    def test_error_without_location(self):
        err = CompileError("boom")
        assert str(err) == "boom"

    def test_diagnostics_accumulates(self):
        d = Diagnostics(limit=5)
        d.error("one")
        d.error("two")
        assert not d.ok
        with pytest.raises(CompileError):
            d.check()

    def test_diagnostics_limit_raises(self):
        d = Diagnostics(limit=2)
        d.error("one")
        with pytest.raises(CompileError):
            d.error("two")


class TestVMProgramAPI:
    def test_function_lookup(self):
        fn = VMFunction("f")
        program = VMProgram("p", functions=[fn])
        assert program.function("f") is fn
        assert program.function_index("f") == 0
        with pytest.raises(KeyError):
            program.function("g")
        with pytest.raises(KeyError):
            program.function_index("g")

    def test_instr_validation(self):
        with pytest.raises(ValueError):
            Instr("mov.i", (1,))  # wrong arity
        with pytest.raises(ValueError):
            Instr("mov.i", (1, "x"))  # wrong operand type
        with pytest.raises(KeyError):
            Instr("bogus", ())

    def test_function_label_api(self):
        fn = VMFunction("f")
        fn.define_label("a")
        fn.emit(Instr("hlt", ()))
        assert fn.labels == {"a": 0}
        assert len(fn) == 1
        with pytest.raises(ValueError):
            fn.define_label("a")
