"""Inspect a learned BRISC dictionary.

Usage::

    python examples/explore_dictionary.py

Compresses a repetitive program and prints the dictionary entries the
greedy builder admitted, in the paper's notation — ``[ld.iw *,4(sp)]`` for
operand specialization, ``<[...],[...]>`` for opcode combination — along
with the encoded size each occurrence now costs.
"""

import repro
from repro.brisc import compress
from repro.corpus import generate_program_source


def main() -> None:
    source = generate_program_source(functions=50, seed=5)
    print("compiling a 50-function synthetic program...")
    program = repro.compile_c(source, "app")
    print(f"  {program.instruction_count()} VM instructions\n")

    print("running greedy dictionary construction (K=20)...")
    cp = compress(program)
    build = cp.build
    print(f"  passes            : {build.passes}")
    print(f"  candidates tested : {build.candidates_tested}")
    print(f"  base patterns     : {build.base_patterns}")
    print(f"  final dictionary  : {build.dictionary_size} patterns\n")

    learned = build.dictionary[build.base_patterns:]
    specialized = [p for p in learned if len(p.parts) == 1]
    combined = [p for p in learned if len(p.parts) > 1]

    print(f"== operand-specialized entries ({len(specialized)}) ==")
    for p in specialized[:15]:
        print(f"  {str(p):60s} {p.encoded_size()} B/occurrence")
    if len(specialized) > 15:
        print(f"  ... and {len(specialized) - 15} more")

    print(f"\n== opcode-combined entries ({len(combined)}) ==")
    for p in combined[:15]:
        print(f"  {str(p):72s} {p.encoded_size()} B/occurrence")
    if len(combined) > 15:
        print(f"  ... and {len(combined) - 15} more")

    print("\n== image breakdown ==")
    for part, size in cp.image.breakdown.items():
        print(f"  {part:12s} {size:7d} B")
    print(f"  {'total':12s} {cp.size:7d} B")
    print(f"\n  opcode bytes  : {cp.image.opcode_bytes}")
    print(f"  operand bytes : {cp.image.operand_bytes}")
    print(f"  max Markov successors: {cp.image.max_successors}"
          " (paper: at most 244)")


if __name__ == "__main__":
    main()
