"""Pipeline configuration: everything that changes what a stage produces.

The configuration is part of every stage's cache key, so two compiles
with different ISAs, BRISC knobs, or wire settings never share artifacts.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Optional

from ..vm.isa import ISA

if TYPE_CHECKING:  # deferred: brisc is the heaviest import
    from ..brisc.shared import SharedDictionary

__all__ = ["PipelineConfig"]

#: Wire-stream codecs: deflate (the default) or the adaptive arithmetic
#: coder (smaller, slower — the paper's "compresses best" extreme).
_WIRE_CODECS = ("deflate", "arith")


@dataclass
class PipelineConfig:
    """Knobs consumed by the stages.

    ``isa`` selects the abstract machine (the ablation variants de-tune
    it); ``brisc_*`` mirror :func:`repro.brisc.compress`'s parameters;
    ``wire_compress`` mirrors :func:`repro.wire.encode_module`'s flag.

    ``brisc_workers`` parallelizes the builder's candidate scan.  It is
    deliberately *excluded* from the brisc stage's cache-key fragment:
    the parallel builder is byte-identical to the serial one, so two
    compiles differing only in worker count share artifacts.

    ``brisc_shared_dict`` warm-starts every unit's builder from a shared
    corpus dictionary (see :mod:`repro.brisc.shared`).  Unlike
    ``brisc_workers`` it *changes the output*, so its content digest is
    hashed into the brisc stage's cache-key fragment.

    ``wire_container``/``brisc_container`` select the container layout
    (2 = the flat v2 default, 3 = the seekable chunked v3);
    ``chunk_target_bytes`` caps v3 chunk sizes (in decoded-address-space
    bytes — see the format modules).  ``wire_codec`` picks the per-stream
    entropy coder (``"deflate"`` default, ``"arith"`` for the adaptive
    arithmetic coder — smaller streams, slower to decode).  The stage
    fragments only mention these when they differ from the defaults, so
    existing cache keys are untouched.
    """

    isa: ISA = field(default_factory=ISA)
    brisc_k: int = 20
    brisc_abundant_memory: bool = False
    brisc_max_passes: int = 40
    brisc_workers: int = 1
    brisc_shared_dict: Optional["SharedDictionary"] = None
    #: Record a replay journal on brisc artifacts so a later
    #: ``Toolchain.compile(prev=...)`` can replay the build for an edited
    #: unit (see :mod:`repro.brisc.journal`).  Image bytes are unchanged,
    #: but the artifact payload grows, so this is opt-in and enters the
    #: brisc cache key only when set.
    brisc_journal: bool = False
    wire_compress: bool = True
    wire_codec: str = "deflate"
    wire_container: int = 2
    brisc_container: int = 2
    chunk_target_bytes: int = 2048

    def with_isa(self, isa: Optional[ISA]) -> "PipelineConfig":
        """A copy targeting ``isa`` (``None`` keeps the current one)."""
        return self if isa is None else replace(self, isa=isa)

    def with_container(self, wire: Optional[int] = None,
                       brisc: Optional[int] = None,
                       chunk_bytes: Optional[int] = None) -> "PipelineConfig":
        """A copy with the given container knobs overridden."""
        for version in (wire, brisc):
            if version is not None and version not in (2, 3):
                raise ValueError(
                    f"container version must be 2 or 3, got {version}")
        if chunk_bytes is not None and chunk_bytes < 1:
            raise ValueError(
                f"chunk_target_bytes must be >= 1, got {chunk_bytes}")
        return replace(
            self,
            wire_container=self.wire_container if wire is None else wire,
            brisc_container=self.brisc_container if brisc is None else brisc,
            chunk_target_bytes=(self.chunk_target_bytes
                                if chunk_bytes is None else chunk_bytes),
        )

    def with_brisc(self, k: Optional[int] = None,
                   abundant_memory: Optional[bool] = None,
                   max_passes: Optional[int] = None,
                   workers: Optional[int] = None) -> "PipelineConfig":
        """A copy with the given BRISC knobs overridden."""
        return replace(
            self,
            brisc_k=self.brisc_k if k is None else k,
            brisc_abundant_memory=(self.brisc_abundant_memory
                                   if abundant_memory is None
                                   else abundant_memory),
            brisc_max_passes=(self.brisc_max_passes
                              if max_passes is None else max_passes),
            brisc_workers=(self.brisc_workers
                           if workers is None else workers),
        )

    def with_journal(self, journal: bool = True) -> "PipelineConfig":
        """A copy recording (or not) BRISC replay journals."""
        return replace(self, brisc_journal=journal)

    def with_shared_dict(
        self, shared: Optional["SharedDictionary"]
    ) -> "PipelineConfig":
        """A copy warm-starting brisc builds from ``shared`` (``None``
        clears the warm start)."""
        return replace(self, brisc_shared_dict=shared)

    def with_wire_codec(self, codec: str) -> "PipelineConfig":
        """A copy compressing wire streams with ``codec``."""
        if codec not in _WIRE_CODECS:
            raise ValueError(
                f"wire codec must be one of {_WIRE_CODECS}, got {codec!r}")
        return replace(self, wire_codec=codec)
