"""The BRISC just-in-time compiler.

"The decompressor for BRISC uses a table of native instruction sequences
for interpretation or native code generation" — compilation is template
splicing: each dictionary pattern has a precomputed native code template
(one per target chip); compiling a function walks the compressed bytes,
resolves each opcode through the Markov context tables, appends the
pattern's template, and patches the operand bytes into the template's
holes.  No parsing, no register allocation — which is how the original hit
2.5 MB/s of produced code on a 120 MHz Pentium.

The emitted bytes are the synthetic native encodings of
:mod:`repro.native`; they are not executable, but their sizes and the
compile throughput are exactly what the paper's Table 2 measures.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..native.base import NativeTarget
from ..native.targets import PentiumLike
from ..brisc.cost import representative_instr
from ..brisc.encode import DecodedImage, parse_image
from ..brisc.markov import CTX_BB, CTX_ENTRY, ESCAPE
from ..brisc.pattern import DictPattern

__all__ = ["JITResult", "BriscJIT", "jit_compile"]

_NIBBLE_CLASSES = {"r", "f", "n4"}
_BYTE_WIDTH = {"b": 1, "h": 2, "w": 4, "l": 2, "s": 2, "d": 8}


@dataclass
class JITResult:
    """Output and throughput of one JIT compilation."""

    native_code: bytes
    compile_seconds: float
    slots_compiled: int
    input_bytes: int

    @property
    def output_bytes(self) -> int:
        return len(self.native_code)

    @property
    def mb_per_second(self) -> float:
        """Megabytes of produced native code per second (the paper's
        headline 2.5 MB/s metric)."""
        if self.compile_seconds <= 0:
            return float("inf")
        return self.output_bytes / self.compile_seconds / 1_000_000


@dataclass
class _PatternInfo:
    """Precomputed per-pattern compile info."""

    template: bytes
    operand_bytes: int  # encoded operand size in the BRISC stream
    holes: Tuple[Tuple[int, int], ...]  # (template offset, length) per part
    label_holes: Tuple[int, ...]  # template offsets of 2-byte branch targets


class BriscJIT:
    """Compiles BRISC images to native code by template splicing."""

    def __init__(self, image: bytes, target: Optional[NativeTarget] = None) -> None:
        self.image: DecodedImage = parse_image(image)
        self.target = target or PentiumLike()
        self._input_size = len(image)
        self._infos: List[_PatternInfo] = [
            self._build_info(p) for p in self.image.patterns
        ]

    def _build_info(self, pattern: DictPattern) -> _PatternInfo:
        from ..brisc.pattern import Wildcard
        from ..vm.isa import Operand, SPEC

        parts_native: List[bytes] = []
        holes: List[Tuple[int, int]] = []
        label_holes: List[int] = []
        offset = 0
        for part in pattern.parts:
            native = self.target.encode_instr(representative_instr(part))
            # The hole is the operand tail of the native instruction (all
            # bytes after the opcode+modrm prefix).
            prefix = min(2, len(native))
            holes.append((offset + prefix, len(native) - prefix))
            # Branch targets get patched in a second pass: record where the
            # native relative-offset field lands (the encoding tail).
            spec = SPEC[part.name]
            has_label_wildcard = any(
                isinstance(f, Wildcard) and k is Operand.LABEL
                for f, k in zip(part.fields, spec.signature)
            )
            if has_label_wildcard and len(native) >= prefix + 2:
                label_holes.append(offset + len(native) - 2)
            parts_native.append(native)
            offset += len(native)
        return _PatternInfo(
            template=b"".join(parts_native),
            operand_bytes=pattern.operand_bytes(),
            holes=tuple(holes),
            label_holes=tuple(label_holes),
        )

    def compile_function(self, index: int) -> Tuple[bytes, Dict[int, int]]:
        """Compile one function; returns (native bytes, BRISC offset ->
        native offset map, for branch patching)."""
        fn = self.image.functions[index]
        code = fn.code
        tables = self.image.tables
        infos = self._infos
        bb = fn.bb_offsets
        out = bytearray()
        offset_map: Dict[int, int] = {}
        patches: List[Tuple[int, int]] = []
        pos = 0
        prev: Optional[int] = None
        n = len(code)
        while pos < n:
            if pos == 0:
                ctx = CTX_ENTRY
            elif pos in bb:
                ctx = CTX_BB
            else:
                assert prev is not None
                ctx = prev
            offset_map[pos] = len(out)
            byte = code[pos]
            pos += 1
            if byte == ESCAPE:
                pid = int.from_bytes(code[pos : pos + 2], "little")
                pos += 2
            else:
                pid = tables[ctx][byte]
            info = infos[pid]
            start = len(out)
            out += info.template
            # Patch the operand bytes into the template holes.
            operand = code[pos : pos + info.operand_bytes]
            pos += info.operand_bytes
            oi = 0
            for hole_off, hole_len in info.holes:
                if oi >= len(operand) or hole_len == 0:
                    break
                chunk = operand[oi : oi + hole_len]
                out[start + hole_off : start + hole_off + len(chunk)] = chunk
                oi += len(chunk)
            for hole in info.label_holes:
                # The label operand is the trailing 2 bytes of the BRISC
                # operand payload (labels encode last among wide fields).
                target = (int.from_bytes(operand[-2:], "little")
                          if len(operand) >= 2 else 0)
                patches.append((start + hole, target))
            prev = pid
        # Branch-patching pass: rewrite each branch's native field with the
        # native offset of its BRISC target block.
        for native_pos, brisc_target in patches:
            native_target = offset_map.get(brisc_target, 0) & 0xFFFF
            out[native_pos : native_pos + 2] = native_target.to_bytes(
                2, "little")
        return bytes(out), offset_map

    def compile_program(self) -> JITResult:
        """Compile every function, measuring wall-clock throughput."""
        start = time.perf_counter()
        chunks: List[bytes] = []
        slots = 0
        for i in range(len(self.image.functions)):
            native, offset_map = self.compile_function(i)
            chunks.append(native)
            slots += len(offset_map)
        elapsed = time.perf_counter() - start
        return JITResult(
            native_code=b"".join(chunks),
            compile_seconds=elapsed,
            slots_compiled=slots,
            input_bytes=self._input_size,
        )


def jit_compile(image: bytes, target: Optional[NativeTarget] = None) -> JITResult:
    """One-shot: compile a BRISC image to native code."""
    return BriscJIT(image, target).compile_program()
