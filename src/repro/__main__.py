"""Command-line interface: compile, run, compress, and inspect C programs.

Usage::

    python -m repro run prog.c                 # compile and execute
    python -m repro dump-ir prog.c             # lcc-style trees
    python -m repro dump-asm prog.c            # RISC VM assembly
    python -m repro sizes prog.c               # every representation's size
    python -m repro sizes prog.c --json        # machine-readable sizes
    python -m repro stats prog.c               # per-stage timing/size stats
    python -m repro wire prog.c -o prog.wire   # emit the wire format
    python -m repro brisc prog.c -o prog.brisc # emit a BRISC image
    python -m repro --workers 4 brisc prog.c -o prog.brisc
                                               # parallel dictionary builder
    python -m repro brisc prog.c -o prog.brisc --shared-dict a.c b.c
                                               # corpus-warm-started build
    python -m repro exec-brisc prog.brisc      # interpret an image in place
    python -m repro verify prog.wire           # integrity-check a container
    python -m repro fuzz --seed 1 --mutations 500   # fault-injection sweep
    python -m repro serve --port 7117 --disk-cache  # long-lived service
    python -m repro client --port 7117 compile prog.c   # talk to it
    python -m repro fetch --port 7117 --function f prog.c -o f.wir
                                               # demand-page one function
    python -m repro verify f.wir --function f  # check a sparse container
    python -m repro chaos --port 7117          # fault-inject a live server
    python -m repro cluster --nodes 3          # local sharded compile farm
    python -m repro cluster --nodes 3 --chaos --kills 1
                                               # SIGKILL a node mid-batch
    python -m repro cache --prune --max-bytes 100000000  # bound the store

Every command compiles through :mod:`repro.pipeline`, so artifacts shared
between representations (parse, lower, codegen) are produced once per
invocation; ``--disk-cache`` persists them under ``~/.cache/repro/`` so
repeated invocations on unchanged sources skip recompilation entirely.
"""

from __future__ import annotations

import argparse
import json
import sys

from .brisc import run_image
from .cfront import CompileError
from .ir import dump_module
from .native import PentiumLike, SparcLike
from .pipeline import Toolchain, default_toolchain
from .vm import format_function, run_program


def _toolchain(args) -> Toolchain:
    if getattr(args, "disk_cache", False) or getattr(args, "cache_dir", None):
        toolchain = Toolchain(disk_cache=args.disk_cache,
                              cache_dir=args.cache_dir)
    else:
        toolchain = default_toolchain()
    workers = getattr(args, "workers", None)
    if workers and workers > 1:
        toolchain.config = toolchain.config.with_brisc(workers=workers)
    return toolchain


def cmd_run(args) -> int:
    res = _toolchain(args).compile_file(args.file, stages=("codegen",))
    result = run_program(res.program, max_steps=args.max_steps)
    sys.stdout.write(result.output)
    if args.stats:
        print(f"\n[{result.steps} instructions executed]", file=sys.stderr)
    return result.exit_code


def cmd_dump_ir(args) -> int:
    res = _toolchain(args).compile_file(args.file, stages=("lower",))
    print(dump_module(res.module))
    return 0


def cmd_dump_asm(args) -> int:
    res = _toolchain(args).compile_file(args.file, stages=("codegen",))
    for fn in res.program.functions:
        print(format_function(fn))
        print()
    return 0


def cmd_sizes(args) -> int:
    res = _toolchain(args).compile_file(
        args.file, stages=("codegen", "wire", "brisc", "deflate"))
    program = res.program
    sizes = res.sizes()
    sparc = SparcLike().program_size(program)
    pentium = PentiumLike().program_size(program)
    brisc_meta = res.artifact("brisc").meta
    if args.json:
        payload = {
            "unit": args.file,
            "sizes": {
                "sparc_native": sparc,
                "pentium_native": pentium,
                "vm": sizes["vm"],
                "deflate_vm": sizes["deflate_vm"],
                "wire": sizes["wire"],
                "wire_code": sizes["wire_code"],
                "brisc": sizes["brisc"],
                "brisc_code": sizes["brisc_code"],
            },
            "brisc_patterns": brisc_meta["patterns"],
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(f"SPARC-like native   : {sparc:8d} B")
    print(f"Pentium-like native : {pentium:8d} B")
    print(f"VM binary encoding  : {sizes['vm']:8d} B")
    print(f"deflate(VM code)    : {sizes['deflate_vm']:8d} B")
    print(f"wire format (code)  : {sizes['wire_code']:8d} B")
    print(f"BRISC code segment  : {sizes['brisc_code']:8d} B"
          f"  ({brisc_meta['patterns']} patterns)")
    return 0


def cmd_stats(args) -> int:
    toolchain = _toolchain(args)
    res = toolchain.compile_file(args.file)
    if args.json:
        print(json.dumps({
            "unit": args.file,
            "stages": res.stage_rows(),
            "toolchain": toolchain.stats(),
        }, indent=2, sort_keys=True, default=str))
        return 0
    from .bench.tables import stage_stats_table

    print(stage_stats_table(res.stage_rows()))
    cache = toolchain.stats()["cache"]
    print(f"\ncache: {cache['hits']} hits, {cache['misses']} misses")
    return 0


def cmd_tables(args) -> int:
    # Uses the process default toolchain (not _toolchain) because the
    # bench measurement helpers resolve default_toolchain() internally;
    # set REPRO_DISK_CACHE=1 to persist artifacts across invocations.
    from .bench import regen
    from .pipeline import default_toolchain

    try:
        report = regen.regenerate_tables(
            units=args.units, state_path=args.state,
            skip_interp=args.skip_interp, toolchain=default_toolchain())
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 1
    written = regen.write_results(report, args.results_dir)
    if args.write_experiments and regen.patch_experiments(report):
        written.append("EXPERIMENTS.md")
    failed = bool(report["churn"]) or report["hit_rate_dropped"]
    if args.json:
        payload = {k: report[k] for k in (
            "units", "statuses", "churn", "measured", "cached",
            "hit_rate", "prev_hit_rate", "hit_rate_dropped", "state_path")}
        payload["written"] = written
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 1 if args.check and failed else 0
    for name in report["units"]:
        print(f"{name}: {report['statuses'][name]}")
    for name, stages in sorted(report["churn"].items()):
        print(f"WARNING: cache-key churn for {name!r}: {', '.join(stages)} "
              f"(source unchanged but stage keys moved — cached artifacts "
              f"and table rows were invalidated by a code/config change)")
    if report["hit_rate_dropped"]:
        print(f"WARNING: toolchain cache hit-rate {report['hit_rate']:.0%} "
              f"is below the previous run's {report['prev_hit_rate']:.0%}")
    for path in written:
        print(f"wrote {path}")
    print(regen.summary_line(report))
    return 1 if args.check and failed else 0


def cmd_wire(args) -> int:
    res = _toolchain(args).compile_file(args.file, stages=("wire",))
    blob = res.wire_blob
    with open(args.output, "wb") as f:
        f.write(blob)
    print(f"wrote {len(blob)} bytes to {args.output}")
    return 0


def cmd_brisc(args) -> int:
    toolchain = _toolchain(args)
    config = toolchain.config.with_brisc(k=args.k, workers=args.workers)
    if args.shared_dict:
        units = []
        for path in args.shared_dict:
            with open(path) as f:
                units.append((path, f.read()))
        shared = toolchain.shared_dictionary(units, config=config)
        config = config.with_shared_dict(shared)
        print(f"shared dictionary: {len(shared)} patterns from "
              f"{len(units)} corpus unit(s), digest {shared.digest[:12]}")
    res = toolchain.compile_file(args.file, stages=("brisc",), config=config)
    cp = res.brisc
    with open(args.output, "wb") as f:
        f.write(cp.image.blob)
    warm = (f", {cp.build.warm_patterns} warm-started"
            if cp.build.warm_patterns else "")
    print(f"wrote {cp.size} bytes to {args.output} "
          f"(code segment {cp.image.code_segment_size}, "
          f"{cp.image.pattern_count} patterns{warm})")
    return 0


def cmd_exec_brisc(args) -> int:
    with open(args.file, "rb") as f:
        blob = f.read()
    result = run_image(blob, max_steps=args.max_steps)
    sys.stdout.write(result.output)
    return result.exit_code


def cmd_verify(args) -> int:
    """Exit 0 for a clean container, 1 for corruption, 2 for unsupported.

    With ``--function NAME`` only the chunks covering that function are
    decoded, so sparse containers produced by ``fetch`` verify cleanly.
    """
    from .brisc import decode_image
    from .errors import DecodeError, UnsupportedFormatError
    from .wire import decode_module

    with open(args.file, "rb") as f:
        blob = f.read()
    function = getattr(args, "function", None)
    try:
        if blob[:3] == b"WIR":
            if function:
                from .wire import decode_function

                fn = decode_function(blob, function)
                detail = f"wire function {fn.name!r}"
            else:
                module = decode_module(blob)
                detail = f"wire module {module.name!r}"
        elif blob[:3] == b"BRI":
            if function:
                from .brisc.encode import decode_function

                fn = decode_function(blob, function)
                detail = f"BRISC function {fn.name!r}"
            else:
                program = decode_image(blob)
                detail = f"BRISC image, {len(program.functions)} functions"
        else:
            raise UnsupportedFormatError(
                f"unrecognized container magic {blob[:4]!r}")
    except UnsupportedFormatError as exc:
        print(f"{args.file}: unsupported: {exc}", file=sys.stderr)
        return 2
    except DecodeError as exc:
        print(f"{args.file}: corrupt: {exc}", file=sys.stderr)
        return 1
    print(f"{args.file}: OK ({detail}, {len(blob)} bytes)")
    return 0


def cmd_fuzz(args) -> int:
    """Fault-injection sweep over freshly built containers; exit 0 iff the
    decode contract held for every mutation.

    The ``wire3``/``brisc3`` formats fuzz the seekable chunked
    containers: the usual byte-level sweep through the full decoder,
    plus the isolation harness that corrupts one chunk at a time and
    asserts partial reads of *other* chunks stay byte-identical.
    """
    from .brisc import decode_image
    from .faults import fuzz_chunked_container, fuzz_decoder
    from .ir import dump_module
    from .wire import decode_module

    units = [u.strip() for u in args.units.split(",") if u.strip()]
    formats = [f.strip() for f in args.formats.split(",") if f.strip()]
    unknown = set(formats) - {"wire", "brisc", "wire3", "brisc3"}
    if unknown:
        print(f"error: unknown formats {sorted(unknown)}", file=sys.stderr)
        return 2
    from .corpus import get_sample, suite_source

    toolchain = _toolchain(args)
    stages = tuple(sorted({f.rstrip("3") for f in formats}))
    config = toolchain.config.with_container(
        wire=3 if "wire3" in formats else None,
        brisc=3 if "brisc3" in formats else None,
        chunk_bytes=args.chunk_bytes)
    reports = []
    for unit in units:
        try:
            source = suite_source(unit)
        except KeyError:
            try:
                source = get_sample(unit)
            except KeyError:
                print(f"error: unknown corpus unit {unit!r}", file=sys.stderr)
                return 2
        res = toolchain.compile(source, name=unit, stages=stages,
                                config=config)
        if "wire" in formats or "wire3" in formats:
            suffix = "wire3" if "wire3" in formats else "wire"
            reports.append(fuzz_decoder(
                res.wire_blob, decode_module,
                target=f"{unit}.{suffix}", mutations=args.mutations,
                seed=args.seed, deadline=args.deadline,
                canonical=dump_module))
            print(reports[-1].summary())
        if "brisc" in formats or "brisc3" in formats:
            suffix = "brisc3" if "brisc3" in formats else "brisc"
            reports.append(fuzz_decoder(
                res.brisc.image.blob, decode_image,
                target=f"{unit}.{suffix}", mutations=args.mutations,
                seed=args.seed, deadline=args.deadline))
            print(reports[-1].summary())
        if "wire3" in formats:
            reports.append(fuzz_chunked_container(
                res.wire_blob, target=f"{unit}.wire3[chunks]",
                seed=args.seed, deadline=args.deadline))
            print(reports[-1].summary())
        if "brisc3" in formats:
            reports.append(fuzz_chunked_container(
                res.brisc.image.blob, target=f"{unit}.brisc3[chunks]",
                seed=args.seed, deadline=args.deadline))
            print(reports[-1].summary())
    failures = [f for r in reports for f in r.failures]
    for failure in failures:
        print(f"FAIL {failure.target} #{failure.index} ({failure.kind}): "
              f"{failure.outcome}: {failure.detail}", file=sys.stderr)
    total = sum(r.mutations for r in reports)
    print(f"{total} mutations across {len(reports)} containers: "
          f"{len(failures)} contract violations")
    return 1 if failures else 0


def cmd_serve(args) -> int:
    """Run the resilient service front end until SIGTERM/SIGINT, then
    drain gracefully and exit 0.

    With ``--peers host:port,...`` the node joins a cache federation:
    warm-store misses probe the listed cluster siblings over the
    ``cache_peek``/``cache_pull`` ops before falling back to a compile.
    """
    import asyncio
    import signal

    from .service import CompressionService, ServiceConfig

    config = ServiceConfig(
        host=args.host,
        port=args.port,
        max_concurrency=args.concurrency,
        max_queue=args.queue,
        default_deadline=args.deadline,
        idle_timeout=args.idle_timeout,
        breaker_threshold=args.breaker_threshold,
        breaker_reset=args.breaker_reset,
        drain_timeout=args.drain_timeout,
        cache_max_bytes=args.cache_max_bytes,
    )
    toolchain = _toolchain(args)
    if args.peers:
        from .cluster import FederatedCache, make_peers

        addresses = [a.strip() for a in args.peers.split(",") if a.strip()]
        toolchain.cache = FederatedCache(
            toolchain.cache, make_peers(addresses,
                                        timeout=args.peer_timeout))
    service = CompressionService(toolchain=toolchain, config=config)

    async def amain() -> None:
        await service.start()
        loop = asyncio.get_running_loop()

        def drain() -> None:
            asyncio.ensure_future(service.shutdown())

        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, drain)
            except NotImplementedError:  # platforms without loop signals
                signal.signal(sig, lambda *_: service._request_shutdown())
        print(f"repro-service listening on {service.config.host}:"
              f"{service.port}", flush=True)
        await service.wait_stopped()
        print("repro-service drained cleanly", flush=True)

    asyncio.run(amain())
    return 0


def cmd_client(args) -> int:
    """One request against a running service; structured errors exit 1
    (or 75, EX_TEMPFAIL, when the server says the request is retryable).

    ``--retries N`` re-sends retryable failures with jittered backoff
    before giving up; a spent budget still exits 75 so callers can keep
    distinguishing "try later" from "broken request".
    """
    from .errors import DecodeError, ServiceError
    from .service import ServiceClient

    op = args.op
    try:
        with ServiceClient(args.host, args.port, timeout=args.timeout,
                           retries=args.retries) as client:
            if op in ("compile", "wire", "brisc"):
                if not args.file:
                    print(f"error: {op} needs a source file", file=sys.stderr)
                    return 2
                with open(args.file) as f:
                    source = f.read()
                if op == "compile":
                    result = client.compile(source, name=args.file,
                                            deadline=args.deadline)
                    print(json.dumps(result, indent=2, sort_keys=True))
                else:
                    blob = (client.wire if op == "wire" else client.brisc)(
                        source, name=args.file, deadline=args.deadline)
                    if args.output:
                        with open(args.output, "wb") as f:
                            f.write(blob)
                        print(f"wrote {len(blob)} bytes to {args.output}")
                    else:
                        print(f"received {len(blob)} bytes "
                              f"(use -o to write them)")
            elif op == "verify":
                if not args.file:
                    print("error: verify needs a container file",
                          file=sys.stderr)
                    return 2
                with open(args.file, "rb") as f:
                    blob = f.read()
                result = client.verify(blob, deadline=args.deadline)
                print(json.dumps(result, indent=2, sort_keys=True))
            else:  # ping / ready / stats / shutdown
                result = client.request(op, deadline=args.deadline)
                print(json.dumps(result, indent=2, sort_keys=True))
        return 0
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 75 if getattr(exc, "retryable", False) else 1
    except DecodeError as exc:
        print(f"error: transport: {exc}", file=sys.stderr)
        return 1
    except ConnectionError as exc:
        print(f"error: cannot reach {args.host}:{args.port}: {exc}",
              file=sys.stderr)
        return 1


def cmd_fetch(args) -> int:
    """Demand-page part of a container from a running service.

    Sends ``fetch_function``/``fetch_range`` and reassembles the reply's
    segments into a sparse container: the advertised total size, with
    only the transferred ranges filled in.  ``--function`` fetches the
    chunks covering one function; ``--start``/``--length`` fetch a
    decoded-address-space span.  Exits like ``client``: structured
    errors exit 1 (75 when retryable).
    """
    from .errors import DecodeError, ServiceError
    from .service import ServiceClient

    if (args.function is None) == (args.start is None):
        print("error: fetch needs exactly one of --function or "
              "--start/--length", file=sys.stderr)
        return 2
    if args.start is not None and args.length is None:
        print("error: --start requires --length", file=sys.stderr)
        return 2
    with open(args.file) as f:
        source = f.read()
    try:
        with ServiceClient(args.host, args.port,
                           timeout=args.timeout) as client:
            if args.function is not None:
                result = client.fetch_function(
                    source, args.function, name=args.file,
                    format=args.format, chunk_bytes=args.chunk_bytes,
                    deadline=args.deadline)
                where = (f"function {args.function!r} "
                         f"(chunk(s) {result['chunks']})")
            else:
                result = client.fetch_range(
                    source, args.start, args.length, name=args.file,
                    format=args.format, chunk_bytes=args.chunk_bytes,
                    deadline=args.deadline)
                where = (f"span [{args.start}, {args.start + args.length})"
                         f" (chunk(s) {result['chunks']})")
        blob = result["blob"]
        if args.output:
            with open(args.output, "wb") as f:
                f.write(blob)
        hit = "warm" if result.get("cache_hit") else "cold"
        print(f"{args.file}: {where}: transferred "
              f"{result['transferred']} of {result['total_bytes']} "
              f"container bytes ({hit} store)"
              + (f" -> {args.output}" if args.output else ""))
        return 0
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 75 if getattr(exc, "retryable", False) else 1
    except DecodeError as exc:
        print(f"error: transport: {exc}", file=sys.stderr)
        return 1
    except ConnectionError as exc:
        print(f"error: cannot reach {args.host}:{args.port}: {exc}",
              file=sys.stderr)
        return 1


def cmd_chaos(args) -> int:
    """Chaos sweep against a live server; exit 0 iff the robustness
    contract held for every injected fault."""
    from .faults import chaos_probe

    report = chaos_probe(args.host, args.port, rounds=args.rounds,
                         seed=args.seed, timeout=args.timeout,
                         stall_seconds=args.stall_seconds)
    print(report.summary())
    for failure in report.failures:
        print(f"FAIL {failure.scenario} #{failure.index}: {failure.detail}",
              file=sys.stderr)
    return 0 if report.ok else 1


def cmd_cluster(args) -> int:
    """Spawn a local compile farm, run a corpus batch through the
    router, and report per-node cache/federation/failover accounting.

    ``--chaos`` additionally executes a seeded SIGKILL/restart schedule
    mid-batch; the run passes only if every request still completes
    byte-identical to a single-node compile and every restarted node
    (empty store) refills at least one artifact from a peer.
    """
    from .cluster import format_report, run_cluster

    units = [u.strip() for u in args.units.split(",") if u.strip()]
    from .corpus import sample_names, suite_names

    known = set(sample_names()) | set(suite_names())
    unknown = [u for u in units if u not in known]
    if unknown:
        print(f"error: unknown corpus units {unknown}", file=sys.stderr)
        return 2
    report = run_cluster(
        units,
        nodes=args.nodes,
        rounds=args.rounds,
        concurrency=args.concurrency,
        chaos=args.chaos,
        kills=args.kills,
        seed=args.seed,
        restart_after=args.restart_delay,
        deadline=args.deadline,
        retries=args.retries,
        node_concurrency=args.node_concurrency,
    )
    print(format_report(report))
    return 0 if report.ok else 1


def cmd_cache(args) -> int:
    """Inspect — and with ``--prune`` bound — the on-disk artifact cache."""
    from .pipeline.cache import DiskCache

    cache = DiskCache(args.cache_dir)
    usage = cache.usage()
    print(f"cache dir : {cache.root}")
    print(f"entries   : {usage['entries']}")
    print(f"bytes     : {usage['bytes']}")
    if args.prune:
        if args.max_bytes is None:
            print("error: --prune requires --max-bytes", file=sys.stderr)
            return 2
        result = cache.prune(args.max_bytes)
        print(f"pruned    : {result['removed_entries']} entries "
              f"({result['removed_bytes']} bytes) evicted, "
              f"{result['kept_entries']} entries "
              f"({result['kept_bytes']} bytes) kept")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Code Compression (PLDI 1997) reproduction toolchain",
    )
    parser.add_argument("--disk-cache", action="store_true",
                        help="persist pipeline artifacts under ~/.cache/repro")
    parser.add_argument("--cache-dir", default=None,
                        help="artifact cache directory (implies --disk-cache)")
    parser.add_argument("--workers", type=int, default=1,
                        help="processes for the BRISC dictionary builder's "
                             "candidate scan (output is byte-identical for "
                             "any worker count; default 1)")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("run", help="compile a C file and execute it")
    p.add_argument("file")
    p.add_argument("--max-steps", type=int, default=200_000_000)
    p.add_argument("--stats", action="store_true")
    p.set_defaults(fn=cmd_run)

    p = sub.add_parser("dump-ir", help="print the lcc-style trees")
    p.add_argument("file")
    p.set_defaults(fn=cmd_dump_ir)

    p = sub.add_parser("dump-asm", help="print the RISC VM assembly")
    p.add_argument("file")
    p.set_defaults(fn=cmd_dump_asm)

    p = sub.add_parser("sizes", help="compare representation sizes")
    p.add_argument("file")
    p.add_argument("--json", action="store_true",
                   help="machine-readable per-representation sizes")
    p.set_defaults(fn=cmd_sizes)

    p = sub.add_parser("stats", help="per-stage pipeline timing/size stats")
    p.add_argument("file")
    p.add_argument("--json", action="store_true")
    p.set_defaults(fn=cmd_stats)

    p = sub.add_parser(
        "tables",
        help="regenerate the EXPERIMENTS.md tables incrementally, "
             "re-measuring only units whose source or stage keys changed")
    p.add_argument("--units", nargs="+", metavar="UNIT", default=None,
                   help="suite units to rebuild (default: the full suite)")
    p.add_argument("--state",
                   default="benchmarks/results/tables_state.json",
                   help="state file recording per-unit source digests, "
                        "stage keys, and measured rows")
    p.add_argument("--results-dir", default="benchmarks/results",
                   help="directory receiving table1.txt..table3.txt")
    p.add_argument("--skip-interp", action="store_true",
                   help="skip the slow BRISC interpreter-overhead run "
                        "(Table 2 'interp' column reads nan)")
    p.add_argument("--write-experiments", action="store_true",
                   help="also patch the marker-delimited block in "
                        "EXPERIMENTS.md")
    p.add_argument("--check", action="store_true",
                   help="exit 1 on cache-key churn or a hit-rate drop")
    p.add_argument("--json", action="store_true")
    p.set_defaults(fn=cmd_tables)

    p = sub.add_parser("wire", help="emit the wire format")
    p.add_argument("file")
    p.add_argument("-o", "--output", required=True)
    p.set_defaults(fn=cmd_wire)

    p = sub.add_parser("brisc", help="compress to a BRISC image")
    p.add_argument("file")
    p.add_argument("-o", "--output", required=True)
    p.add_argument("-k", type=int, default=20,
                   help="patterns admitted per pass (paper: 20)")
    p.add_argument("--shared-dict", nargs="+", metavar="SRC", default=None,
                   help="C sources forming a corpus; their shared BRISC "
                        "dictionary (content-addressed, cached, federated "
                        "like any artifact) warm-starts this unit's build")
    p.set_defaults(fn=cmd_brisc)

    p = sub.add_parser("exec-brisc", help="interpret a BRISC image in place")
    p.add_argument("file")
    p.add_argument("--max-steps", type=int, default=200_000_000)
    p.set_defaults(fn=cmd_exec_brisc)

    p = sub.add_parser("verify",
                       help="integrity-check a wire or BRISC container")
    p.add_argument("file")
    p.add_argument("--function", default=None,
                   help="verify only the chunks covering this function "
                        "(works on sparse containers from `fetch`)")
    p.set_defaults(fn=cmd_verify)

    p = sub.add_parser("fuzz",
                       help="seeded fault-injection sweep over the decoders")
    p.add_argument("--seed", type=int, default=1997)
    p.add_argument("--mutations", type=int, default=500,
                   help="mutations per container (default 500)")
    p.add_argument("--deadline", type=float, default=10.0,
                   help="seconds a single decode may take (default 10)")
    p.add_argument("--units", default="wc",
                   help="comma-separated corpus units (default: wc)")
    p.add_argument("--formats", default="wire,brisc",
                   help="container kinds to fuzz: wire, brisc, and the "
                        "chunked wire3/brisc3 (default: wire,brisc)")
    p.add_argument("--chunk-bytes", type=int, default=512,
                   help="chunk size cap for the wire3/brisc3 formats "
                        "(default 512, small enough for several chunks)")
    p.set_defaults(fn=cmd_fuzz)

    p = sub.add_parser("serve",
                       help="run the resilient service front end")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=7117,
                   help="TCP port (0 picks an ephemeral one; default 7117)")
    p.add_argument("--concurrency", type=int, default=4,
                   help="pipeline requests running at once (default 4)")
    p.add_argument("--queue", type=int, default=16,
                   help="admitted-but-waiting bound before load shedding "
                        "(default 16)")
    p.add_argument("--deadline", type=float, default=30.0,
                   help="default per-request deadline in seconds "
                        "(default 30)")
    p.add_argument("--idle-timeout", type=float, default=300.0,
                   help="reap connections idle/stalled this long "
                        "(default 300)")
    p.add_argument("--breaker-threshold", type=int, default=5,
                   help="consecutive unit failures that trip the circuit "
                        "breaker (default 5)")
    p.add_argument("--breaker-reset", type=float, default=5.0,
                   help="seconds until an open breaker half-opens "
                        "(default 5)")
    p.add_argument("--drain-timeout", type=float, default=10.0,
                   help="grace for in-flight work at shutdown (default 10)")
    p.add_argument("--cache-max-bytes", type=int, default=None,
                   help="prune the disk cache to this bound at drain")
    p.add_argument("--peers", default=None,
                   help="comma-separated host:port cluster siblings; warm-"
                        "store misses probe them before recompiling")
    p.add_argument("--peer-timeout", type=float, default=2.0,
                   help="per-peer socket timeout for federation probes "
                        "(default 2)")
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser("client",
                       help="send one request to a running service")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=7117)
    p.add_argument("--timeout", type=float, default=30.0,
                   help="socket timeout in seconds (default 30)")
    p.add_argument("--deadline", type=float, default=None,
                   help="per-request deadline passed to the server")
    p.add_argument("--retries", type=int, default=0,
                   help="auto-retry budget for retryable/transport "
                        "failures (default 0: fail fast)")
    p.add_argument("op", choices=["ping", "ready", "stats", "shutdown",
                                  "compile", "wire", "brisc", "verify"])
    p.add_argument("file", nargs="?",
                   help="source file (compile/wire/brisc) or container "
                        "(verify)")
    p.add_argument("-o", "--output", default=None,
                   help="where wire/brisc write the received blob")
    p.set_defaults(fn=cmd_client)

    p = sub.add_parser("fetch",
                       help="demand-page one function or byte span of a "
                            "container from a running service")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=7117)
    p.add_argument("--timeout", type=float, default=30.0)
    p.add_argument("--deadline", type=float, default=None)
    p.add_argument("--format", choices=["wire", "brisc"], default="wire",
                   help="container format to fetch from (default wire)")
    p.add_argument("--function", default=None,
                   help="fetch the chunks covering this function")
    p.add_argument("--start", type=int, default=None,
                   help="decoded-address-space span start (with --length)")
    p.add_argument("--length", type=int, default=None)
    p.add_argument("--chunk-bytes", type=int, default=None,
                   help="chunk size cap used when the server (re)builds "
                        "the seekable container")
    p.add_argument("file", help="C source file the service compiles "
                                "(or finds warm in its store)")
    p.add_argument("-o", "--output", default=None,
                   help="write the sparse container here")
    p.set_defaults(fn=cmd_fetch)

    p = sub.add_parser("chaos",
                       help="fault-inject a live service (corrupt frames, "
                            "stalls, disconnects)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=7117)
    p.add_argument("--rounds", type=int, default=15)
    p.add_argument("--seed", type=int, default=1997)
    p.add_argument("--timeout", type=float, default=5.0)
    p.add_argument("--stall-seconds", type=float, default=0.2)
    p.set_defaults(fn=cmd_chaos)

    p = sub.add_parser("cluster",
                       help="spawn a local compile farm (router + N nodes) "
                            "and run a corpus batch through it")
    p.add_argument("--nodes", type=int, default=3,
                   help="service nodes to spawn (default 3)")
    p.add_argument("--units", default="wc,sort,calc,lzss,hashtab,crc32",
                   help="comma-separated corpus units for the batch")
    p.add_argument("--rounds", type=int, default=2,
                   help="sweeps of the unit list (default 2: cold + warm)")
    p.add_argument("--concurrency", type=int, default=4,
                   help="concurrent client threads (default 4)")
    p.add_argument("--node-concurrency", type=int, default=2,
                   help="worker threads per node (default 2)")
    p.add_argument("--chaos", action="store_true",
                   help="SIGKILL and restart nodes mid-batch on a seeded "
                        "schedule; assert completion + federation refill")
    p.add_argument("--kills", type=int, default=1,
                   help="node kills in chaos mode (default 1)")
    p.add_argument("--seed", type=int, default=1997,
                   help="chaos schedule seed (default 1997)")
    p.add_argument("--restart-delay", type=float, default=1.5,
                   help="seconds a killed node stays down (default 1.5)")
    p.add_argument("--deadline", type=float, default=30.0,
                   help="per-request deadline (default 30)")
    p.add_argument("--retries", type=int, default=4,
                   help="client retry budget per request (default 4)")
    p.set_defaults(fn=cmd_cluster)

    p = sub.add_parser("cache",
                       help="inspect or prune the on-disk artifact cache")
    p.add_argument("--prune", action="store_true",
                   help="evict oldest-mtime entries down to --max-bytes")
    p.add_argument("--max-bytes", type=int, default=None)
    p.set_defaults(fn=cmd_cache)

    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except CompileError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except BrokenPipeError:  # output piped into head etc.
        return 0
    except OSError as exc:  # unreadable input / unwritable output
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
