"""Cluster layer tests: hash ring, federation, router failover, chaos.

Covers the acceptance criteria of the sharded-compile-farm change:

* the consistent-hash ring is deterministic, balanced, and stable —
  removing a node remaps only that node's keys;
* ``cache_peek``/``cache_pull`` serve warm-store entries across nodes
  with CRC verification, and ``absorb_bytes`` is a validated byte copy
  (garbage is rejected, never stored);
* a :class:`FederatedCache` fills a local miss from a live peer without
  recompiling, byte-identical to the peer's artifact;
* the router keeps serving through a node death: the hash slot moves to
  the ring successor, transport failures replay, structured errors are
  relayed verbatim, and zero live nodes sheds with a retryable error;
* the subprocess harness completes a batch byte-identical to a
  single-node compile, including under a seeded SIGKILL/restart.
"""

import threading
import time
from random import Random

import pytest

from repro.cluster import (
    ArtifactPeer, BackgroundRouter, ClusterRouter, FederatedCache, HashRing,
    RouterConfig, parse_address,
)
from repro.faults import node_kill_schedule
from repro.pipeline import default_toolchain
from repro.pipeline.cache import DiskCache, MemoryCache, TieredCache
from repro.service import (
    BackgroundService, CompressionService, RemoteServiceError,
    ServiceClient, ServiceConfig,
)

HELLO = """
int sq(int x) { return x * x; }
int main(void) { print_int(sq(7)); putchar('\\n'); return 0; }
"""

UNITS = ["wc", "sort", "calc", "lzss", "hashtab", "crc32", "life", "queens"]


def make_service(**overrides):
    defaults = dict(port=0, idle_timeout=2.0, drain_timeout=5.0,
                    shed_retry_after=0.05)
    defaults.update(overrides)
    return BackgroundService(CompressionService(
        config=ServiceConfig(**defaults)))


def wait_until(predicate, timeout=5.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


# ---------------------------------------------------------------------------
# consistent-hash ring
# ---------------------------------------------------------------------------


def test_ring_is_deterministic_and_total():
    ring = HashRing(["a:1", "b:2", "c:3"])
    again = HashRing(["c:3", "a:1", "b:2"])  # construction order irrelevant
    for unit in UNITS:
        assert ring.node_for(unit) == again.node_for(unit)
        assert ring.node_for(unit) in ("a:1", "b:2", "c:3")


def test_ring_removal_only_remaps_the_dead_nodes_keys():
    nodes = ["a:1", "b:2", "c:3", "d:4"]
    ring = HashRing(nodes)
    keys = [f"unit-{i}" for i in range(200)]
    before = {key: ring.node_for(key) for key in keys}
    ring.remove_node("b:2")
    for key in keys:
        after = ring.node_for(key)
        if before[key] != "b:2":
            assert after == before[key]  # stability: untouched keys stay
        else:
            assert after != "b:2"


def test_ring_alive_filter_walks_past_dead_nodes_without_mutation():
    ring = HashRing(["a:1", "b:2", "c:3"])
    owned_by_a = [k for k in (f"k{i}" for i in range(100))
                  if ring.node_for(k) == "a:1"]
    assert owned_by_a
    for key in owned_by_a:
        rerouted = ring.node_for(key, alive={"b:2", "c:3"})
        assert rerouted in ("b:2", "c:3")
    # The ring itself was not mutated: full membership still owns as before.
    assert all(ring.node_for(k) == "a:1" for k in owned_by_a)
    assert ring.node_for("anything", alive=set()) is None


def test_ring_preference_lists_distinct_nodes_in_walk_order():
    ring = HashRing(["a:1", "b:2", "c:3"])
    pref = ring.preference("wc")
    assert sorted(pref) == ["a:1", "b:2", "c:3"]
    assert pref[0] == ring.node_for("wc")
    assert ring.preference("wc", alive={"b:2"}) == ["b:2"]


def test_ring_spread_is_roughly_balanced():
    ring = HashRing([f"n{i}:1" for i in range(4)], replicas=64)
    spread = ring.spread([f"key-{i}" for i in range(400)])
    assert sum(spread.values()) == 400
    assert min(spread.values()) > 0  # no starved node at this scale


# ---------------------------------------------------------------------------
# seeded kill schedules
# ---------------------------------------------------------------------------


def test_kill_schedule_is_deterministic_and_bounded():
    one = node_kill_schedule(4, 3, seed=11, window=20.0, restart_after=2.0)
    two = node_kill_schedule(4, 3, seed=11, window=20.0, restart_after=2.0)
    assert one == two
    assert len(one) == 3
    for kill in one:
        assert 0 <= kill.node < 4
        assert 2.0 <= kill.at <= 18.0  # middle 80% of the window
        assert kill.restart_at == kill.at + 2.0
    assert [k.at for k in one] == sorted(k.at for k in one)
    # With kills <= nodes, no node dies twice.
    assert len({k.node for k in one}) == 3
    assert one != node_kill_schedule(4, 3, seed=12, window=20.0,
                                     restart_after=2.0)


def test_kill_schedule_validates_arguments():
    with pytest.raises(ValueError):
        node_kill_schedule(0, 1)
    with pytest.raises(ValueError):
        node_kill_schedule(2, -1)
    with pytest.raises(ValueError):
        node_kill_schedule(2, 1, window=0.0)


# ---------------------------------------------------------------------------
# cache federation hooks (peek_bytes / absorb_bytes)
# ---------------------------------------------------------------------------


def _one_artifact():
    toolchain = default_toolchain()
    toolchain.compile(HELLO, name="hook.c", stages=("wire",))
    cache = toolchain.cache
    key = next(iter(cache._entries))  # noqa: SLF001 - test reaches inside
    return key, cache


def test_memory_cache_peek_and_absorb_round_trip():
    key, cache = _one_artifact()
    blob = cache.peek_bytes(key)
    assert blob is not None
    other = MemoryCache()
    assert other.peek_bytes(key) is None
    artifact = other.absorb_bytes(key, blob)
    assert artifact is not None and artifact.key == key
    original = cache.get(key)
    copied = other.get(key)
    assert (copied.stage, copied.unit, copied.size) == \
        (original.stage, original.unit, original.size)
    assert other.peek_bytes(key) == blob


def test_disk_cache_absorb_is_a_byte_copy(tmp_path):
    key, cache = _one_artifact()
    blob = cache.peek_bytes(key)
    disk = DiskCache(tmp_path / "store")
    assert disk.absorb_bytes(key, blob) is not None
    # The merged entry is the peer's bytes verbatim, not a re-pickle.
    assert disk.peek_bytes(key) == blob
    assert disk.get(key).key == key


def test_absorb_rejects_garbage_and_stores_nothing(tmp_path):
    disk = DiskCache(tmp_path / "store")
    memory = MemoryCache()
    tiered = TieredCache(MemoryCache(), DiskCache(tmp_path / "tiered"))
    for cache in (disk, memory, tiered):
        assert cache.absorb_bytes("ab" * 32, b"not a pickled artifact") is None
        assert cache.peek_bytes("ab" * 32) is None
        assert cache.get("ab" * 32) is None


# ---------------------------------------------------------------------------
# cache ops on a live node
# ---------------------------------------------------------------------------


def test_cache_peek_and_pull_round_trip_on_live_node():
    with make_service() as bg:
        with ServiceClient(port=bg.port, timeout=10.0) as client:
            client.compile(HELLO, name="peer.c")
            cache = bg.service.toolchain.cache
            key = next(iter(cache._entries))  # noqa: SLF001
            size = client.cache_peek(key)
            assert size is not None and size > 0
            blob = client.cache_pull(key)
            assert blob is not None and len(blob) == size
            assert blob == cache.peek_bytes(key)
            # An absent (but well-formed) key answers present=False.
            assert client.cache_peek("0" * 64) is None
            assert client.cache_pull("0" * 64) is None
            # Federation accounting shows the served pull.
            out = client.stats()["service"]["federation_out"]
            assert out["pulls"] == 1 and out["bytes"] == size


def test_cache_op_rejects_malformed_keys():
    with make_service() as bg:
        with ServiceClient(port=bg.port, timeout=10.0) as client:
            for bad in ("", "short", "UPPER" * 13, "zz" * 32, "../etc"):
                with pytest.raises(RemoteServiceError) as exc_info:
                    client.request("cache_peek", key=bad)
                assert exc_info.value.taxonomy == "decode"
            assert client.ping()["pong"]  # connection survived


def test_federated_cache_fills_from_live_peer_without_recompiling():
    with make_service() as peer_node:
        with ServiceClient(port=peer_node.port, timeout=10.0) as client:
            client.compile(HELLO, name="shared.c")
        peer_cache = peer_node.service.toolchain.cache
        address = f"127.0.0.1:{peer_node.port}"
        peer = ArtifactPeer(address, timeout=5.0)
        local = FederatedCache(MemoryCache(), [peer])
        try:
            for key in list(peer_cache._entries):  # noqa: SLF001
                artifact = local.get(key)
                assert artifact is not None, "fill from peer failed"
                original = peer_cache.get(key)
                assert (artifact.stage, artifact.unit, artifact.size) == \
                    (original.stage, original.unit, original.size)
            stats = local.stats()
            assert stats["federation"]["fills"] == len(peer_cache._entries)
            assert stats["federation"]["fill_bytes"] > 0
            assert stats["misses"] == 0
            # Second read is a plain local hit — no new probes.
            probes = stats["federation"]["probes"]
            assert local.get(key) is not None
            assert local.stats()["federation"]["probes"] == probes
        finally:
            local.close()


def test_fleet_dictionary_federates_between_nodes():
    """The corpus shared dictionary is a cache entry like any other: a
    node that already built it serves it over ``cache_pull``, so a fresh
    node warm-starts without re-running the corpus build."""
    from repro.pipeline import Toolchain

    corpus = [("hello.c", HELLO), ("twice.c", HELLO.replace("sq", "dbl"))]
    with make_service() as peer_node:
        shared = peer_node.service.toolchain.shared_dictionary(corpus)
        address = f"127.0.0.1:{peer_node.port}"
        local_cache = FederatedCache(
            MemoryCache(), [ArtifactPeer(address, timeout=5.0)])
        local = Toolchain(cache=local_cache)
        try:
            fetched = local.shared_dictionary(corpus)
            assert fetched.digest == shared.digest
            assert [str(p) for p in fetched.patterns] == \
                [str(p) for p in shared.patterns]
            row = local.stats()["stages"]["shared-dict"]
            assert row["runs"] == 0 and row["cache_hits"] == 1
            assert local_cache.stats()["federation"]["fills"] >= 1
        finally:
            local_cache.close()


def test_federated_cache_misses_cleanly_when_peer_is_down():
    dead = ArtifactPeer("127.0.0.1:1")  # nothing listens on port 1
    local = FederatedCache(MemoryCache(), [dead])
    assert local.get("ab" * 32) is None
    stats = local.stats()
    assert stats["misses"] == 1 and stats["federation"]["fills"] == 0
    local.close()


def test_parse_address_validation():
    assert parse_address("127.0.0.1:7117") == ("127.0.0.1", 7117)
    for bad in ("no-port", ":7117", "host:", "host:abc"):
        with pytest.raises(ValueError):
            parse_address(bad)


# ---------------------------------------------------------------------------
# router: affinity, health, failover
# ---------------------------------------------------------------------------


def _cluster(count, **node_overrides):
    """``count`` in-process nodes plus a router, all on ephemeral ports."""
    nodes = [make_service(**node_overrides) for _ in range(count)]
    for node in nodes:
        node.start()
    addresses = [f"127.0.0.1:{node.port}" for node in nodes]
    router = BackgroundRouter(addresses, RouterConfig(
        host="127.0.0.1", health_interval=0.1, connect_timeout=1.0,
        probe_timeout=1.0))
    router.start()
    assert router.wait_alive(count, timeout=10.0)
    return nodes, addresses, router


def _teardown(nodes, router):
    router.stop()
    for node in nodes:
        node.stop()


def test_router_config_validation():
    with pytest.raises(ValueError):
        ClusterRouter([])
    with pytest.raises(ValueError):
        ClusterRouter(["a:1", "a:1"])
    with pytest.raises(ValueError):
        RouterConfig(health_interval=0.0)
    with pytest.raises(ValueError):
        RouterConfig(replay_budget=-1)


def test_router_answers_control_ops_itself():
    nodes, addresses, router = _cluster(2)
    try:
        with ServiceClient(port=router.port, timeout=10.0) as client:
            assert client.ping() == {"pong": True, "router": True}
            ready = client.ready()
            assert ready["ready"] is True
            assert ready["nodes"] == 2
            assert sorted(ready["alive"]) == sorted(addresses)
            stats = client.stats()
            assert set(stats["nodes"]) == set(addresses)
            for node_stats in stats["nodes"].values():
                assert node_stats["alive"] is True
                assert "stats" in node_stats  # the node's own counters
    finally:
        _teardown(nodes, router)


def test_router_routes_by_unit_affinity():
    nodes, addresses, router = _cluster(2)
    try:
        ring = HashRing(addresses, replicas=RouterConfig().replicas)
        with ServiceClient(port=router.port, timeout=15.0) as client:
            for unit in ("wc.c", "sort.c", "calc.c"):
                client.compile(HELLO, name=unit)
                client.compile(HELLO, name=unit)  # warm repeat, same node
        with ServiceClient(port=router.port, timeout=10.0) as client:
            per_node = client.stats()["nodes"]
        owners = {ring.node_for(unit) for unit in ("wc.c", "sort.c",
                                                   "calc.c")}
        # Every forward landed on a ring-predicted owner; a node owning
        # none of the units saw zero traffic.
        for address, node_stats in per_node.items():
            if address not in owners:
                assert node_stats["forwards"] == 0
        assert sum(n["forwards"] for n in per_node.values()) == 6
    finally:
        _teardown(nodes, router)


def test_router_fails_over_to_ring_successor_on_node_death():
    nodes, addresses, router = _cluster(3)
    try:
        ring = HashRing(addresses, replicas=RouterConfig().replicas)
        unit = "victim.c"
        owner = ring.node_for(unit)
        victim = nodes[addresses.index(owner)]
        with ServiceClient(port=router.port, timeout=15.0,
                           retries=4) as client:
            assert client.compile(HELLO, name=unit)["sizes"]["vm"] > 0
            victim.stop()  # the owner dies; its slot must move
            assert wait_until(
                lambda: owner not in router.router.alive_nodes(),
                timeout=10.0)
            reply = client.compile(HELLO, name=unit)
            assert reply["sizes"]["vm"] > 0  # served by the successor
            stats = client.stats()
            assert stats["nodes"][owner]["alive"] is False
            assert stats["router"]["failovers"] >= 1
    finally:
        _teardown(nodes, router)


def test_router_replays_transport_failure_within_one_request():
    """A request forwarded to a node that died before the health loop
    noticed is replayed on the ring successor, not surfaced: the client
    sees one successful reply."""
    nodes = [make_service() for _ in range(2)]
    for node in nodes:
        node.start()
    addresses = [f"127.0.0.1:{node.port}" for node in nodes]
    # Health interval far beyond the test: the router keeps believing
    # its startup view, so the kill below goes unnoticed until the
    # forward itself fails at the transport.
    router = BackgroundRouter(addresses, RouterConfig(
        host="127.0.0.1", health_interval=30.0, connect_timeout=1.0,
        probe_timeout=2.0))
    router.start()
    try:
        assert router.wait_alive(2, timeout=10.0)
        # Handles start alive optimistically, so wait_alive can return
        # while the first probe round is still in flight; stop the node
        # only after every probe verdict is in, or the in-flight probe
        # could mark the victim dead and no replay would be needed.
        assert wait_until(
            lambda: all(h.probes >= 1 for h in router.router.nodes.values()),
            timeout=10.0)
        ring = HashRing(addresses, replicas=RouterConfig().replicas)
        unit = "inflight.c"
        owner = ring.node_for(unit)
        victim = nodes[addresses.index(owner)]
        victim.stop()  # router still lists it alive
        assert owner in router.router.alive_nodes()
        with ServiceClient(port=router.port, timeout=20.0) as client:
            reply = client.compile(HELLO, name=unit, deadline=15.0)
            assert reply["sizes"]["vm"] > 0  # replayed onto the survivor
            stats = client.stats()
            assert stats["router"]["replays"] >= 1
            assert stats["nodes"][owner]["alive"] is False  # marked on fail
    finally:
        _teardown(nodes, router)


def test_router_sheds_retryably_with_no_live_nodes():
    nodes, addresses, router = _cluster(1)
    try:
        nodes[0].stop()
        assert wait_until(lambda: not router.router.alive_nodes(),
                          timeout=10.0)
        with ServiceClient(port=router.port, timeout=10.0) as client:
            with pytest.raises(RemoteServiceError) as exc_info:
                client.compile(HELLO, name="nowhere.c")
            error = exc_info.value
            assert error.error_type == "OverloadedError"
            assert error.retryable and error.retry_after > 0
            assert client.ready()["ready"] is False
    finally:
        _teardown(nodes, router)


def test_router_relays_structured_errors_verbatim():
    nodes, addresses, router = _cluster(2)
    try:
        with ServiceClient(port=router.port, timeout=15.0) as client:
            with pytest.raises(RemoteServiceError) as exc_info:
                client.compile("int main(void) { return undeclared; }",
                               name="bad.c")
            # The node's compile-taxonomy error arrives untouched.
            assert exc_info.value.taxonomy == "compile"
            assert not exc_info.value.retryable
            with pytest.raises(RemoteServiceError) as exc_info:
                client.sleep(5.0, deadline=0.05, name="late.c")
            assert exc_info.value.error_type == "DeadlineExceededError"
    finally:
        _teardown(nodes, router)


def test_router_readmits_a_restarted_node():
    nodes, addresses, router = _cluster(2)
    try:
        nodes[0].stop()
        assert wait_until(
            lambda: len(router.router.alive_nodes()) == 1, timeout=10.0)
        # A new node on the same port is impossible for BackgroundService
        # (ephemeral bind), so re-admit is asserted via marked_up after a
        # fresh listener appears on the address: skip the rebind and
        # check the health loop only ever re-admits on a live probe.
        snapshot = router.router.nodes[addresses[0]].snapshot()
        assert snapshot["alive"] is False
        assert snapshot["marked_down"] == 1
    finally:
        _teardown(nodes, router)


def test_router_shutdown_op_drains():
    nodes, addresses, router = _cluster(1)
    try:
        with ServiceClient(port=router.port, timeout=10.0) as client:
            assert client.shutdown() == {"draining": True}
        assert wait_until(lambda: router.router.draining, timeout=5.0)
    finally:
        _teardown(nodes, router)


# ---------------------------------------------------------------------------
# client auto-retry
# ---------------------------------------------------------------------------


def test_client_retries_shed_requests_until_capacity_frees():
    with make_service(max_concurrency=1, max_queue=0,
                      shed_retry_after=0.05) as bg:
        def occupy():
            with ServiceClient(port=bg.port, timeout=20.0) as holder:
                holder.sleep(0.6, deadline=15.0, name="hold")

        worker = threading.Thread(target=occupy)
        worker.start()
        with ServiceClient(port=bg.port, timeout=10.0) as probe:
            assert wait_until(
                lambda: probe.stats()["service"]["inflight"] == 1)
        with ServiceClient(port=bg.port, timeout=15.0, retries=20,
                           rng=Random(7)) as client:
            # Budget large enough to outlast the occupier: succeeds.
            assert client.compile(HELLO, name="patient.c")["sizes"]["vm"] > 0
        worker.join(10.0)


def test_client_retry_budget_exhaustion_propagates_the_error():
    with make_service(max_concurrency=1, max_queue=0,
                      shed_retry_after=0.02) as bg:
        def occupy():
            with ServiceClient(port=bg.port, timeout=20.0) as holder:
                holder.sleep(1.0, deadline=15.0, name="hold")

        worker = threading.Thread(target=occupy)
        worker.start()
        with ServiceClient(port=bg.port, timeout=10.0) as probe:
            assert wait_until(
                lambda: probe.stats()["service"]["inflight"] == 1)
        with ServiceClient(port=bg.port, timeout=10.0, rng=Random(7)) as c:
            with pytest.raises(RemoteServiceError) as exc_info:
                c.request("compile", retries=2, source=HELLO,
                          name="impatient.c")
            assert exc_info.value.error_type == "OverloadedError"
            assert exc_info.value.retryable  # exit-75 contract intact
        worker.join(10.0)


def test_client_backoff_honors_retry_after_floor_and_cap():
    client = ServiceClient(backoff_base=0.01, backoff_max=0.5,
                           rng=Random(0))
    for attempt in range(8):
        delay = client._backoff(attempt, None)  # noqa: SLF001
        assert 0.0 <= delay <= 0.5
    assert client._backoff(0, 0.2) >= 0.2  # noqa: SLF001
    assert client._backoff(9, 99.0) == 0.5  # noqa: SLF001 - capped
    with pytest.raises(ValueError):
        ServiceClient(retries=-1)
    with pytest.raises(ValueError):
        ServiceClient(backoff_base=0.0)


def test_client_reconnects_through_an_idle_reaped_connection():
    with make_service(idle_timeout=0.3) as bg:
        with ServiceClient(port=bg.port, timeout=10.0,
                           rng=Random(3)) as client:
            assert client.ping()["pong"]
            time.sleep(0.8)  # server reaps the idle connection
            # Without a budget the dead socket is a hard transport error;
            # with one, the client reconnects and the request succeeds.
            assert client.request("ping", retries=1)["pong"]


# ---------------------------------------------------------------------------
# subprocess harness (the real fleet, small)
# ---------------------------------------------------------------------------


@pytest.mark.slow
def test_cluster_harness_batch_is_byte_identical():
    from repro.cluster import run_cluster

    report = run_cluster(["wc", "calc"], nodes=2, rounds=1, concurrency=2,
                         deadline=30.0, retries=4)
    assert report.ok, report.errors
    assert report.failed == 0 and report.mismatched == 0
    # units x rounds + final sweep
    assert report.completed == 2 * 1 + 2


@pytest.mark.slow
def test_cluster_harness_chaos_completes_and_refills():
    from repro.cluster import run_cluster

    report = run_cluster(["wc", "calc", "sort", "crc32"], nodes=2,
                         rounds=2, concurrency=3, chaos=True, kills=1,
                         seed=7, restart_after=0.5, deadline=30.0,
                         retries=6)
    assert report.ok, report.errors
    assert report.kills == 1 and report.restarts >= 1
    assert report.mismatched == 0 and report.failed == 0
    # The restarted node came back empty and healed from a peer.
    assert report.refilled_after_restart >= 1
    assert report.federation_bytes > 0
