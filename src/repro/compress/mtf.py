"""Move-to-front coding, in the exact style used by the paper's wire format.

The paper transforms each literal-operand stream with MTF before Huffman
coding: "Zero denotes a symbol not seen previously", so indices are 1-based
over the dynamic table and index 0 escapes to a *novel* symbol, whose value
is carried in a separate side stream.  A stream with spatial locality (frame
offsets, nearby labels) becomes a stream of small integers that entropy-code
well.

Two variants are provided:

* :func:`mtf_encode` / :func:`mtf_decode` — the paper's escape-based scheme
  over an open symbol universe (any hashable symbols).
* :class:`MoveToFront` — the classic fixed-alphabet 0-based transform used
  by BWT-style compressors, exposed for the design-space benchmarks.
"""

from __future__ import annotations

from typing import Hashable, List, Sequence, Tuple

from ..errors import CorruptStreamError

__all__ = ["mtf_encode", "mtf_decode", "MoveToFront"]


def mtf_encode(symbols: Sequence[Hashable]) -> Tuple[List[int], List[Hashable]]:
    """Move-to-front code ``symbols`` with a dynamically grown table.

    Returns ``(indices, novel)`` where ``indices[i]`` is 0 when
    ``symbols[i]`` had not been seen before (its value is appended to
    ``novel``) and otherwise the 1-based position of the symbol in the MTF
    table.  After every access the symbol moves to the table front.

    >>> mtf_encode([72, 72, 68, 72, 68, 68, 68, 68])
    ([0, 1, 0, 2, 2, 1, 1, 1], [72, 68])
    """
    table: List[Hashable] = []
    position = {}  # symbol -> current index in table (kept lazily accurate)
    indices: List[int] = []
    novel: List[Hashable] = []
    for sym in symbols:
        idx = position.get(sym)
        if idx is None:
            indices.append(0)
            novel.append(sym)
            table.insert(0, sym)
        else:
            indices.append(idx + 1)
            del table[idx]
            table.insert(0, sym)
        # Rebuild the affected prefix of the position map.  Moves touch only
        # indices <= idx, so a full rebuild is avoided for long tables.
        limit = len(table) if idx is None else idx + 1
        for i in range(limit):
            position[table[i]] = i
    return indices, novel


def mtf_decode(indices: Sequence[int], novel: Sequence[Hashable]) -> List[Hashable]:
    """Invert :func:`mtf_encode`.

    ``indices`` uses 0 for "next novel symbol" and 1-based table positions
    otherwise; ``novel`` supplies the novel symbols in first-appearance
    order.  Malformed inputs (an index past the table, more escapes than
    novel symbols) raise :class:`~repro.errors.CorruptStreamError`.
    """
    table: List[Hashable] = []
    out: List[Hashable] = []
    novel_iter = iter(novel)
    for idx in indices:
        if idx == 0:
            try:
                sym = next(novel_iter)
            except StopIteration:
                raise CorruptStreamError(
                    "MTF stream references more novel symbols than provided"
                ) from None
        else:
            if idx < 0 or idx > len(table):
                raise CorruptStreamError(
                    f"MTF index {idx} exceeds table size {len(table)}")
            sym = table.pop(idx - 1)
        table.insert(0, sym)
        out.append(sym)
    return out


class MoveToFront:
    """Classic move-to-front transform over a fixed alphabet ``0..n-1``.

    Used by the design-space benchmarks to compare the paper's escape-based
    scheme against the textbook transform.
    """

    def __init__(self, alphabet_size: int = 256) -> None:
        if alphabet_size <= 0:
            raise ValueError("alphabet_size must be positive")
        self.alphabet_size = alphabet_size

    def encode(self, data: Sequence[int]) -> List[int]:
        """Replace each symbol with its current table index."""
        table = list(range(self.alphabet_size))
        out: List[int] = []
        for sym in data:
            idx = table.index(sym)
            out.append(idx)
            if idx:
                del table[idx]
                table.insert(0, sym)
        return out

    def decode(self, indices: Sequence[int]) -> List[int]:
        """Invert :meth:`encode`."""
        table = list(range(self.alphabet_size))
        out: List[int] = []
        for idx in indices:
            sym = table[idx]
            out.append(sym)
            if idx:
                del table[idx]
                table.insert(0, sym)
        return out
