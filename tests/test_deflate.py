"""Deflate-like container tests (the reproduction's gzip)."""

import random
import zlib

import pytest
from hypothesis import given, settings, strategies as st

from repro.compress import deflate


class TestRoundtrip:
    def test_empty(self):
        assert deflate.decompress(deflate.compress(b"")) == b""

    def test_single_byte(self):
        assert deflate.decompress(deflate.compress(b"x")) == b"x"

    def test_text(self):
        data = b"the quick brown fox jumps over the lazy dog " * 40
        assert deflate.decompress(deflate.compress(data)) == data

    def test_binary_with_all_byte_values(self):
        data = bytes(range(256)) * 8
        assert deflate.decompress(deflate.compress(data)) == data

    @given(st.binary(max_size=3000))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, data):
        assert deflate.decompress(deflate.compress(data)) == data


class TestRatios:
    def test_compresses_repetitive_data(self):
        data = b"abcdefgh" * 500
        assert len(deflate.compress(data)) < len(data) // 10

    def test_close_to_zlib_on_mixed_data(self):
        rng = random.Random(42)
        data = bytes(
            rng.choice(b"abcdefgh \n") for _ in range(20_000)
        ) + b"some repeated phrase here " * 300
        ours = len(deflate.compress(data))
        theirs = len(zlib.compress(data, 6))
        # Within 25% of zlib on this input: same algorithm family.
        assert ours < theirs * 1.25

    def test_incompressible_data_overhead_bounded(self):
        rng = random.Random(7)
        data = bytes(rng.randrange(256) for _ in range(5000))
        # Literal-heavy Huffman coding costs < 9 bits/byte + headers.
        assert len(deflate.compress(data)) < len(data) * 9 // 8 + 400


class TestErrors:
    def test_truncated_stream_raises(self):
        blob = deflate.compress(b"hello world, hello world, hello")
        with pytest.raises((EOFError, ValueError)):
            deflate.decompress(blob[: len(blob) // 2])

    def test_length_header_checked(self):
        blob = bytearray(deflate.compress(b"abc"))
        blob[0] ^= 0xFF  # corrupt the 32-bit length header
        with pytest.raises((EOFError, ValueError)):
            deflate.decompress(bytes(blob))

    def test_compressed_size_helper(self):
        data = b"zzzz" * 100
        assert deflate.compressed_size(data) == len(deflate.compress(data))
