"""C-subset front end: lexer, parser, type checker.

The reproduction's stand-in for lcc's front half: it turns C source into a
fully typed AST that :mod:`repro.ir` lowers to lcc-style tree IR.
"""

from .astnodes import TranslationUnit
from .errors import CompileError, Location
from .frontend import compile_to_ast
from .lexer import tokenize
from .parser import parse
from .sema import analyze

__all__ = [
    "CompileError",
    "Location",
    "TranslationUnit",
    "analyze",
    "compile_to_ast",
    "parse",
    "tokenize",
]
