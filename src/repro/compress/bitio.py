"""Bit-level I/O primitives used by every entropy coder in this package.

The paper's pipelines (Huffman-coded MTF indices, the deflate-like final
stage, and the arithmetic-coding design point) all need to read and write
individual bits.  Bits are packed MSB-first within each byte, which makes
canonical Huffman codes decode by simple left-to-right accumulation.

The module also provides the small variable-length integer encodings the
stream containers use for lengths and counts.
"""

from __future__ import annotations

from typing import List

from ..errors import CorruptStreamError, TruncatedStreamError

__all__ = [
    "BitWriter",
    "BitReader",
    "write_uvarint",
    "read_uvarint",
    "take_bytes",
    "uvarint",
]


class BitWriter:
    """Accumulates bits MSB-first and renders them as ``bytes``.

    >>> w = BitWriter()
    >>> w.write_bits(0b101, 3)
    >>> w.write_bit(1)
    >>> w.getvalue()[0] == 0b1011_0000
    True
    """

    def __init__(self) -> None:
        self._chunks: List[int] = []
        self._acc = 0  # bit accumulator, MSB side filled first
        self._nbits = 0  # number of valid bits in _acc

    def write_bit(self, bit: int) -> None:
        """Append a single bit (0 or 1)."""
        self._acc = (self._acc << 1) | (bit & 1)
        self._nbits += 1
        if self._nbits == 8:
            self._chunks.append(self._acc)
            self._acc = 0
            self._nbits = 0

    def write_bits(self, value: int, nbits: int) -> None:
        """Append the low ``nbits`` bits of ``value``, most significant first."""
        if nbits < 0:
            raise ValueError("nbits must be non-negative")
        if nbits == 0:
            return
        if value < 0 or value >> nbits:
            raise ValueError(f"value {value} does not fit in {nbits} bits")
        # Fast path: merge into accumulator in chunks of whole bytes.
        acc = (self._acc << nbits) | value
        total = self._nbits + nbits
        while total >= 8:
            total -= 8
            self._chunks.append((acc >> total) & 0xFF)
        self._acc = acc & ((1 << total) - 1)
        self._nbits = total

    def write_bytes(self, data: bytes) -> None:
        """Append whole bytes (bit-aligned only when the writer is aligned)."""
        if self._nbits == 0:
            self._chunks.extend(data)
        else:
            for b in data:
                self.write_bits(b, 8)

    def align(self) -> None:
        """Pad with zero bits to the next byte boundary."""
        if self._nbits:
            self._chunks.append(self._acc << (8 - self._nbits) & 0xFF)
            self._acc = 0
            self._nbits = 0

    @property
    def bit_length(self) -> int:
        """Total number of bits written so far."""
        return len(self._chunks) * 8 + self._nbits

    def getvalue(self) -> bytes:
        """Return everything written, zero-padding the final partial byte."""
        out = bytearray(self._chunks)
        if self._nbits:
            out.append((self._acc << (8 - self._nbits)) & 0xFF)
        return bytes(out)


class BitReader:
    """Reads bits MSB-first from a ``bytes`` buffer.

    Reading past the end raises
    :class:`~repro.errors.TruncatedStreamError` (an ``EOFError`` subclass);
    entropy decoders treat that as a corrupt-stream condition rather than
    silently yielding zeros.
    """

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0  # byte position
        self._acc = 0
        self._nbits = 0

    def read_bit(self) -> int:
        """Read and return a single bit."""
        if self._nbits == 0:
            if self._pos >= len(self._data):
                raise TruncatedStreamError("bit stream exhausted")
            self._acc = self._data[self._pos]
            self._pos += 1
            self._nbits = 8
        self._nbits -= 1
        return (self._acc >> self._nbits) & 1

    def read_bits(self, nbits: int) -> int:
        """Read ``nbits`` bits, returning them as an unsigned integer."""
        if nbits < 0:
            raise ValueError("nbits must be non-negative")
        value = 0
        remaining = nbits
        while remaining:
            if self._nbits == 0:
                if self._pos >= len(self._data):
                    raise TruncatedStreamError("bit stream exhausted")
                self._acc = self._data[self._pos]
                self._pos += 1
                self._nbits = 8
            take = min(remaining, self._nbits)
            self._nbits -= take
            value = (value << take) | ((self._acc >> self._nbits) & ((1 << take) - 1))
            remaining -= take
        return value

    def align(self) -> None:
        """Discard bits up to the next byte boundary."""
        self._nbits = 0

    def read_bytes(self, n: int) -> bytes:
        """Read ``n`` whole bytes (fast when byte-aligned)."""
        if n < 0:
            raise CorruptStreamError(f"negative byte count {n}")
        if self._nbits == 0:
            if self._pos + n > len(self._data):
                raise TruncatedStreamError("bit stream exhausted")
            out = self._data[self._pos : self._pos + n]
            self._pos += n
            return out
        return bytes(self.read_bits(8) for _ in range(n))

    @property
    def bits_consumed(self) -> int:
        """Number of bits consumed so far."""
        return self._pos * 8 - self._nbits

    @property
    def bits_remaining(self) -> int:
        """Unread bits left in the buffer — the cheapest upper bound on how
        many symbols a count field could legitimately promise."""
        return (len(self._data) - self._pos) * 8 + self._nbits

    def at_eof(self) -> bool:
        """True when no unread bits remain."""
        return self._nbits == 0 and self._pos >= len(self._data)


def write_uvarint(out: bytearray, value: int) -> None:
    """Append ``value`` to ``out`` in LEB128 (7 bits per byte, little-endian)."""
    if value < 0:
        raise ValueError("uvarint requires a non-negative value")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def read_uvarint(data: bytes, pos: int) -> "tuple[int, int]":
    """Decode a LEB128 integer from ``data`` at ``pos``.

    Returns ``(value, new_pos)``.
    """
    value = 0
    shift = 0
    while True:
        if pos >= len(data):
            raise TruncatedStreamError("truncated uvarint")
        byte = data[pos]
        pos += 1
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value, pos
        shift += 7
        if shift > 63:
            raise CorruptStreamError("uvarint too long")


def take_bytes(data: bytes, pos: int, n: int, what: str = "field") -> "tuple[bytes, int]":
    """Slice ``n`` bytes at ``pos``, *then* check the slice is complete.

    Python slicing silently truncates past the end of a buffer; every
    length-prefixed read in the decoders goes through this helper so a
    short buffer raises :class:`~repro.errors.TruncatedStreamError` instead
    of yielding a quietly shortened value.  Returns ``(slice, new_pos)``.
    """
    if n < 0:
        raise CorruptStreamError(f"negative length {n} for {what}")
    end = pos + n
    chunk = data[pos:end]
    if len(chunk) != n:
        raise TruncatedStreamError(
            f"{what} needs {n} bytes at offset {pos}, "
            f"only {len(data) - pos} remain")
    return chunk, end


def uvarint(value: int) -> bytes:
    """Return the LEB128 encoding of ``value`` as ``bytes``."""
    out = bytearray()
    write_uvarint(out, value)
    return bytes(out)
