"""Shared benchmark configuration.

Heavy artifacts (suite compilation, BRISC dictionaries) come from the
shared pipeline toolchain (:func:`repro.pipeline.default_toolchain`),
whose content-addressed cache means benchmark functions only re-run the
cheap kernel under measurement.  Every table printed here is also written
to ``benchmarks/results/`` for EXPERIMENTS.md, along with the pipeline's
per-stage run/hit accounting for the whole session.

The per-stage table is *merged*, not clobbered: raw rows persist in
``pipeline_stats.json`` and a partial benchmark session (say, just the
kernel micro-benchmarks) carries forward the rows of stages it never
exercised, so ``pipeline_stats.txt`` never reports ``0 runs`` for a stage
a previous regeneration actually ran.
"""

import json
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def toolchain():
    """The shared pipeline toolchain benchmarks compile through."""
    from repro.pipeline import default_toolchain

    return default_toolchain()


#: Rows appended by builder benchmarks: (unit, variant, seconds, passes,
#: dictionary size).  Rendered into pipeline_stats.txt at session end so
#: the dictionary-builder wall clock is recorded alongside stage stats.
_BUILDER_TIMINGS = []

#: Rows appended by corpus-build benchmarks: (variant, wall seconds,
#: BRISC-stage seconds, units compiled).  One table row per end-to-end
#: corpus build, the tentpole acceptance metric.
_CORPUS_TIMINGS = []


@pytest.fixture(scope="session")
def builder_timings():
    """Collector for per-variant dictionary-builder wall-clock rows."""
    return _BUILDER_TIMINGS


@pytest.fixture(scope="session")
def corpus_timings():
    """Collector for end-to-end corpus-build wall-clock rows."""
    return _CORPUS_TIMINGS


#: Per-stage stats folded from *private* toolchains.  Benchmarks that
#: compile through fresh Toolchain instances (cold-cache measurements)
#: must fold their stats here, or the stages they demonstrably ran would
#: show up as ``0 runs`` in pipeline_stats.txt.
_SESSION_STAGE_STATS = {}

_STAGE_ROW_KEYS = ("runs", "cache_hits", "seconds", "bytes")


@pytest.fixture(scope="session")
def fold_stage_stats():
    """Fold one toolchain's ``stats()["stages"]`` into the session report."""
    def fold(stages):
        for name, row in stages.items():
            mine = _SESSION_STAGE_STATS.setdefault(
                name, dict.fromkeys(_STAGE_ROW_KEYS, 0))
            for key in _STAGE_ROW_KEYS:
                mine[key] += row.get(key, 0)
    return fold


def _merge_rows(previous, fresh, key_width):
    """Update ``previous`` rows with ``fresh`` ones, matching on the first
    ``key_width`` columns; unmatched previous rows are kept in place."""
    merged = [list(row) for row in previous]
    index = {tuple(row[:key_width]): i for i, row in enumerate(merged)}
    for row in fresh:
        row = list(row)
        at = index.get(tuple(row[:key_width]))
        if at is None:
            index[tuple(row[:key_width])] = len(merged)
            merged.append(row)
        else:
            merged[at] = row
    return merged


@pytest.fixture(scope="session", autouse=True)
def pipeline_stats_report(results_dir):
    """Write the session's per-stage pipeline stats next to the tables,
    merged with the raw rows persisted by previous sessions."""
    yield
    from repro.bench.tables import render_table, toolchain_stats_table
    from repro.pipeline import default_toolchain

    stats = default_toolchain().stats()
    raw_path = results_dir / "pipeline_stats.json"
    previous = {}
    if raw_path.exists():
        try:
            previous = json.loads(raw_path.read_text())
        except ValueError:
            previous = {}

    # This session's rows: the shared toolchain plus whatever private
    # toolchains were folded in; a stage the session never touched keeps
    # its last recorded row.
    session_stages = {name: dict(row) for name, row in stats["stages"].items()}
    for name, extra in _SESSION_STAGE_STATS.items():
        mine = session_stages.setdefault(
            name, dict.fromkeys(_STAGE_ROW_KEYS, 0))
        for key in _STAGE_ROW_KEYS:
            mine[key] += extra[key]
    stages = {}
    prev_stages = previous.get("stages", {})
    for name, row in session_stages.items():
        stale = prev_stages.get(name)
        if row["runs"] == 0 and row["cache_hits"] == 0 and stale:
            stages[name] = stale
        else:
            stages[name] = row
    for name, row in prev_stages.items():
        stages.setdefault(name, row)

    builder_rows = _merge_rows(
        previous.get("builder_timings", []), _BUILDER_TIMINGS, key_width=2)
    corpus_rows = _merge_rows(
        previous.get("corpus_timings", []), _CORPUS_TIMINGS, key_width=1)

    raw_path.write_text(json.dumps(
        {"stages": stages, "builder_timings": builder_rows,
         "corpus_timings": corpus_rows},
        indent=2, sort_keys=True) + "\n")

    text = toolchain_stats_table(
        {"stages": stages, "brisc_builder": stats.get("brisc_builder")})
    if corpus_rows:
        text += "\n\n" + render_table(
            ["corpus build", "seconds", "brisc s", "units"],
            [[variant, f"{seconds:8.2f}", f"{brisc:8.2f}", str(units)]
             for variant, seconds, brisc, units in corpus_rows],
        )
    if builder_rows:
        text += "\n\n" + render_table(
            ["builder timing", "variant", "seconds", "passes", "dict"],
            [[unit, variant, f"{seconds:8.2f}", str(passes), str(size)]
             for unit, variant, seconds, passes, size in builder_rows],
        )
    save_table(results_dir, "pipeline_stats", text)


def save_table(results_dir, name: str, text: str) -> None:
    """Persist a rendered table and echo it to the terminal."""
    (results_dir / f"{name}.txt").write_text(text + "\n")
    print(f"\n=== {name} ===\n{text}")
