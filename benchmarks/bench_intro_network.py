"""Intro measurement M2 — code delivery over networks.

The paper's introduction: "it can be significantly faster to send
compressed code that is then interpreted or decompressed and executed.
This fact is self-evident when delivering code over 28.8kbaud modems, but
it can be true for faster networks"; and in the results: "Over a modem,
the tree compression algorithm ... will do better at minimizing the
latency ... in a local area network, BRISC is a good mobile program
representation choice", with delivery masking recompilation.

This bench builds the three representations of the lcc suite input (native,
wire, BRISC) with *measured* sizes and JIT rate, then sweeps links.
"""


from conftest import save_table
from repro.bench import compressed_suite, render_table, wire_row
from repro.corpus import build_input
from repro.jit import jit_compile
from repro.native import PentiumLike
from repro.system import (
    DSL_1M, ISDN_128K, LAN_10M, MODEM_28_8, Representation, delivery_time,
)

LINKS = [MODEM_28_8, ISDN_128K, DSL_1M, LAN_10M]


def _representations():
    inp = build_input("lcc")
    cp = compressed_suite("lcc")
    native_bytes = PentiumLike().program_size(inp.program)
    jit = jit_compile(cp.image.blob)
    jit_rate = max(1.0, jit.output_bytes / max(jit.compile_seconds, 1e-9))
    wire_bytes = wire_row("lcc").wire
    return [
        Representation("native", native_bytes),
        Representation("wire", wire_bytes, decompress_rate=2_000_000,
                       jit_rate=jit_rate, native_bytes=native_bytes),
        Representation("BRISC", cp.image.code_segment_size,
                       jit_rate=jit_rate, native_bytes=native_bytes),
    ]


def test_delivery_matrix(benchmark, results_dir):
    reps = benchmark.pedantic(_representations, rounds=1, iterations=1)
    rows = []
    for link in LINKS:
        for rep in reps:
            r = delivery_time(rep, link)
            rows.append([link.name, rep.name, f"{rep.size_bytes}",
                         f"{r.transfer_seconds:.3f}s",
                         f"{r.prepare_seconds:.3f}s",
                         f"{r.total_seconds:.3f}s"])
    text = render_table(
        ["link", "representation", "bytes", "transfer", "prepare", "total"],
        rows)
    save_table(results_dir, "intro_network", text)

    # Shape claim: over the modem the compressed forms beat native by a
    # wide margin, and the smallest (wire) wins outright.
    reps_by_name = {r.name: r for r in reps}
    modem = {
        name: delivery_time(rep, MODEM_28_8).total_seconds
        for name, rep in reps_by_name.items()
    }
    assert modem["wire"] < modem["BRISC"] < modem["native"]
    assert modem["wire"] < modem["native"] / 2


def test_delivery_masks_recompilation(benchmark):
    """"The delivery time from the network or disk can mask some or even
    all of the recompilation time."""
    reps = _representations()
    brisc = next(r for r in reps if r.name == "BRISC")

    def overlap_delta():
        piped = delivery_time(brisc, MODEM_28_8, overlap=True)
        serial = delivery_time(brisc, MODEM_28_8, overlap=False)
        return piped, serial

    piped, serial = benchmark.pedantic(overlap_delta, rounds=1, iterations=1)
    assert piped.total_seconds <= serial.total_seconds
