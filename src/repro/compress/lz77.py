"""LZ77 string matching with hash chains.

The paper's final wire-format stage gzips each stream; gzip's engine is
LZ77 over a 32 KiB window followed by Huffman coding.  This module supplies
the matching half: it turns a byte string into a token sequence of literals
and ``(length, distance)`` back-references, with a greedy-plus-lazy matching
heuristic like zlib's.

Internally the matcher is allocation-free per token: candidates live in a
zlib-style ``head``/``prev`` hash chain (most recent first, exactly the
probe order of the original candidate-list implementation), match
extension compares 16-byte slices before falling back to single bytes,
and the token stream is a list of packed ints — values below 256 are
literal bytes, anything else is ``(length << 16) | distance``.  The
:class:`Literal`/:class:`Match` dataclasses remain the public token API as
a thin view over the packed stream (literals are interned, one instance
per byte value); :mod:`repro.compress.deflate` consumes the packed form
directly.

Tokens are consumed by :mod:`repro.compress.deflate`, which entropy-codes
them, and by the design-space benchmarks, which measure how stream
separation changes match statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Union

from ..errors import CorruptStreamError

__all__ = [
    "Literal",
    "Match",
    "Token",
    "WINDOW_SIZE",
    "MIN_MATCH",
    "MAX_MATCH",
    "tokenize",
    "tokenize_packed",
    "detokenize",
    "detokenize_packed",
]

WINDOW_SIZE = 32 * 1024
MIN_MATCH = 3
MAX_MATCH = 258
_HASH_LEN = 3
_MAX_CHAIN = 128  # how many previous positions to probe per match attempt
_MASK = WINDOW_SIZE - 1
_CHAIN_RANGE = range(_MAX_CHAIN)


@dataclass(frozen=True)
class Literal:
    """A single uncompressed byte."""

    byte: int

    def __post_init__(self) -> None:
        if not 0 <= self.byte <= 255:
            raise ValueError("literal byte out of range")


@dataclass(frozen=True)
class Match:
    """A back-reference: copy ``length`` bytes from ``distance`` back."""

    length: int
    distance: int

    def __post_init__(self) -> None:
        if not MIN_MATCH <= self.length <= MAX_MATCH:
            raise ValueError(f"match length {self.length} out of range")
        if not 1 <= self.distance <= WINDOW_SIZE:
            raise ValueError(f"match distance {self.distance} out of range")


Token = Union[Literal, Match]

#: ``Literal`` is frozen, so the 256 possible instances are shared — the
#: dataclass view of a packed stream allocates nothing per literal byte.
_LITERALS = None  # built lazily; dataclass decorators above must run first


def _literal_pool() -> List[Literal]:
    global _LITERALS
    if _LITERALS is None:
        _LITERALS = [Literal(b) for b in range(256)]
    return _LITERALS


def _chain_match(
    data: bytes, pos: int, cand: int, max_len: int, prev: List[int]
) -> "tuple[int, int]":
    """Best (length, distance) along the hash chain starting at ``cand``.

    Probes most-recent-first, caps at :data:`_MAX_CHAIN` candidates, keeps
    a strictly-longer-wins rule (ties go to the shortest distance), and
    quick-rejects on the byte a candidate would need to improve on — the
    exact semantics of probing a candidate list in reverse.
    """
    best_len = 0
    best_dist = 0
    floor = pos - WINDOW_SIZE
    if floor < 0:
        floor = 0  # the -1 chain sentinel also fails this bound
    want = data[pos : pos + max_len]
    from_bytes = int.from_bytes
    want_int = from_bytes(want, "big")
    want_b = 0  # byte a candidate must match to beat best_len (unused at 0)
    for _ in _CHAIN_RANGE:
        if cand < floor:
            break
        if best_len and data[cand + best_len] != want_b:
            cand = prev[cand & _MASK]
            continue
        # Common-prefix length in two C-level ops: one memcmp for the
        # full-match case, else XOR the windows as big-endian ints — the
        # first differing byte is the highest set bit of the difference.
        got = data[cand : cand + max_len]
        if got == want:
            return max_len, pos - cand
        diff = from_bytes(got, "big") ^ want_int
        length = max_len - ((diff.bit_length() + 7) >> 3)
        if length > best_len:
            best_len = length
            best_dist = pos - cand
            want_b = data[pos + length]  # length < max_len on this path
        cand = prev[cand & _MASK]
    return best_len, best_dist


def tokenize_packed(data: bytes, lazy: bool = True) -> List[int]:
    """Convert ``data`` into packed LZ77 tokens.

    Values below 256 are literal bytes; larger values encode a match as
    ``(length << 16) | distance``.  With ``lazy`` matching (the default,
    mirroring zlib), a match at position *i* is deferred when position
    *i+1* offers a strictly longer match, emitting a literal instead — a
    meaningful win on code bytes.
    """
    n = len(data)
    out: List[int] = []
    if n == 0:
        return out
    head: dict = {}
    prev = [-1] * WINDOW_SIZE
    head_get = head.get
    append = out.append
    hash_limit = n - _HASH_LEN  # last position with a full 3-byte hash
    # Positions are hashed up to three times (match attempt, lazy probe,
    # chain insert); one vectorized pass beats recomputing in the loop.
    h_all = [
        (a << 16) ^ (b << 8) ^ c for a, b, c in zip(data, data[1:], data[2:])
    ]
    i = 0
    while i < n:
        max_len = n - i
        if max_len > MAX_MATCH:
            max_len = MAX_MATCH
        best_len = 0
        best_dist = 0
        h = -1
        if max_len >= MIN_MATCH:
            h = h_all[i]
            cand = head_get(h, -1)
            if cand >= 0:
                best_len, best_dist = _chain_match(data, i, cand, max_len, prev)
        if best_len >= MIN_MATCH:
            if lazy and i + 1 < n and best_len < MAX_MATCH:
                next_max = n - i - 1
                if next_max > MAX_MATCH:
                    next_max = MAX_MATCH
                if next_max >= MIN_MATCH and i + 1 <= hash_limit:
                    h2 = h_all[i + 1]
                    cand = head_get(h2, -1)
                    if cand >= 0:
                        nlen, _ = _chain_match(data, i + 1, cand, next_max, prev)
                        if nlen > best_len:
                            append(data[i])
                            prev[i & _MASK] = head_get(h, -1)
                            head[h] = i
                            i += 1
                            continue
            append((best_len << 16) | best_dist)
            end = i + best_len
            stop = end if end <= hash_limit + 1 else hash_limit + 1
            for j in range(i, stop):
                hh = h_all[j]
                prev[j & _MASK] = head_get(hh, -1)
                head[hh] = j
            i = end
        else:
            append(data[i])
            if h >= 0:
                prev[i & _MASK] = head_get(h, -1)
                head[h] = i
            i += 1
    return out


def tokenize(data: bytes, lazy: bool = True) -> List[Token]:
    """Convert ``data`` into LZ77 tokens (dataclass view).

    A thin wrapper over :func:`tokenize_packed` for tests and the
    design-space benchmarks; the hot pipeline consumes the packed ints.
    """
    literals = _literal_pool()
    return [
        literals[tok] if tok < 256 else Match(tok >> 16, tok & 0xFFFF)
        for tok in tokenize_packed(data, lazy)
    ]


def _extend(out: bytearray, length: int, distance: int) -> None:
    """Append ``length`` bytes copied from ``distance`` back, allowing the
    overlapping self-referential copies LZ77 relies on."""
    start = len(out) - distance
    if start < 0:
        raise CorruptStreamError("match distance reaches before stream start")
    if distance >= length:
        out += out[start : start + length]
    else:
        seg = out[start:]
        q, r = divmod(length, distance)
        out += seg * q
        if r:
            out += seg[:r]


def detokenize_packed(packed: List[int]) -> bytes:
    """Reconstruct the original bytes from packed tokens."""
    out = bytearray()
    append = out.append
    for tok in packed:
        if tok < 256:
            append(tok)
        else:
            _extend(out, tok >> 16, tok & 0xFFFF)
    return bytes(out)


def detokenize(tokens: List[Token]) -> bytes:
    """Reconstruct the original bytes from a token sequence.

    A back-reference pointing before the start of the output (which only a
    corrupt token stream can produce) raises
    :class:`~repro.errors.CorruptStreamError`.
    """
    out = bytearray()
    append = out.append
    for tok in tokens:
        if type(tok) is Literal:
            append(tok.byte)
        elif type(tok) is Match:
            _extend(out, tok.length, tok.distance)
        elif isinstance(tok, Literal):
            append(tok.byte)
        else:
            _extend(out, tok.length, tok.distance)
    return bytes(out)
