"""Consistent hashing for the compile farm.

The router places every unit key on a ring of SHA-256 points; each node
contributes ``replicas`` virtual points so load spreads evenly even with
two or three nodes.  The properties the cluster leans on:

* **determinism** — the mapping is a pure function of the node set and
  the key, so every router (and every node doing peer cache probes)
  computes the same owner without coordination;
* **stability** — adding or removing one node only remaps the keys that
  touched that node's points; everything else keeps its owner, which is
  what keeps warm stores warm across a failover;
* **liveness masking** — :meth:`node_for` takes the *live* node set as a
  filter and walks clockwise past dead nodes, so a crashed node's slots
  drain onto its ring successors without mutating the ring itself (the
  node gets its slots back the moment health checks revive it).
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Iterable, List, Optional, Sequence, Set, Tuple

__all__ = ["HashRing"]


def _point(label: str) -> int:
    """A 64-bit ring position for ``label``; SHA-256 keeps the placement
    independent of Python's randomized ``hash()``."""
    digest = hashlib.sha256(label.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """A consistent-hash ring over opaque node identifiers."""

    def __init__(self, nodes: Iterable[str] = (), replicas: int = 64) -> None:
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.replicas = replicas
        self._nodes: Set[str] = set()
        self._points: List[Tuple[int, str]] = []
        for node in nodes:
            self.add_node(node)

    # -- membership --------------------------------------------------------

    @property
    def nodes(self) -> List[str]:
        return sorted(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    def add_node(self, node: str) -> None:
        if node in self._nodes:
            return
        self._nodes.add(node)
        for i in range(self.replicas):
            bisect.insort(self._points, (_point(f"{node}#{i}"), node))

    def remove_node(self, node: str) -> None:
        if node not in self._nodes:
            return
        self._nodes.discard(node)
        self._points = [p for p in self._points if p[1] != node]

    # -- placement ---------------------------------------------------------

    def node_for(self, key: str,
                 alive: Optional[Set[str]] = None) -> Optional[str]:
        """The first node clockwise of ``key``'s point, restricted to
        ``alive`` (every node when omitted); ``None`` if nothing is live."""
        for node in self.preference(key, alive=alive):
            return node
        return None

    def preference(self, key: str,
                   alive: Optional[Set[str]] = None) -> List[str]:
        """Every eligible node, in clockwise preference order for ``key``.

        Index 0 is the primary owner; index 1 is where the key's slots
        drain if the primary dies; and so on.  Peer cache probes walk the
        same list, so a failed-over unit's artifacts are found where the
        ring actually sent the work.
        """
        if not self._points:
            return []
        eligible = self._nodes if alive is None else (self._nodes & set(alive))
        if not eligible:
            return []
        start = bisect.bisect(self._points, (_point(key), ""))
        ordered: List[str] = []
        seen: Set[str] = set()
        n = len(self._points)
        for i in range(n):
            node = self._points[(start + i) % n][1]
            if node in eligible and node not in seen:
                seen.add(node)
                ordered.append(node)
                if len(seen) == len(eligible):
                    break
        return ordered

    def successor(self, node: str) -> Optional[str]:
        """The node owning the slots clockwise of ``node``'s first point —
        the natural first peer to ask for a dead/restarted node's
        artifacts."""
        others = self._nodes - {node}
        if not others:
            return None
        return self.node_for(f"{node}#0", alive=others)

    def spread(self, keys: Sequence[str]) -> dict:
        """``{node: key count}`` over ``keys`` — balance diagnostics."""
        counts = {node: 0 for node in self._nodes}
        for key in keys:
            owner = self.node_for(key)
            if owner is not None:
                counts[owner] += 1
        return counts
