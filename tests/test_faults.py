"""Fault-injection harness tests: the decode-path robustness contract.

Two layers:

* the harness itself (mutation determinism, outcome classification) is
  exercised against tiny synthetic codecs with known behaviour;
* the real containers are swept: every corpus sample's wire blob and a
  BRISC image go through every mutation class, and nothing but typed
  :class:`DecodeError` subclasses may escape the decoders.

Mutation counts here are bounded for test-suite speed; the acceptance
sweep (``python -m repro fuzz``) runs the full 500-per-container budget.
"""

from random import Random

import pytest

from repro.brisc import compress, decode_image
from repro.cfront import compile_to_ast
from repro.codegen import generate_program
from repro.corpus import sample_names, get_sample
from repro.errors import CorruptStreamError, DecodeError
from repro.faults import (
    MUTATION_KINDS, apply_mutation, fuzz_decoder,
)
from repro.ir import dump_module, lower_unit
from repro.wire import decode_module, encode_module

# ---------------------------------------------------------------------------
# mutations
# ---------------------------------------------------------------------------


BLOB = bytes(range(32)) * 4


@pytest.mark.parametrize("kind", MUTATION_KINDS)
def test_mutations_are_deterministic(kind):
    a = apply_mutation(BLOB, kind, Random(42))
    b = apply_mutation(BLOB, kind, Random(42))
    assert a == b
    c = apply_mutation(BLOB, kind, Random(43))
    assert isinstance(c, bytes)


def test_mutation_shapes():
    rng = Random(0)
    assert len(apply_mutation(BLOB, "bit_flip", rng)) == len(BLOB)
    assert len(apply_mutation(BLOB, "truncate", rng)) < len(BLOB)
    assert len(apply_mutation(BLOB, "delete", rng)) == len(BLOB) - 1
    assert len(apply_mutation(BLOB, "duplicate", rng)) == len(BLOB) + 1
    swapped = apply_mutation(BLOB, "swap", rng)
    assert len(swapped) == len(BLOB) and sorted(swapped) == sorted(BLOB)


def test_bit_flip_changes_exactly_one_bit():
    flipped = apply_mutation(BLOB, "bit_flip", Random(7))
    diff = [(a ^ b) for a, b in zip(BLOB, flipped) if a != b]
    assert len(diff) == 1 and bin(diff[0]).count("1") == 1


def test_empty_blob_and_unknown_kind():
    assert apply_mutation(b"", "bit_flip", Random(0)) == b""
    with pytest.raises(ValueError):
        apply_mutation(BLOB, "nonesuch", Random(0))


# ---------------------------------------------------------------------------
# harness classification (synthetic codecs)
# ---------------------------------------------------------------------------


def _checked_decode(blob: bytes) -> bytes:
    """A toy codec: payload + trailing CRC32."""
    import zlib

    if len(blob) < 4:
        raise CorruptStreamError("too short")
    payload, stored = blob[:-4], int.from_bytes(blob[-4:], "little")
    if zlib.crc32(payload) != stored:
        raise CorruptStreamError("checksum mismatch")
    return payload


def _checked_encode(payload: bytes) -> bytes:
    import zlib

    return payload + zlib.crc32(payload).to_bytes(4, "little")


def test_well_behaved_decoder_reports_ok():
    blob = _checked_encode(b"the quick brown fox" * 20)
    report = fuzz_decoder(blob, _checked_decode, mutations=60, seed=3)
    assert report.ok
    assert report.counts.get("untyped", 0) == 0
    assert report.counts.get("detected", 0) > 0
    assert sum(report.counts.values()) == 60
    assert "OK" in report.summary()


def test_untyped_exceptions_are_contract_violations():
    def leaky(blob: bytes) -> bytes:
        if len(blob) != 65:  # any length-changing mutation leaks
            raise IndexError("leaked internal error")
        return blob

    report = fuzz_decoder(b"\x55" + bytes(64), leaky, mutations=40, seed=1)
    assert not report.ok
    assert any(f.outcome == "untyped" for f in report.failures)
    untyped = [f for f in report.failures if f.outcome == "untyped"]
    assert "IndexError" in untyped[0].detail
    assert untyped[0].index >= 0  # replayable ordinal


def test_silent_wrong_answers_are_contract_violations():
    report = fuzz_decoder(bytes(range(64)), lambda b: bytes(b),
                          mutations=30, seed=2)
    assert not report.ok
    assert any(f.outcome == "wrong_answer" for f in report.failures)


def test_hang_detection():
    import time

    def sleepy(blob: bytes) -> bytes:
        if blob != bytes(16):
            time.sleep(30)
        return blob

    report = fuzz_decoder(bytes(16), sleepy, mutations=2, seed=0,
                          deadline=0.2)
    assert any(f.outcome == "hang" for f in report.failures)


def test_canonical_projection_used_for_equality():
    # Decoder returns a list; canonical projects to its sorted form, so a
    # mutation that only reorders is "intact".
    blob = b"ab"
    report = fuzz_decoder(blob, lambda b: list(b), mutations=5, seed=4,
                          kinds=("swap",), canonical=sorted)
    assert report.ok
    assert report.counts.get("intact", 0) + report.counts.get(
        "unchanged", 0) == 5


def test_rejects_bad_parameters():
    with pytest.raises(ValueError):
        fuzz_decoder(b"xx", bytes, mutations=0)
    with pytest.raises(ValueError):
        fuzz_decoder(b"xx", bytes, kinds=())


# ---------------------------------------------------------------------------
# the real decoders: corpus sweep
# ---------------------------------------------------------------------------


def _wire_blob(name: str) -> bytes:
    source = get_sample(name)
    return encode_module(lower_unit(compile_to_ast(source, name), name))


@pytest.mark.parametrize("name", sample_names())
def test_wire_decoder_contract_over_corpus(name):
    """Every sample, every mutation class: only DecodeError may escape."""
    blob = _wire_blob(name)
    rng = Random(hash(name) % (1 << 32))
    for index in range(3 * len(MUTATION_KINDS)):  # bounded per unit
        kind = MUTATION_KINDS[index % len(MUTATION_KINDS)]
        mutated = apply_mutation(blob, kind, rng)
        if mutated == blob:
            continue
        try:
            decode_module(mutated)
        except DecodeError:
            pass  # the typed taxonomy is the contract
    # No other exception type may reach this frame (pytest would fail).


def test_wire_fuzz_report_clean_on_sample():
    blob = _wire_blob("wc")
    report = fuzz_decoder(blob, decode_module, target="wc.wire",
                          mutations=50, seed=11, canonical=dump_module)
    assert report.ok, [f.detail for f in report.failures]


def test_brisc_fuzz_report_clean_on_sample():
    source = get_sample("wc")
    program = generate_program(lower_unit(compile_to_ast(source, "wc"), "wc"))
    blob = compress(program).image.blob
    report = fuzz_decoder(blob, decode_image, target="wc.brisc",
                          mutations=50, seed=12)
    assert report.ok, [f.detail for f in report.failures]


# ---------------------------------------------------------------------------
# chunked containers: targeted corruption
# ---------------------------------------------------------------------------


def _wire3_blob():
    from repro.container import GreedyPlacement
    from repro.wire import encode_module_v3

    source = get_sample("wc")
    module = lower_unit(compile_to_ast(source, "wc"), "wc")
    return encode_module_v3(module, placement=GreedyPlacement(256))


def test_corrupt_chunk_is_deterministic():
    from repro.faults import corrupt_chunk

    blob = _wire3_blob()
    a = corrupt_chunk(blob, 0, Random(9))
    b = corrupt_chunk(blob, 0, Random(9))
    assert a == b and a != blob


def test_corrupt_chunk_rejects_bad_ids():
    from repro.faults import corrupt_chunk

    blob = _wire3_blob()
    with pytest.raises(ValueError):
        corrupt_chunk(blob, 999, Random(0))


def test_corrupt_chunk_needs_a_chunked_container():
    from repro.errors import UnsupportedFormatError
    from repro.faults import corrupt_chunk
    from repro.ir import lower_unit as _lower

    v2 = encode_module(_lower(compile_to_ast(get_sample("wc"), "wc"), "wc"))
    with pytest.raises(UnsupportedFormatError):
        corrupt_chunk(v2, 0, Random(0))


def test_chunked_fuzz_summary_reports_isolation():
    from repro.faults import fuzz_chunked_container

    report = fuzz_chunked_container(_wire3_blob(), target="wc.wire3",
                                    rounds=4, seed=3)
    assert report.ok, [f.detail for f in report.failures]
    assert report.counts.get("isolated", 0) > 0
    assert "isolated=" in report.summary()
