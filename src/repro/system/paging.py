"""Paging/working-set model: the paper's memory-bottleneck scenario.

The introduction's motivating measurements: "we have seen the CPU idle for
most of the time during paging, so compressing pages can increase total
performance even though the CPU must decompress or interpret the page
contents.  Another profile shows that many functions are called just once,
so reduced paging could pay for their interpretation overhead."

The model: a program has N code pages; a fraction of its functions is
cold (touched once).  Total time = CPU execution time + page-fault stalls.
Storing code compressed shrinks the number of pages to fault in; the price
is an interpretation multiplier on the instructions executed from
compressed pages.  :func:`paging_run` computes both sides so benchmarks
can locate the crossover the paper claims.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

__all__ = ["PagingConfig", "PagingResult", "paging_run", "working_set_pages"]

PAGE_SIZE = 4096


@dataclass
class PagingConfig:
    """Machine and workload parameters for the model."""

    page_size: int = PAGE_SIZE
    fault_seconds: float = 0.010       # disk page-fault service time (HDD era)
    cpu_seconds_per_instr: float = 1e-8
    interp_slowdown: float = 12.0      # the paper's measured BRISC penalty
    cold_fraction: float = 0.6         # fraction of code executed only once


@dataclass
class PagingResult:
    """Time breakdown for one storage strategy."""

    strategy: str
    pages_faulted: int
    fault_seconds: float
    cpu_seconds: float

    @property
    def total_seconds(self) -> float:
        return self.fault_seconds + self.cpu_seconds


def working_set_pages(code_bytes: int, page_size: int = PAGE_SIZE) -> int:
    """Pages needed to hold ``code_bytes`` of code."""
    return (code_bytes + page_size - 1) // page_size


def paging_run(
    native_bytes: int,
    compressed_bytes: int,
    instructions_executed: int,
    config: PagingConfig = PagingConfig(),
) -> Dict[str, PagingResult]:
    """Model one cold-start run under three storage strategies.

    * ``native``: all pages faulted in as native code; CPU runs at 1x.
    * ``compressed-interpreted``: compressed pages faulted; every
      instruction pays the interpretation slowdown.
    * ``hybrid``: hot code (executed more than once) is kept native; the
      cold fraction stays compressed and is interpreted in place — the
      paper's "many functions are called just once" design point.
    """
    native_pages = working_set_pages(native_bytes, config.page_size)
    compressed_pages = working_set_pages(compressed_bytes, config.page_size)
    cpu_native = instructions_executed * config.cpu_seconds_per_instr

    results: Dict[str, PagingResult] = {}
    results["native"] = PagingResult(
        strategy="native",
        pages_faulted=native_pages,
        fault_seconds=native_pages * config.fault_seconds,
        cpu_seconds=cpu_native,
    )
    results["compressed-interpreted"] = PagingResult(
        strategy="compressed-interpreted",
        pages_faulted=compressed_pages,
        fault_seconds=compressed_pages * config.fault_seconds,
        cpu_seconds=cpu_native * config.interp_slowdown,
    )
    # Hybrid: cold code stays compressed (and contributes its compressed
    # pages + interpreted execution); hot code is native.  Cold code
    # executes only once, so its instruction share is far below its byte
    # share; approximate its dynamic share as cold_fraction * 5% of
    # executed instructions.
    cold = config.cold_fraction
    hot_native_pages = working_set_pages(
        int(native_bytes * (1 - cold)), config.page_size)
    cold_compressed_pages = working_set_pages(
        int(compressed_bytes * cold), config.page_size)
    cold_dynamic_share = cold * 0.05
    cpu_hybrid = cpu_native * (
        (1 - cold_dynamic_share) + cold_dynamic_share * config.interp_slowdown
    )
    results["hybrid"] = PagingResult(
        strategy="hybrid",
        pages_faulted=hot_native_pages + cold_compressed_pages,
        fault_seconds=(hot_native_pages + cold_compressed_pages)
        * config.fault_seconds,
        cpu_seconds=cpu_hybrid,
    )
    return results
