"""The RISC virtual machine: ISA, encoding, assembler, interpreter."""

from .asm import format_function, format_instr, parse_function
from .encode import (
    decode_function, decode_instr, encode_function, encode_instr,
    program_size,
)
from .instr import Instr, VMFunction, VMProgram
from .interp import ExecutionResult, Interpreter, VMError, run_program
from .isa import ISA, SPEC, SYSCALLS

__all__ = [
    "ISA", "SPEC", "SYSCALLS", "Instr", "VMFunction", "VMProgram",
    "ExecutionResult", "Interpreter", "VMError", "run_program",
    "decode_function", "decode_instr", "encode_function", "encode_instr",
    "format_function", "format_instr", "parse_function", "program_size",
]
