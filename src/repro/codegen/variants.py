"""The abstract-machine variants of the paper's ablation study.

"RISC designs are reduced but rarely minimal" — the paper de-tunes the VM
by removing (a) all immediate instructions except load-immediates, (b) all
addressing modes except load/store-indirect, and (c) both, then measures
compressed-size/native-size for each variant.
"""

from __future__ import annotations

from typing import List

from ..vm.isa import ISA

__all__ = ["ABLATION_VARIANTS"]

#: The four machines of the paper's table, in the paper's row order.
ABLATION_VARIANTS: List[ISA] = [
    ISA(immediates=True, regdisp=True, name="RISC"),
    ISA(immediates=False, regdisp=True, name="minus immediates"),
    ISA(immediates=True, regdisp=False, name="minus register-displacement"),
    ISA(immediates=False, regdisp=False, name="minus both"),
]
