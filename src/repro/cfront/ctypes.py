"""The C-subset type system.

Matches the layout the original lcc used on 32-bit targets, which is what
the paper's IR statistics assume: char=1, short=2, int=long=pointer=4,
double=8.  ``float`` is accepted as a synonym for double (the VM has one
floating width), which preserves the IR operator mix without doubling the
conversion matrix.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

__all__ = [
    "CType", "VoidType", "IntType", "FloatType", "PointerType", "ArrayType",
    "FunctionType", "StructType", "StructMember",
    "VOID", "CHAR", "UCHAR", "SHORT", "USHORT", "INT", "UINT", "LONG",
    "ULONG", "DOUBLE", "POINTER_SIZE",
    "is_integer", "is_arithmetic", "is_scalar", "usual_arithmetic",
    "integer_promote", "composite_compatible",
]

POINTER_SIZE = 4


class CType:
    """Base class for all types; concrete subclasses define size/align."""

    size: int
    align: int

    def __eq__(self, other: object) -> bool:
        return isinstance(other, CType) and self.key() == other.key()

    def __hash__(self) -> int:
        return hash(self.key())

    def key(self) -> Tuple:
        """A structural identity key (overridden by subclasses)."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return str(self)


class VoidType(CType):
    """The ``void`` type (size 0; only valid behind pointers/returns)."""

    size = 0
    align = 1

    def key(self) -> Tuple:
        return ("void",)

    def __str__(self) -> str:
        return "void"


@dataclass(frozen=True, eq=False)
class IntType(CType):
    """An integer type of a given width and signedness."""

    width: int  # bytes: 1, 2, or 4
    signed: bool
    name: str

    @property
    def size(self) -> int:  # type: ignore[override]
        return self.width

    @property
    def align(self) -> int:  # type: ignore[override]
        return self.width

    def key(self) -> Tuple:
        return ("int", self.width, self.signed)

    def __str__(self) -> str:
        return self.name

    @property
    def min_value(self) -> int:
        return -(1 << (self.width * 8 - 1)) if self.signed else 0

    @property
    def max_value(self) -> int:
        bits = self.width * 8
        return (1 << (bits - 1)) - 1 if self.signed else (1 << bits) - 1

    def wrap(self, value: int) -> int:
        """Reduce ``value`` modulo 2^bits into this type's range."""
        bits = self.width * 8
        value &= (1 << bits) - 1
        if self.signed and value >= 1 << (bits - 1):
            value -= 1 << bits
        return value


class FloatType(CType):
    """The single floating type (8-byte double)."""

    size = 8
    align = 8

    def key(self) -> Tuple:
        return ("double",)

    def __str__(self) -> str:
        return "double"


@dataclass(frozen=True, eq=False)
class PointerType(CType):
    """Pointer to ``target``."""

    target: CType

    size = POINTER_SIZE
    align = POINTER_SIZE

    def key(self) -> Tuple:
        return ("ptr", self.target.key())

    def __str__(self) -> str:
        return f"{self.target}*"


@dataclass(frozen=True, eq=False)
class ArrayType(CType):
    """Array of ``count`` elements (count may be None for `[]` params)."""

    element: CType
    count: Optional[int]

    @property
    def size(self) -> int:  # type: ignore[override]
        if self.count is None:
            return 0
        return self.element.size * self.count

    @property
    def align(self) -> int:  # type: ignore[override]
        return self.element.align

    def key(self) -> Tuple:
        return ("array", self.element.key(), self.count)

    def __str__(self) -> str:
        return f"{self.element}[{'' if self.count is None else self.count}]"


@dataclass(frozen=True, eq=False)
class FunctionType(CType):
    """Function type: return type, parameter types, variadic flag."""

    ret: CType
    params: Tuple[CType, ...]
    variadic: bool = False

    size = POINTER_SIZE  # decays to pointer for size purposes
    align = POINTER_SIZE

    def key(self) -> Tuple:
        return ("fn", self.ret.key(), tuple(p.key() for p in self.params), self.variadic)

    def __str__(self) -> str:
        ps = ", ".join(str(p) for p in self.params)
        if self.variadic:
            ps = f"{ps}, ..." if ps else "..."
        return f"{self.ret}({ps})"


@dataclass
class StructMember:
    """One member of a struct/union with its computed byte offset."""

    name: str
    type: CType
    offset: int = 0


class StructType(CType):
    """A struct or union; identity is nominal (by tag), layout computed once.

    Incomplete structs (declared but not defined) have ``members is None``.
    """

    def __init__(self, tag: str, is_union: bool = False) -> None:
        self.tag = tag
        self.is_union = is_union
        self.members: Optional[List[StructMember]] = None
        self._size = 0
        self._align = 1
        self._uid = id(self)

    def define(self, members: List[StructMember]) -> None:
        """Lay out ``members`` and mark the struct complete."""
        offset = 0
        align = 1
        for m in members:
            if m.type.size == 0 and not isinstance(m.type, ArrayType):
                raise ValueError(f"member {m.name} has incomplete type")
            a = m.type.align
            align = max(align, a)
            if self.is_union:
                m.offset = 0
                offset = max(offset, m.type.size)
            else:
                offset = (offset + a - 1) // a * a
                m.offset = offset
                offset += m.type.size
        self._align = align
        self._size = (offset + align - 1) // align * align
        self.members = members

    @property
    def size(self) -> int:  # type: ignore[override]
        return self._size

    @property
    def align(self) -> int:  # type: ignore[override]
        return self._align

    @property
    def complete(self) -> bool:
        return self.members is not None

    def member(self, name: str) -> Optional[StructMember]:
        """Look up a member by name (None when absent or incomplete)."""
        if self.members is None:
            return None
        for m in self.members:
            if m.name == name:
                return m
        return None

    def key(self) -> Tuple:
        return ("struct", self._uid)

    def __str__(self) -> str:
        kw = "union" if self.is_union else "struct"
        return f"{kw} {self.tag}"


VOID = VoidType()
CHAR = IntType(1, True, "char")
UCHAR = IntType(1, False, "unsigned char")
SHORT = IntType(2, True, "short")
USHORT = IntType(2, False, "unsigned short")
INT = IntType(4, True, "int")
UINT = IntType(4, False, "unsigned int")
LONG = IntType(4, True, "long")
ULONG = IntType(4, False, "unsigned long")
DOUBLE = FloatType()


def is_integer(t: CType) -> bool:
    """True for any integer type."""
    return isinstance(t, IntType)


def is_arithmetic(t: CType) -> bool:
    """True for integer or floating types."""
    return isinstance(t, (IntType, FloatType))


def is_scalar(t: CType) -> bool:
    """True for arithmetic or pointer types."""
    return is_arithmetic(t) or isinstance(t, PointerType)


def integer_promote(t: CType) -> CType:
    """C's integer promotions: sub-int integers promote to int."""
    if isinstance(t, IntType) and t.width < 4:
        return INT
    return t


def usual_arithmetic(a: CType, b: CType) -> CType:
    """The usual arithmetic conversions for a binary operator."""
    if isinstance(a, FloatType) or isinstance(b, FloatType):
        return DOUBLE
    a = integer_promote(a)
    b = integer_promote(b)
    assert isinstance(a, IntType) and isinstance(b, IntType)
    if not a.signed or not b.signed:
        return UINT
    return INT


def composite_compatible(a: CType, b: CType) -> bool:
    """Loose compatibility check used for assignments and calls."""
    if a == b:
        return True
    if isinstance(a, PointerType) and isinstance(b, PointerType):
        return (
            isinstance(a.target, VoidType)
            or isinstance(b.target, VoidType)
            or a.target == b.target
        )
    if is_arithmetic(a) and is_arithmetic(b):
        return True
    return False
