"""The cluster router: one RSV1 address in front of N service nodes.

Clients speak the exact protocol they already speak to a single node —
the router is a :mod:`repro.service.protocol` server on the front and a
pool of node connections on the back.  Per request:

1. the unit key (the request's ``name``, or its ``key`` for cache ops,
   or the op name) is placed on the consistent-hash ring, restricted to
   the nodes the health monitor currently believes are alive;
2. the frame is forwarded to the owner over a pooled connection and the
   node's reply — success or structured error — is relayed verbatim, so
   the PR 4 error taxonomy (retryable, retry_after) reaches the client
   untouched;
3. a *transport* failure (connect refused, connection cut, forward
   timeout) marks the node down immediately and replays the request on
   the key's next ring successor.  Replay is safe because every service
   op is idempotent — content-addressed compilation and reads — so the
   taxonomy's replay rule is: transport death ⇒ replay elsewhere;
   structured retryable errors (``OverloadedError``, ``CircuitOpenError``)
   ⇒ relay to the client, whose own backoff owns that retry; deadline
   errors ⇒ relay, never replay (the time is already spent).

A background health loop probes every node's ``ready`` op on a short
interval: probe failures take a node out of rotation, a later success
puts it back (which is how a restarted node gets its hash slots back).
Routing with *zero* live nodes sheds with a retryable
:class:`~repro.errors.OverloadedError` so clients keep retrying through
a full cluster outage.
"""

from __future__ import annotations

import asyncio
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Set

from ..errors import (
    DeadlineExceededError, DecodeError, OverloadedError,
    TruncatedStreamError,
)
from ..service import protocol
from .federation import parse_address
from .ring import HashRing

__all__ = ["BackgroundRouter", "ClusterRouter", "RouterConfig"]

#: Ops the router answers itself; everything else is forwarded to a node.
_LOCAL_OPS = frozenset({"ping", "ready", "stats", "shutdown"})


@dataclass(frozen=True)
class RouterConfig:
    """Knobs for one router instance."""

    host: str = "127.0.0.1"
    port: int = 0                    # 0: pick an ephemeral port
    replicas: int = 64               # virtual ring points per node
    health_interval: float = 0.25    # seconds between node probes
    probe_timeout: float = 1.0       # one health probe's budget
    connect_timeout: float = 2.0     # opening a node connection
    forward_margin: float = 5.0      # grace beyond the request deadline
    default_deadline: float = 30.0   # when the request names none
    replay_budget: int = 2           # transport-failure replays per request
    max_inflight: int = 64           # concurrent forwards before shedding
    shed_retry_after: float = 0.1    # hint when no node is live / too busy
    drain_timeout: float = 10.0      # grace for in-flight forwards
    max_frame_bytes: int = protocol.MAX_FRAME_BYTES

    def __post_init__(self) -> None:
        for name in ("health_interval", "probe_timeout", "connect_timeout",
                     "forward_margin", "default_deadline", "drain_timeout"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.replay_budget < 0:
            raise ValueError("replay_budget must be >= 0")
        if self.max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")


class _TransportFailure(Exception):
    """A node could not be reached or died mid-exchange (internal)."""


class _NodeHandle:
    """One backend node: address, liveness, counters, connection pool."""

    def __init__(self, address: str, config: RouterConfig) -> None:
        self.address = address
        self.host, self.port = parse_address(address)
        self._config = config
        self.alive = True          # optimistic until the first probe
        self.probes = 0
        self.forwards = 0
        self.failures = 0
        self.marked_down = 0
        self.marked_up = 0
        self._free: List[tuple] = []

    async def _open(self) -> tuple:
        return await asyncio.wait_for(
            asyncio.open_connection(self.host, self.port),
            timeout=self._config.connect_timeout)

    async def request(self, message: Dict[str, Any],
                      timeout: float) -> Dict[str, Any]:
        """One framed exchange over a pooled connection.

        Raises :class:`_TransportFailure` when the node is unreachable,
        cuts the connection, corrupts a frame, or exceeds ``timeout`` —
        the signals the failover path treats as "node is gone".
        """
        link = self._free.pop() if self._free else None
        try:
            if link is None:
                link = await self._open()
            reader, writer = link
            writer.write(protocol.encode_message(message))
            await asyncio.wait_for(writer.drain(), timeout=timeout)
            payload = await asyncio.wait_for(
                protocol.read_frame_async(reader,
                                          self._config.max_frame_bytes),
                timeout=timeout)
            if payload is None:
                raise TruncatedStreamError(
                    f"node {self.address} closed before replying")
            reply = protocol.decode_message(payload)
        except (DecodeError, ConnectionError, OSError,
                asyncio.TimeoutError) as exc:
            if link is not None:
                link[1].close()
            raise _TransportFailure(
                f"{self.address}: {type(exc).__name__}: {exc}") from exc
        self._free.append(link)
        return reply

    def close_pool(self) -> None:
        while self._free:
            _, writer = self._free.pop()
            writer.close()

    def snapshot(self) -> Dict[str, Any]:
        return {
            "alive": self.alive,
            "probes": self.probes,
            "forwards": self.forwards,
            "failures": self.failures,
            "marked_down": self.marked_down,
            "marked_up": self.marked_up,
        }


class ClusterRouter:
    """Consistent-hash request router over a fixed node address list."""

    def __init__(self, nodes: Sequence[str],
                 config: Optional[RouterConfig] = None) -> None:
        if not nodes:
            raise ValueError("a cluster needs at least one node")
        self.config = config or RouterConfig()
        self.nodes: Dict[str, _NodeHandle] = {
            address: _NodeHandle(address, self.config)
            for address in nodes
        }
        if len(self.nodes) != len(nodes):
            raise ValueError(f"duplicate node addresses in {list(nodes)!r}")
        self.ring = HashRing(self.nodes, replicas=self.config.replicas)
        self._server: Optional[asyncio.AbstractServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stopped: Optional[asyncio.Event] = None
        self._health_task: Optional[asyncio.Task] = None
        self._writers: set = set()
        self._inflight = 0
        self._replying = 0
        self._draining = False
        self._started = False
        # Router-level counters (event-loop thread only).
        self.requests = 0
        self.replays = 0
        self.failovers = 0
        self.shed = 0
        self.bad_frames = 0

    # -- lifecycle ---------------------------------------------------------

    @property
    def port(self) -> int:
        if self._server is None:
            raise RuntimeError("router not started")
        return self._server.sockets[0].getsockname()[1]

    @property
    def draining(self) -> bool:
        return self._draining

    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stopped = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port)
        self._health_task = asyncio.ensure_future(self._health_loop())
        self._started = True

    async def wait_stopped(self) -> None:
        await self._stopped.wait()

    async def run(self, ready=None) -> None:
        await self.start()
        if ready is not None:
            ready(self)
        await self.wait_stopped()

    async def shutdown(self) -> None:
        """Drain: stop accepting, let in-flight forwards finish, close."""
        if self._draining:
            return
        self._draining = True
        if self._server is not None:
            self._server.close()
        if self._health_task is not None:
            self._health_task.cancel()
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.config.drain_timeout
        while (self._inflight or self._replying) and loop.time() < deadline:
            await asyncio.sleep(0.005)
        for handle in self.nodes.values():
            handle.close_pool()
        for writer in list(self._writers):
            writer.close()
        if self._server is not None:
            try:
                await asyncio.wait_for(self._server.wait_closed(),
                                       timeout=5.0)
            except asyncio.TimeoutError:
                pass
        self._stopped.set()

    def _request_shutdown(self) -> None:
        assert self._loop is not None
        self._loop.call_soon_threadsafe(
            lambda: asyncio.ensure_future(self.shutdown()))

    # -- health ------------------------------------------------------------

    def alive_nodes(self) -> Set[str]:
        return {a for a, h in self.nodes.items() if h.alive}

    def _mark(self, handle: _NodeHandle, alive: bool) -> None:
        if handle.alive == alive:
            return
        handle.alive = alive
        if alive:
            handle.marked_up += 1
        else:
            handle.marked_down += 1
            self.failovers += 1

    async def _probe(self, handle: _NodeHandle) -> None:
        try:
            reply = await handle.request({"id": 0, "op": "ready"},
                                         timeout=self.config.probe_timeout)
        except _TransportFailure:
            self._mark(handle, False)
            handle.probes += 1  # counted at completion: verdict recorded
            return
        ready = bool(reply.get("ok")) and bool(
            reply.get("result", {}).get("ready"))
        # A draining node answers ready=false: route around it without
        # counting a failover (it is finishing its in-flight work).
        self._mark(handle, ready)
        handle.probes += 1

    async def _health_loop(self) -> None:
        try:
            while True:
                await asyncio.gather(
                    *(self._probe(h) for h in self.nodes.values()))
                await asyncio.sleep(self.config.health_interval)
        except asyncio.CancelledError:
            pass

    # -- connection loop (mirrors CompressionService) ----------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        self._writers.add(writer)
        try:
            while True:
                try:
                    payload = await protocol.read_frame_async(
                        reader, self.config.max_frame_bytes)
                except TruncatedStreamError:
                    self.bad_frames += 1
                    break
                except DecodeError as exc:
                    self.bad_frames += 1
                    await self._send(writer, {
                        "id": None, "ok": False,
                        "error": protocol.error_payload(exc)})
                    if protocol.recoverable(exc):
                        continue
                    break
                if payload is None:
                    break
                try:
                    message = protocol.decode_message(payload)
                except DecodeError as exc:
                    self.bad_frames += 1
                    await self._send(writer, {
                        "id": None, "ok": False,
                        "error": protocol.error_payload(exc)})
                    continue
                self._replying += 1
                try:
                    await self._send(writer, await self._dispatch(message))
                finally:
                    self._replying -= 1
                if self._draining:
                    break
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass
        finally:
            self._writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _send(self, writer: asyncio.StreamWriter,
                    reply: Dict[str, Any]) -> None:
        writer.write(protocol.encode_message(reply))
        await writer.drain()

    # -- dispatch ----------------------------------------------------------

    async def _dispatch(self, message: Dict[str, Any]) -> Dict[str, Any]:
        req_id = message.get("id")
        op = message.get("op")
        self.requests += 1
        if op in _LOCAL_OPS:
            return {"id": req_id, "ok": True,
                    "result": await self._local(op)}
        try:
            return await self._forward(message)
        except Exception as exc:  # typed shed/deadline/transport replies
            return {"id": req_id, "ok": False,
                    "error": protocol.error_payload(exc)}

    async def _local(self, op: str) -> Dict[str, Any]:
        if op == "ping":
            return {"pong": True, "router": True}
        if op == "ready":
            alive = self.alive_nodes()
            return {
                "ready": self._started and not self._draining and bool(alive),
                "draining": self._draining,
                "nodes": len(self.nodes),
                "alive": sorted(alive),
            }
        if op == "stats":
            return await self._stats()
        self._request_shutdown()
        return {"draining": True}

    async def _stats(self) -> Dict[str, Any]:
        """Router counters plus every live node's own ``stats`` reply."""
        per_node: Dict[str, Any] = {
            address: handle.snapshot()
            for address, handle in self.nodes.items()
        }

        async def fill(address: str, handle: _NodeHandle) -> None:
            try:
                reply = await handle.request(
                    {"id": 0, "op": "stats"},
                    timeout=self.config.probe_timeout)
            except _TransportFailure:
                return
            if reply.get("ok"):
                per_node[address]["stats"] = reply.get("result", {})

        await asyncio.gather(*(fill(a, h) for a, h in self.nodes.items()
                               if h.alive))
        return {
            "router": {
                "requests": self.requests,
                "replays": self.replays,
                "failovers": self.failovers,
                "shed": self.shed,
                "bad_frames": self.bad_frames,
                "inflight": self._inflight,
            },
            "nodes": per_node,
        }

    # -- forwarding with failover -----------------------------------------

    def _unit_key(self, message: Dict[str, Any]) -> str:
        name = message.get("name")
        if isinstance(name, str) and name:
            return name
        key = message.get("key")
        if isinstance(key, str) and key:
            return key
        return str(message.get("op"))

    def _deadline_of(self, message: Dict[str, Any]) -> float:
        deadline = message.get("deadline", self.config.default_deadline)
        if not isinstance(deadline, (int, float)) or deadline <= 0:
            return self.config.default_deadline  # node rejects it properly
        return float(deadline)

    async def _forward(self, message: Dict[str, Any]) -> Dict[str, Any]:
        if self._draining:
            raise OverloadedError("router is draining",
                                  retry_after=self.config.shed_retry_after)
        if self._inflight >= self.config.max_inflight:
            self.shed += 1
            raise OverloadedError(
                f"router at max_inflight={self.config.max_inflight}",
                retry_after=self.config.shed_retry_after)
        unit = self._unit_key(message)
        deadline = self._deadline_of(message)
        assert self._loop is not None
        t0 = self._loop.time()
        tried: Set[str] = set()
        replays = 0
        self._inflight += 1
        try:
            while True:
                candidates = self.alive_nodes() - tried
                address = self.ring.node_for(unit, alive=candidates)
                if address is None:
                    self.shed += 1
                    raise OverloadedError(
                        f"no live node for unit {unit!r} "
                        f"({len(self.nodes)} configured, "
                        f"{len(self.alive_nodes())} alive, "
                        f"{len(tried)} already tried)",
                        retry_after=max(self.config.shed_retry_after,
                                        self.config.health_interval))
                handle = self.nodes[address]
                remaining = deadline - (self._loop.time() - t0)
                if remaining <= 0:
                    raise DeadlineExceededError(
                        f"{message.get('op')} of {unit!r} spent its "
                        f"{deadline:.3f}s deadline failing over")
                try:
                    reply = await handle.request(
                        message,
                        timeout=remaining + self.config.forward_margin)
                except _TransportFailure:
                    # The node is gone (or wedged past the margin): take
                    # it out of rotation now — the health loop will
                    # re-admit it — and replay on the ring successor.
                    handle.failures += 1
                    self._mark(handle, False)
                    tried.add(address)
                    if replays >= self.config.replay_budget:
                        raise TruncatedStreamError(
                            f"node {address} failed mid-request and the "
                            f"replay budget ({self.config.replay_budget}) "
                            f"is spent") from None
                    replays += 1
                    self.replays += 1
                    continue
                handle.forwards += 1
                return reply
        finally:
            self._inflight -= 1


class BackgroundRouter:
    """Run a :class:`ClusterRouter` on a dedicated event-loop thread."""

    def __init__(self, nodes: Sequence[str],
                 config: Optional[RouterConfig] = None) -> None:
        self.router = ClusterRouter(nodes, config=config)
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None

    def __enter__(self) -> "BackgroundRouter":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    @property
    def port(self) -> int:
        return self.router.port

    @property
    def host(self) -> str:
        return self.router.config.host

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def start(self, timeout: float = 10.0) -> "BackgroundRouter":
        def main() -> None:
            try:
                asyncio.run(self.router.run(
                    ready=lambda _r: self._ready.set()))
            except BaseException as exc:
                self._startup_error = exc
                self._ready.set()

        self._thread = threading.Thread(target=main, daemon=True,
                                        name="repro-cluster-router")
        self._thread.start()
        if not self._ready.wait(timeout):
            raise RuntimeError(f"router failed to start within {timeout}s")
        if self._startup_error is not None:
            raise RuntimeError("router failed to start") \
                from self._startup_error
        return self

    def stop(self, timeout: float = 15.0) -> None:
        if self._thread is None or not self._thread.is_alive():
            return
        self.router._request_shutdown()
        self._thread.join(timeout)

    def wait_alive(self, count: int = 1, timeout: float = 10.0) -> bool:
        """Block until the health loop sees ``count`` live nodes."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if len(self.router.alive_nodes()) >= count:
                return True
            time.sleep(0.02)
        return False
