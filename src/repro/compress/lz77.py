"""LZ77 string matching with hash chains.

The paper's final wire-format stage gzips each stream; gzip's engine is
LZ77 over a 32 KiB window followed by Huffman coding.  This module supplies
the matching half: it turns a byte string into a token sequence of literals
and ``(length, distance)`` back-references, with a greedy-plus-lazy matching
heuristic like zlib's.

Tokens are consumed by :mod:`repro.compress.deflate`, which entropy-codes
them, and by the design-space benchmarks, which measure how stream
separation changes match statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Union

from ..errors import CorruptStreamError

__all__ = [
    "Literal",
    "Match",
    "Token",
    "WINDOW_SIZE",
    "MIN_MATCH",
    "MAX_MATCH",
    "tokenize",
    "detokenize",
]

WINDOW_SIZE = 32 * 1024
MIN_MATCH = 3
MAX_MATCH = 258
_HASH_LEN = 3
_MAX_CHAIN = 128  # how many previous positions to probe per match attempt


@dataclass(frozen=True)
class Literal:
    """A single uncompressed byte."""

    byte: int

    def __post_init__(self) -> None:
        if not 0 <= self.byte <= 255:
            raise ValueError("literal byte out of range")


@dataclass(frozen=True)
class Match:
    """A back-reference: copy ``length`` bytes from ``distance`` back."""

    length: int
    distance: int

    def __post_init__(self) -> None:
        if not MIN_MATCH <= self.length <= MAX_MATCH:
            raise ValueError(f"match length {self.length} out of range")
        if not 1 <= self.distance <= WINDOW_SIZE:
            raise ValueError(f"match distance {self.distance} out of range")


Token = Union[Literal, Match]


def _hash3(data: bytes, i: int) -> int:
    return (data[i] << 16) ^ (data[i + 1] << 8) ^ data[i + 2]


def _longest_match(
    data: bytes, pos: int, candidates: List[int], max_len: int
) -> "tuple[int, int]":
    """Return (best_length, best_distance) among candidate start positions."""
    best_len = 0
    best_dist = 0
    window_floor = pos - WINDOW_SIZE
    probes = 0
    # Most recent candidates first: shortest distances, most likely cached.
    for cand in reversed(candidates):
        if cand < window_floor:
            break
        probes += 1
        if probes > _MAX_CHAIN:
            break
        # Quick reject: match must beat best_len, so check that byte first.
        if best_len and data[cand + best_len] != data[pos + best_len]:
            continue
        length = 0
        while length < max_len and data[cand + length] == data[pos + length]:
            length += 1
        if length > best_len:
            best_len = length
            best_dist = pos - cand
            if length >= max_len:
                break
    return best_len, best_dist


def tokenize(data: bytes, lazy: bool = True) -> List[Token]:
    """Convert ``data`` into LZ77 tokens.

    With ``lazy`` matching (the default, mirroring zlib), a match at
    position *i* is deferred when position *i+1* offers a strictly longer
    match, emitting a literal instead — a meaningful win on code bytes.
    """
    n = len(data)
    tokens: List[Token] = []
    if n == 0:
        return tokens
    chains: dict = {}
    i = 0

    def insert(pos: int) -> None:
        if pos + _HASH_LEN <= n:
            chains.setdefault(_hash3(data, pos), []).append(pos)

    while i < n:
        max_len = min(MAX_MATCH, n - i)
        best_len = 0
        best_dist = 0
        if max_len >= MIN_MATCH:
            cands = chains.get(_hash3(data, i))
            if cands:
                best_len, best_dist = _longest_match(data, i, cands, max_len)
        if best_len >= MIN_MATCH:
            if lazy and i + 1 < n and best_len < MAX_MATCH:
                next_max = min(MAX_MATCH, n - i - 1)
                if next_max >= MIN_MATCH:
                    nc = chains.get(_hash3(data, i + 1)) if i + 1 + _HASH_LEN <= n else None
                    if nc:
                        nlen, _ = _longest_match(data, i + 1, nc, next_max)
                        if nlen > best_len:
                            tokens.append(Literal(data[i]))
                            insert(i)
                            i += 1
                            continue
            tokens.append(Match(best_len, best_dist))
            end = i + best_len
            while i < end:
                insert(i)
                i += 1
        else:
            tokens.append(Literal(data[i]))
            insert(i)
            i += 1
    return tokens


def detokenize(tokens: List[Token]) -> bytes:
    """Reconstruct the original bytes from a token sequence.

    A back-reference pointing before the start of the output (which only a
    corrupt token stream can produce) raises
    :class:`~repro.errors.CorruptStreamError`.
    """
    out = bytearray()
    for tok in tokens:
        if isinstance(tok, Literal):
            out.append(tok.byte)
        else:
            start = len(out) - tok.distance
            if start < 0:
                raise CorruptStreamError(
                    "match distance reaches before stream start")
            for k in range(tok.length):
                out.append(out[start + k])  # may overlap, byte-at-a-time copy
    return bytes(out)
