"""C parser tests (syntax only; typing is covered in test_sema)."""

import pytest

from repro.cfront import ctypes as ct
from repro.cfront.astnodes import (
    Assign, Binary, Block, Call, Case, Conditional, DeclStmt, DoWhile,
    For, If, IncDec, Index, Member, Return, Switch, Unary, While,
)
from repro.cfront.ctypes import ArrayType, FunctionType, PointerType, StructType
from repro.cfront.errors import CompileError
from repro.cfront.parser import parse


def parse_expr(src):
    unit = parse(f"int f(void) {{ return {src}; }}")
    ret = unit.functions[0].body.body[0]
    assert isinstance(ret, Return)
    return ret.value


def parse_stmts(src):
    unit = parse(f"void f(void) {{ {src} }}")
    return unit.functions[0].body.body


class TestDeclarations:
    def test_global_int(self):
        unit = parse("int x;")
        assert unit.globals[0].name == "x"
        assert unit.globals[0].type == ct.INT

    def test_pointer_chain(self):
        unit = parse("int **pp;")
        t = unit.globals[0].type
        assert isinstance(t, PointerType) and isinstance(t.target, PointerType)

    def test_array(self):
        unit = parse("int a[10];")
        t = unit.globals[0].type
        assert isinstance(t, ArrayType) and t.count == 10

    def test_multidim_array(self):
        unit = parse("int m[3][4];")
        t = unit.globals[0].type
        assert isinstance(t, ArrayType) and t.count == 3
        assert isinstance(t.element, ArrayType) and t.element.count == 4

    def test_array_size_constant_expr(self):
        unit = parse("enum { N = 8 }; int a[N * 2];")
        assert unit.globals[0].type.count == 16

    def test_negative_array_size_rejected(self):
        with pytest.raises(CompileError):
            parse("int a[-1];")

    def test_multiple_declarators(self):
        unit = parse("int x, *p, a[2];")
        names = [g.name for g in unit.globals]
        assert names == ["x", "p", "a"]
        assert isinstance(unit.globals[1].type, PointerType)
        assert isinstance(unit.globals[2].type, ArrayType)

    def test_function_prototype(self):
        unit = parse("int add(int a, int b);")
        fn = unit.functions[0]
        assert fn.body is None
        assert isinstance(fn.type, FunctionType)
        assert len(fn.type.params) == 2

    def test_function_definition_param_names(self):
        unit = parse("int add(int a, int b) { return 0; }")
        assert [p.name for p in unit.functions[0].params] == ["a", "b"]

    def test_void_param_list(self):
        unit = parse("int f(void);")
        assert unit.functions[0].type.params == ()

    def test_variadic(self):
        unit = parse("int printfish(char *fmt, ...);")
        assert unit.functions[0].type.variadic

    def test_function_pointer_declarator(self):
        unit = parse("int (*handler)(int, int);")
        t = unit.globals[0].type
        assert isinstance(t, PointerType)
        assert isinstance(t.target, FunctionType)
        assert len(t.target.params) == 2

    def test_function_returning_function_pointer(self):
        unit = parse("int (*pick(int which))(int, int) { return 0; }")
        fn = unit.functions[0]
        assert isinstance(fn.type, FunctionType)
        ret = fn.type.ret
        assert isinstance(ret, PointerType)
        assert isinstance(ret.target, FunctionType)
        assert [p.name for p in fn.params] == ["which"]

    def test_typedef(self):
        unit = parse("typedef unsigned int uint; uint x;")
        assert unit.globals[0].type == ct.UINT

    def test_typedef_pointer(self):
        unit = parse("typedef char *string; string s;")
        assert unit.globals[0].type == PointerType(ct.CHAR)

    def test_struct_definition_and_use(self):
        unit = parse("struct P { int x; int y; }; struct P p;")
        t = unit.globals[0].type
        assert isinstance(t, StructType)
        assert t.size == 8

    def test_struct_members_multi_declarator(self):
        unit = parse("struct P { int x, y; }; struct P p;")
        assert unit.globals[0].type.size == 8

    def test_union(self):
        unit = parse("union U { int i; char c; }; union U u;")
        t = unit.globals[0].type
        assert t.is_union and t.size == 4

    def test_struct_redefinition_rejected(self):
        with pytest.raises(CompileError):
            parse("struct P { int x; }; struct P { int y; };")

    def test_enum_values(self):
        unit = parse("enum { A, B = 5, C }; int x[C];")
        assert unit.globals[0].type.count == 6

    def test_static_and_extern(self):
        unit = parse("static int s; extern int e;")
        assert unit.globals[0].is_static
        assert unit.globals[1].is_extern


class TestExpressions:
    def test_precedence_mul_over_add(self):
        e = parse_expr("1 + 2 * 3")
        assert isinstance(e, Binary) and e.op == "+"
        assert isinstance(e.right, Binary) and e.right.op == "*"

    def test_precedence_shift_below_add(self):
        e = parse_expr("1 << 2 + 3")
        assert e.op == "<<"
        assert isinstance(e.right, Binary) and e.right.op == "+"

    def test_precedence_relational_vs_equality(self):
        e = parse_expr("a == b < c")
        assert e.op == "=="
        assert isinstance(e.right, Binary) and e.right.op == "<"

    def test_logical_lowest(self):
        e = parse_expr("a && b | c")
        assert e.op == "&&"

    def test_assignment_right_associative(self):
        stmts = parse_stmts("int a; int b; a = b = 1;")
        assign = stmts[2].expr
        assert isinstance(assign, Assign)
        assert isinstance(assign.value, Assign)

    def test_conditional(self):
        e = parse_expr("a ? 1 : 2")
        assert isinstance(e, Conditional)

    def test_unary_binds_tighter_than_binary(self):
        e = parse_expr("-a * b")
        assert isinstance(e, Binary) and e.op == "*"
        assert isinstance(e.left, Unary) and e.left.op == "-"

    def test_cast_expression(self):
        e = parse_expr("(unsigned)x")
        from repro.cfront.astnodes import Cast
        assert isinstance(e, Cast) and e.target == ct.UINT

    def test_sizeof_type(self):
        e = parse_expr("sizeof(int)")
        from repro.cfront.astnodes import SizeofType
        assert isinstance(e, SizeofType) and e.target == ct.INT

    def test_sizeof_expr(self):
        e = parse_expr("sizeof x")
        assert isinstance(e, Unary) and e.op == "sizeof"

    def test_postfix_chain(self):
        e = parse_expr("a[1].f")
        assert isinstance(e, Member)
        assert isinstance(e.base, Index)

    def test_arrow(self):
        e = parse_expr("p->next")
        assert isinstance(e, Member) and e.arrow

    def test_call_with_args(self):
        e = parse_expr("f(1, 2, 3)")
        assert isinstance(e, Call) and len(e.args) == 3

    def test_postfix_increment(self):
        e = parse_expr("x++")
        assert isinstance(e, IncDec) and e.postfix

    def test_prefix_decrement(self):
        e = parse_expr("--x")
        assert isinstance(e, IncDec) and not e.postfix and e.op == "--"

    def test_comma_in_parens(self):
        e = parse_expr("(a, b)")
        assert isinstance(e, Binary) and e.op == ","

    def test_missing_operand_rejected(self):
        with pytest.raises(CompileError):
            parse_expr("1 +")


class TestStatements:
    def test_if_else_binds_to_nearest(self):
        stmts = parse_stmts("if (1) if (2) ; else ;")
        outer = stmts[0]
        assert isinstance(outer, If) and outer.otherwise is None
        inner = outer.then
        assert isinstance(inner, If) and inner.otherwise is not None

    def test_while(self):
        stmts = parse_stmts("while (1) ;")
        assert isinstance(stmts[0], While)

    def test_do_while(self):
        stmts = parse_stmts("do ; while (0);")
        assert isinstance(stmts[0], DoWhile)

    def test_for_with_declaration(self):
        stmts = parse_stmts("for (int i = 0; i < 10; i++) ;")
        f = stmts[0]
        assert isinstance(f, For) and isinstance(f.init, DeclStmt)

    def test_for_all_parts_optional(self):
        stmts = parse_stmts("for (;;) break;")
        f = stmts[0]
        assert f.init is None and f.cond is None and f.step is None

    def test_switch_with_cases(self):
        stmts = parse_stmts(
            "int x; switch (x) { case 1: break; default: break; }")
        sw = stmts[1]
        assert isinstance(sw, Switch)
        body = sw.body
        assert isinstance(body, Block)
        assert any(isinstance(s, Case) for s in body.body)

    def test_local_declaration_with_init(self):
        stmts = parse_stmts("int x = 5;")
        decl = stmts[0]
        assert isinstance(decl, DeclStmt)
        assert decl.decls[0].init is not None

    def test_initializer_list(self):
        unit = parse("int a[3] = {1, 2, 3};")
        from repro.cfront.astnodes import InitList
        assert isinstance(unit.globals[0].init, InitList)

    def test_nested_initializer_list(self):
        unit = parse("int m[2][2] = {{1, 2}, {3, 4}};")
        init = unit.globals[0].init
        assert len(init.items) == 2

    def test_missing_semicolon_rejected(self):
        with pytest.raises(CompileError):
            parse_stmts("int x = 5")

    def test_unclosed_block_rejected(self):
        with pytest.raises(CompileError):
            parse("void f(void) { if (1) {")


def test_goto_rejected_with_clear_message():
    with pytest.raises(CompileError, match="goto"):
        parse("void f(void) { goto out; out: ; }")
