"""Quickstart: compile C, run it, and compress it both ways.

Usage::

    python examples/quickstart.py

Walks the whole pipeline on a small program: C source -> lcc-style tree IR
-> RISC VM code -> (a) the wire format and (b) BRISC, then executes the
program from every representation to show they agree.  One
:class:`repro.pipeline.Toolchain` call produces every artifact; a second
call shows the content-addressed cache serving the whole bundle for free.
"""

from repro.brisc import decompress, run_image
from repro.codegen import generate_program
from repro.ir import dump_function
from repro.native import SparcLike
from repro.pipeline import Toolchain
from repro.vm import run_program
from repro.wire import decode_module

SOURCE = r"""
int gcd(int a, int b) {
    while (b) { int t = a % b; a = b; b = t; }
    return a;
}

int fib(int n) { return n < 2 ? n : fib(n - 1) + fib(n - 2); }

int main(void) {
    print_str("gcd(462, 1071) = ");
    print_int(gcd(462, 1071));
    putchar('\n');
    print_str("fib(15) = ");
    print_int(fib(15));
    putchar('\n');
    return 0;
}
"""


def main() -> None:
    toolchain = Toolchain()
    print("== 1. compile C through the staged pipeline ==")
    res = toolchain.compile(SOURCE, name="quickstart")
    print(dump_function(res.module.function("gcd")))
    print()

    print("== 2. run the RISC VM code ==")
    result = run_program(res.program)
    print(result.output, end="")
    print(f"(exit {result.exit_code}, {result.steps} instructions)\n")

    print("== 3. sizes across representations ==")
    sizes = res.sizes()
    native = SparcLike().program_size(res.program)
    brisc = res.brisc
    print(f"  conventional (SPARC-like) : {native:6d} bytes")
    print(f"  VM binary encoding        : {sizes['vm']:6d} bytes")
    print(f"  wire format               : {sizes['wire']:6d} bytes")
    print(f"  BRISC image               : {sizes['brisc']:6d} bytes "
          f"(code segment {brisc.image.code_segment_size})")
    print()

    print("== 4. run from every compressed representation ==")
    rewired = run_program(generate_program(decode_module(res.wire_blob)))
    print(f"  wire round-trip output matches: "
          f"{rewired.output == result.output}")
    inplace = run_image(brisc.image.blob)
    print(f"  BRISC interpreted in place     : "
          f"{inplace.output == result.output}")
    redecoded = run_program(decompress(brisc.image.blob))
    print(f"  BRISC decompressed and re-run  : "
          f"{redecoded.output == result.output}")
    print()

    print("== 5. recompile: every stage is a cache hit ==")
    again = toolchain.compile(SOURCE, name="quickstart")
    hits = [a.stage for a in again.artifacts.values() if a.from_cache]
    print(f"  stages served from cache: {', '.join(hits)}")
    stats = toolchain.stats()["stages"]
    print(f"  total stage runs after two compiles: "
          f"{sum(s['runs'] for s in stats.values())} "
          f"(one per stage; the second compile cost nothing)")


if __name__ == "__main__":
    main()
