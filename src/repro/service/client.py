"""The small blocking client for the service front end.

One :class:`ServiceClient` holds one connection and issues framed JSON
requests sequentially (open several clients for concurrency).  A failed
request raises :class:`RemoteServiceError`, which re-exposes the
server's structured error — class name, taxonomy, ``retryable`` and
``retry_after`` — so callers branch on fields, not message strings.
"""

from __future__ import annotations

import base64
import socket
from typing import Any, Dict, List, Optional

from ..errors import ServiceError
from . import protocol

__all__ = ["RemoteServiceError", "ServiceClient"]


class RemoteServiceError(ServiceError):
    """A structured error reply from the server.

    ``error_type`` is the server-side exception class name (e.g.
    ``"DeadlineExceededError"``, ``"CorruptStreamError"``), ``taxonomy``
    the family (``service`` / ``decode`` / ``compile`` / ``internal``).
    """

    def __init__(self, error: Dict[str, Any]) -> None:
        super().__init__(error.get("message", "service error"))
        self.error_type = str(error.get("type", "unknown"))
        self.taxonomy = str(error.get("taxonomy", "unknown"))
        self.retryable = bool(error.get("retryable", False))
        self.retry_after = error.get("retry_after")

    def __str__(self) -> str:
        hint = " (retryable)" if self.retryable else ""
        return f"{self.error_type}: {super().__str__()}{hint}"


class ServiceClient:
    """Blocking, single-connection client; usable as a context manager."""

    def __init__(self, host: str = "127.0.0.1", port: int = 7117,
                 timeout: float = 30.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self._sock: Optional[socket.socket] = None
        self._next_id = 0

    def __enter__(self) -> "ServiceClient":
        self.connect()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def connect(self) -> None:
        if self._sock is None:
            self._sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout)

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None

    # -- request plumbing --------------------------------------------------

    def request(self, op: str, **fields: Any) -> Dict[str, Any]:
        """Send one request; return the reply's ``result`` object.

        Raises :class:`RemoteServiceError` on a structured error reply
        and :class:`repro.errors.DecodeError` when the transport itself
        misbehaves (corrupt reply frame, connection cut mid-reply).
        """
        self.connect()
        assert self._sock is not None
        self._next_id += 1
        message = {"id": self._next_id, "op": op}
        message.update({k: v for k, v in fields.items() if v is not None})
        self._sock.sendall(protocol.encode_message(message))
        payload = protocol.read_frame_sync(self._sock)
        if payload is None:
            # The server closed instead of replying: surface as a
            # truncated exchange so retry logic can treat it uniformly.
            from ..errors import TruncatedStreamError

            raise TruncatedStreamError(
                f"connection closed before a reply to {op!r}")
        reply = protocol.decode_message(payload)
        if reply.get("ok"):
            return reply.get("result", {})
        raise RemoteServiceError(reply.get("error", {}))

    # -- convenience ops ---------------------------------------------------

    def ping(self) -> Dict[str, Any]:
        return self.request("ping")

    def ready(self) -> Dict[str, Any]:
        return self.request("ready")

    def stats(self) -> Dict[str, Any]:
        return self.request("stats")

    def shutdown(self) -> Dict[str, Any]:
        return self.request("shutdown")

    def sleep(self, seconds: float,
              deadline: Optional[float] = None,
              name: Optional[str] = None) -> Dict[str, Any]:
        return self.request("sleep", seconds=seconds, deadline=deadline,
                            name=name)

    def compile(self, source: str, name: str = "<client>",
                stages: Optional[List[str]] = None,
                deadline: Optional[float] = None) -> Dict[str, Any]:
        return self.request("compile", source=source, name=name,
                            stages=stages, deadline=deadline)

    def wire(self, source: str, name: str = "<client>",
             deadline: Optional[float] = None) -> bytes:
        result = self.request("wire", source=source, name=name,
                              deadline=deadline)
        return base64.b64decode(result["blob_b64"])

    def brisc(self, source: str, name: str = "<client>",
              deadline: Optional[float] = None) -> bytes:
        result = self.request("brisc", source=source, name=name,
                              deadline=deadline)
        return base64.b64decode(result["blob_b64"])

    def verify(self, blob: bytes,
               deadline: Optional[float] = None,
               function: Optional[str] = None) -> Dict[str, Any]:
        return self.request(
            "verify", blob_b64=base64.b64encode(blob).decode("ascii"),
            deadline=deadline, function=function)

    # -- demand paging -----------------------------------------------------

    def _materialize(self, result: Dict[str, Any]) -> Dict[str, Any]:
        """Decode the reply's segments and rebuild the sparse container.

        ``result["blob"]`` becomes a container of the advertised total
        size with only the fetched ranges filled in — decodable for the
        requested function/span, zero everywhere else.
        """
        from ..container import assemble_sparse

        segments = [(int(seg["offset"]), base64.b64decode(seg["b64"]))
                    for seg in result.get("segments", [])]
        result["blob"] = assemble_sparse(int(result["total_bytes"]), segments)
        return result

    def fetch_function(self, source: str, function: str,
                       name: str = "<client>", format: str = "wire",
                       chunk_bytes: Optional[int] = None,
                       deadline: Optional[float] = None) -> Dict[str, Any]:
        """Fetch only the byte ranges covering one function."""
        return self._materialize(self.request(
            "fetch_function", source=source, name=name, function=function,
            format=format, chunk_bytes=chunk_bytes, deadline=deadline))

    def fetch_range(self, source: str, start: int, length: int,
                    name: str = "<client>", format: str = "wire",
                    chunk_bytes: Optional[int] = None,
                    deadline: Optional[float] = None) -> Dict[str, Any]:
        """Fetch the byte ranges covering a decoded-address-space span."""
        return self._materialize(self.request(
            "fetch_range", source=source, name=name, start=start,
            length=length, format=format, chunk_bytes=chunk_bytes,
            deadline=deadline))
