"""Wire-format tests: patternization, round-trips, and size behaviour."""

import pytest

import repro
from repro.cfront import compile_to_ast
from repro.corpus.samples import SAMPLES
from repro.ir import T, lower_unit
from repro.ir.tree import IRModule
from repro.vm import run_program
from repro.wire import (
    decode_module, encode_module, normalize_labels, patternize_tree,
    stream_breakdown, width_class, wire_size,
)
from repro.wire.patternize import unzigzag, zigzag


def lower(src, name="m"):
    return lower_unit(compile_to_ast(src, name), name)


class TestWidthClasses:
    def test_paper_style_8_bit(self):
        """The paper flags literals fitting 8/16 bits (ADDRLP8 etc.)."""
        assert width_class(0) == 0
        assert width_class(72) == 0
        assert width_class(-64) == 0

    def test_16_bit(self):
        assert width_class(1000) == 1
        assert width_class(-1000) == 1

    def test_32_bit(self):
        assert width_class(100000) == 2

    def test_zigzag_roundtrip(self):
        for v in (0, 1, -1, 127, -128, 32767, -32768, 10**9, -10**9):
            assert unzigzag(zigzag(v)) == v


class TestPatternize:
    def test_pattern_strips_literals(self):
        tree = T("ASGNI", T("ADDRLP", value=72),
                 T("SUBI", T("INDIRI", T("ADDRLP", value=72)),
                   T("CNSTC", value=1)))
        pattern, literals = patternize_tree(tree)
        names = [sym[0] for sym in pattern]
        assert names == ["ASGNI", "ADDRLP", "SUBI", "INDIRI", "ADDRLP",
                         "CNSTC"]

    def test_literals_in_prefix_order(self):
        tree = T("ASGNI", T("ADDRLP", value=72),
                 T("SUBI", T("INDIRI", T("ADDRLP", value=68)),
                   T("CNSTC", value=1)))
        _, literals = patternize_tree(tree)
        assert literals == [("ADDRLP8", 72), ("ADDRLP8", 68), ("CNSTC8", 1)]

    def test_same_shape_same_pattern(self):
        a = T("ADDI", T("CNSTI", value=1), T("CNSTI", value=2))
        b = T("ADDI", T("CNSTI", value=7), T("CNSTI", value=8))
        assert patternize_tree(a)[0] == patternize_tree(b)[0]

    def test_width_distinguishes_patterns(self):
        a = T("CNSTI", value=1)
        b = T("CNSTI", value=100000)
        assert patternize_tree(a)[0] != patternize_tree(b)[0]


class TestRoundTrip:
    def _roundtrip(self, src):
        mod = lower(src)
        back = decode_module(encode_module(mod))
        norm = [normalize_labels(f) for f in mod.functions]
        assert [f.name for f in back.functions] == [f.name for f in norm]
        for f1, f2 in zip(norm, back.functions):
            assert f1.forest == f2.forest
            assert f1.frame_size == f2.frame_size
            assert f1.param_sizes == f2.param_sizes
            assert f1.ret_suffix == f2.ret_suffix
        assert len(back.globals) == len(mod.globals)
        return back

    def test_simple_function(self):
        self._roundtrip("int f(int a, int b) { return a + b; }")

    def test_control_flow(self):
        self._roundtrip("""
            int f(int n) {
                int s = 0;
                for (int i = 0; i < n; i++)
                    if (i % 2) s += i;
                return s;
            }
        """)

    def test_doubles_and_strings(self):
        self._roundtrip("""
            double pi = 3.14159;
            char *msg = "hello";
            double area(double r) { return pi * r * r; }
        """)

    def test_globals_with_initializers(self):
        back = self._roundtrip("int t[4] = {1, 2, 3, 4}; int x = -9;")
        names = [g.name for g in back.globals]
        assert "t" in names and "x" in names

    @pytest.mark.parametrize("name", ["wc", "calc", "queens", "strings"])
    def test_corpus_samples_roundtrip(self, name):
        self._roundtrip(SAMPLES[name])

    def test_decoded_module_still_compiles_and_runs(self):
        src = SAMPLES["wc"]
        mod = lower(src, "wc")
        back = decode_module(encode_module(mod))
        from repro.codegen import generate_program

        base = run_program(generate_program(mod))
        redo = run_program(generate_program(back))
        assert (base.exit_code, base.output) == (redo.exit_code, redo.output)

    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError):
            decode_module(b"XXXX" + b"\0" * 10)


class TestSizes:
    def test_wire_beats_gzip_on_real_input(self):
        """On a medium program the split-stream wire format must compress
        better than plain deflate of the same trees' byte encoding (the
        paper's central size claim, in shape)."""
        src = "\n".join(
            SAMPLES[n].replace("int main(void)", f"int m{i}(void)")
            for i, n in enumerate(("calc", "sort", "strings", "queens"))
        )
        mod = lower(src)
        blob = encode_module(mod)
        uncompressed = encode_module(mod, compress=False)
        assert len(blob) < len(uncompressed)

    def test_stream_breakdown_covers_streams(self):
        mod = lower(SAMPLES["calc"])
        breakdown = stream_breakdown(mod)
        assert "patterns.idx" in breakdown
        assert any(k.startswith("lit.ADDRFP") or k.startswith("lit.ADDRLP")
                   for k in breakdown)

    def test_wire_size_helper(self):
        mod = lower("int f(void) { return 1; }")
        assert wire_size(mod) == len(encode_module(mod))

    def test_empty_module(self):
        mod = IRModule("empty")
        back = decode_module(encode_module(mod))
        assert back.functions == [] and back.globals == []


class TestContainerIntegrity:
    """WIR2 framing: version byte, per-stream CRCs, legacy decode."""

    def test_new_blobs_are_wir2(self):
        blob = encode_module(lower(SAMPLES["calc"]))
        assert blob[:4] == b"WIR2"

    def test_legacy_wir1_blobs_still_decode(self):
        from repro.compress.streams import pack_streams, unpack_streams
        from repro.ir import dump_module

        mod = lower(SAMPLES["calc"], "calc")
        blob = encode_module(mod)
        # Rebuild the same container the seed format would have written:
        # identical streams, no CRCs, WIR1 magic.
        streams = unpack_streams(blob[4:])
        legacy = b"WIR1" + pack_streams(streams, checksums=False)
        assert dump_module(decode_module(legacy)) == \
            dump_module(decode_module(blob))

    def test_unknown_version_rejected(self):
        from repro.errors import UnsupportedFormatError

        blob = encode_module(lower("int f(void) { return 1; }"))
        with pytest.raises(UnsupportedFormatError):
            decode_module(b"WIR9" + blob[4:])

    def test_wrong_magic_rejected_typed(self):
        from repro.errors import UnsupportedFormatError

        with pytest.raises(UnsupportedFormatError):
            decode_module(b"ELF\x7f" + bytes(32))

    def test_payload_corruption_caught_by_stream_crc(self):
        from repro.errors import DecodeError

        blob = bytearray(encode_module(lower(SAMPLES["calc"])))
        hits = 0
        for pos in range(4, len(blob), 97):  # sample positions
            mutant = bytearray(blob)
            mutant[pos] ^= 0x10
            try:
                decode_module(bytes(mutant))
            except DecodeError:
                hits += 1
        assert hits > 0  # corruption is reported, not absorbed silently

    def test_truncation_is_typed(self):
        from repro.errors import DecodeError

        blob = encode_module(lower(SAMPLES["calc"]))
        for cut in (5, len(blob) // 2, len(blob) - 1):
            with pytest.raises(DecodeError):
                decode_module(blob[:cut])
