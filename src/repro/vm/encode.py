"""Binary encoding of VM code — the "native VM size" the paper compresses.

Encoding scheme (variable length, byte aligned, little-endian):

* 1 opcode byte, then 1 width byte *only when the instruction carries an
  integer immediate*: 0/1/2 selecting an 8/16/32-bit immediate.  To avoid
  spending that extra byte, the width tag is folded into the opcode byte's
  two top bits — mnemonics fit in 6 bits? They do not (we have ~150), so
  instead the opcode space is widened: each immediate-carrying mnemonic
  claims three consecutive opcodes (imm8/imm16/imm32).  This is exactly the
  paper's observation that RISC "immediate instructions ... amount to
  limited ad hoc code compression".
* register operands: two per byte, packed as nibbles, in signature order
  (integer and double registers share the nibble stream);
* integer immediate: 1/2/4 bytes, signed two's complement;
* double immediate: 8 bytes (IEEE double);
* label: 2 bytes (code byte offset within the function);
* symbol: 2 bytes (global function/data index assigned at link time).

The decoder reverses all of this exactly; ``tests/test_vm_encode.py``
round-trips arbitrary instruction streams.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Optional, Tuple

from .instr import Instr, VMFunction, VMProgram
from .isa import MNEMONIC, Operand, SPEC

__all__ = [
    "encode_instr", "decode_instr", "encode_function", "decode_function",
    "program_size", "encoded_opcodes",
]

# Opcode assignment: walk the mnemonic list; immediate-carrying mnemonics
# take 3 slots (imm widths), others take 1.
_OPCODE_OF: Dict[Tuple[str, int], int] = {}
_DECODE: List[Tuple[str, int]] = []  # opcode -> (mnemonic, width_code)
for _name in MNEMONIC:
    _spec = SPEC[_name]
    if Operand.IMM in _spec.signature:
        for _w in range(3):
            _OPCODE_OF[(_name, _w)] = len(_DECODE)
            _DECODE.append((_name, _w))
    else:
        _OPCODE_OF[(_name, 0)] = len(_DECODE)
        _DECODE.append((_name, 0))
if len(_DECODE) > 256:  # pragma: no cover - static property of the ISA
    raise AssertionError(f"opcode space overflow: {len(_DECODE)}")

_IMM_SIZES = (1, 2, 4)


def _imm_width(value: int) -> int:
    """Width code (0/1/2) of the smallest signed field holding ``value``."""
    if -128 <= value < 128:
        return 0
    if -32768 <= value < 32768:
        return 1
    return 2


def encode_instr(
    instr: Instr,
    label_offsets: Optional[Dict[str, int]] = None,
    symbol_ids: Optional[Dict[str, int]] = None,
) -> bytes:
    """Encode one instruction.

    ``label_offsets`` and ``symbol_ids`` resolve names to numbers; when
    omitted, labels/symbols encode as zero (size-estimation mode).
    """
    spec = instr.spec
    width = 0
    imm_value = 0
    for kind, value in zip(spec.signature, instr.operands):
        if kind is Operand.IMM:
            assert isinstance(value, int)
            imm_value = value
            width = _imm_width(value)
    out = bytearray([_OPCODE_OF[(instr.name, width)]])
    # Pack registers as nibbles.
    nibbles: List[int] = []
    for kind, value in zip(spec.signature, instr.operands):
        if kind in (Operand.REG, Operand.FREG):
            assert isinstance(value, int)
            nibbles.append(value & 0xF)
    for i in range(0, len(nibbles), 2):
        hi = nibbles[i]
        lo = nibbles[i + 1] if i + 1 < len(nibbles) else 0
        out.append((hi << 4) | lo)
    # Non-register payloads in signature order.
    for kind, value in zip(spec.signature, instr.operands):
        if kind is Operand.IMM:
            size = _IMM_SIZES[width]
            out += int(imm_value).to_bytes(size, "little", signed=True)
        elif kind is Operand.DIMM:
            out += struct.pack("<d", float(value))
        elif kind is Operand.LABEL:
            assert isinstance(value, str)
            target = (label_offsets or {}).get(value, 0)
            out += target.to_bytes(2, "little")
        elif kind is Operand.SYM:
            assert isinstance(value, str)
            target = (symbol_ids or {}).get(value, 0)
            out += target.to_bytes(2, "little")
    return bytes(out)


def decode_instr(
    data: bytes,
    pos: int,
    label_names: Optional[Dict[int, str]] = None,
    symbol_names: Optional[Dict[int, str]] = None,
) -> Tuple[Instr, int]:
    """Decode one instruction at ``pos``; returns (instr, new_pos).

    Labels/symbols decode to ``@<offset>`` / ``#<index>`` placeholder names
    unless resolution maps are supplied.
    """
    opcode = data[pos]
    pos += 1
    if opcode >= len(_DECODE):
        raise ValueError(f"invalid opcode {opcode}")
    name, width = _DECODE[opcode]
    spec = SPEC[name]
    nreg = sum(
        1 for k in spec.signature if k in (Operand.REG, Operand.FREG)
    )
    regs: List[int] = []
    for i in range((nreg + 1) // 2):
        byte = data[pos]
        pos += 1
        regs.append(byte >> 4)
        regs.append(byte & 0xF)
    regs = regs[:nreg]
    operands: List[object] = []
    reg_i = 0
    for kind in spec.signature:
        if kind in (Operand.REG, Operand.FREG):
            operands.append(regs[reg_i])
            reg_i += 1
        elif kind is Operand.IMM:
            size = _IMM_SIZES[width]
            operands.append(int.from_bytes(data[pos : pos + size], "little",
                                           signed=True))
            pos += size
        elif kind is Operand.DIMM:
            operands.append(struct.unpack("<d", data[pos : pos + 8])[0])
            pos += 8
        elif kind is Operand.LABEL:
            off = int.from_bytes(data[pos : pos + 2], "little")
            pos += 2
            operands.append((label_names or {}).get(off, f"@{off}"))
        elif kind is Operand.SYM:
            idx = int.from_bytes(data[pos : pos + 2], "little")
            pos += 2
            operands.append((symbol_names or {}).get(idx, f"#{idx}"))
    return Instr(name, tuple(operands)), pos  # type: ignore[arg-type]


def encode_function(
    fn: VMFunction, symbol_ids: Optional[Dict[str, int]] = None
) -> bytes:
    """Encode a function body, resolving its labels to byte offsets.

    Label resolution iterates to a fixed point because immediate widths
    cannot change with label values (labels are fixed 2 bytes), so a single
    sizing pass suffices.
    """
    offsets: Dict[str, int] = {}
    # Sizing pass: labels encode as 2 bytes regardless of value.
    pos = 0
    index_to_offset: List[int] = []
    for instr in fn.code:
        index_to_offset.append(pos)
        pos += len(encode_instr(instr))
    for label, index in fn.labels.items():
        offsets[label] = index_to_offset[index] if index < len(index_to_offset) else pos
    out = bytearray()
    for instr in fn.code:
        out += encode_instr(instr, offsets, symbol_ids)
    return bytes(out)


def decode_function(data: bytes, name: str = "fn") -> VMFunction:
    """Decode a function body encoded by :func:`encode_function`.

    Labels come back as ``@<offset>`` names with the label map rebuilt.
    """
    fn = VMFunction(name)
    pos = 0
    offset_to_index: Dict[int, int] = {}
    while pos < len(data):
        offset_to_index[pos] = len(fn.code)
        instr, pos = decode_instr(data, pos)
        fn.code.append(instr)
    # Rebuild labels for every referenced offset.
    for instr in fn.code:
        for kind, value in zip(instr.spec.signature, instr.operands):
            if kind is Operand.LABEL and isinstance(value, str):
                off = int(value[1:])
                if off not in offset_to_index and off != len(data):
                    raise ValueError(f"branch into mid-instruction offset {off}")
                fn.labels.setdefault(
                    value, offset_to_index.get(off, len(fn.code))
                )
    return fn


def encoded_opcodes() -> int:
    """Number of base opcodes in the encoding (the paper reports 224)."""
    return len(_DECODE)


def program_size(program: VMProgram) -> int:
    """Total encoded code size of a program in bytes (code segments only,
    matching the paper's 'we compress only code segments')."""
    symbol_ids = {fn.name: i for i, fn in enumerate(program.functions)}
    for g in program.globals:
        symbol_ids.setdefault(g.name, len(symbol_ids))
    return sum(len(encode_function(fn, symbol_ids)) for fn in program.functions)
