"""Canonical Huffman coding.

The wire format Huffman-codes every MTF index stream, and the deflate-like
final stage Huffman-codes LZ77 tokens.  Codes are *canonical*: only the code
length of each symbol needs to be transmitted, and both sides derive
identical codewords by assigning consecutive values within each length,
shorter lengths first, ties broken by symbol order.

Code lengths are limited to :data:`MAX_CODE_LENGTH` bits (as in DEFLATE) by
a standard depth-rebalancing pass, so decode tables stay small and the
header encoding of lengths stays fixed-width.

Both directions are table-driven.  The encoder precomputes one MSB-first
bit *string* per symbol, so a whole stream encodes as one ``str.join``
plus a single base-2 int conversion — C-speed per symbol instead of a
Python-level shift per code.  The decoder builds a :data:`_ROOT_BITS`-bit
prefix table (every code of length ≤ N fills ``2^(N-len)`` consecutive
entries, zlib-style); codes longer than the root fall back to the
canonical first-code/offset walk.  The wire format is unchanged
bit-for-bit in both directions.
"""

from __future__ import annotations

import heapq
from collections import Counter
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import (
    CorruptStreamError, DEFAULT_LIMITS, ResourceLimits, TruncatedStreamError,
    decode_guard,
)
from .bitio import BitReader, BitWriter

__all__ = [
    "MAX_CODE_LENGTH",
    "code_lengths_from_frequencies",
    "canonical_codes",
    "HuffmanEncoder",
    "HuffmanDecoder",
    "write_code_lengths",
    "read_code_lengths",
    "encode_symbols",
    "decode_symbols",
]

MAX_CODE_LENGTH = 15

#: Width of the decoder's one-shot prefix table.  Covers the vast
#: majority of codes in one lookup while keeping per-stream table build
#: cost small (the wire format decodes many tiny streams).
_ROOT_BITS = 9

#: 4-bit nibble -> bit string, for code-length tables.
_NIBBLE_BITS = [format(i, "04b") for i in range(16)]

#: hex digit -> value, for bulk nibble extraction via bytes.hex().
_HEX_VALUE = {c: int(c, 16) for c in "0123456789abcdef"}


def code_lengths_from_frequencies(
    freqs: Sequence[int], max_length: int = MAX_CODE_LENGTH
) -> List[int]:
    """Compute Huffman code lengths (0 for unused symbols) from ``freqs``.

    Builds a standard Huffman tree with a heap, then rebalances any chain
    deeper than ``max_length`` by the usual "demote an interior leaf" fixup,
    preserving the Kraft inequality so canonical code assignment succeeds.
    """
    n = len(freqs)
    used = [i for i in range(n) if freqs[i] > 0]
    lengths = [0] * n
    if not used:
        return lengths
    if len(used) == 1:
        # A single symbol still needs one bit so the decoder can count.
        lengths[used[0]] = 1
        return lengths

    # Heap items: (frequency, tiebreak, node).  Leaves are ints, interior
    # nodes are (left, right) tuples.
    heap: List[Tuple[int, int, object]] = [(freqs[i], i, i) for i in used]
    heapq.heapify(heap)
    tiebreak = n
    while len(heap) > 1:
        f1, _, n1 = heapq.heappop(heap)
        f2, _, n2 = heapq.heappop(heap)
        heapq.heappush(heap, (f1 + f2, tiebreak, (n1, n2)))
        tiebreak += 1

    root = heap[0][2]
    # Recursion depth equals tree depth, which can reach len(used); walk
    # iteratively to be safe for large alphabets with skewed frequencies.
    stack = [(root, 0)]
    while stack:
        node, depth = stack.pop()
        if isinstance(node, tuple):
            stack.append((node[0], depth + 1))
            stack.append((node[1], depth + 1))
        else:
            lengths[node] = max(depth, 1)

    return _limit_lengths(lengths, max_length)


def _limit_lengths(lengths: List[int], max_length: int) -> List[int]:
    """Clamp code lengths to ``max_length`` while keeping Kraft-sum == 1."""
    if max(lengths) <= max_length:
        return lengths
    # Count codes per length, clamping the overlong ones.
    counts = [0] * (max_length + 1)
    for L in lengths:
        if L:
            counts[min(L, max_length)] += 1
    # Repair Kraft sum: while oversubscribed, promote one code from the
    # deepest level by demoting a shallower leaf (classic zlib fixup).
    unit = 1 << max_length  # kraft contributions scaled by 2^max_length
    total = sum(counts[L] << (max_length - L) for L in range(1, max_length + 1))
    while total > unit:
        # Find the deepest level with codes, move one code up from a
        # shallower level: take a leaf at depth d < max and split it.
        for d in range(max_length - 1, 0, -1):
            if counts[d]:
                counts[d] -= 1
                counts[d + 1] += 2
                counts[max_length] -= 1
                total = sum(counts[L] << (max_length - L)
                            for L in range(1, max_length + 1))
                break
        else:  # pragma: no cover - cannot happen with a valid tree
            raise AssertionError("unable to rebalance Huffman lengths")
    # Reassign lengths to symbols: sort used symbols by original length then
    # index, hand out the new length multiset shortest-first to the most
    # frequent... original-length order is a fine proxy and deterministic.
    used = sorted((L, i) for i, L in enumerate(lengths) if L)
    new_lengths: List[int] = []
    for L in range(1, max_length + 1):
        new_lengths.extend([L] * counts[L])
    out = [0] * len(lengths)
    for (old_l, i), new_l in zip(used, sorted(new_lengths)):
        out[i] = new_l
    return out


def canonical_codes(lengths: Sequence[int]) -> Dict[int, Tuple[int, int]]:
    """Map symbol -> (codeword, length) under the canonical assignment.

    Symbols with length 0 are absent from the result.
    """
    order = sorted((L, sym) for sym, L in enumerate(lengths) if L)
    codes: Dict[int, Tuple[int, int]] = {}
    code = 0
    prev_len = 0
    for L, sym in order:
        code <<= L - prev_len
        codes[sym] = (code, L)
        code += 1
        prev_len = L
    # Sanity: the code for the last symbol must fit in its length.
    if order:
        last_len = order[-1][0]
        if code > (1 << last_len):
            raise ValueError("code lengths violate the Kraft inequality")
    return codes


class HuffmanEncoder:
    """Encode symbols against a fixed table of canonical code lengths.

    ``bit_strings[sym]`` is the symbol's codeword as an MSB-first
    ``"01"`` string (``None`` for symbols without a code) — the batch
    encoders join these and convert once, instead of shifting per code.
    """

    def __init__(self, lengths: Sequence[int]) -> None:
        self.lengths = list(lengths)
        self.codes = canonical_codes(self.lengths)
        bits: List[Optional[str]] = [None] * len(self.lengths)
        for sym, (code, length) in self.codes.items():
            bits[sym] = format(code, "0%db" % length)
        self.bit_strings = bits

    @classmethod
    def from_frequencies(cls, freqs: Sequence[int]) -> "HuffmanEncoder":
        """Build an encoder directly from symbol frequencies."""
        return cls(code_lengths_from_frequencies(freqs))

    def encode_symbol(self, writer: BitWriter, symbol: int) -> None:
        """Append the codeword for ``symbol`` to ``writer``."""
        try:
            code, length = self.codes[symbol]
        except KeyError:
            raise ValueError(f"symbol {symbol} has no Huffman code") from None
        writer.write_bits(code, length)

    def symbol_bits(self, symbols: Iterable[int]) -> str:
        """The concatenated codewords of ``symbols`` as one bit string."""
        bits = self.bit_strings
        try:
            joined = "".join([bits[s] for s in symbols])  # type: ignore[misc]
        except (TypeError, IndexError):
            for s in symbols:
                if not isinstance(s, int) or not -len(bits) <= s < len(bits) \
                        or bits[s] is None:
                    raise ValueError(
                        f"symbol {s} has no Huffman code") from None
            raise
        return joined

    def encoded_bit_length(self, symbols: Iterable[int]) -> int:
        """Total bits the given symbols would occupy (costing utility)."""
        return sum(self.codes[s][1] for s in symbols)


class HuffmanDecoder:
    """Decode canonical Huffman codes by prefix-table lookup.

    A :data:`_ROOT_BITS`-wide table maps every possible next-bits prefix
    to ``(length << 16) | symbol`` for codes short enough to resolve in
    one probe; longer codes finish with the canonical
    first-code/offset walk.  Entry 0 marks prefixes no short code owns.
    """

    def __init__(self, lengths: Sequence[int]) -> None:
        self.lengths = list(lengths)
        try:
            codes = canonical_codes(self.lengths)
        except ValueError as exc:
            # Length tables read off the wire are attacker-controlled; an
            # infeasible table is a corrupt stream, not a programming error.
            raise CorruptStreamError(str(exc)) from exc
        counts = [0] * (MAX_CODE_LENGTH + 1)
        max_len = 0
        for L in self.lengths:
            if L:
                counts[L] += 1
                if L > max_len:
                    max_len = L
        self._max_len = max_len
        # Symbols in canonical order == sorted by (length, symbol).
        self._syms = [sym for _, sym in
                      sorted((L, s) for s, L in enumerate(self.lengths) if L)]
        # first[L]: first canonical code of length L; limit[L]: one past
        # the last; base[L]: index of first[L]'s symbol in _syms.
        first = [0] * (max_len + 1)
        limit = [0] * (max_len + 1)
        base = [0] * (max_len + 1)
        code = 0
        index = 0
        for L in range(1, max_len + 1):
            code <<= 1
            first[L] = code
            base[L] = index
            limit[L] = code + counts[L]
            code += counts[L]
            index += counts[L]
        self._first = first
        self._limit = limit
        self._base = base
        # Root prefix table.
        table_bits = min(max_len, _ROOT_BITS)
        self._table_bits = table_bits
        self._tb_mask = (1 << table_bits) - 1
        table = [0] * (1 << table_bits)
        for L in range(1, table_bits + 1):
            span = 1 << (table_bits - L)
            for code in range(first[L], limit[L]):
                sym = self._syms[base[L] + code - first[L]]
                entry = (L << 16) | sym
                start = code * span
                table[start : start + span] = [entry] * span
        self._table = table

    def decode_symbol(self, reader: BitReader) -> int:
        """Read one codeword from ``reader`` and return its symbol.

        The reader's accumulator may carry stale bits above ``_nbits``
        (see :class:`~repro.compress.bitio.BitReader`); they are trimmed
        on refill and masked out of the table index.
        """
        acc = reader._acc
        nav = reader._nbits
        tb = self._table_bits
        if nav < tb:
            data = reader._data
            pos = reader._pos
            chunk = data[pos : pos + 2]
            if chunk:
                got = len(chunk)
                acc = (((acc & ((1 << nav) - 1)) << (got * 8))
                       | int.from_bytes(chunk, "big"))
                nav += got * 8
                reader._pos = pos + got
        idx = ((acc >> (nav - tb)) if nav >= tb
               else (acc << (tb - nav))) & self._tb_mask
        entry = self._table[idx] if tb else 0
        length = entry >> 16
        if length and length <= nav:
            reader._acc = acc
            reader._nbits = nav - length
            return entry & 0xFFFF
        reader._acc = acc
        reader._nbits = nav
        return self._decode_long(reader)

    def _decode_long(self, reader: BitReader) -> int:
        """Slow path: codes longer than the root table, stream tails, and
        invalid prefixes — the canonical per-length walk."""
        nav = reader._nbits
        acc = reader._acc & ((1 << nav) - 1)  # drop any stale high bits
        data = reader._data
        pos = reader._pos
        n = len(data)
        first = self._first
        limit = self._limit
        for length in range(1, self._max_len + 1):
            while nav < length and pos < n:
                acc = (acc << 8) | data[pos]
                pos += 1
                nav += 8
            if nav < length:
                reader._acc, reader._nbits, reader._pos = acc, nav, pos
                raise TruncatedStreamError("bit stream exhausted")
            code = acc >> (nav - length)
            if first[length] <= code < limit[length]:
                nav -= length
                reader._acc = acc & ((1 << nav) - 1)
                reader._nbits = nav
                reader._pos = pos
                return self._syms[self._base[length] + code - first[length]]
        reader._acc, reader._nbits, reader._pos = acc, nav, pos
        raise CorruptStreamError("invalid Huffman code in stream")

    def decode_many(self, reader: BitReader, count: int) -> List[int]:
        """Decode ``count`` symbols in one batch loop over local state."""
        data = reader._data
        pos = reader._pos
        acc = reader._acc
        nav = reader._nbits
        n = len(data)
        tb = self._table_bits
        table = self._table
        tb_mask = (1 << tb) - 1
        out: List[int] = []
        append = out.append
        from_bytes = int.from_bytes
        # ``acc`` may carry already-consumed garbage above bit ``nav``
        # (the BitReader invariant); the table index masks it off and the
        # accumulator is only trimmed on refill, never per symbol.
        for _ in range(count):
            if nav < 16 and pos < n:
                chunk = data[pos : pos + 32]
                got = len(chunk)
                acc = (((acc & ((1 << nav) - 1)) << (got * 8))
                       | from_bytes(chunk, "big"))
                nav += got * 8
                pos += got
            idx = ((acc >> (nav - tb)) if nav >= tb
                   else (acc << (tb - nav))) & tb_mask
            entry = table[idx] if tb else 0
            length = entry >> 16
            if length and length <= nav:
                nav -= length
                append(entry & 0xFFFF)
                continue
            reader._acc = acc
            reader._nbits, reader._pos = nav, pos
            append(self._decode_long(reader))
            acc, nav, pos = reader._acc, reader._nbits, reader._pos
        reader._acc = acc
        reader._nbits, reader._pos = nav, pos
        return out


def write_code_lengths(writer: BitWriter, lengths: Sequence[int]) -> None:
    """Serialize a code-length table: 32-bit count then 4 bits per length."""
    writer.write_bits(len(lengths), 32)
    for L in lengths:
        if not 0 <= L <= MAX_CODE_LENGTH:
            raise ValueError(f"code length {L} out of range")
        writer.write_bits(L, 4)


def _code_lengths_bits(lengths: Sequence[int]) -> str:
    """The :func:`write_code_lengths` serialization as a bit string."""
    nibbles = _NIBBLE_BITS
    try:
        body = "".join([nibbles[L] for L in lengths])
    except IndexError:
        raise ValueError("code length out of range") from None
    return format(len(lengths), "032b") + body


def _bits_to_bytes(bitstr: str) -> bytes:
    """Pack an MSB-first bit string, zero-padding the final byte."""
    pad = -len(bitstr) % 8
    if pad:
        bitstr += "0" * pad
    return int(bitstr, 2).to_bytes(len(bitstr) >> 3, "big") if bitstr else b""


def read_code_lengths(
    reader: BitReader, limits: Optional[ResourceLimits] = None
) -> List[int]:
    """Inverse of :func:`write_code_lengths`.

    The count is validated against the remaining bits (each length costs
    four) and against ``limits.max_alphabet`` before any allocation.
    """
    limits = limits or DEFAULT_LIMITS
    n = reader.read_bits(32)
    limits.check("Huffman alphabet size", n, limits.max_alphabet)
    if n * 4 > reader.bits_remaining:
        raise TruncatedStreamError(
            f"code-length table promises {n} entries, stream too short")
    if n == 0:
        return []
    # Bulk nibble extraction: one multi-bit read, then the hex digits of
    # the (nibble-aligned) value are exactly the 4-bit lengths.
    raw = reader.read_bits(n * 4)
    hexstr = raw.to_bytes((n + 1) >> 1, "big").hex() if n & 1 == 0 else \
        (raw << 4).to_bytes((n >> 1) + 1, "big").hex()
    hexval = _HEX_VALUE
    return [hexval[c] for c in hexstr[:n]]


def encode_symbols(symbols: Sequence[int], alphabet_size: int) -> bytes:
    """One-shot: Huffman-code ``symbols``, embedding the length table.

    The symbol count is stored so trailing pad bits are unambiguous.
    """
    freqs = [0] * alphabet_size
    for s, c in Counter(symbols).items():
        freqs[s] += c
    enc = HuffmanEncoder.from_frequencies(freqs)
    if symbols and min(symbols) < 0:
        raise ValueError(
            f"symbol {min(symbols)} has no Huffman code")
    return _bits_to_bytes(
        format(len(symbols), "032b")
        + _code_lengths_bits(enc.lengths)
        + enc.symbol_bits(symbols))


def decode_symbols(
    data: bytes, limits: Optional[ResourceLimits] = None
) -> List[int]:
    """Inverse of :func:`encode_symbols`.

    Every count is validated against the remaining input and the resource
    limits, so a forged header raises a typed
    :class:`~repro.errors.DecodeError` instead of looping or allocating.
    """
    limits = limits or DEFAULT_LIMITS
    with decode_guard("Huffman stream"):
        r = BitReader(data)
        count = r.read_bits(32)
        limits.check("Huffman symbol count", count, limits.max_symbols)
        lengths = read_code_lengths(r, limits)
        if count and not any(lengths):
            raise CorruptStreamError(
                "symbol count is nonzero but the code-length table is empty")
        # Each symbol costs at least one bit, so the count cannot exceed
        # the bits left after the header — reject before the decode loop.
        if count > r.bits_remaining:
            raise TruncatedStreamError(
                f"stream promises {count} symbols, only "
                f"{r.bits_remaining} bits remain")
        dec = HuffmanDecoder(lengths)
        return dec.decode_many(r, count)
