"""Peephole optimization over VM functions.

The paper's OmniVM input was "highly optimized using a commercial compiler
back end"; our tree-walking generator leaves a few classic redundancies on
the table.  This pass removes them so the compressors see realistic code:

* ``mov.i r, r`` — self-moves (the call-result convention emits them);
* ``jmp L`` where ``L`` labels the next instruction;
* ``st.iw rA, o(sp)`` immediately followed by ``ld.iw rB, o(sp)`` — the
  load becomes ``mov.i rB, rA`` (or disappears when rA == rB);
* ``bCOND a, b, L1; jmp L2`` with ``L1`` labelling the instruction after
  the ``jmp`` — the branch inverts to target ``L2`` and the ``jmp`` dies.

All rules respect labels: no rule fires across a label boundary, and label
indices are remapped after deletions.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..vm.instr import Instr, VMFunction

__all__ = ["peephole_function", "INVERTED_BRANCH"]

INVERTED_BRANCH = {
    "beq.i": "bne.i", "bne.i": "beq.i",
    "blt.i": "bge.i", "bge.i": "blt.i",
    "ble.i": "bgt.i", "bgt.i": "ble.i",
    "bltu.i": "bgeu.i", "bgeu.i": "bltu.i",
    "bleu.i": "bgtu.i", "bgtu.i": "bleu.i",
    "beqi.i": "bnei.i", "bnei.i": "beqi.i",
    "blti.i": "bgei.i", "bgei.i": "blti.i",
    "blei.i": "bgti.i", "bgti.i": "blei.i",
    "bltui.i": "bgeui.i", "bgeui.i": "bltui.i",
    "bleui.i": "bgtui.i", "bgtui.i": "bleui.i",
    "beq.d": "bne.d", "bne.d": "beq.d",
    "blt.d": "bge.d", "bge.d": "blt.d",
    "ble.d": "bgt.d", "bgt.d": "ble.d",
}


def _label_positions(fn: VMFunction) -> Dict[int, List[str]]:
    by_index: Dict[int, List[str]] = {}
    for label, index in fn.labels.items():
        by_index.setdefault(index, []).append(label)
    return by_index


def _rebuild(fn: VMFunction, keep: List[Optional[Instr]]) -> VMFunction:
    """Drop None entries, remapping labels to the next surviving index."""
    new_index: Dict[int, int] = {}
    out_code: List[Instr] = []
    for i, instr in enumerate(keep):
        new_index[i] = len(out_code)
        if instr is not None:
            out_code.append(instr)
    new_index[len(keep)] = len(out_code)
    result = VMFunction(fn.name, frame_size=fn.frame_size,
                        param_bytes=fn.param_bytes)
    result.code = out_code
    result.labels = {
        label: new_index[index] for label, index in fn.labels.items()
    }
    return result


def peephole_function(fn: VMFunction, max_rounds: int = 4) -> VMFunction:
    """Apply the peephole rules to a fixed point (bounded rounds)."""
    for _ in range(max_rounds):
        fn, changed = _one_round(fn)
        if not changed:
            break
    return fn


def _one_round(fn: VMFunction) -> Tuple[VMFunction, bool]:
    labels_at = _label_positions(fn)
    code = fn.code
    keep: List[Optional[Instr]] = list(code)
    changed = False

    for i, instr in enumerate(code):
        if keep[i] is None:
            continue
        nxt = i + 1

        # Rule: self-move.
        if instr.name in ("mov.i", "mov.d") and \
                instr.operands[0] == instr.operands[1]:
            keep[i] = None
            changed = True
            continue

        # Rule: jump to the immediately following instruction.
        if instr.name == "jmp":
            target = instr.operands[0]
            if fn.labels.get(str(target)) == nxt:
                keep[i] = None
                changed = True
                continue

        # Rule: branch over an unconditional jump.
        if instr.name in INVERTED_BRANCH and nxt < len(code) \
                and keep[nxt] is not None and code[nxt].name == "jmp" \
                and nxt not in labels_at:
            target = str(instr.operands[-1])
            if fn.labels.get(target) == nxt + 1:
                jmp_target = code[nxt].operands[0]
                keep[i] = Instr(
                    INVERTED_BRANCH[instr.name],
                    instr.operands[:-1] + (jmp_target,),
                )
                keep[nxt] = None
                changed = True
                continue

        # Rule: store followed by a reload of the same word (both the
        # displacement and the indirect forms, so the de-tuned abstract
        # machines benefit equally).
        if instr.name == "st.iw" and nxt < len(code) \
                and keep[nxt] is not None and code[nxt].name == "ld.iw" \
                and nxt not in labels_at:
            s_reg, s_off, s_base = instr.operands
            l_reg, l_off, l_base = code[nxt].operands
            if (s_off, s_base) == (l_off, l_base):
                if l_reg == s_reg:
                    keep[nxt] = None
                else:
                    keep[nxt] = Instr("mov.i", (l_reg, s_reg))
                changed = True
                continue
        if instr.name == "stx.iw" and nxt < len(code) \
                and keep[nxt] is not None and code[nxt].name == "ldx.iw" \
                and nxt not in labels_at:
            s_reg, s_base = instr.operands
            l_reg, l_base = code[nxt].operands
            if s_base == l_base:
                if l_reg == s_reg:
                    keep[nxt] = None
                else:
                    keep[nxt] = Instr("mov.i", (l_reg, s_reg))
                changed = True
                continue

    if not changed:
        return fn, False
    return _rebuild(fn, keep), True
