"""Service front-end tests: protocol, robustness layer, chaos, drain.

Covers the acceptance criteria of the resilient-service change:

* a request exceeding its deadline returns a typed error while
  concurrent requests complete (and the worker slot is reclaimed);
* a corrupt frame yields a structured ``DecodeError``-taxonomy reply
  without killing the connection loop (asserted both with a hand-placed
  bit flip and through the :func:`repro.faults.chaos_probe` harness);
* queue overflow sheds load with a retryable error carrying a
  ``retry_after`` hint;
* SIGTERM drains in-flight requests and the server process exits 0;
* the per-unit circuit breaker trips after repeated failures and
  half-opens on a timer.
"""

import json
import os
import signal
import socket
import struct
import subprocess
import sys
import threading
import time
from pathlib import Path
from random import Random

import pytest

from repro.errors import (
    CircuitOpenError, CorruptStreamError, ResourceLimitError,
    TruncatedStreamError, UnsupportedFormatError,
)
from repro.faults import CHAOS_SCENARIOS, apply_mutation, chaos_probe
from repro.service import (
    BackgroundService, CompressionService, RemoteServiceError,
    ServiceClient, ServiceConfig,
)
from repro.service import protocol
from repro.service.server import CircuitBreaker

HELLO = """
int sq(int x) { return x * x; }
int main(void) { print_int(sq(7)); putchar('\\n'); return 0; }
"""

BAD = "int main(void) { return undeclared; }"

SRC = str(Path(__file__).resolve().parent.parent / "src")


def make_service(**overrides):
    defaults = dict(port=0, idle_timeout=2.0, drain_timeout=5.0,
                    shed_retry_after=0.05)
    defaults.update(overrides)
    return BackgroundService(CompressionService(
        config=ServiceConfig(**defaults)))


def wait_until(predicate, timeout=5.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


# ---------------------------------------------------------------------------
# frame protocol
# ---------------------------------------------------------------------------


def _deliver(raw: bytes) -> socket.socket:
    """A socket with ``raw`` already queued on it, reader side returned."""
    left, right = socket.socketpair()
    left.sendall(raw)
    left.close()
    right.settimeout(2.0)
    return right


def test_frame_round_trip():
    message = {"id": 1, "op": "ping", "payload": "x" * 200}
    sock = _deliver(protocol.encode_message(message))
    assert protocol.decode_message(protocol.read_frame_sync(sock)) == message
    assert protocol.read_frame_sync(sock) is None  # clean EOF
    sock.close()


def test_frame_crc_detects_any_payload_bit_flip():
    frame = bytearray(protocol.encode_message({"id": 2, "op": "ping"}))
    frame[12] ^= 0x10  # inside the payload
    sock = _deliver(bytes(frame))
    with pytest.raises(CorruptStreamError):
        protocol.read_frame_sync(sock)
    sock.close()


def test_frame_bad_magic_is_unsupported():
    frame = bytearray(protocol.encode_message({"id": 3, "op": "ping"}))
    frame[0] = 0x00
    sock = _deliver(bytes(frame))
    with pytest.raises(UnsupportedFormatError):
        protocol.read_frame_sync(sock)
    sock.close()


def test_frame_forged_length_hits_resource_limit():
    header = struct.pack(">4sI", protocol.MAGIC, 0xFFFFFFFF)
    sock = _deliver(header)
    with pytest.raises(ResourceLimitError):
        protocol.read_frame_sync(sock)
    sock.close()


def test_frame_truncation_is_typed():
    frame = protocol.encode_message({"id": 4, "op": "ping"})
    sock = _deliver(frame[: len(frame) // 2])
    with pytest.raises(TruncatedStreamError):
        protocol.read_frame_sync(sock)
    sock.close()


def test_recoverable_classification():
    assert protocol.recoverable(CorruptStreamError("crc"))
    assert not protocol.recoverable(TruncatedStreamError("eof"))
    assert not protocol.recoverable(UnsupportedFormatError("magic"))
    assert not protocol.recoverable(ResourceLimitError("length"))


def test_error_payload_carries_retry_hints():
    from repro.errors import OverloadedError

    payload = protocol.error_payload(OverloadedError("full",
                                                     retry_after=0.25))
    assert payload["type"] == "OverloadedError"
    assert payload["taxonomy"] == "service"
    assert payload["retryable"] is True
    assert payload["retry_after"] == 0.25
    decode = protocol.error_payload(CorruptStreamError("bad"))
    assert decode["taxonomy"] == "decode" and not decode["retryable"]


# ---------------------------------------------------------------------------
# circuit breaker (unit)
# ---------------------------------------------------------------------------


def test_circuit_breaker_state_machine():
    clock = [0.0]
    breaker = CircuitBreaker(2, 5.0, clock=lambda: clock[0])
    breaker.admit("u")
    breaker.record_failure()
    breaker.record_failure()  # trips
    assert breaker.state == "open"
    with pytest.raises(CircuitOpenError) as exc_info:
        breaker.admit("u")
    assert exc_info.value.retryable and exc_info.value.retry_after > 0
    clock[0] = 5.1
    breaker.admit("u")  # half-open: one probe allowed
    assert breaker.state == "half-open"
    with pytest.raises(CircuitOpenError):
        breaker.admit("u")  # concurrent second probe rejected
    breaker.record_success()
    assert breaker.state == "closed"
    breaker.admit("u")


def test_circuit_breaker_reopens_on_failed_probe():
    clock = [0.0]
    breaker = CircuitBreaker(1, 2.0, clock=lambda: clock[0])
    breaker.record_failure()
    assert breaker.state == "open"
    clock[0] = 2.5
    breaker.admit("u")
    breaker.record_failure()  # probe failed: straight back to open
    assert breaker.state == "open"
    with pytest.raises(CircuitOpenError):
        breaker.admit("u")


# ---------------------------------------------------------------------------
# live server: round trips
# ---------------------------------------------------------------------------


def test_ping_ready_compile_round_trip():
    with make_service() as bg:
        with ServiceClient(port=bg.port, timeout=10.0) as client:
            assert client.ping() == {"pong": True}
            ready = client.ready()
            assert ready["ready"] and not ready["draining"]
            result = client.compile(HELLO, name="hello.c")
            assert result["unit"] == "hello.c"
            assert result["sizes"]["wire"] > 0
            assert result["sizes"]["brisc"] > 0
            # Second compile of the same unit is served from the shared
            # toolchain's cache.
            again = client.compile(HELLO, name="hello.c")
            assert all(s["cached"] for s in again["stages"].values())
            stats = client.stats()
            assert stats["service"]["outcomes"]["ok"] >= 4
            assert stats["toolchain"]["cache"]["hits"] > 0


def test_wire_blob_round_trips_through_verify():
    with make_service() as bg:
        with ServiceClient(port=bg.port, timeout=10.0) as client:
            blob = client.wire(HELLO, name="hello.c")
            assert blob[:3] == b"WIR"
            result = client.verify(blob)
            assert "wire module" in result["detail"]


def test_compile_error_is_structured_compile_taxonomy():
    with make_service() as bg:
        with ServiceClient(port=bg.port, timeout=10.0) as client:
            with pytest.raises(RemoteServiceError) as exc_info:
                client.compile(BAD, name="bad.c")
            assert exc_info.value.taxonomy == "compile"
            assert not exc_info.value.retryable
            assert client.ping() == {"pong": True}  # connection survives


def test_unknown_op_is_structured_not_fatal():
    with make_service() as bg:
        with ServiceClient(port=bg.port, timeout=10.0) as client:
            with pytest.raises(RemoteServiceError) as exc_info:
                client.request("frobnicate")
            assert exc_info.value.error_type == "CorruptStreamError"
            assert client.ping() == {"pong": True}


def test_corrupt_container_verify_is_typed_and_survivable():
    """A corrupt *container* inside a valid frame: the decoder's typed
    error comes back as a structured reply, and the loop lives on."""
    with make_service() as bg:
        with ServiceClient(port=bg.port, timeout=10.0) as client:
            blob = client.wire(HELLO, name="hello.c")
            mutated = apply_mutation(blob, "bit_flip", Random(7))
            assert mutated != blob
            with pytest.raises(RemoteServiceError) as exc_info:
                client.verify(mutated)
            assert exc_info.value.taxonomy == "decode"
            assert client.ping() == {"pong": True}


# ---------------------------------------------------------------------------
# deadlines
# ---------------------------------------------------------------------------


def test_deadline_exceeded_while_concurrent_requests_complete():
    with make_service(max_concurrency=4) as bg:
        box = {}

        def slow():
            with ServiceClient(port=bg.port, timeout=20.0) as client:
                try:
                    client.sleep(30.0, deadline=0.4, name="slow-unit")
                except RemoteServiceError as exc:
                    box["slow"] = exc

        worker = threading.Thread(target=slow)
        worker.start()
        with ServiceClient(port=bg.port, timeout=20.0) as client:
            # Concurrent request completes while the slow one times out.
            result = client.compile(HELLO, name="hello.c")
            assert result["sizes"]["vm"] > 0
            worker.join(10.0)
            error = box["slow"]
            assert error.error_type == "DeadlineExceededError"
            assert error.taxonomy == "service"
            # The deadline *cancelled* the pipeline work: the worker slot
            # is reclaimed long before the requested 30s sleep.
            assert wait_until(
                lambda: client.stats()["service"]["inflight"] == 0,
                timeout=3.0)
            outcomes = client.stats()["service"]["outcomes"]
            assert outcomes["deadline"] == 1 and outcomes["ok"] >= 1


def test_deadline_cancels_compile_between_stages():
    """A compile that cannot finish in time raises the typed error and
    leaves already-finished stages cached for the retry."""
    with make_service(max_concurrency=2) as bg:
        with ServiceClient(port=bg.port, timeout=20.0) as client:
            with pytest.raises(RemoteServiceError) as exc_info:
                # Deadline far below any full-pipeline compile.
                client.compile(HELLO, name="tight.c", deadline=0.001)
            assert exc_info.value.error_type == "DeadlineExceededError"
            # Retry with a sane deadline succeeds (cached prefix helps).
            result = client.compile(HELLO, name="tight.c", deadline=30.0)
            assert result["sizes"]["vm"] > 0


# ---------------------------------------------------------------------------
# corrupt frames against the live connection loop
# ---------------------------------------------------------------------------


def test_corrupt_frame_structured_reply_connection_survives():
    with make_service() as bg:
        sock = socket.create_connection(("127.0.0.1", bg.port), timeout=5.0)
        try:
            # First a clean round-trip...
            sock.sendall(protocol.encode_message({"id": 1, "op": "ping"}))
            reply = protocol.decode_message(protocol.read_frame_sync(sock))
            assert reply["ok"]
            # ...then a frame with one payload bit flipped: CRC trips.
            frame = bytearray(
                protocol.encode_message({"id": 2, "op": "ping"}))
            frame[10] ^= 0x01
            sock.sendall(bytes(frame))
            reply = protocol.decode_message(protocol.read_frame_sync(sock))
            assert reply["ok"] is False
            assert reply["error"]["taxonomy"] == "decode"
            assert reply["error"]["type"] == "CorruptStreamError"
            # The frame was consumed in full, so the same connection
            # keeps serving.
            sock.sendall(protocol.encode_message({"id": 3, "op": "ping"}))
            reply = protocol.decode_message(protocol.read_frame_sync(sock))
            assert reply["ok"] and reply["result"]["pong"]
        finally:
            sock.close()


def test_chaos_probe_full_sweep_holds_the_contract():
    with make_service() as bg:
        report = chaos_probe("127.0.0.1", bg.port, rounds=10, seed=1997,
                             timeout=5.0, stall_seconds=0.05)
        assert report.ok, [f.detail for f in report.failures]
        assert report.counts["alive_after"] == 10
        assert report.counts["connection_survived"] >= 1
        # rounds=10 cycles every scenario at least once
        assert report.rounds >= len(CHAOS_SCENARIOS)
        # The server kept count of what was thrown at it.
        with ServiceClient(port=bg.port, timeout=5.0) as client:
            assert client.stats()["service"]["bad_frames"] >= 4


def test_chaos_probe_rejects_unknown_scenarios():
    with pytest.raises(ValueError):
        chaos_probe("127.0.0.1", 1, scenarios=("no-such-scenario",))


# ---------------------------------------------------------------------------
# backpressure and load shedding
# ---------------------------------------------------------------------------


def test_queue_overflow_sheds_load_with_retryable_error():
    # idle_timeout above hold_seconds: the probe connection sits idle
    # while the held requests run, and must not be reaped meanwhile.
    with make_service(max_concurrency=1, max_queue=1,
                      idle_timeout=30.0) as bg:
        results = {}

        # Long enough that the slot is still held when the shed request
        # lands, even on a loaded machine running the whole suite.
        hold_seconds = 3.0

        def occupy(tag):
            with ServiceClient(port=bg.port, timeout=20.0) as client:
                results[tag] = client.sleep(hold_seconds, deadline=15.0,
                                            name=tag)

        with ServiceClient(port=bg.port, timeout=20.0) as probe:
            first = threading.Thread(target=occupy, args=("hold",))
            first.start()
            assert wait_until(
                lambda: probe.stats()["service"]["inflight"] == 1)
            second = threading.Thread(target=occupy, args=("queued",))
            second.start()
            assert wait_until(
                lambda: probe.stats()["service"]["queued"] == 1)
            # Slot busy, queue full: the third request is shed at once.
            with pytest.raises(RemoteServiceError) as exc_info:
                probe.sleep(1.0, name="shed")
            error = exc_info.value
            assert error.error_type == "OverloadedError"
            assert error.retryable is True
            assert error.retry_after > 0
            first.join(15.0)
            second.join(15.0)
            # The admitted requests were unaffected by the shedding.
            assert results["hold"]["slept"] == hold_seconds
            assert results["queued"]["slept"] == hold_seconds
            assert probe.stats()["service"]["outcomes"]["shed"] == 1


# ---------------------------------------------------------------------------
# per-unit circuit breaker
# ---------------------------------------------------------------------------


def test_circuit_breaker_trips_and_half_opens_on_live_server():
    with make_service(breaker_threshold=2, breaker_reset=0.3) as bg:
        with ServiceClient(port=bg.port, timeout=10.0) as client:
            for _ in range(2):
                with pytest.raises(RemoteServiceError) as exc_info:
                    client.compile(BAD, name="flaky.c")
                assert exc_info.value.taxonomy == "compile"
            # Breaker open: rejected without running, retryable.
            with pytest.raises(RemoteServiceError) as exc_info:
                client.compile(BAD, name="flaky.c")
            error = exc_info.value
            assert error.error_type == "CircuitOpenError"
            assert error.retryable and error.retry_after > 0
            breakers = client.stats()["service"]["breakers"]
            assert breakers["flaky.c"]["state"] == "open"
            # Other units are unaffected — the breaker is per unit.
            assert client.compile(HELLO, name="fine.c")["sizes"]["vm"] > 0
            # After the reset window the breaker half-opens; a successful
            # probe closes it.
            time.sleep(0.35)
            assert client.compile(HELLO, name="flaky.c")["sizes"]["vm"] > 0
            breakers = client.stats()["service"]["breakers"]
            assert breakers["flaky.c"]["state"] == "closed"


def test_breaker_half_open_admits_exactly_one_probe_under_concurrency():
    """While the half-open probe is in flight, concurrent requests for
    the unit are rejected with a retryable ``CircuitOpenError`` — the
    probe result alone decides whether the circuit closes."""
    with make_service(breaker_threshold=1, breaker_reset=0.3,
                      max_concurrency=4) as bg:
        with ServiceClient(port=bg.port, timeout=15.0) as client:
            # One deadline blowout trips the threshold-1 breaker.
            with pytest.raises(RemoteServiceError) as exc_info:
                client.sleep(1.0, deadline=0.05, name="probe.c")
            assert exc_info.value.error_type == "DeadlineExceededError"
            assert client.stats()["service"]["breakers"]["probe.c"][
                "state"] == "open"
            time.sleep(0.35)  # reset window elapses -> half-open

            box = {}

            def slow_probe():
                try:
                    with ServiceClient(port=bg.port, timeout=15.0) as probe:
                        box["reply"] = probe.sleep(0.6, deadline=10.0,
                                                   name="probe.c")
                except Exception as exc:
                    box["error"] = exc

            worker = threading.Thread(target=slow_probe)
            worker.start()
            assert wait_until(
                lambda: client.stats()["service"]["inflight"] >= 1,
                timeout=10.0)
            # The probe slot is taken: a concurrent request is rejected
            # without running, with the retryable half-open error.
            with pytest.raises(RemoteServiceError) as exc_info:
                client.sleep(0.01, deadline=5.0, name="probe.c")
            error = exc_info.value
            assert error.error_type == "CircuitOpenError"
            assert error.retryable and error.retry_after > 0
            assert "probe in flight" in str(error)
            worker.join(15.0)
            assert "error" not in box, repr(box.get("error"))
            assert box["reply"]["slept"] == 0.6
            # The successful probe closed the circuit for everyone.
            assert client.stats()["service"]["breakers"]["probe.c"][
                "state"] == "closed"
            assert client.sleep(0.01, deadline=5.0,
                                name="probe.c")["slept"] == 0.01


# ---------------------------------------------------------------------------
# graceful drain
# ---------------------------------------------------------------------------


def test_shutdown_op_drains_and_reports():
    bg = make_service()
    bg.start()
    with ServiceClient(port=bg.port, timeout=10.0) as client:
        assert client.compile(HELLO, name="hello.c")["sizes"]["vm"] > 0
        assert client.shutdown() == {"draining": True}
    assert wait_until(lambda: not bg._thread.is_alive(), timeout=10.0)
    bg.stop()  # idempotent


@pytest.mark.skipif(os.name != "posix", reason="POSIX signals required")
def test_sigterm_drains_inflight_requests_and_exits_zero():
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--concurrency", "2", "--drain-timeout", "10"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        env=env)
    try:
        # Interpreter startup may emit stray lines before the banner.
        for _ in range(20):
            line = proc.stdout.readline()
            if "listening on" in line:
                break
        assert "listening on" in line, line
        port = int(line.rsplit(":", 1)[1])
        box = {}

        def inflight():
            try:
                with ServiceClient(port=port, timeout=20.0) as client:
                    box["reply"] = client.sleep(1.0, deadline=15.0,
                                                name="inflight")
            except Exception as exc:  # surfaced via the assert below
                box["error"] = exc

        worker = threading.Thread(target=inflight)
        worker.start()
        with ServiceClient(port=port, timeout=10.0) as probe:
            assert wait_until(
                lambda: probe.stats()["service"]["inflight"] >= 1,
                timeout=10.0)
        proc.send_signal(signal.SIGTERM)
        worker.join(20.0)
        assert not worker.is_alive(), "in-flight request never finished"
        # The in-flight request was drained, not dropped: its reply
        # arrived after SIGTERM.
        assert "error" not in box, repr(box.get("error"))
        assert box["reply"]["slept"] == 1.0
        assert proc.wait(timeout=15.0) == 0
        assert "drained cleanly" in proc.stdout.read()
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()


@pytest.mark.skipif(os.name != "posix", reason="POSIX signals required")
def test_sigterm_drains_a_fetch_range_reply_in_flight():
    """SIGTERM while a ``fetch_range`` request is queued behind the one
    worker slot: the drain must still produce the full demand-paged
    reply — segments, total size, transfer accounting — then exit 0."""
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--concurrency", "1", "--drain-timeout", "15"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        env=env)
    try:
        for _ in range(20):
            line = proc.stdout.readline()
            if "listening on" in line:
                break
        assert "listening on" in line, line
        port = int(line.rsplit(":", 1)[1])
        box = {}

        def hold():
            try:
                with ServiceClient(port=port, timeout=30.0) as client:
                    box["hold"] = client.sleep(0.8, deadline=15.0,
                                               name="hold")
            except Exception as exc:
                box["hold_error"] = exc

        def fetch():
            try:
                with ServiceClient(port=port, timeout=30.0) as client:
                    box["fetch"] = client.fetch_range(
                        HELLO, 0, 64, name="drain.c", deadline=15.0)
            except Exception as exc:
                box["fetch_error"] = exc

        holder = threading.Thread(target=hold)
        holder.start()
        with ServiceClient(port=port, timeout=10.0) as probe:
            assert wait_until(
                lambda: probe.stats()["service"]["inflight"] >= 1,
                timeout=10.0)
        fetcher = threading.Thread(target=fetch)
        fetcher.start()
        with ServiceClient(port=port, timeout=10.0) as probe:
            assert wait_until(
                lambda: (lambda s: s["inflight"] + s["queued"])(
                    probe.stats()["service"]) >= 2,
                timeout=10.0)
        proc.send_signal(signal.SIGTERM)
        holder.join(25.0)
        fetcher.join(25.0)
        assert "hold_error" not in box, repr(box.get("hold_error"))
        assert "fetch_error" not in box, repr(box.get("fetch_error"))
        result = box["fetch"]
        assert result["total_bytes"] > 0
        assert 0 < result["transferred"] <= result["total_bytes"]
        assert len(result["blob"]) == result["total_bytes"]
        assert proc.wait(timeout=20.0) == 0
        assert "drained cleanly" in proc.stdout.read()
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()


# ---------------------------------------------------------------------------
# CLI client
# ---------------------------------------------------------------------------


def test_client_cli_ping_and_compile(tmp_path, capsys):
    from repro.__main__ import main

    source = tmp_path / "hello.c"
    source.write_text(HELLO)
    with make_service() as bg:
        assert main(["client", "--port", str(bg.port), "ping"]) == 0
        assert json.loads(capsys.readouterr().out)["pong"] is True
        assert main(["client", "--port", str(bg.port), "compile",
                     str(source)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["sizes"]["vm"] > 0
        out_path = tmp_path / "hello.wire"
        assert main(["client", "--port", str(bg.port), "wire",
                     str(source), "-o", str(out_path)]) == 0
        capsys.readouterr()
        assert out_path.read_bytes()[:3] == b"WIR"
        assert main(["client", "--port", str(bg.port), "verify",
                     str(out_path)]) == 0
        assert "wire module" in json.loads(capsys.readouterr().out)["detail"]


def test_client_cli_retryable_error_exits_tempfail(capsys):
    from repro.__main__ import main

    with make_service(max_concurrency=1, max_queue=0) as bg:

        def occupy():
            with ServiceClient(port=bg.port, timeout=20.0) as client:
                client.sleep(1.0, deadline=15.0, name="hold")

        worker = threading.Thread(target=occupy)
        worker.start()
        with ServiceClient(port=bg.port, timeout=10.0) as probe:
            assert wait_until(
                lambda: probe.stats()["service"]["inflight"] == 1)
        # Queue bound is 0: any work request is shed -> EX_TEMPFAIL.
        rc = main(["client", "--port", str(bg.port), "compile", "/dev/null"])
        worker.join(10.0)
    capsys.readouterr()
    assert rc == 75


def test_chaos_cli_against_live_server(capsys):
    from repro.__main__ import main

    with make_service() as bg:
        assert main(["chaos", "--port", str(bg.port), "--rounds", "5",
                     "--seed", "7", "--stall-seconds", "0.05"]) == 0
    out = capsys.readouterr().out
    assert "chaos rounds" in out and "OK" in out


# ---------------------------------------------------------------------------
# demand paging: fetch_function / fetch_range / stats accounting
# ---------------------------------------------------------------------------

MULTI = """
int sq(int x) { return x * x; }
int cube(int x) { return x * x * x; }
int main(void) { print_int(sq(7)); putchar('\\n'); return 0; }
"""


class TestFetchOps:
    def test_fetch_function_transfers_fewer_bytes(self):
        from repro.wire import decode_function

        with make_service() as bg:
            with ServiceClient(port=bg.port, timeout=30.0) as client:
                result = client.fetch_function(
                    MULTI, "sq", name="multi.c", chunk_bytes=64)
        assert result["format"] == "wire"
        assert 0 < result["transferred"] < result["total_bytes"]
        assert result["chunks"]
        # The sparse blob really decodes the requested function.
        fn = decode_function(result["blob"], "sq")
        assert fn.name == "sq"

    def test_fetch_range_round_trip(self):
        from repro.wire import decode_range

        with make_service() as bg:
            with ServiceClient(port=bg.port, timeout=30.0) as client:
                result = client.fetch_range(
                    MULTI, 4, 32, name="multi.c", chunk_bytes=64)
        assert result["transferred"] <= result["total_bytes"]
        # The sparse blob serves the span the full container would.
        assert decode_range(result["blob"], 4, 32)

    def test_fetch_brisc_format(self):
        from repro.brisc.encode import decode_function

        with make_service() as bg:
            with ServiceClient(port=bg.port, timeout=30.0) as client:
                result = client.fetch_function(
                    MULTI, "cube", name="multi.c", format="brisc",
                    chunk_bytes=64)
        assert result["format"] == "brisc"
        fn = decode_function(result["blob"], "cube")
        assert fn.name == "cube"

    def test_unknown_function_is_typed_and_final(self):
        with make_service() as bg:
            with ServiceClient(port=bg.port, timeout=30.0) as client:
                with pytest.raises(RemoteServiceError) as info:
                    client.fetch_function(MULTI, "nope", name="multi.c")
        assert info.value.taxonomy == "decode"
        assert info.value.error_type == "CorruptStreamError"
        assert not info.value.retryable

    def test_bad_range_args_are_typed(self):
        with make_service() as bg:
            with ServiceClient(port=bg.port, timeout=30.0) as client:
                with pytest.raises(RemoteServiceError) as info:
                    client.fetch_range(MULTI, -3, 10, name="multi.c")
        assert info.value.taxonomy == "decode"

    def test_stats_count_bytes_served_and_hits(self):
        with make_service() as bg:
            with ServiceClient(port=bg.port, timeout=30.0) as client:
                first = client.fetch_function(
                    MULTI, "sq", name="multi.c", chunk_bytes=64)
                second = client.fetch_function(
                    MULTI, "sq", name="multi.c", chunk_bytes=64)
                stats = client.stats()["service"]
        assert not first["cache_hit"]
        assert second["cache_hit"]  # warm store: no recompilation
        assert stats["bytes_served"] == \
            first["transferred"] + second["transferred"]
        counters = stats["range_ops"]["fetch_function"]
        assert counters["misses"] == 1 and counters["hits"] == 1

    def test_verify_function_accepts_sparse_blob(self):
        with make_service() as bg:
            with ServiceClient(port=bg.port, timeout=30.0) as client:
                fetched = client.fetch_function(
                    MULTI, "sq", name="multi.c", chunk_bytes=64)
                report = client.verify(fetched["blob"], function="sq")
        assert "sq" in report["detail"]

    def test_fetch_cli_round_trip(self, tmp_path, capsys):
        from repro.__main__ import main

        source = tmp_path / "multi.c"
        source.write_text(MULTI)
        out = tmp_path / "sq.wir"
        with make_service() as bg:
            rc = main(["fetch", "--port", str(bg.port), "--function", "sq",
                       "--chunk-bytes", "64", str(source), "-o", str(out)])
        assert rc == 0
        assert "transferred" in capsys.readouterr().out
        assert main(["verify", str(out), "--function", "sq"]) == 0
        capsys.readouterr()

    def test_fetch_cli_rejects_ambiguous_request(self, tmp_path, capsys):
        from repro.__main__ import main

        source = tmp_path / "multi.c"
        source.write_text(MULTI)
        assert main(["fetch", "--port", "1", str(source)]) == 2
        assert main(["fetch", "--port", "1", "--function", "sq",
                     "--start", "0", "--length", "4", str(source)]) == 2
        capsys.readouterr()


# ---------------------------------------------------------------------------
# client retry budget under transport failure
# ---------------------------------------------------------------------------


def test_transport_failures_consume_the_retry_budget():
    """A peer that accepts and immediately hangs up must burn one retry
    per attempt: the budget bounds total connection attempts, so a hard
    transport failure cannot retry forever."""
    listener = socket.socket()
    listener.bind(("127.0.0.1", 0))
    listener.listen(8)
    port = listener.getsockname()[1]
    accepts = []
    stop = threading.Event()

    def slam_door():
        while not stop.is_set():
            try:
                conn, _ = listener.accept()
            except OSError:
                return
            accepts.append(1)
            conn.close()

    thread = threading.Thread(target=slam_door, daemon=True)
    thread.start()
    try:
        client = ServiceClient(port=port, timeout=2.0, retries=2,
                               backoff_base=0.001, backoff_max=0.002,
                               rng=Random(7))
        with pytest.raises(TruncatedStreamError):
            client.ping()
        client.close()
        assert len(accepts) == 3  # the first attempt + 2 retries

        # With no budget the first transport failure is final.
        accepts.clear()
        client = ServiceClient(port=port, timeout=2.0, retries=0)
        with pytest.raises(TruncatedStreamError):
            client.ping()
        client.close()
        assert len(accepts) == 1
    finally:
        stop.set()
        listener.close()
        thread.join(timeout=2.0)
