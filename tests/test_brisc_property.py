"""Property-based BRISC tests: random instruction streams survive the
slot → Markov-encode → image → decode pipeline instruction-for-instruction.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.brisc.encode import decode_image, encode_image
from repro.brisc.slots import build_slots
from repro.vm.instr import Instr, VMFunction, VMProgram
from repro.vm.isa import MNEMONIC, Operand, SPEC

# Mnemonics safe for random streams: no control flow (labels handled
# separately), no syscalls.
_SAFE = [
    name for name in MNEMONIC
    if SPEC[name].group in ("mem", "alu", "alui", "move", "conv", "frame")
    and Operand.SYM not in SPEC[name].signature
]


@st.composite
def random_instr(draw):
    name = draw(st.sampled_from(_SAFE))
    operands = []
    for kind in SPEC[name].signature:
        if kind is Operand.REG:
            operands.append(draw(st.integers(0, 15)))
        elif kind is Operand.FREG:
            operands.append(draw(st.integers(0, 7)))
        elif kind is Operand.IMM:
            operands.append(draw(st.integers(-2**31, 2**31 - 1)))
        elif kind is Operand.DIMM:
            operands.append(draw(st.floats(allow_nan=False,
                                           allow_infinity=False, width=32)))
    return Instr(name, tuple(operands))


@st.composite
def random_function(draw):
    fn = VMFunction("f")
    n = draw(st.integers(1, 40))
    label_positions = sorted(draw(
        st.sets(st.integers(0, n - 1), max_size=4)))
    for i in range(n):
        if i in label_positions:
            fn.define_label(f"L{i}")
        fn.emit(draw(random_instr()))
        # Occasionally branch back to a defined label.
        if label_positions and draw(st.booleans()) and i > label_positions[0]:
            target = f"L{label_positions[0]}"
            fn.emit(Instr("bnei.i", (draw(st.integers(0, 15)),
                                     draw(st.integers(-100, 100)), target)))
    fn.emit(Instr("hlt", ()))
    return fn


@given(random_function())
@settings(max_examples=40, deadline=None)
def test_image_roundtrip_preserves_instructions(fn):
    program = VMProgram("prop", functions=[fn])
    slots = build_slots(program)
    image, model = encode_image(slots, [])
    back = decode_image(image.blob)
    got = back.functions[0].code
    assert len(got) == len(fn.code)
    for a, b in zip(fn.code, got):
        assert a.name == b.name
        for kind, av, bv in zip(a.spec.signature, a.operands, b.operands):
            if kind is Operand.LABEL:
                continue  # renamed to L<offset>; targets checked below
            if kind is Operand.DIMM:
                assert av == pytest.approx(bv)
            else:
                assert av == bv


@given(random_function())
@settings(max_examples=20, deadline=None)
def test_image_roundtrip_preserves_branch_targets(fn):
    program = VMProgram("prop", functions=[fn])
    slots = build_slots(program)
    image, _ = encode_image(slots, [])
    back = decode_image(image.blob)
    vmf = back.functions[0]
    # Every decoded branch target resolves to the same instruction index
    # as in the original function.
    for (a, b) in zip(fn.code, vmf.code):
        for kind, av, bv in zip(a.spec.signature, a.operands, b.operands):
            if kind is Operand.LABEL:
                assert fn.labels[str(av)] == vmf.labels[str(bv)]
