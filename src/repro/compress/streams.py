"""Multi-stream container used by the wire format.

The paper's central trick is to "divide the stream of code into several
smaller streams, one holding the operators and one holding the literal
operands for each operator", compressing each in isolation so the LZ stage
sees homogeneous data.  This container frames a set of named byte streams
and optionally runs each through the deflate-like compressor.

Layout (all integers LEB128):

    count
    repeat count times:
        name_len, name (utf-8), flags (1 = deflate-compressed), payload_len, payload
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Tuple

from . import deflate
from .bitio import read_uvarint, write_uvarint

__all__ = ["pack_streams", "unpack_streams", "stream_sizes"]

_FLAG_DEFLATE = 1


def pack_streams(streams: Mapping[str, bytes], compress: bool = True) -> bytes:
    """Serialize named byte streams, compressing each in isolation.

    When ``compress`` is true each stream is deflate-compressed unless the
    compressed form would be larger (tiny streams), in which case it is
    stored raw — the flag byte records which happened.
    """
    out = bytearray()
    write_uvarint(out, len(streams))
    for name in sorted(streams):
        payload = streams[name]
        flags = 0
        if compress:
            packed = deflate.compress(payload)
            if len(packed) < len(payload):
                payload = packed
                flags = _FLAG_DEFLATE
        raw_name = name.encode("utf-8")
        write_uvarint(out, len(raw_name))
        out.extend(raw_name)
        out.append(flags)
        write_uvarint(out, len(payload))
        out.extend(payload)
    return bytes(out)


def unpack_streams(blob: bytes) -> Dict[str, bytes]:
    """Invert :func:`pack_streams`."""
    streams: Dict[str, bytes] = {}
    count, pos = read_uvarint(blob, 0)
    for _ in range(count):
        name_len, pos = read_uvarint(blob, pos)
        name = blob[pos : pos + name_len].decode("utf-8")
        pos += name_len
        if pos >= len(blob):
            raise EOFError("truncated stream container")
        flags = blob[pos]
        pos += 1
        payload_len, pos = read_uvarint(blob, pos)
        payload = blob[pos : pos + payload_len]
        if len(payload) != payload_len:
            raise EOFError("truncated stream payload")
        pos += payload_len
        if flags & _FLAG_DEFLATE:
            payload = deflate.decompress(payload)
        streams[name] = payload
    return streams


def stream_sizes(streams: Mapping[str, bytes]) -> Dict[str, Tuple[int, int]]:
    """Per-stream (raw, deflate-compressed) sizes, for size breakdowns."""
    return {
        name: (len(data), len(deflate.compress(data)))
        for name, data in streams.items()
    }
