"""Cluster scaling, failover recovery, and federation economics.

Three questions about the sharded compile farm:

* **throughput** — what does adding nodes buy a mixed corpus batch
  routed by unit affinity (N = 1, 2, 4, same batch, same client pool)?
* **recovery** — after a node is SIGKILLed, how long until the router
  serves that node's hash slot again (health-probe detection plus
  failover to the ring successor)?
* **federation** — what does a warm-store byte copy cost next to the
  recompilation it replaces?

Numbers land in ``benchmarks/results/cluster.txt``.
"""

import time

from conftest import save_table
from repro.bench import render_table
from repro.cluster import (
    BackgroundRouter, ClusterSupervisor, HashRing, RouterConfig, run_cluster,
)
from repro.corpus import get_sample
from repro.service import ServiceClient

UNITS = ["wc", "sort", "calc", "lzss", "hashtab", "crc32"]
ROUNDS = 3
CLIENTS = 6


def _throughput_rows():
    rows = []
    for nodes in (1, 2, 4):
        report = run_cluster(UNITS, nodes=nodes, rounds=ROUNDS,
                             concurrency=CLIENTS, deadline=60.0, retries=4)
        assert report.ok, report.errors
        total = report.completed
        rows.append([str(nodes), str(total), f"{report.elapsed:8.2f}",
                     f"{total / report.elapsed:8.1f}"])
    return rows


def _recovery_probe():
    """Seconds from SIGKILL to the first successful request for a unit
    the dead node owned (detection + failover, not node restart)."""
    supervisor = ClusterSupervisor(3, concurrency=2)
    supervisor.start()
    try:
        router = BackgroundRouter(
            supervisor.addresses,
            RouterConfig(host="127.0.0.1", health_interval=0.1))
        router.start()
        try:
            assert router.wait_alive(3, timeout=15.0)
            ring = HashRing(supervisor.addresses,
                            replicas=router.router.config.replicas)
            unit = next(u for u in UNITS
                        if ring.node_for(u) == supervisor.addresses[0])
            source = get_sample(unit)
            with ServiceClient(port=router.port, timeout=30.0,
                               retries=8) as client:
                client.wire(source, name=unit, deadline=30.0)  # warm owner
                t0 = time.monotonic()
                supervisor.kill(0)
                client.wire(source, name=unit, deadline=30.0)
                return time.monotonic() - t0
        finally:
            router.stop()
    finally:
        supervisor.stop()


def _federation_economics():
    """A chaos run's federation traffic vs the compile time it avoided."""
    from repro.pipeline import Toolchain

    report = run_cluster(UNITS, nodes=3, rounds=2, concurrency=CLIENTS,
                         chaos=True, kills=1, seed=1997,
                         restart_after=0.5, deadline=60.0, retries=6)
    assert report.ok, report.errors
    # Cold-compile cost of one representative unit on a fresh toolchain:
    # the work each federated fill saved the restarted node.
    fresh = Toolchain()
    t0 = time.monotonic()
    fresh.compile(get_sample(UNITS[0]), name=UNITS[0], stages=("wire",))
    cold_seconds = time.monotonic() - t0
    artifacts_per_unit = 3  # parse/codegen/wire chain for a wire build
    units_refilled = report.federation_fills / artifacts_per_unit
    return report, cold_seconds, units_refilled


def test_cluster_scaling_recovery_and_federation(results_dir):
    throughput = _throughput_rows()
    recovery = _recovery_probe()
    report, cold_seconds, units_refilled = _federation_economics()

    text = render_table(
        ["nodes", "requests", "seconds", "req/s"], throughput)
    text += "\n\n" + render_table(
        ["failover", "value"],
        [["recovery seconds (kill -> next reply)", f"{recovery:8.3f}"],
         ["kills", str(report.kills)],
         ["restarts", str(report.restarts)],
         ["router failovers", str(report.failovers)],
         ["router replays", str(report.replays)]])
    text += "\n\n" + render_table(
        ["federation", "value"],
        [["artifacts filled from peers", str(report.federation_fills)],
         ["bytes copied", str(report.federation_bytes)],
         ["refills on restarted nodes",
          str(report.refilled_after_restart)],
         ["cold wire compile (s/unit)", f"{cold_seconds:8.3f}"],
         ["compile seconds avoided (est)",
          f"{units_refilled * cold_seconds:8.3f}"]])
    save_table(results_dir, "cluster", text)
    assert recovery < 30.0
    assert report.federation_fills >= 1
