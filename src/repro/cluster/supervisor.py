"""Spawn, kill, and restart a local fleet of compile-service nodes.

Each node is a real ``python -m repro serve`` subprocess — its own
interpreter, event loop, worker pool, and warm store — so a SIGKILL in
chaos mode is the genuine article: the OS reaps the process mid-request,
in-flight connections die at the TCP layer, and the node's memory-only
cache is gone when it comes back.  Ports are pre-allocated (bind 0, read
the assignment, close) because every node's ``--peers`` list must name
its siblings at spawn time.

The supervisor only manages processes; routing and federation live in
:mod:`repro.cluster.router` and :mod:`repro.cluster.federation`.
"""

from __future__ import annotations

import os
import signal
import socket
import subprocess
import sys
import time
from typing import Any, Dict, List, Optional, Sequence

from ..errors import DecodeError, ServiceError
from ..service.client import ServiceClient

__all__ = ["ClusterSupervisor", "allocate_ports"]


def allocate_ports(count: int, host: str = "127.0.0.1") -> List[int]:
    """Reserve ``count`` distinct ephemeral ports.

    Binds, records the kernel's assignment, and closes — the classic
    pre-allocation dance.  The tiny window between close and the node's
    own bind is racy in theory; in practice the kernel avoids recycling
    just-released ports, and a node losing the race fails fast at bind
    time rather than serving on a wrong port.
    """
    sockets = []
    try:
        for _ in range(count):
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            sock.bind((host, 0))
            sockets.append(sock)
        return [sock.getsockname()[1] for sock in sockets]
    finally:
        for sock in sockets:
            sock.close()


class _NodeProcess:
    """One managed ``repro serve`` subprocess."""

    def __init__(self, index: int, host: str, port: int) -> None:
        self.index = index
        self.host = host
        self.port = port
        self.proc: Optional[subprocess.Popen] = None
        self.kills = 0
        self.restarts = 0

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    @property
    def running(self) -> bool:
        return self.proc is not None and self.proc.poll() is None


class ClusterSupervisor:
    """A fleet of N local service nodes wired as federation peers.

    Nodes run memory-only caches on purpose: a killed-and-restarted node
    comes back with an *empty* warm store, so any artifact it serves
    warm afterwards must have been refilled from a peer — which is
    exactly the observable the chaos harness asserts on.
    """

    def __init__(self, count: int, host: str = "127.0.0.1",
                 concurrency: int = 2, deadline: float = 30.0,
                 peer_timeout: float = 2.0,
                 extra_args: Sequence[str] = ()) -> None:
        if count < 1:
            raise ValueError("a cluster needs at least one node")
        self.host = host
        self.concurrency = concurrency
        self.deadline = deadline
        self.peer_timeout = peer_timeout
        self.extra_args = list(extra_args)
        ports = allocate_ports(count, host)
        self.nodes = [_NodeProcess(i, host, port)
                      for i, port in enumerate(ports)]

    # -- lifecycle ---------------------------------------------------------

    @property
    def addresses(self) -> List[str]:
        return [node.address for node in self.nodes]

    def _spawn(self, node: _NodeProcess) -> None:
        peers = [n.address for n in self.nodes if n is not node]
        cmd = [
            sys.executable, "-m", "repro", "serve",
            "--host", node.host,
            "--port", str(node.port),
            "--concurrency", str(self.concurrency),
            "--deadline", str(self.deadline),
        ]
        if peers:
            cmd += ["--peers", ",".join(peers),
                    "--peer-timeout", str(self.peer_timeout)]
        cmd += self.extra_args
        env = dict(os.environ)
        src_root = os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))))
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (src_root, env.get("PYTHONPATH")) if p)
        node.proc = subprocess.Popen(
            cmd, env=env,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
            start_new_session=True)

    def start(self, timeout: float = 20.0) -> None:
        for node in self.nodes:
            self._spawn(node)
        deadline = time.monotonic() + timeout
        for node in self.nodes:
            self._wait_ready(node, deadline)

    def _wait_ready(self, node: _NodeProcess, deadline: float) -> None:
        while time.monotonic() < deadline:
            if not node.running:
                raise RuntimeError(
                    f"node {node.index} ({node.address}) exited during "
                    f"startup (rc={node.proc.poll() if node.proc else '?'})")
            try:
                with ServiceClient(node.host, node.port,
                                   timeout=1.0) as client:
                    if client.ping().get("pong"):
                        return
            except (ServiceError, DecodeError, OSError):
                time.sleep(0.05)
        raise RuntimeError(
            f"node {node.index} ({node.address}) not ready in time")

    def kill(self, index: int) -> None:
        """SIGKILL one node — no drain, no goodbye, warm store lost."""
        node = self.nodes[index]
        if node.proc is not None and node.proc.poll() is None:
            node.proc.kill()
            node.proc.wait()
        node.kills += 1

    def restart(self, index: int, timeout: float = 20.0) -> None:
        """Bring a killed node back on its original port (empty store)."""
        node = self.nodes[index]
        if node.running:
            return
        self._spawn(node)
        self._wait_ready(node, time.monotonic() + timeout)
        node.restarts += 1

    def stop(self, timeout: float = 10.0) -> None:
        """Graceful fleet shutdown: SIGTERM (drain), then SIGKILL."""
        for node in self.nodes:
            if node.running:
                assert node.proc is not None
                node.proc.send_signal(signal.SIGTERM)
        deadline = time.monotonic() + timeout
        for node in self.nodes:
            if node.proc is None:
                continue
            remaining = deadline - time.monotonic()
            try:
                node.proc.wait(timeout=max(0.1, remaining))
            except subprocess.TimeoutExpired:
                node.proc.kill()
                node.proc.wait()

    def __enter__(self) -> "ClusterSupervisor":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def snapshot(self) -> List[Dict[str, Any]]:
        return [{
            "index": node.index,
            "address": node.address,
            "running": node.running,
            "kills": node.kills,
            "restarts": node.restarts,
        } for node in self.nodes]
