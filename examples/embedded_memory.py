"""Working-set reduction: the paper's memory-bottleneck scenario.

Usage::

    python examples/embedded_memory.py

"BRISC can also trim memory requirements for large desktop applications
and compress programs to fit within the memory requirements of embedded
systems."  This example compresses a program, reports the working-set
(page) reduction, then runs the paging model to find where compressed-
and-interpreted code beats native code on cold starts.
"""

from repro.bench import render_table
from repro.brisc import run_image
from repro.corpus import SAMPLES, link_sources
from repro.native import PentiumLike
from repro.pipeline import Toolchain
from repro.system import PagingConfig, paging_run, working_set_pages
from repro.vm import run_program


def main() -> None:
    source = link_sources([SAMPLES[n] for n in
                           ("wc", "calc", "strings", "sort", "hashtab")])
    print("compiling and compressing to BRISC through the pipeline...")
    res = Toolchain().compile(source, name="app", stages=("brisc",))
    program = res.program
    native = PentiumLike().program_size(program)
    cp = res.brisc
    compressed = cp.image.code_segment_size

    native_pages = working_set_pages(native)
    compressed_pages = working_set_pages(compressed)
    print(f"\nnative code     : {native:7d} B = {native_pages} pages")
    print(f"BRISC code      : {compressed:7d} B = {compressed_pages} pages")
    print(f"working-set cut : "
          f"{1 - compressed_pages / native_pages:.0%}\n")

    # Interpretation really works in place — demonstrate it.
    base = run_program(program, max_steps=50_000_000)
    inplace = run_image(cp.image.blob, max_steps=50_000_000)
    assert inplace.output == base.output
    print("in-place interpretation of the compressed image verified.\n")

    # Paging model: where does compression win total time?
    config = PagingConfig()
    scale = 100  # model a large application with the same compression ratio
    rows = []
    for instructions in (10**5, 10**6, 10**7, 10**8, 10**9):
        results = paging_run(native * scale, compressed * scale,
                             instructions, config)
        winner = min(results.values(), key=lambda r: r.total_seconds)
        rows.append([
            f"{instructions:.0e}",
            f"{results['native'].total_seconds:9.3f}s",
            f"{results['compressed-interpreted'].total_seconds:9.3f}s",
            f"{results['hybrid'].total_seconds:9.3f}s",
            winner.strategy,
        ])
    print(render_table(
        ["instructions run", "native", "compressed", "hybrid", "winner"],
        rows))
    print("\nShort, fault-dominated runs favour compressed pages (the CPU"
          "\nwould have idled during paging anyway); long, hot runs favour"
          "\nnative; the hybrid — hot code native, cold code compressed —"
          "\ntracks the best of both, which is the paper's design point"
          '\n("many functions are called just once").')


if __name__ == "__main__":
    main()
