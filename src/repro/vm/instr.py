"""VM instructions, functions, and linked programs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple, Union

from ..ir.tree import GlobalData
from .isa import Operand, SPEC, InsnSpec

__all__ = ["Instr", "VMFunction", "VMProgram"]

OperandValue = Union[int, float, str]


@dataclass(frozen=True)
class Instr:
    """One VM instruction: mnemonic plus operand values.

    Operand values follow the mnemonic's signature: ints for registers and
    immediates, floats for double immediates, strings for labels and
    symbols.
    """

    name: str
    operands: Tuple[OperandValue, ...] = ()

    def __post_init__(self) -> None:
        spec = self.spec  # raises KeyError for unknown mnemonics
        if len(self.operands) != len(spec.signature):
            raise ValueError(
                f"{self.name} takes {len(spec.signature)} operands, "
                f"got {len(self.operands)}"
            )
        for kind, value in zip(spec.signature, self.operands):
            if kind in (Operand.REG, Operand.FREG, Operand.IMM):
                if not isinstance(value, int):
                    raise ValueError(f"{self.name}: {kind.value} operand must be int")
            elif kind is Operand.DIMM:
                if not isinstance(value, (int, float)):
                    raise ValueError(f"{self.name}: dimm operand must be a number")
            else:  # LABEL, SYM
                if not isinstance(value, str):
                    raise ValueError(f"{self.name}: {kind.value} operand must be str")

    @property
    def spec(self) -> InsnSpec:
        return SPEC[self.name]

    def __str__(self) -> str:
        from .asm import format_instr  # local import to avoid a cycle

        return format_instr(self)


@dataclass
class VMFunction:
    """A function's instruction list plus its label map.

    ``labels`` maps label name -> instruction index within ``code``.
    """

    name: str
    code: List[Instr] = field(default_factory=list)
    labels: Dict[str, int] = field(default_factory=dict)
    frame_size: int = 0
    param_bytes: int = 0

    def define_label(self, label: str) -> None:
        """Attach ``label`` to the next emitted instruction."""
        if label in self.labels:
            raise ValueError(f"duplicate label {label!r} in {self.name}")
        self.labels[label] = len(self.code)

    def emit(self, instr: Instr) -> None:
        self.code.append(instr)

    def __len__(self) -> int:
        return len(self.code)


@dataclass
class VMProgram:
    """A linked program: functions, global data, and an entry point."""

    name: str
    functions: List[VMFunction] = field(default_factory=list)
    globals: List[GlobalData] = field(default_factory=list)
    entry: str = "main"

    def function(self, name: str) -> VMFunction:
        for fn in self.functions:
            if fn.name == name:
                return fn
        raise KeyError(f"no function named {name!r}")

    def function_index(self, name: str) -> int:
        for i, fn in enumerate(self.functions):
            if fn.name == name:
                return i
        raise KeyError(f"no function named {name!r}")

    def instruction_count(self) -> int:
        return sum(len(fn.code) for fn in self.functions)
