"""VM interpreter semantics tests (assembly-level, no C front end)."""

import pytest

from repro.ir.tree import GlobalData, PtrInit, ScalarInit
from repro.vm.asm import parse_function
from repro.vm.instr import VMProgram
from repro.vm.interp import VMError, run_program


def run_asm(body, globals_=None, entry="main", args=(), **kwargs):
    """Assemble a single function and run it."""
    fn = parse_function(body, entry)
    program = VMProgram("t", functions=[fn], globals=globals_ or [],
                        entry=entry)
    return run_program(program, args=args, **kwargs)


def run_value(body, **kwargs):
    return run_asm(body + "\nhlt", **kwargs).exit_code


class TestArithmetic:
    def test_add(self):
        assert run_value("li n0,2\nli n1,40\nadd.i n0,n0,n1") == 42

    def test_sub_wraps_32bit(self):
        assert run_value("li n0,-2147483648\nli n1,1\nsub.i n0,n0,n1") == \
            2**31 - 1

    def test_mul_wraps(self):
        assert run_value("li n0,65536\nmul.i n0,n0,n0") == 0

    def test_signed_division_truncates(self):
        assert run_value("li n0,-7\nli n1,2\ndiv.i n0,n0,n1") == -3

    def test_rem_sign_follows_dividend(self):
        assert run_value("li n0,-7\nli n1,2\nrem.i n0,n0,n1") == -1

    def test_unsigned_division(self):
        assert run_value("li n0,-1\nli n1,2\ndivu.i n0,n0,n1") == 2**31 - 1

    def test_division_by_zero_faults(self):
        with pytest.raises(VMError):
            run_value("li n0,1\nli n1,0\ndiv.i n0,n0,n1")

    def test_shifts(self):
        assert run_value("li n0,1\nli n1,5\nshl.i n0,n0,n1") == 32
        assert run_value("li n0,-8\nli n1,1\nsra.i n0,n0,n1") == -4
        assert run_value("li n0,-8\nli n1,1\nshr.i n0,n0,n1") == \
            (2**32 - 8) >> 1

    def test_bitwise(self):
        assert run_value("li n0,12\nli n1,10\nand.i n0,n0,n1") == 8
        assert run_value("li n0,12\nli n1,10\nor.i n0,n0,n1") == 14
        assert run_value("li n0,12\nli n1,10\nxor.i n0,n0,n1") == 6
        assert run_value("li n0,0\nnot.i n0,n0") == -1

    def test_immediate_forms(self):
        assert run_value("li n0,40\naddi.i n0,n0,2") == 42
        assert run_value("li n0,7\nmuli.i n0,n0,6") == 42
        assert run_value("li n0,43\nandi.i n0,n0,-2") == 42

    def test_extensions(self):
        assert run_value("li n0,0x80\nsext.b n0,n0") == -128
        assert run_value("li n0,0x80\nzext.b n0,n0") == 128
        assert run_value("li n0,0x8000\nsext.h n0,n0") == -32768
        assert run_value("li n0,0x18000\nzext.h n0,n0") == 0x8000


class TestDoubles:
    def test_double_arithmetic(self):
        out = run_asm("""
            li.d f0,1.5
            li.d f1,2.5
            add.d f2,f0,f1
            mul.d f2,f2,f1
            st.d f2,-8(sp)
            sys 7
            hlt
        """).output
        assert out == "10"

    def test_conversions(self):
        assert run_value("li n1,7\ncvt.id f0,n1\ncvt.di n0,f0") == 7

    def test_cvt_truncates_toward_zero(self):
        out = run_asm("""
            li.d f0,3.99
            cvt.di n0,f0
            hlt
        """).exit_code
        assert out == 3

    def test_float_division_by_zero_faults(self):
        with pytest.raises(VMError):
            run_value("li.d f0,1.0\nli.d f1,0.0\ndiv.d f0,f0,f1")


class TestMemory:
    def test_store_load_word(self):
        assert run_value("""
            li n1,42
            st.iw n1,-8(sp)
            ld.iw n0,-8(sp)
        """) == 42

    def test_byte_store_truncates(self):
        assert run_value("""
            li n1,0x1ff
            st.ib n1,-8(sp)
            ld.iub n0,-8(sp)
        """) == 0xFF

    def test_signed_byte_load(self):
        assert run_value("""
            li n1,-1
            st.ib n1,-8(sp)
            ld.ib n0,-8(sp)
        """) == -1

    def test_half_word(self):
        assert run_value("""
            li n1,0x12345
            st.ih n1,-8(sp)
            ld.iuh n0,-8(sp)
        """) == 0x2345

    def test_indirect_forms(self):
        assert run_value("""
            li n1,42
            mov.i n2,sp
            addi.i n2,n2,-8
            stx.iw n1,n2
            ldx.iw n0,n2
        """) == 42

    def test_out_of_range_access_faults(self):
        with pytest.raises(VMError):
            run_value("li n1,0\nli n2,1\nstx.iw n2,n1")

    def test_blkcpy(self):
        g = GlobalData("src", 8, 4, items=[ScalarInit(0, 4, 0x11223344),
                                           ScalarInit(4, 4, 0x55667788)])
        d = GlobalData("dst", 8, 4)
        assert run_asm("""
            la n1,dst
            la n2,src
            blkcpy n1,n2,8
            la n1,dst
            ld.iw n0,4(n1)
            hlt
        """, globals_=[g, d]).exit_code == 0x55667788

    def test_globals_initialized(self):
        g = GlobalData("x", 4, 4, items=[ScalarInit(0, 4, 99)])
        assert run_asm("la n1,x\nld.iw n0,0(n1)\nhlt",
                       globals_=[g]).exit_code == 99

    def test_pointer_initializer(self):
        a = GlobalData("a", 4, 4, items=[ScalarInit(0, 4, 7)])
        p = GlobalData("p", 4, 4, items=[PtrInit(0, "a")])
        assert run_asm("""
            la n1,p
            ld.iw n1,0(n1)
            ld.iw n0,0(n1)
            hlt
        """, globals_=[a, p]).exit_code == 7


class TestControlFlow:
    def test_branch_taken(self):
        assert run_value("""
            li n0,1
            li n1,1
            beq.i n0,n1,$yes
            li n0,0
            hlt
            $yes:
            li n0,42
        """) == 42

    def test_branch_immediate(self):
        assert run_value("""
            li n0,5
            bgti.i n0,3,$big
            li n0,0
            hlt
            $big:
            li n0,1
        """) == 1

    def test_unsigned_branch(self):
        # -1 is huge unsigned, so bltu is false.
        assert run_value("""
            li n0,-1
            li n1,1
            bltu.i n0,n1,$less
            li n0,42
            hlt
            $less:
            li n0,0
        """) == 42

    def test_loop_sums(self):
        assert run_value("""
            li n0,0
            li n1,0
            $loop:
            add.i n0,n0,n1
            addi.i n1,n1,1
            blti.i n1,11,$loop
        """) == 55

    def test_call_and_return(self):
        callee = parse_function("""
            ld.iw n0,-4(sp)
            muli.i n0,n0,2
            rjr ra
        """, "double_it")
        main = parse_function("""
            li n1,21
            st.iw n1,-4(sp)
            call double_it
            hlt
        """, "main")
        program = VMProgram("t", functions=[main, callee])
        assert run_program(program).exit_code == 42

    def test_indirect_call(self):
        callee = parse_function("li n0,7\nrjr ra", "seven")
        main = parse_function("""
            la n1,seven
            calli n1
            hlt
        """, "main")
        program = VMProgram("t", functions=[main, callee])
        assert run_program(program).exit_code == 7

    def test_indirect_call_to_data_faults(self):
        with pytest.raises(VMError):
            run_value("li n1,4096\ncalli n1")

    def test_return_to_garbage_faults(self):
        with pytest.raises(VMError):
            run_value("li n1,123\nrjr n1")

    def test_fall_off_end_faults(self):
        with pytest.raises(VMError):
            run_asm("li n0,1")

    def test_step_budget_enforced(self):
        with pytest.raises(VMError):
            run_asm("$a:\njmp $a", max_steps=1000)


class TestSyscalls:
    def test_putchar(self):
        out = run_asm("""
            li n1,65
            st.iw n1,-4(sp)
            sys 1
            hlt
        """).output
        assert out == "A"

    def test_print_int_negative(self):
        out = run_asm("""
            li n1,-42
            st.iw n1,-4(sp)
            sys 5
            hlt
        """).output
        assert out == "-42"

    def test_getchar_stdin(self):
        res = run_asm("sys 2\nhlt", stdin="x")
        assert res.exit_code == ord("x")

    def test_getchar_eof(self):
        assert run_asm("sys 2\nhlt").exit_code == -1

    def test_exit_code(self):
        res = run_asm("""
            li n1,3
            st.iw n1,-4(sp)
            sys 0
        """)
        assert res.exit_code == 3

    def test_malloc_returns_distinct_blocks(self):
        res = run_asm("""
            li n1,16
            st.iw n1,-4(sp)
            sys 3
            mov.i n2,n0
            li n1,16
            st.iw n1,-4(sp)
            sys 3
            sub.i n0,n0,n2
            hlt
        """)
        assert res.exit_code >= 16

    def test_abort_faults(self):
        with pytest.raises(VMError):
            run_asm("sys 9\nhlt")

    def test_clock_monotonic(self):
        res = run_asm("""
            sys 8
            mov.i n2,n0
            sys 8
            sub.i n0,n0,n2
            hlt
        """)
        assert res.exit_code > 0

    def test_unknown_syscall_faults(self):
        with pytest.raises(VMError):
            run_asm("sys 99\nhlt")


class TestAccounting:
    def test_steps_counted(self):
        res = run_asm("li n0,1\nli n0,2\nhlt")
        assert res.steps == 3

    def test_opcode_counts(self):
        res = run_asm("li n0,1\nli n0,2\nhlt", count_opcodes=True)
        assert res.opcode_counts["li"] == 2

    def test_entry_args_passed(self):
        assert run_asm("ld.iw n0,-8(sp)\nhlt", args=(5, 6)).exit_code == 5
        assert run_asm("ld.iw n0,-4(sp)\nhlt", args=(5, 6)).exit_code == 6
