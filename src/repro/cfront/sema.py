"""Semantic analysis for the C subset.

Resolves names, assigns types to every expression, inserts implicit
conversions, performs array/function decay, folds constant expressions,
lays out struct member accesses, and validates statements (break/continue
placement, return types, switch case labels).  The result is the same AST,
now fully annotated, ready for IR lowering.

Function-local ``static`` variables are hoisted into the global list under
mangled names, matching how lcc treats them.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Union

from . import ctypes as ct
from .astnodes import (
    Assign, Binary, Block, Break, Call, Case, Cast, Conditional, Continue,
    DeclStmt, DoWhile, EmptyStmt, Expr, ExprStmt, FloatLit, For, FunctionDef,
    If, ImplicitCast, IncDec, Index, InitList, Initializer, IntLit, Member,
    NameRef, Return, SizeofType, Stmt, StringLit, Switch,
    TranslationUnit, Unary, VarDecl, While,
)
from .ctypes import (
    ArrayType, CType, FloatType, FunctionType, IntType, PointerType,
    StructType, VoidType,
)
from .errors import CompileError, Location
from .symbols import Scope, Storage, Symbol

__all__ = ["analyze", "is_lvalue", "BUILTIN_FUNCTIONS"]

# Functions the VM runtime provides directly (see repro.vm.interp).  They
# are implicitly declared so corpus programs need no headers.
BUILTIN_FUNCTIONS: Dict[str, FunctionType] = {
    "putchar": FunctionType(ct.INT, (ct.INT,)),
    "getchar": FunctionType(ct.INT, ()),
    "malloc": FunctionType(PointerType(ct.VOID), (ct.UINT,)),
    "free": FunctionType(ct.VOID, (PointerType(ct.VOID),)),
    "abort": FunctionType(ct.VOID, ()),
    "exit": FunctionType(ct.VOID, (ct.INT,)),
    "print_int": FunctionType(ct.VOID, (ct.INT,)),
    "print_str": FunctionType(ct.VOID, (PointerType(ct.CHAR),)),
    "print_double": FunctionType(ct.VOID, (ct.DOUBLE,)),
    "clock": FunctionType(ct.INT, ()),
}


def _is_null_constant(expr: Expr) -> bool:
    """An integer constant 0 usable as a null pointer constant."""
    return isinstance(expr, IntLit) and expr.value == 0


def is_lvalue(expr: Expr) -> bool:
    """True when ``expr`` designates a storable object."""
    if isinstance(expr, NameRef):
        sym = expr.symbol
        return isinstance(sym, Symbol) and sym.storage in (
            Storage.GLOBAL, Storage.PARAM, Storage.LOCAL
        )
    if isinstance(expr, Unary) and expr.op == "*":
        return True
    if isinstance(expr, (Index, Member)):
        return True
    if isinstance(expr, StringLit):
        return True
    return False


class _FunctionContext:
    """Per-function checking state."""

    def __init__(self, fn: FunctionDef) -> None:
        self.fn = fn
        assert isinstance(fn.type, FunctionType)
        self.return_type = fn.type.ret
        self.loop_depth = 0
        self.switch_depth = 0
        self.locals: List[Symbol] = []
        self.static_counter = 0


class Analyzer:
    """Single-pass semantic analyzer over a parsed translation unit."""

    def __init__(self, unit: TranslationUnit) -> None:
        self.unit = unit
        self.globals = Scope()
        self.scope = self.globals
        self.ctx: Optional[_FunctionContext] = None
        self._string_labels: Dict[str, str] = {}
        self._hoisted: List[VarDecl] = []

    # -- driver --------------------------------------------------------------

    def run(self) -> TranslationUnit:
        for name, ftype in BUILTIN_FUNCTIONS.items():
            self.globals.declare(
                Symbol(name, ftype, Storage.FUNCTION,
                       Location("<builtin>", 0, 0), defined=True)
            )
        # Pre-declare every function so global initializers may reference
        # functions defined later in the file (source order is not kept
        # between the globals and functions lists).
        for fn in self.unit.functions:
            assert isinstance(fn.type, FunctionType)
            self.globals.declare(
                Symbol(fn.name, fn.type, Storage.FUNCTION, fn.location,
                       defined=fn.body is not None)
            )
        for decl in self.unit.globals:
            self._check_global(decl)
        for fn in self.unit.functions:
            self._check_function(fn)
        self.unit.globals.extend(self._hoisted)
        return self.unit

    # -- declarations ----------------------------------------------------

    def _check_global(self, decl: VarDecl) -> None:
        if isinstance(decl.type, ArrayType) and decl.type.count is None:
            decl.type = self._sized_from_init(decl.type, decl.init, decl.location)
        self._complete_or_fail(decl.type, decl.location)
        sym = Symbol(decl.name, decl.type, Storage.GLOBAL, decl.location,
                     defined=not decl.is_extern)
        decl.symbol = self.globals.declare(sym)
        if decl.init is not None:
            self._check_initializer(decl.type, decl.init)

    def _check_function(self, fn: FunctionDef) -> None:
        assert isinstance(fn.type, FunctionType)
        # The symbol was declared during the pre-declaration pass in run().
        if fn.body is None:
            return
        ctx = _FunctionContext(fn)
        self.ctx = ctx
        self.scope = Scope(self.globals)
        for param in fn.params:
            if not param.name:
                raise CompileError("parameter needs a name in a definition",
                                   param.location)
            psym = Symbol(param.name, param.type, Storage.PARAM, param.location)
            param.symbol = self.scope.declare(psym)
        self._check_block(fn.body, new_scope=False)
        fn.all_locals = ctx.locals  # type: ignore[attr-defined]
        self.scope = self.globals
        self.ctx = None

    def _complete_or_fail(self, t: CType, loc: Location) -> None:
        if isinstance(t, StructType) and not t.complete:
            raise CompileError(f"'{t}' is incomplete here", loc)
        if isinstance(t, VoidType):
            raise CompileError("cannot declare an object of type void", loc)
        if isinstance(t, ArrayType):
            if t.count is None:
                raise CompileError("array needs a size (or an initializer)", loc)
            self._complete_or_fail(t.element, loc)

    def _declare_local(self, decl: VarDecl) -> None:
        assert self.ctx is not None
        if decl.is_static:
            # Hoist to a mangled global.
            self.ctx.static_counter += 1
            mangled = f"{self.ctx.fn.name}.{decl.name}.{self.ctx.static_counter}"
            sym = Symbol(mangled, decl.type, Storage.GLOBAL, decl.location,
                         defined=True)
            # Visible under its source name in the current scope.
            self.scope.names[decl.name] = sym
            decl.symbol = sym
            hoisted = VarDecl(mangled, decl.type, decl.location, decl.init,
                              is_static=True)
            hoisted.symbol = sym
            if decl.init is not None:
                self._check_initializer(decl.type, decl.init)
                decl.init = None  # initialization happens in the image
            self._hoisted.append(hoisted)
            return
        # Infer array sizes from initializers: int a[] = {1,2,3};
        if isinstance(decl.type, ArrayType) and decl.type.count is None:
            decl.type = self._sized_from_init(decl.type, decl.init, decl.location)
        self._complete_or_fail(decl.type, decl.location)
        sym = Symbol(decl.name, decl.type, Storage.LOCAL, decl.location)
        if decl.name in self.scope.names:
            raise CompileError(f"redeclaration of '{decl.name}'", decl.location)
        self.scope.names[decl.name] = sym
        decl.symbol = sym
        self.ctx.locals.append(sym)
        if decl.init is not None:
            self._check_initializer(decl.type, decl.init)

    def _sized_from_init(
        self, t: ArrayType, init: Optional[Union[Initializer, InitList]],
        loc: Location,
    ) -> ArrayType:
        if isinstance(init, InitList):
            return ArrayType(t.element, len(init.items))
        if isinstance(init, Initializer) and isinstance(init.expr, StringLit):
            return ArrayType(t.element, len(init.expr.value) + 1)
        raise CompileError("array of unknown size needs an initializer list", loc)

    def _check_initializer(
        self, t: CType, init: Union[Initializer, InitList]
    ) -> None:
        if isinstance(init, Initializer):
            assert init.expr is not None
            # char a[...] = "str" initializes the array directly.
            if isinstance(t, ArrayType) and isinstance(init.expr, StringLit):
                init.expr = self._check_expr(init.expr, decay=False)
                if len(init.expr.value) + 1 > (t.count or 0):
                    raise CompileError("string initializer longer than array",
                                       init.location)
                return
            expr = self._check_expr(init.expr)
            assert expr.ctype is not None
            null_ok = isinstance(t, PointerType) and _is_null_constant(expr)
            if not ct.composite_compatible(t, expr.ctype) and not null_ok:
                raise CompileError(
                    f"cannot initialize '{t}' from '{expr.ctype}'", init.location
                )
            init.expr = self._coerce(expr, t)
            return
        # Brace list: arrays element-wise, structs member-wise.
        if isinstance(t, ArrayType):
            count = t.count if t.count is not None else len(init.items)
            if len(init.items) > count:
                raise CompileError("too many initializers for array", init.location)
            for item in init.items:
                self._check_initializer(t.element, item)
            return
        if isinstance(t, StructType):
            if not t.complete or t.members is None:
                raise CompileError(f"cannot initialize incomplete '{t}'",
                                   init.location)
            if len(init.items) > len(t.members):
                raise CompileError("too many initializers for struct",
                                   init.location)
            for member, item in zip(t.members, init.items):
                self._check_initializer(member.type, item)
            return
        if len(init.items) != 1:
            raise CompileError("scalar initializer needs exactly one value",
                               init.location)
        self._check_initializer(t, init.items[0])

    # -- statements --------------------------------------------------------

    def _check_block(self, block: Block, new_scope: bool = True) -> None:
        if new_scope:
            self.scope = Scope(self.scope)
        for stmt in block.body:
            self._check_stmt(stmt)
        if new_scope:
            assert self.scope.parent is not None
            self.scope = self.scope.parent

    def _check_stmt(self, stmt: Stmt) -> None:
        assert self.ctx is not None
        if isinstance(stmt, Block):
            self._check_block(stmt)
        elif isinstance(stmt, ExprStmt):
            assert stmt.expr is not None
            stmt.expr = self._check_expr(stmt.expr)
        elif isinstance(stmt, DeclStmt):
            for decl in stmt.decls:
                self._declare_local(decl)
        elif isinstance(stmt, If):
            stmt.cond = self._check_condition(stmt.cond)
            assert stmt.then is not None
            self._check_stmt(stmt.then)
            if stmt.otherwise is not None:
                self._check_stmt(stmt.otherwise)
        elif isinstance(stmt, While):
            stmt.cond = self._check_condition(stmt.cond)
            self._in_loop(stmt.body)
        elif isinstance(stmt, DoWhile):
            self._in_loop(stmt.body)
            stmt.cond = self._check_condition(stmt.cond)
        elif isinstance(stmt, For):
            self.scope = Scope(self.scope)
            if isinstance(stmt.init, DeclStmt):
                for decl in stmt.init.decls:
                    self._declare_local(decl)
            elif isinstance(stmt.init, Expr):
                stmt.init = self._check_expr(stmt.init)
            if stmt.cond is not None:
                stmt.cond = self._check_condition(stmt.cond)
            if stmt.step is not None:
                stmt.step = self._check_expr(stmt.step)
            self._in_loop(stmt.body)
            assert self.scope.parent is not None
            self.scope = self.scope.parent
        elif isinstance(stmt, Return):
            ret = self.ctx.return_type
            if stmt.value is None:
                if not isinstance(ret, VoidType):
                    raise CompileError(
                        f"non-void function must return a value", stmt.location
                    )
            else:
                if isinstance(ret, VoidType):
                    raise CompileError("void function cannot return a value",
                                       stmt.location)
                value = self._check_expr(stmt.value)
                assert value.ctype is not None
                null_ok = (isinstance(ret, PointerType)
                           and _is_null_constant(value))
                if not ct.composite_compatible(ret, value.ctype) and not null_ok:
                    raise CompileError(
                        f"cannot return '{value.ctype}' from a function "
                        f"returning '{ret}'", stmt.location)
                stmt.value = self._coerce(value, ret)
        elif isinstance(stmt, Break):
            if self.ctx.loop_depth == 0 and self.ctx.switch_depth == 0:
                raise CompileError("break outside loop or switch", stmt.location)
        elif isinstance(stmt, Continue):
            if self.ctx.loop_depth == 0:
                raise CompileError("continue outside loop", stmt.location)
        elif isinstance(stmt, Switch):
            self._check_switch(stmt)
        elif isinstance(stmt, Case):
            raise CompileError("case label outside switch", stmt.location)
        elif isinstance(stmt, EmptyStmt):
            pass
        else:  # pragma: no cover
            raise AssertionError(f"unhandled statement {type(stmt).__name__}")

    def _in_loop(self, body: Optional[Stmt]) -> None:
        assert self.ctx is not None and body is not None
        self.ctx.loop_depth += 1
        self._check_stmt(body)
        self.ctx.loop_depth -= 1

    def _check_condition(self, cond: Optional[Expr]) -> Expr:
        assert cond is not None
        expr = self._check_expr(cond)
        assert expr.ctype is not None
        if not ct.is_scalar(expr.ctype):
            raise CompileError(
                f"condition must be scalar, got '{expr.ctype}'", expr.location
            )
        return expr

    def _check_switch(self, stmt: Switch) -> None:
        assert self.ctx is not None and stmt.body is not None
        scrutinee = self._check_expr(stmt.scrutinee)
        assert scrutinee.ctype is not None
        if not ct.is_integer(scrutinee.ctype):
            raise CompileError("switch expression must be an integer",
                               scrutinee.location)
        stmt.scrutinee = self._coerce(scrutinee, ct.integer_promote(scrutinee.ctype))
        # The body is usually a Block whose items include Case labels.
        self.ctx.switch_depth += 1
        seen: Set[Optional[int]] = set()
        if isinstance(stmt.body, Block):
            self.scope = Scope(self.scope)
            for item in stmt.body.body:
                if isinstance(item, Case):
                    self._check_case(item, seen)
                else:
                    self._check_stmt(item)
            assert self.scope.parent is not None
            self.scope = self.scope.parent
        elif isinstance(stmt.body, Case):
            self._check_case(stmt.body, seen)
        else:
            self._check_stmt(stmt.body)
        self.ctx.switch_depth -= 1

    def _check_case(self, case: Case, seen: Set[Optional[int]]) -> None:
        if case.value is not None:
            expr = self._check_expr(case.value)
            value = self._const_int(expr)
            if value is None:
                raise CompileError("case label must be a constant", case.location)
            case.const_value = value
        else:
            case.const_value = None
        key = case.const_value
        if key in seen:
            label = "default" if key is None else str(key)
            raise CompileError(f"duplicate case label {label}", case.location)
        seen.add(key)
        assert case.body is not None
        self._check_stmt(case.body)

    # -- expressions -------------------------------------------------------

    def _check_expr(self, expr: Expr, decay: bool = True) -> Expr:
        """Type-check ``expr``; returns the (possibly rewritten) node."""
        result = self._check_expr_inner(expr)
        assert result.ctype is not None, type(expr).__name__
        if decay:
            result = self._decay(result)
        return result

    def _decay(self, expr: Expr) -> Expr:
        """Array-to-pointer and function-to-pointer decay."""
        t = expr.ctype
        if isinstance(t, ArrayType):
            cast = ImplicitCast(expr.location, expr)
            cast.ctype = PointerType(t.element)
            return cast
        if isinstance(t, FunctionType):
            cast = ImplicitCast(expr.location, expr)
            cast.ctype = PointerType(t)
            return cast
        return expr

    def _coerce(self, expr: Expr, target: CType) -> Expr:
        """Insert an implicit conversion to ``target`` when types differ."""
        assert expr.ctype is not None
        if expr.ctype == target:
            return expr
        cast = ImplicitCast(expr.location, expr)
        cast.ctype = target
        return cast

    def _check_expr_inner(self, expr: Expr) -> Expr:
        if isinstance(expr, IntLit):
            expr.ctype = ct.INT
            return expr
        if isinstance(expr, FloatLit):
            expr.ctype = ct.DOUBLE
            return expr
        if isinstance(expr, StringLit):
            return self._check_string(expr)
        if isinstance(expr, NameRef):
            return self._check_name(expr)
        if isinstance(expr, Unary):
            return self._check_unary(expr)
        if isinstance(expr, Binary):
            return self._check_binary(expr)
        if isinstance(expr, Assign):
            return self._check_assign(expr)
        if isinstance(expr, Conditional):
            return self._check_conditional(expr)
        if isinstance(expr, Call):
            return self._check_call(expr)
        if isinstance(expr, Index):
            return self._check_index(expr)
        if isinstance(expr, Member):
            return self._check_member(expr)
        if isinstance(expr, Cast):
            return self._check_cast(expr)
        if isinstance(expr, SizeofType):
            assert expr.target is not None
            lit = IntLit(expr.location, expr.target.size)
            lit.ctype = ct.UINT
            return lit
        if isinstance(expr, IncDec):
            return self._check_incdec(expr)
        raise AssertionError(f"unhandled expression {type(expr).__name__}")

    def _check_string(self, expr: StringLit) -> StringLit:
        label = self._string_labels.get(expr.value)
        if label is None:
            label = f"<str{len(self._string_labels)}>"
            self._string_labels[expr.value] = label
            self.unit.strings.append((label, expr.value))
        expr.label = label
        expr.ctype = ArrayType(ct.CHAR, len(expr.value) + 1)
        return expr

    def _check_name(self, expr: NameRef) -> Expr:
        sym = self.scope.lookup(expr.name)
        if sym is None:
            raise CompileError(f"undeclared identifier '{expr.name}'",
                               expr.location)
        if sym.storage is Storage.ENUM_CONST:
            lit = IntLit(expr.location, sym.enum_value)
            lit.ctype = ct.INT
            return lit
        if sym.storage is Storage.TYPEDEF:
            raise CompileError(f"'{expr.name}' is a type name here",
                               expr.location)
        expr.symbol = sym
        expr.ctype = sym.type
        return expr

    def _check_unary(self, expr: Unary) -> Expr:
        assert expr.operand is not None
        op = expr.op
        if op == "sizeof":
            operand = self._check_expr(expr.operand, decay=False)
            assert operand.ctype is not None
            lit = IntLit(expr.location, operand.ctype.size)
            lit.ctype = ct.UINT
            return lit
        if op == "&":
            operand = self._check_expr(expr.operand, decay=False)
            assert operand.ctype is not None
            if isinstance(operand.ctype, FunctionType):
                cast = ImplicitCast(expr.location, operand)
                cast.ctype = PointerType(operand.ctype)
                return cast
            if not is_lvalue(operand) and not isinstance(operand.ctype, ArrayType):
                raise CompileError("cannot take the address of this expression",
                                   expr.location)
            expr.operand = operand
            target = operand.ctype
            if isinstance(target, ArrayType):
                target = target  # &array has type element(*)[n]; simplified: array*
            expr.ctype = PointerType(
                target.element if isinstance(target, ArrayType) else target
            )
            return expr
        operand = self._check_expr(expr.operand)
        t = operand.ctype
        assert t is not None
        expr.operand = operand
        if op == "*":
            if not isinstance(t, PointerType):
                raise CompileError(f"cannot dereference '{t}'", expr.location)
            if isinstance(t.target, VoidType):
                raise CompileError("cannot dereference void*", expr.location)
            expr.ctype = t.target
            return expr
        if op in ("-", "+"):
            if not ct.is_arithmetic(t):
                raise CompileError(f"unary {op} needs an arithmetic operand",
                                   expr.location)
            promoted = ct.integer_promote(t)
            expr.operand = self._coerce(operand, promoted)
            expr.ctype = promoted
            if op == "+":
                return expr.operand  # unary plus is a no-op
            folded = self._fold_unary(expr)
            return folded if folded is not None else expr
        if op == "~":
            if not ct.is_integer(t):
                raise CompileError("~ needs an integer operand", expr.location)
            promoted = ct.integer_promote(t)
            expr.operand = self._coerce(operand, promoted)
            expr.ctype = promoted
            folded = self._fold_unary(expr)
            return folded if folded is not None else expr
        if op == "!":
            if not ct.is_scalar(t):
                raise CompileError("! needs a scalar operand", expr.location)
            expr.ctype = ct.INT
            folded = self._fold_unary(expr)
            return folded if folded is not None else expr
        raise AssertionError(f"unhandled unary operator {op}")

    def _fold_unary(self, expr: Unary) -> Optional[Expr]:
        operand = expr.operand
        if isinstance(operand, IntLit):
            assert isinstance(expr.ctype, (IntType,)) or expr.op == "!"
            if expr.op == "-":
                value = -operand.value
            elif expr.op == "~":
                value = ~operand.value
            elif expr.op == "!":
                value = int(not operand.value)
            else:
                return None
            t = expr.ctype if isinstance(expr.ctype, IntType) else ct.INT
            lit = IntLit(expr.location, t.wrap(value))
            lit.ctype = expr.ctype
            return lit
        if isinstance(operand, FloatLit) and expr.op == "-":
            lit = FloatLit(expr.location, -operand.value)
            lit.ctype = ct.DOUBLE
            return lit
        return None

    def _check_binary(self, expr: Binary) -> Expr:
        assert expr.left is not None and expr.right is not None
        op = expr.op
        if op == ",":
            expr.left = self._check_expr(expr.left)
            expr.right = self._check_expr(expr.right)
            expr.ctype = expr.right.ctype
            return expr
        if op in ("&&", "||"):
            left = self._check_expr(expr.left)
            right = self._check_expr(expr.right)
            for side in (left, right):
                assert side.ctype is not None
                if not ct.is_scalar(side.ctype):
                    raise CompileError(
                        f"'{op}' needs scalar operands", side.location)
            expr.left, expr.right = left, right
            expr.ctype = ct.INT
            return expr
        left = self._check_expr(expr.left)
        right = self._check_expr(expr.right)
        lt, rt = left.ctype, right.ctype
        assert lt is not None and rt is not None

        if op in ("+", "-"):
            result = self._check_additive(expr, left, right, lt, rt, op)
            if result is not None:
                return result
        if op in ("==", "!=", "<", ">", "<=", ">="):
            return self._check_comparison(expr, left, right, lt, rt)

        # Remaining operators are purely arithmetic/integer.
        if op in ("*", "/", "+", "-"):
            if not (ct.is_arithmetic(lt) and ct.is_arithmetic(rt)):
                raise CompileError(f"'{op}' needs arithmetic operands",
                                   expr.location)
        else:  # % << >> & | ^
            if not (ct.is_integer(lt) and ct.is_integer(rt)):
                raise CompileError(f"'{op}' needs integer operands",
                                   expr.location)
        if op in ("<<", ">>"):
            common = ct.integer_promote(lt)
            expr.left = self._coerce(left, common)
            expr.right = self._coerce(right, ct.INT)
        else:
            common = ct.usual_arithmetic(lt, rt)
            expr.left = self._coerce(left, common)
            expr.right = self._coerce(right, common)
        expr.ctype = common
        folded = self._fold_binary(expr)
        return folded if folded is not None else expr

    def _check_additive(
        self, expr: Binary, left: Expr, right: Expr,
        lt: CType, rt: CType, op: str,
    ) -> Optional[Expr]:
        """Handle pointer arithmetic; returns None for the pure-arith case."""
        if isinstance(lt, PointerType) and ct.is_integer(rt):
            expr.left = left
            expr.right = self._coerce(right, ct.INT)
            expr.ctype = lt
            return expr
        if op == "+" and ct.is_integer(lt) and isinstance(rt, PointerType):
            # Normalize int + ptr to ptr + int.
            expr.left = right
            expr.right = self._coerce(left, ct.INT)
            expr.ctype = rt
            return expr
        if op == "-" and isinstance(lt, PointerType) and isinstance(rt, PointerType):
            if lt.target != rt.target:
                raise CompileError("pointer subtraction needs matching types",
                                   expr.location)
            expr.left, expr.right = left, right
            expr.ctype = ct.INT
            return expr
        if not (ct.is_arithmetic(lt) and ct.is_arithmetic(rt)):
            raise CompileError(f"invalid operands to '{op}' ({lt} and {rt})",
                               expr.location)
        return None

    def _check_comparison(
        self, expr: Binary, left: Expr, right: Expr, lt: CType, rt: CType
    ) -> Expr:
        if isinstance(lt, PointerType) or isinstance(rt, PointerType):
            ok = (
                (isinstance(lt, PointerType) and isinstance(rt, PointerType))
                or (isinstance(lt, PointerType) and isinstance(right, IntLit)
                    and right.value == 0)
                or (isinstance(rt, PointerType) and isinstance(left, IntLit)
                    and left.value == 0)
            )
            if not ok:
                raise CompileError("invalid pointer comparison", expr.location)
            target = lt if isinstance(lt, PointerType) else rt
            expr.left = self._coerce(left, target)
            expr.right = self._coerce(right, target)
        else:
            if not (ct.is_arithmetic(lt) and ct.is_arithmetic(rt)):
                raise CompileError("comparison needs arithmetic or pointer operands",
                                   expr.location)
            common = ct.usual_arithmetic(lt, rt)
            expr.left = self._coerce(left, common)
            expr.right = self._coerce(right, common)
        expr.ctype = ct.INT
        folded = self._fold_binary(expr)
        return folded if folded is not None else expr

    def _fold_binary(self, expr: Binary) -> Optional[Expr]:
        left, right = expr.left, expr.right
        if not isinstance(left, IntLit) or not isinstance(right, IntLit):
            return None
        a, b = left.value, right.value
        try:
            op = expr.op
            if op == "+":
                value = a + b
            elif op == "-":
                value = a - b
            elif op == "*":
                value = a * b
            elif op == "/":
                value = _truncdiv(a, b)
            elif op == "%":
                value = a - _truncdiv(a, b) * b
            elif op == "&":
                value = a & b
            elif op == "|":
                value = a | b
            elif op == "^":
                value = a ^ b
            elif op == "<<":
                value = a << (b & 31)
            elif op == ">>":
                value = a >> (b & 31)
            elif op == "==":
                value = int(a == b)
            elif op == "!=":
                value = int(a != b)
            elif op == "<":
                value = int(a < b)
            elif op == ">":
                value = int(a > b)
            elif op == "<=":
                value = int(a <= b)
            elif op == ">=":
                value = int(a >= b)
            else:
                return None
        except ZeroDivisionError:
            return None  # leave it for runtime, as lcc does
        t = expr.ctype if isinstance(expr.ctype, IntType) else ct.INT
        lit = IntLit(expr.location, t.wrap(value))
        lit.ctype = expr.ctype
        return lit

    def _check_assign(self, expr: Assign) -> Expr:
        assert expr.target is not None and expr.value is not None
        target = self._check_expr(expr.target, decay=False)
        if not is_lvalue(target):
            raise CompileError("assignment target is not an lvalue",
                               expr.location)
        tt = target.ctype
        assert tt is not None
        if isinstance(tt, ArrayType):
            raise CompileError("cannot assign to an array", expr.location)
        if expr.op == "=":
            value = self._check_expr(expr.value)
            assert value.ctype is not None
            if isinstance(tt, StructType):
                if value.ctype != tt:
                    raise CompileError("struct assignment needs matching types",
                                       expr.location)
                expr.target, expr.value = target, value
                expr.ctype = tt
                return expr
            null_ok = isinstance(tt, PointerType) and _is_null_constant(value)
            if not ct.composite_compatible(tt, value.ctype) and not null_ok:
                raise CompileError(
                    f"cannot assign '{value.ctype}' to '{tt}'", expr.location)
            expr.target = target
            expr.value = self._coerce(value, tt)
            expr.ctype = tt
            return expr
        # Compound assignment: type-check as target op value, then store.
        binop = expr.op[:-1]
        value = self._check_expr(expr.value)
        assert value.ctype is not None
        if binop in ("+", "-") and isinstance(tt, PointerType):
            if not ct.is_integer(value.ctype):
                raise CompileError("pointer += needs an integer", expr.location)
            expr.value = self._coerce(value, ct.INT)
        else:
            if not (ct.is_arithmetic(tt) and ct.is_arithmetic(value.ctype)):
                if not (ct.is_integer(tt) and ct.is_integer(value.ctype)):
                    raise CompileError(
                        f"invalid compound assignment to '{tt}'", expr.location)
            common = ct.usual_arithmetic(tt, value.ctype)
            expr.value = self._coerce(value, common)
        expr.target = target
        expr.ctype = tt
        return expr

    def _check_conditional(self, expr: Conditional) -> Expr:
        assert expr.cond and expr.then is not None and expr.otherwise is not None
        expr.cond = self._check_condition(expr.cond)
        then = self._check_expr(expr.then)
        otherwise = self._check_expr(expr.otherwise)
        tt, ot = then.ctype, otherwise.ctype
        assert tt is not None and ot is not None
        if ct.is_arithmetic(tt) and ct.is_arithmetic(ot):
            common: CType = ct.usual_arithmetic(tt, ot)
        elif isinstance(tt, PointerType) and isinstance(ot, PointerType):
            common = tt if not isinstance(tt.target, VoidType) else ot
        elif isinstance(tt, PointerType) and isinstance(otherwise, IntLit) \
                and otherwise.value == 0:
            common = tt
        elif isinstance(ot, PointerType) and isinstance(then, IntLit) \
                and then.value == 0:
            common = ot
        elif tt == ot:
            common = tt
        else:
            raise CompileError(
                f"incompatible conditional arms ('{tt}' and '{ot}')",
                expr.location)
        expr.then = self._coerce(then, common)
        expr.otherwise = self._coerce(otherwise, common)
        expr.ctype = common
        return expr

    def _check_call(self, expr: Call) -> Expr:
        assert expr.func is not None
        # C89 implicit declaration: calling an unknown name declares it as
        # an int-returning variadic function (the paper's sample code does
        # exactly this with `pepper`).
        if isinstance(expr.func, NameRef) and self.scope.lookup(expr.func.name) is None:
            implicit = FunctionType(ct.INT, (), variadic=True)
            self.globals.declare(
                Symbol(expr.func.name, implicit, Storage.FUNCTION,
                       expr.func.location)
            )
        func = self._check_expr(expr.func, decay=False)
        ftype = func.ctype
        assert ftype is not None
        if isinstance(ftype, PointerType) and isinstance(ftype.target, FunctionType):
            ftype = ftype.target
        elif isinstance(func, ImplicitCast) and isinstance(func.operand, Expr):
            pass
        if not isinstance(ftype, FunctionType):
            raise CompileError(f"called object has type '{func.ctype}', "
                               "not a function", expr.location)
        params = ftype.params
        if ftype.variadic:
            if len(expr.args) < len(params):
                raise CompileError("too few arguments", expr.location)
        elif len(expr.args) != len(params):
            raise CompileError(
                f"expected {len(params)} arguments, got {len(expr.args)}",
                expr.location)
        new_args: List[Expr] = []
        for i, arg in enumerate(expr.args):
            checked = self._check_expr(arg)
            assert checked.ctype is not None
            if i < len(params):
                null_ok = (isinstance(params[i], PointerType)
                           and _is_null_constant(checked))
                if not ct.composite_compatible(params[i], checked.ctype) \
                        and not null_ok:
                    raise CompileError(
                        f"argument {i + 1}: cannot pass '{checked.ctype}' "
                        f"as '{params[i]}'", checked.location)
                checked = self._coerce(checked, params[i])
            else:
                # Variadic default promotions.
                if isinstance(checked.ctype, IntType):
                    checked = self._coerce(checked, ct.integer_promote(checked.ctype))
            new_args.append(checked)
        expr.func = func
        expr.args = new_args
        expr.ctype = ftype.ret
        return expr

    def _check_index(self, expr: Index) -> Expr:
        assert expr.base is not None and expr.index is not None
        base = self._check_expr(expr.base)
        index = self._check_expr(expr.index)
        bt, it = base.ctype, index.ctype
        assert bt is not None and it is not None
        if ct.is_integer(bt) and isinstance(it, PointerType):
            base, index = index, base
            bt, it = it, bt
        if not isinstance(bt, PointerType):
            raise CompileError(f"cannot index '{bt}'", expr.location)
        if not ct.is_integer(it):
            raise CompileError("array index must be an integer", expr.location)
        expr.base = base
        expr.index = self._coerce(index, ct.INT)
        expr.ctype = bt.target
        return expr

    def _check_member(self, expr: Member) -> Expr:
        assert expr.base is not None
        base = self._check_expr(expr.base, decay=not expr.arrow)
        bt = base.ctype
        assert bt is not None
        if expr.arrow:
            if not isinstance(bt, PointerType) or not isinstance(bt.target, StructType):
                raise CompileError(f"'->' needs a struct pointer, got '{bt}'",
                                   expr.location)
            struct = bt.target
        else:
            if not isinstance(bt, StructType):
                raise CompileError(f"'.' needs a struct, got '{bt}'",
                                   expr.location)
            struct = bt
        member = struct.member(expr.name)
        if member is None:
            raise CompileError(f"'{struct}' has no member '{expr.name}'",
                               expr.location)
        expr.base = base
        expr.offset = member.offset
        expr.ctype = member.type
        return expr

    def _check_cast(self, expr: Cast) -> Expr:
        assert expr.target is not None and expr.operand is not None
        operand = self._check_expr(expr.operand)
        src = operand.ctype
        assert src is not None
        dst = expr.target
        if isinstance(dst, VoidType):
            expr.operand = operand
            expr.ctype = dst
            return expr
        if not ct.is_scalar(dst) or not ct.is_scalar(src):
            raise CompileError(f"cannot cast '{src}' to '{dst}'", expr.location)
        if isinstance(dst, PointerType) and isinstance(src, FloatType):
            raise CompileError("cannot cast floating type to pointer",
                               expr.location)
        if isinstance(src, PointerType) and isinstance(dst, FloatType):
            raise CompileError("cannot cast pointer to floating type",
                               expr.location)
        expr.operand = operand
        expr.ctype = dst
        return expr

    def _check_incdec(self, expr: IncDec) -> Expr:
        assert expr.operand is not None
        operand = self._check_expr(expr.operand, decay=False)
        if not is_lvalue(operand):
            raise CompileError(f"{expr.op} needs an lvalue", expr.location)
        t = operand.ctype
        assert t is not None
        if not ct.is_scalar(t):
            raise CompileError(f"{expr.op} needs a scalar operand",
                               expr.location)
        expr.operand = operand
        expr.ctype = t
        return expr

    def _const_int(self, expr: Expr) -> Optional[int]:
        """Constant value of an already-checked expression, if known."""
        if isinstance(expr, IntLit):
            return expr.value
        if isinstance(expr, ImplicitCast) and isinstance(expr.operand, IntLit):
            if isinstance(expr.ctype, IntType):
                return expr.ctype.wrap(expr.operand.value)
            return expr.operand.value
        return None


def _truncdiv(a: int, b: int) -> int:
    if b == 0:
        raise ZeroDivisionError
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


def analyze(unit: TranslationUnit) -> TranslationUnit:
    """Run semantic analysis over a parsed unit (mutates and returns it)."""
    return Analyzer(unit).run()
