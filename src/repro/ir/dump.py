"""Textual dump of IR forests in the paper's notation.

The paper writes trees as ``ASGNI(ADDRLP8[72], SUBI(INDIRI(ADDRLP8[72]),
CNSTC[1]))`` — operator names with literal operands in square brackets.
:func:`dump_function` reproduces that style (including the 8/16 literal
width suffixes) for documentation, tests, and debugging.
"""

from __future__ import annotations

from typing import List

from .tree import IRFunction, IRModule, Tree

__all__ = ["format_tree", "dump_function", "dump_module"]


def _width_suffix(value: int) -> str:
    """The paper's 8/16 flag for integer literals that fit."""
    if -128 <= value < 256:
        return "8"
    if -32768 <= value < 65536:
        return "16"
    return ""


def format_tree(tree: Tree, width_flags: bool = True) -> str:
    """Render a tree in the paper's notation."""
    name = tree.op.name
    lit = ""
    if tree.op.literal != "none":
        if width_flags and tree.op.literal == "int" and isinstance(tree.value, int):
            name = f"{name}{_width_suffix(tree.value)}"
        lit = f"[{tree.value}]"
    if tree.kids:
        inner = ", ".join(format_tree(k, width_flags) for k in tree.kids)
        return f"{name}{lit}({inner})"
    return f"{name}{lit}"


def dump_function(fn: IRFunction, width_flags: bool = True) -> str:
    """Render a whole function, one tree per line."""
    lines: List[str] = [f"; {fn.name} frame={fn.frame_size} params={fn.param_sizes}"]
    for tree in fn.forest:
        lines.append(format_tree(tree, width_flags))
    return "\n".join(lines)


def dump_module(module: IRModule) -> str:
    """Render every function in the module."""
    parts = []
    for g in module.globals:
        parts.append(f"; global {g.name} size={g.size} align={g.align}")
    for fn in module.functions:
        parts.append(dump_function(fn))
    return "\n".join(parts)
