"""Adaptive arithmetic coding (order-0 and order-1 byte models).

The paper's design-space section places arithmetic coding at the
"compresses best / hardest to interpret" extreme: it codes fractions of a
bit per symbol but forces decompression before execution (the authors used
it per-function).  This module implements a classic 32-bit range arithmetic
coder with adaptive frequency models so the design-space benchmark
(`benchmarks/bench_design_space.py`) can place that extreme on the curve.

The coder follows Witten, Neal & Cleary (CACM 1987), the paper's citation.
"""

from __future__ import annotations

from typing import List, Optional

from .bitio import BitReader, BitWriter

__all__ = ["AdaptiveModel", "ArithmeticEncoder", "ArithmeticDecoder",
           "compress", "decompress"]

_CODE_BITS = 32
_TOP = (1 << _CODE_BITS) - 1
_HALF = 1 << (_CODE_BITS - 1)
_QUARTER = 1 << (_CODE_BITS - 2)
_THREE_QUARTERS = _HALF + _QUARTER
_MAX_TOTAL = 1 << 16


class AdaptiveModel:
    """Adaptive frequency model over ``size`` symbols (plus implicit EOF).

    Frequencies start at 1 (Laplace smoothing) and increment on use; when
    the total exceeds ``_MAX_TOTAL`` all counts are halved, which also
    gives the model mild recency weighting.
    """

    def __init__(self, size: int) -> None:
        self.size = size
        self.freq = [1] * size
        self.total = size

    def cumulative(self, symbol: int) -> "tuple[int, int, int]":
        """Return (low, high, total) cumulative counts for ``symbol``."""
        low = sum(self.freq[:symbol])
        return low, low + self.freq[symbol], self.total

    def find(self, scaled: int) -> int:
        """Return the symbol whose cumulative range contains ``scaled``."""
        acc = 0
        for sym, f in enumerate(self.freq):
            acc += f
            if scaled < acc:
                return sym
        raise ValueError("scaled value outside model total")

    def update(self, symbol: int) -> None:
        """Record one occurrence of ``symbol``."""
        self.freq[symbol] += 32
        self.total += 32
        if self.total >= _MAX_TOTAL:
            self.total = 0
            for i, f in enumerate(self.freq):
                self.freq[i] = (f + 1) // 2
                self.total += self.freq[i]


class ArithmeticEncoder:
    """Streaming arithmetic encoder writing to a :class:`BitWriter`."""

    def __init__(self, writer: BitWriter) -> None:
        self.writer = writer
        self.low = 0
        self.high = _TOP
        self.pending = 0

    def _emit(self, bit: int) -> None:
        self.writer.write_bit(bit)
        while self.pending:
            self.writer.write_bit(1 - bit)
            self.pending -= 1

    def encode(self, model: AdaptiveModel, symbol: int) -> None:
        """Encode ``symbol`` under ``model`` and update the model."""
        low_c, high_c, total = model.cumulative(symbol)
        span = self.high - self.low + 1
        self.high = self.low + span * high_c // total - 1
        self.low = self.low + span * low_c // total
        while True:
            if self.high < _HALF:
                self._emit(0)
            elif self.low >= _HALF:
                self._emit(1)
                self.low -= _HALF
                self.high -= _HALF
            elif self.low >= _QUARTER and self.high < _THREE_QUARTERS:
                self.pending += 1
                self.low -= _QUARTER
                self.high -= _QUARTER
            else:
                break
            self.low <<= 1
            self.high = (self.high << 1) | 1
        model.update(symbol)

    def finish(self) -> None:
        """Flush the final interval disambiguation bits."""
        self.pending += 1
        if self.low < _QUARTER:
            self._emit(0)
        else:
            self._emit(1)


class ArithmeticDecoder:
    """Streaming arithmetic decoder reading from a :class:`BitReader`."""

    def __init__(self, reader: BitReader) -> None:
        self.reader = reader
        self.low = 0
        self.high = _TOP
        self.code = 0
        for _ in range(_CODE_BITS):
            self.code = (self.code << 1) | self._read_bit()

    def _read_bit(self) -> int:
        try:
            return self.reader.read_bit()
        except EOFError:
            return 0  # trailing zeros are implicit after the final flush

    def decode(self, model: AdaptiveModel) -> int:
        """Decode one symbol under ``model`` and update the model."""
        span = self.high - self.low + 1
        scaled = ((self.code - self.low + 1) * model.total - 1) // span
        symbol = model.find(scaled)
        low_c, high_c, total = model.cumulative(symbol)
        self.high = self.low + span * high_c // total - 1
        self.low = self.low + span * low_c // total
        while True:
            if self.high < _HALF:
                pass
            elif self.low >= _HALF:
                self.low -= _HALF
                self.high -= _HALF
                self.code -= _HALF
            elif self.low >= _QUARTER and self.high < _THREE_QUARTERS:
                self.low -= _QUARTER
                self.high -= _QUARTER
                self.code -= _QUARTER
            else:
                break
            self.low <<= 1
            self.high = (self.high << 1) | 1
            self.code = (self.code << 1) | self._read_bit()
        model.update(symbol)
        return symbol


def compress(data: bytes, order: int = 0) -> bytes:
    """Arithmetic-code ``data`` with an adaptive byte model.

    ``order=0`` uses a single model; ``order=1`` conditions each byte's
    model on the previous byte (256 models), the analogue of the paper's
    order-1 Markov opcode contexts.
    """
    if order not in (0, 1):
        raise ValueError("only order 0 and 1 models are provided")
    w = BitWriter()
    w.write_bits(len(data), 32)
    enc = ArithmeticEncoder(w)
    if order == 0:
        model = AdaptiveModel(256)
        for b in data:
            enc.encode(model, b)
    else:
        models: List[Optional[AdaptiveModel]] = [None] * 256
        prev = 0
        for b in data:
            m = models[prev]
            if m is None:
                m = models[prev] = AdaptiveModel(256)
            enc.encode(m, b)
            prev = b
    enc.finish()
    return w.getvalue()


def decompress(blob: bytes, order: int = 0) -> bytes:
    """Invert :func:`compress` (the ``order`` must match)."""
    if order not in (0, 1):
        raise ValueError("only order 0 and 1 models are provided")
    r = BitReader(blob)
    n = r.read_bits(32)
    dec = ArithmeticDecoder(r)
    out = bytearray()
    if order == 0:
        model = AdaptiveModel(256)
        for _ in range(n):
            out.append(dec.decode(model))
    else:
        models: List[Optional[AdaptiveModel]] = [None] * 256
        prev = 0
        for _ in range(n):
            m = models[prev]
            if m is None:
                m = models[prev] = AdaptiveModel(256)
            b = dec.decode(m)
            out.append(b)
            prev = b
    return bytes(out)
