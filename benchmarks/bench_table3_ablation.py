"""Table 3 — the abstract-machine ablation ("Reducing RISC abstract
machines").

The paper de-tunes the VM by removing immediate instructions, removing
register-displacement addressing, and removing both, then reports
compressed-size/native-size:

    RISC                          0.54
    minus immediates              0.56
    minus register-displacement   0.57
    minus both                    0.59

"These results suggest that a minimal abstract machine compresses nearly
as well as one with typical ad hoc features."  The shape to reproduce:
the four ratios are close together (within a handful of points) and the
full-featured machine is never materially worse than the de-tuned ones.
"""


from conftest import save_table
from repro.bench import ablation_rows, ablation_table


def test_table3_ablation(benchmark, results_dir):
    rows = benchmark.pedantic(lambda: ablation_rows("lcc"),
                              rounds=1, iterations=1)
    save_table(results_dir, "table3_ablation", ablation_table(rows))

    ratios = {r.variant: r.ratio for r in rows}
    base = ratios["RISC"]
    # Shape claim 1: the paper's ordering — RISC best, each removal makes
    # things (weakly) worse, "minus both" worst.
    assert base <= ratios["minus immediates"] + 1e-9
    assert ratios["minus immediates"] <= ratios["minus both"] + 1e-9
    assert ratios["minus register-displacement"] <= ratios["minus both"] + 1e-9
    # Shape claim 2: the spread stays bounded — compression claws back
    # most of what de-tuning inflates.  The paper sees ~9% (0.54→0.59)
    # against a globally register-allocated back end; our naive codegen
    # leans far harder on sp-relative memory traffic, so every local
    # access pays the de-tuning penalty and the spread widens (see
    # EXPERIMENTS.md).  Require the bounded-magnitude version.
    for variant, ratio in ratios.items():
        assert ratio <= base * 1.6, (variant, ratio, base)
    # Shape claim 3: the full-featured machine compresses well below
    # native size.
    assert base < 0.8
