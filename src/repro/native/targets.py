"""Concrete synthetic native targets.

* :class:`PentiumLike` — variable-length CISC encoding (1-byte opcodes,
  ModRM-style register byte, 1- or 4-byte displacements/immediates).
* :class:`PPCLike` — fixed 4-byte words; wide immediates and macros expand
  to several words (so, e.g., a 32-bit ``li`` costs 8 bytes, as lis/ori
  would on a real PowerPC).
* :class:`SparcLike` — fixed 4-byte words, used as the paper's
  "conventional code" baseline in the wire-format table.

Encodings are deterministic functions of the instruction so JIT output is
reproducible byte-for-byte.
"""

from __future__ import annotations

from typing import List

from ..vm.instr import Instr
from ..vm.isa import Operand
from .base import NativeTarget

__all__ = ["PentiumLike", "PPCLike", "SparcLike"]


def _imm_of(instr: Instr) -> int:
    for kind, value in zip(instr.spec.signature, instr.operands):
        if kind is Operand.IMM:
            return int(value)
    return 0


def _regs_of(instr: Instr) -> List[int]:
    return [
        int(v)
        for k, v in zip(instr.spec.signature, instr.operands)
        if k in (Operand.REG, Operand.FREG)
    ]


def _opbyte(instr: Instr) -> int:
    """A stable 1-byte tag for the mnemonic (content of synthetic bytes)."""
    return sum(instr.name.encode()) & 0xFF


class PentiumLike(NativeTarget):
    """Variable-length CISC model (x86-flavoured sizes)."""

    name = "pentium-like"

    def encode_instr(self, instr: Instr) -> bytes:
        name = instr.name
        regs = _regs_of(instr)
        imm = _imm_of(instr)
        out = bytearray([_opbyte(instr)])
        group = instr.spec.group
        # ModRM-style register byte whenever registers are involved.
        if regs:
            rm = 0
            for r in regs[:2]:
                rm = (rm << 4) | (r & 0xF)
            out.append(rm & 0xFF)
            if len(regs) > 2:
                out.append(regs[2] & 0xF)  # SIB-ish third register
        if group in ("mem", "frame") and Operand.IMM in instr.spec.signature:
            out += _disp(imm)
        elif name == "li":
            out += imm.to_bytes(4, "little", signed=True)
        elif name == "li.d":
            out += b"\0" * 8  # FLD m64 via a constant-pool reference
        elif name == "la":
            out += b"\0\0\0\0"
        elif group in ("alui",):
            out += _disp(imm)
        elif group == "brimm":
            out += _disp(imm) + b"\0\0"  # imm + rel16
        elif group == "branch":
            out += b"\0\0"  # rel16
        elif name in ("jmp", "call"):
            out += b"\0\0\0\0"  # rel32
        elif name in ("enter", "exit"):
            out += _disp(imm)
        elif name == "blkcpy":
            out += _disp(imm) + b"\0\0\0"  # mov ecx / rep movsb sequence
        elif name == "sys":
            out += b"\0\0\0\0"  # call runtime stub
        elif instr.name.endswith(".d") or instr.name.startswith("cvt"):
            out += b"\0"  # x87 escape byte
        return bytes(out)


class PPCLike(NativeTarget):
    """Fixed-width RISC model (PowerPC-601-flavoured expansions)."""

    name = "ppc-like"

    def _words(self, instr: Instr) -> int:
        name = instr.name
        imm = _imm_of(instr)
        group = instr.spec.group
        wide = not -32768 <= imm < 32768
        if name == "li":
            return 2 if wide else 1
        if name == "li.d":
            return 2  # lis/ori address + lfd
        if name in ("la",):
            return 2
        if group in ("mem", "frame") and Operand.IMM in instr.spec.signature:
            return 2 if wide else 1
        if group in ("alui", "brimm"):
            return 2 if wide else 1
        if name == "blkcpy":
            return 6  # counted copy loop
        if name == "sys":
            return 3  # load stub address, mtctr, bctrl
        if name in ("enter", "exit"):
            return 1
        if name == "calli":
            return 2
        return 1

    def encode_instr(self, instr: Instr) -> bytes:
        words = self._words(instr)
        tag = _opbyte(instr)
        regs = _regs_of(instr)
        fill = ((regs[0] << 4) | (regs[1] & 0xF)) & 0xFF if len(regs) > 1 else (
            regs[0] if regs else 0)
        word = bytes([tag, fill, (_imm_of(instr) >> 8) & 0xFF,
                      _imm_of(instr) & 0xFF])
        return word * words


class SparcLike(NativeTarget):
    """Fixed 4-byte words — the conventional-code baseline of Table 1.

    Models a SPARC-class encoding of the same program: one word per VM
    instruction, with the same multi-word expansions a real RISC assembler
    would need (sethi/or pairs for wide immediates, call sequences for
    macros).
    """

    name = "sparc-like"

    def _words(self, instr: Instr) -> int:
        imm = _imm_of(instr)
        name = instr.name
        group = instr.spec.group
        wide = not -4096 <= imm < 4096  # SPARC simm13
        if name == "li":
            return 2 if wide else 1
        if name in ("la", "li.d"):
            return 2
        if group in ("mem", "frame", "alui", "brimm") and wide:
            return 2
        if name == "blkcpy":
            return 5
        if name == "sys":
            return 2
        return 1

    def encode_instr(self, instr: Instr) -> bytes:
        words = self._words(instr)
        tag = _opbyte(instr)
        regs = _regs_of(instr)
        b1 = regs[0] if regs else 0
        b2 = regs[1] if len(regs) > 1 else 0
        word = bytes([tag, (b1 << 4 | b2) & 0xFF,
                      (_imm_of(instr) >> 8) & 0xFF, _imm_of(instr) & 0xFF])
        return word * words


def _disp(imm: int) -> bytes:
    """x86-style displacement: 1 byte if it fits, else 4."""
    if -128 <= imm < 128:
        return imm.to_bytes(1, "little", signed=True)
    return imm.to_bytes(4, "little", signed=True)
