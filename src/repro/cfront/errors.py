"""Diagnostics for the C front end.

All front-end phases raise :class:`CompileError` with a source location;
the driver converts locations to ``file:line:col`` text.  A separate
:class:`Diagnostics` accumulator lets the semantic analyzer report several
independent errors before giving up.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

__all__ = ["Location", "CompileError", "Diagnostics"]


@dataclass(frozen=True)
class Location:
    """A position in a source file (1-based line and column)."""

    filename: str
    line: int
    column: int

    def __str__(self) -> str:
        return f"{self.filename}:{self.line}:{self.column}"


class CompileError(Exception):
    """Any front-end failure: lexical, syntactic, or semantic."""

    def __init__(self, message: str, location: Optional[Location] = None) -> None:
        self.message = message
        self.location = location
        prefix = f"{location}: " if location else ""
        super().__init__(f"{prefix}{message}")


class Diagnostics:
    """Accumulates errors so semantic analysis can report more than one."""

    def __init__(self, limit: int = 20) -> None:
        self.errors: List[CompileError] = []
        self.limit = limit

    def error(self, message: str, location: Optional[Location] = None) -> None:
        """Record an error; raises immediately once ``limit`` is reached."""
        err = CompileError(message, location)
        self.errors.append(err)
        if len(self.errors) >= self.limit:
            raise err

    def check(self) -> None:
        """Raise the first recorded error, if any."""
        if self.errors:
            raise self.errors[0]

    @property
    def ok(self) -> bool:
        """True when no errors have been recorded."""
        return not self.errors
