"""Golden byte-identity tests for the compression kernels and containers.

The fixtures in ``tests/golden/`` were produced by the pre-rewrite
(per-bit, per-symbol) kernels at commit d16ace2.  Every kernel rewrite
must reproduce them bit for bit: the wire (WIR2) and BRISC (BRI2)
containers are long-lived interchange formats, and the paper's size
tables are only comparable if the encodings never drift.  If one of
these tests fails, the change is a format break, not a perf tweak.
"""

import pathlib
import random

import pytest

from repro.brisc.encode import decode_image
from repro.compress import arith, deflate
from repro.compress.huffman import decode_symbols, encode_symbols
from repro.compress.mtf import mtf_decode, mtf_encode
from repro.wire.format import decode_module, encode_module

GOLDEN = pathlib.Path(__file__).parent / "golden"


@pytest.fixture(scope="module")
def kernel_input():
    """The seeded corpus-like byte stream the kernel fixtures were cut from."""
    data = (GOLDEN / "kernel_input.bin").read_bytes()
    # Defend the fixture itself: it is the seeded stream, not arbitrary.
    rng = random.Random(7)
    chunk = bytes(rng.randrange(256) for _ in range(64))
    assert data == b"".join(chunk[: rng.randrange(16, 64)] for _ in range(120))
    return data


class TestKernelGoldens:
    def test_deflate_bytes_unchanged(self, kernel_input):
        blob = deflate.compress(kernel_input)
        assert blob == (GOLDEN / "deflate.bin").read_bytes()
        assert deflate.decompress(blob) == kernel_input

    def test_huffman_bytes_unchanged(self):
        rng = random.Random(3)
        symbols = [min(63, int(rng.expovariate(0.2))) for _ in range(5000)]
        blob = encode_symbols(symbols, 64)
        assert blob == (GOLDEN / "huffman.bin").read_bytes()
        assert decode_symbols(blob) == symbols

    def test_mtf_indices_unchanged(self):
        rng = random.Random(5)
        stream = [rng.choice([4, 8, 12, 16, 20, 24]) for _ in range(5000)]
        indices, novel = mtf_encode(stream)
        assert bytes(bytearray(indices)) == \
            (GOLDEN / "mtf_indices.bin").read_bytes()
        assert novel == [20, 12, 24, 4, 16, 8]
        assert mtf_decode(indices, novel) == stream

    def test_arith_order1_bytes_unchanged(self, kernel_input):
        data = kernel_input[:2000]
        blob = arith.compress(data, order=1)
        assert blob == (GOLDEN / "arith1.bin").read_bytes()
        assert arith.decompress(blob, order=1) == data


class TestContainerGoldens:
    """WIR2/BRI2 images of seeded corpus units must never drift."""

    @pytest.fixture(scope="class")
    def results(self):
        from repro.corpus.suite import suite_source
        from repro.pipeline import Toolchain

        tc = Toolchain()
        return {
            "wc": tc.compile(suite_source("wc"), name="wc"),
            "fib": tc.compile((GOLDEN / "fib.c").read_text(), name="fib"),
        }

    @pytest.mark.parametrize("unit", ["wc", "fib"])
    def test_wire_container_unchanged(self, results, unit):
        golden = (GOLDEN / f"{unit}.wir2").read_bytes()
        assert results[unit].wire_blob == golden

    @pytest.mark.parametrize("unit", ["wc", "fib"])
    def test_brisc_container_unchanged(self, results, unit):
        golden = (GOLDEN / f"{unit}.bri2").read_bytes()
        assert results[unit].brisc.image.blob == golden

    @pytest.mark.parametrize("unit", ["wc", "fib"])
    def test_golden_containers_decode(self, unit):
        module = decode_module((GOLDEN / f"{unit}.wir2").read_bytes())
        assert module.functions
        program = decode_image((GOLDEN / f"{unit}.bri2").read_bytes())
        assert program.functions

    def test_roundtrip_through_reencode(self):
        """Decoding a golden wire blob and re-encoding reproduces it."""
        golden = (GOLDEN / "fib.wir2").read_bytes()
        assert encode_module(decode_module(golden)) == golden
