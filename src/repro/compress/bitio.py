"""Bit-level I/O primitives used by every entropy coder in this package.

The paper's pipelines (Huffman-coded MTF indices, the deflate-like final
stage, and the arithmetic-coding design point) all need to read and write
individual bits.  Bits are packed MSB-first within each byte, which makes
canonical Huffman codes decode by simple left-to-right accumulation.

Both endpoints are *word-buffered*: bits accumulate in a single Python
int and move to/from the byte buffer in whole-byte chunks
(``int.to_bytes``/``int.from_bytes``), so the per-call cost is a couple
of shifts instead of a Python-level loop per bit.  Aligned bulk
``write_bytes``/``read_bytes`` degenerate to plain slicing; unaligned
bulk transfers go through one big-int shift rather than an 8×-per-byte
bit loop.  The bit-for-bit output format is unchanged.

The module also provides the small variable-length integer encodings the
stream containers use for lengths and counts.
"""

from __future__ import annotations

from ..errors import CorruptStreamError, TruncatedStreamError

__all__ = [
    "BitWriter",
    "BitReader",
    "write_uvarint",
    "read_uvarint",
    "take_bytes",
    "uvarint",
]

#: Flush the writer's accumulator once it holds this many bits.  Small
#: enough that every shift stays a few machine words; large enough that
#: ``to_bytes`` amortizes over dozens of calls.
_FLUSH_BITS = 256


class BitWriter:
    """Accumulates bits MSB-first and renders them as ``bytes``.

    >>> w = BitWriter()
    >>> w.write_bits(0b101, 3)
    >>> w.write_bit(1)
    >>> w.getvalue()[0] == 0b1011_0000
    True
    """

    def __init__(self) -> None:
        self._buf = bytearray()  # flushed whole bytes
        self._acc = 0  # bit accumulator, MSB side filled first
        self._nbits = 0  # number of valid bits in _acc

    def _flush(self) -> None:
        """Move every complete byte from the accumulator to the buffer."""
        rem = self._nbits & 7
        nbytes = self._nbits >> 3
        if nbytes:
            self._buf += (self._acc >> rem).to_bytes(nbytes, "big")
            self._acc &= (1 << rem) - 1
            self._nbits = rem

    def write_bit(self, bit: int) -> None:
        """Append a single bit (0 or 1)."""
        self._acc = (self._acc << 1) | (bit & 1)
        self._nbits += 1
        if self._nbits >= _FLUSH_BITS:
            self._flush()

    def write_bits(self, value: int, nbits: int) -> None:
        """Append the low ``nbits`` bits of ``value``, most significant first."""
        # A negative value stays negative under >>, so one shift test
        # catches both out-of-range cases; nbits <= 0 guards the shift.
        if nbits <= 0 or value >> nbits:
            # Slow path; ordering preserves the original error behaviour.
            if nbits < 0:
                raise ValueError("nbits must be non-negative")
            if nbits == 0:
                return
            raise ValueError(f"value {value} does not fit in {nbits} bits")
        self._acc = (self._acc << nbits) | value
        total = self._nbits + nbits
        self._nbits = total
        if total >= _FLUSH_BITS:
            self._flush()

    def write_bytes(self, data: bytes) -> None:
        """Append whole bytes (a plain slice append when bit-aligned)."""
        if self._nbits & 7 == 0:
            self._flush()
            self._buf += data
        else:
            nbits = len(data) * 8
            self._acc = (self._acc << nbits) | int.from_bytes(data, "big")
            self._nbits += nbits
            self._flush()

    def align(self) -> None:
        """Pad with zero bits to the next byte boundary."""
        rem = self._nbits & 7
        if rem:
            self._acc <<= 8 - rem
            self._nbits += 8 - rem
        self._flush()

    @property
    def bit_length(self) -> int:
        """Total number of bits written so far."""
        return len(self._buf) * 8 + self._nbits

    def getvalue(self) -> bytes:
        """Return everything written, zero-padding the final partial byte."""
        self._flush()
        out = bytes(self._buf)
        rem = self._nbits  # < 8 after a flush
        if rem:
            out += bytes([(self._acc << (8 - rem)) & 0xFF])
        return out


class BitReader:
    """Reads bits MSB-first from a ``bytes`` buffer.

    Reading past the end raises
    :class:`~repro.errors.TruncatedStreamError` (an ``EOFError`` subclass);
    entropy decoders treat that as a corrupt-stream condition rather than
    silently yielding zeros.

    Invariant: the low ``_nbits`` bits of ``_acc`` are the next unread
    bits (MSB first); bits above that are stale garbage from already
    consumed reads, masked off lazily — on refill and on extraction —
    rather than after every read.  ``_pos`` is the index of the next byte
    to load.  The Huffman batch decoder borrows this state directly.
    """

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._len = len(data)
        self._pos = 0  # next byte to load into the accumulator
        self._acc = 0
        self._nbits = 0

    def _fill(self, need: int) -> None:
        """Load bytes until at least ``need`` bits are buffered.

        Refills greedily (up to 32 bytes at a time) so a run of small
        reads touches the byte buffer once every ~30 calls instead of on
        nearly every call; the extra buffered bits are invisible to
        callers because every cursor query derives from ``_pos``/``_nbits``.
        """
        take = (need - self._nbits + 7) >> 3
        if take < 32:
            take = 32
        chunk = self._data[self._pos : self._pos + take]
        got = len(chunk)
        if got:
            self._acc = (((self._acc & ((1 << self._nbits) - 1)) << (got * 8))
                         | int.from_bytes(chunk, "big"))
            self._nbits += got * 8
            self._pos += got
        if self._nbits < need:
            raise TruncatedStreamError("bit stream exhausted")

    def read_bit(self) -> int:
        """Read and return a single bit."""
        nbits = self._nbits
        if nbits == 0:
            pos = self._pos
            chunk = self._data[pos : pos + 32]
            if not chunk:
                raise TruncatedStreamError("bit stream exhausted")
            nbits = len(chunk) * 8
            self._acc = int.from_bytes(chunk, "big")
            self._pos = pos + len(chunk)
        nbits -= 1
        self._nbits = nbits
        return (self._acc >> nbits) & 1

    def read_bits(self, nbits: int) -> int:
        """Read ``nbits`` bits, returning them as an unsigned integer."""
        if nbits < 0:
            raise ValueError("nbits must be non-negative")
        have = self._nbits - nbits
        if have < 0:
            self._fill(nbits)
            have = self._nbits - nbits
        self._nbits = have
        return (self._acc >> have) & ((1 << nbits) - 1)

    def align(self) -> None:
        """Discard bits up to the next byte boundary."""
        # bits_consumed ≡ -_nbits (mod 8), so the partial-byte remainder
        # sitting in the accumulator is exactly _nbits % 8 bits; dropping
        # them just lowers _nbits (discarded bits become stale garbage).
        self._nbits -= self._nbits & 7

    def read_bytes(self, n: int) -> bytes:
        """Read ``n`` whole bytes — a slice when byte-aligned, one bulk
        big-int shift otherwise (never a per-bit loop)."""
        if n < 0:
            raise CorruptStreamError(f"negative byte count {n}")
        consumed = self._pos * 8 - self._nbits
        end_bit = consumed + n * 8
        if end_bit > self._len * 8:
            raise TruncatedStreamError("bit stream exhausted")
        rem = consumed & 7
        if rem == 0:
            start = consumed >> 3
            out = self._data[start : start + n]
            self._pos = start + n
            self._acc = 0
            self._nbits = 0
            return out
        first = consumed >> 3
        last = (end_bit + 7) >> 3
        value = int.from_bytes(self._data[first:last], "big")
        value >>= last * 8 - end_bit
        out = (value & ((1 << (n * 8)) - 1)).to_bytes(n, "big")
        # Re-seat the accumulator on the partial byte the read ends in.
        self._pos = (end_bit >> 3) + 1
        self._nbits = 8 - (end_bit & 7)
        self._acc = self._data[end_bit >> 3] & ((1 << self._nbits) - 1)
        return out

    @property
    def bits_consumed(self) -> int:
        """Number of bits consumed so far."""
        return self._pos * 8 - self._nbits

    @property
    def bits_remaining(self) -> int:
        """Unread bits left in the buffer — the cheapest upper bound on how
        many symbols a count field could legitimately promise."""
        return (self._len - self._pos) * 8 + self._nbits

    def at_eof(self) -> bool:
        """True when no unread bits remain."""
        return self._nbits == 0 and self._pos >= self._len


def write_uvarint(out: bytearray, value: int) -> None:
    """Append ``value`` to ``out`` in LEB128 (7 bits per byte, little-endian)."""
    if value < 0:
        raise ValueError("uvarint requires a non-negative value")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def read_uvarint(data: bytes, pos: int) -> "tuple[int, int]":
    """Decode a LEB128 integer from ``data`` at ``pos``.

    Returns ``(value, new_pos)``.
    """
    value = 0
    shift = 0
    while True:
        if pos >= len(data):
            raise TruncatedStreamError("truncated uvarint")
        byte = data[pos]
        pos += 1
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value, pos
        shift += 7
        if shift > 63:
            raise CorruptStreamError("uvarint too long")


def take_bytes(data: bytes, pos: int, n: int, what: str = "field") -> "tuple[bytes, int]":
    """Slice ``n`` bytes at ``pos``, *then* check the slice is complete.

    Python slicing silently truncates past the end of a buffer; every
    length-prefixed read in the decoders goes through this helper so a
    short buffer raises :class:`~repro.errors.TruncatedStreamError` instead
    of yielding a quietly shortened value.  Returns ``(slice, new_pos)``.
    """
    if n < 0:
        raise CorruptStreamError(f"negative length {n} for {what}")
    end = pos + n
    chunk = data[pos:end]
    if len(chunk) != n:
        raise TruncatedStreamError(
            f"{what} needs {n} bytes at offset {pos}, "
            f"only {len(data) - pos} remain")
    return chunk, end


def uvarint(value: int) -> bytes:
    """Return the LEB128 encoding of ``value`` as ``bytes``."""
    out = bytearray()
    write_uvarint(out, value)
    return bytes(out)
