"""Property-based pipeline tests.

Two families:

* random C integer expressions — the compiled VM program must agree with
  a Python evaluation using C semantics (wrap-around, truncating division);
  constants are passed in through variables so sema's constant folder and
  the runtime exercise different paths against the same oracle;
* random IR forests — the wire format must round-trip them exactly.
"""

from hypothesis import given, settings, strategies as st

import repro
from repro.ir import T
from repro.ir.tree import IRFunction, IRModule
from repro.vm import run_program
from repro.wire import decode_module, encode_module


def _s32(v):
    v &= 0xFFFFFFFF
    return v - 0x100000000 if v >= 0x80000000 else v


def _cdiv(a, b):
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


# --------------------------------------------------------------------------
# Random integer expressions
# --------------------------------------------------------------------------

_INT = st.integers(-2**31, 2**31 - 1)


@st.composite
def int_exprs(draw, depth=0):
    """Returns (c_source, python_value, var_bindings)."""
    if depth >= 3 or draw(st.booleans()):
        value = draw(_INT)
        return (None, value)  # leaf: placeholder name assigned later
    op = draw(st.sampled_from(["+", "-", "*", "&", "|", "^", "<<", ">>",
                               "/", "%"]))
    left = draw(int_exprs(depth + 1))
    right = draw(int_exprs(depth + 1))
    return ((op, left, right), None)


def _build(expr, names, bindings):
    """Materialize the expression tree into C source + oracle value."""
    shape, value = expr
    if shape is None:
        name = f"v{len(bindings)}"
        bindings[name] = value
        return name, value
    op, left, right = shape
    lsrc, lval = _build(left, names, bindings)
    rsrc, rval = _build(right, names, bindings)
    if op in ("<<", ">>"):
        rsrc = f"({rsrc} & 31)"
        shift = rval & 31
        if op == "<<":
            return f"({lsrc} << {rsrc})", _s32(lval << shift)
        return f"({lsrc} >> {rsrc})", _s32(lval >> shift)
    if op in ("/", "%"):
        rsrc = f"(({rsrc} & 7) | 1)"  # non-zero, small
        denom = (rval & 7) | 1
        if op == "/":
            return f"({lsrc} / {rsrc})", _s32(_cdiv(lval, denom))
        return f"({lsrc} % {rsrc})", _s32(lval - _cdiv(lval, denom) * denom)
    py = {"+": lval + rval, "-": lval - rval, "*": lval * rval,
          "&": lval & rval, "|": lval | rval, "^": lval ^ rval}[op]
    return f"({lsrc} {op} {rsrc})", _s32(py)


@given(int_exprs())
@settings(max_examples=60, deadline=None)
def test_random_int_expression_agrees_with_oracle(expr):
    bindings = {}
    src, expected = _build(expr, [], bindings)
    decls = "\n".join(f"    int {n} = {v};" for n, v in bindings.items())
    program = repro.compile_c(f"""
        int main(void) {{
        {decls}
            print_int({src});
            return 0;
        }}
    """)
    result = run_program(program, max_steps=1_000_000)
    assert result.output == str(expected)


@given(int_exprs())
@settings(max_examples=20, deadline=None)
def test_folding_and_runtime_agree(expr):
    """The same expression over literals (sema folds it) and over
    variables (the VM computes it) must produce identical values."""
    bindings = {}
    src_vars, expected = _build(expr, [], bindings)
    # Literal version: substitute values textually.  Replace longer names
    # first so "v1" does not clobber "v10"; parenthesize negatives.
    src_lits = src_vars
    for name in sorted(bindings, key=len, reverse=True):
        src_lits = src_lits.replace(name, f"({bindings[name]})")
    decls = "\n".join(f"    int {n} = {v};" for n, v in bindings.items())
    program = repro.compile_c(f"""
        int main(void) {{
        {decls}
            print_int({src_vars});
            putchar(' ');
            print_int({src_lits});
            return 0;
        }}
    """)
    result = run_program(program, max_steps=1_000_000)
    a, b = result.output.split(" ")
    assert a == b == str(expected)


# --------------------------------------------------------------------------
# Random IR forests through the wire format
# --------------------------------------------------------------------------


@st.composite
def int_value_trees(draw, depth=0):
    """Random well-typed int-valued IR trees."""
    if depth >= 3 or draw(st.booleans()):
        kind = draw(st.sampled_from(["cnst", "local", "param"]))
        if kind == "cnst":
            return T("CNSTI", value=draw(st.integers(-2**31, 2**31 - 1)))
        if kind == "local":
            return T("INDIRI", T("ADDRLP", value=draw(
                st.integers(0, 1020)) // 4 * 4))
        return T("INDIRI", T("ADDRFP", value=draw(
            st.sampled_from([0, 4, 8]))))
    name = draw(st.sampled_from(["ADDI", "SUBI", "MULI", "BANDI", "BORI"]))
    return T(name, draw(int_value_trees(depth + 1)),
             draw(int_value_trees(depth + 1)))


@st.composite
def forests(draw):
    trees = []
    n = draw(st.integers(1, 8))
    for i in range(n):
        kind = draw(st.sampled_from(["asgn", "label", "branch"]))
        if kind == "asgn":
            trees.append(T("ASGNI",
                           T("ADDRLP", value=draw(st.integers(0, 255)) * 4),
                           draw(int_value_trees())))
        elif kind == "label":
            trees.append(T("LABELV", value=f"L{i}"))
        else:
            trees.append(T("EQI", draw(int_value_trees()),
                           draw(int_value_trees()), value=f"L{i}"))
            trees.append(T("LABELV", value=f"L{i}"))
    trees.append(T("RETI", draw(int_value_trees())))
    return trees


@given(forests())
@settings(max_examples=40, deadline=None)
def test_wire_roundtrips_random_forests(forest):
    fn = IRFunction("f", forest, frame_size=1024, param_sizes=[4, 4, 4],
                    ret_suffix="I")
    module = IRModule("prop", functions=[fn])
    back = decode_module(encode_module(module))
    from repro.wire import normalize_labels

    norm = normalize_labels(fn)
    assert back.functions[0].forest == norm.forest
    assert back.functions[0].frame_size == 1024
    assert back.functions[0].param_sizes == [4, 4, 4]
