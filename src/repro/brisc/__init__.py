"""BRISC: the interpretable compressed code of the paper.

Public API::

    result = compress(program, k=20)        # -> CompressedProgram
    result.image.size                       # bytes, incl. dictionary+tables
    run = run_image(result.image.blob)      # interpret in place
    decoded = decompress(result.image.blob) # back to a VMProgram
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from typing import Sequence

from ..vm.instr import VMProgram
from .builder import BuildResult, PassStats, build_dictionary
from .encode import BriscImage, decode_image, encode_image
from .interp import BriscInterpreter, run_image
from .markov import MarkovModel
from .pattern import DictPattern, InsnPattern, pattern_of_instr
from .shared import SharedDictionary, build_shared_dictionary
from .slots import SlotProgram, build_slots

__all__ = [
    "BriscImage", "BriscInterpreter", "BuildResult", "CompressedProgram",
    "DictPattern", "InsnPattern", "MarkovModel", "PassStats",
    "SharedDictionary", "SlotProgram", "build_dictionary",
    "build_shared_dictionary", "build_slots", "compress", "decompress",
    "pattern_of_instr", "run_image",
]


@dataclass
class CompressedProgram:
    """Everything the compressor produced, for measurement and execution."""

    image: BriscImage
    build: BuildResult
    model: MarkovModel

    @property
    def size(self) -> int:
        return self.image.size

    @property
    def dictionary_size(self) -> int:
        """Number of dictionary patterns (the paper reports 981 for lcc,
        1232 for gcc-2.6.3)."""
        return self.image.pattern_count

    @property
    def candidates_tested(self) -> int:
        return self.build.candidates_tested


def compress(
    program: VMProgram,
    k: int = 20,
    abundant_memory: bool = False,
    max_passes: int = 40,
    workers: Optional[int] = None,
    warm_start: Optional[Sequence[DictPattern]] = None,
    journal: bool = False,
) -> CompressedProgram:
    """Compress a VM program into BRISC (K best candidates per pass).

    ``workers`` shards the builder's candidate scan over a process pool;
    the compressed image is byte-identical for any worker count.
    ``warm_start`` (a shared corpus dictionary's patterns) admits the
    locally profitable patterns before the first pass; patterns the
    program never uses do not enter the image.  ``journal=True`` records
    a replay journal on ``result.build`` so a later compile of an edited
    program can replay this build (:mod:`repro.brisc.journal`); the
    image bytes are unaffected.
    """
    build = build_dictionary(program, k=k, abundant_memory=abundant_memory,
                             max_passes=max_passes, workers=workers,
                             warm_start=warm_start, journal=journal)
    image, model = encode_image(build.slots, program.globals)
    return CompressedProgram(image=image, build=build, model=model)


def decompress(blob: bytes) -> VMProgram:
    """Decode a BRISC image back to a runnable VM program."""
    return decode_image(blob)
