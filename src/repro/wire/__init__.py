"""The wire format: patternized, MTF+Huffman+LZ split-stream compression."""

from .format import (
    container_index, decode_function, decode_module, decode_range,
    encode_module, encode_module_v3, function_image, stream_breakdown,
    wire_size,
)
from .patternize import normalize_labels, patternize_tree, width_class

__all__ = [
    "container_index", "decode_function", "decode_module", "decode_range",
    "encode_module", "encode_module_v3", "function_image", "normalize_labels",
    "patternize_tree", "stream_breakdown", "width_class", "wire_size",
]
