"""Mobile-code delivery model: the paper's transmission-bottleneck scenario.

"Over a modem, the tree compression algorithm will do better at minimizing
the latency between when a program is requested and when the program begins
performing useful work ... in a local area network, BRISC is a good mobile
program representation choice", and "the delivery time from the network or
disk can mask some or even all of the recompilation time".

This module does that arithmetic explicitly: given a representation's size
and its preparation pipeline (decompress and/or JIT at measured rates), it
computes time-to-first-useful-work over links from 28.8 kbaud modems to
LANs, with optional overlap of download and preparation (streamed
recompilation, which is what masks JIT time).

Links may also be *lossy*: a per-chunk corruption probability models a
noisy modem line, and a :class:`RetryPolicy` (bounded retries with
exponential backoff) turns that loss rate into expected retransmissions,
expected retry time, and an end-to-end delivery probability.  The CRC
framing of the containers (see :mod:`repro.errors`) is what makes this
model honest: a corrupted chunk is *detected* and re-requested rather
than silently decoded.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["Link", "Representation", "RetryPolicy", "DeliveryResult",
           "delivery_time",
           "MODEM_28_8", "ISDN_128K", "DSL_1M", "LAN_10M"]


@dataclass(frozen=True)
class Link:
    """A transmission medium.

    ``corruption_probability`` is the chance any one retransmission unit
    (see :attr:`RetryPolicy.chunk_bytes`) arrives damaged and fails its
    CRC; 0.0 models the original lossless link.
    """

    name: str
    bytes_per_second: float
    latency_seconds: float = 0.0
    corruption_probability: float = 0.0

    def __post_init__(self) -> None:
        if self.bytes_per_second <= 0:
            raise ValueError(
                f"bytes_per_second must be positive, got {self.bytes_per_second}")
        if self.latency_seconds < 0:
            raise ValueError(
                f"latency_seconds must be >= 0, got {self.latency_seconds}")
        if not 0.0 <= self.corruption_probability < 1.0:
            raise ValueError(
                "corruption_probability must be in [0, 1), got "
                f"{self.corruption_probability}")


MODEM_28_8 = Link("28.8k modem", 28_800 / 8, 0.1)
ISDN_128K = Link("128k ISDN", 128_000 / 8, 0.05)
DSL_1M = Link("1M DSL", 1_000_000 / 8, 0.03)
LAN_10M = Link("10M LAN", 10_000_000 / 8, 0.001)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded per-chunk retransmission with exponential backoff.

    A chunk is attempted at most ``1 + max_retries`` times; retry *k*
    (1-based) waits ``backoff_seconds * backoff_factor**(k - 1)`` before
    re-requesting.
    """

    max_retries: int = 3
    backoff_seconds: float = 0.5
    backoff_factor: float = 2.0
    chunk_bytes: int = 1024

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_seconds < 0:
            raise ValueError(
                f"backoff_seconds must be >= 0, got {self.backoff_seconds}")
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}")
        if self.chunk_bytes < 1:
            raise ValueError(f"chunk_bytes must be >= 1, got {self.chunk_bytes}")


@dataclass(frozen=True)
class Representation:
    """A shippable program form and what the client must do with it.

    * ``size_bytes`` — bytes on the wire.
    * ``decompress_rate`` — bytes/sec the client expands (None: no pass).
    * ``jit_rate`` — bytes/sec of *produced* native code (None: no JIT;
      the produced size is ``native_bytes``).
    * ``native_bytes`` — native code size the JIT must produce.
    """

    name: str
    size_bytes: int
    decompress_rate: Optional[float] = None
    jit_rate: Optional[float] = None
    native_bytes: int = 0

    def __post_init__(self) -> None:
        if self.size_bytes < 0:
            raise ValueError(f"size_bytes must be >= 0, got {self.size_bytes}")
        if self.native_bytes < 0:
            raise ValueError(
                f"native_bytes must be >= 0, got {self.native_bytes}")
        if self.decompress_rate is not None and self.decompress_rate <= 0:
            raise ValueError(
                f"decompress_rate must be positive, got {self.decompress_rate}")
        if self.jit_rate is not None and self.jit_rate <= 0:
            raise ValueError(f"jit_rate must be positive, got {self.jit_rate}")


@dataclass
class DeliveryResult:
    """Latency breakdown for one (representation, link) pair.

    The retry fields are neutral (0 retransmissions, probability 1) over a
    lossless link, so existing callers see the original arithmetic.
    """

    representation: str
    link: str
    transfer_seconds: float
    prepare_seconds: float
    total_seconds: float
    overlapped: bool
    expected_retransmissions: float = 0.0
    retry_seconds: float = 0.0
    delivery_probability: float = 1.0


def _retry_accounting(
    rep: Representation, link: Link, policy: RetryPolicy
) -> tuple:
    """(expected retransmissions, expected retry seconds, P[delivered]).

    Per chunk the attempt count follows a geometric distribution truncated
    at ``1 + max_retries`` tries: with per-attempt corruption probability
    *p*, the expected number of attempts consumed is
    ``sum(p**k for k in 0..R) = (1 - p**(R+1)) / (1 - p)`` and the chunk
    survives with probability ``1 - p**(R+1)``.
    """
    p = link.corruption_probability
    if p == 0.0 or rep.size_bytes == 0:
        return 0.0, 0.0, 1.0
    chunks = -(-rep.size_bytes // policy.chunk_bytes)  # ceil division
    attempts_allowed = policy.max_retries + 1
    expected_attempts = (1.0 - p ** attempts_allowed) / (1.0 - p)
    retrans_per_chunk = expected_attempts - 1.0
    # Retry k happens iff the first k attempts all failed (prob p**k) and
    # waits backoff * factor**(k-1) before the chunk goes out again.
    backoff_per_chunk = sum(
        (p ** k) * policy.backoff_seconds * policy.backoff_factor ** (k - 1)
        for k in range(1, policy.max_retries + 1)
    )
    retransmissions = chunks * retrans_per_chunk
    resend_seconds = (retransmissions * policy.chunk_bytes
                      / link.bytes_per_second)
    retry_seconds = resend_seconds + chunks * backoff_per_chunk
    delivery_probability = (1.0 - p ** attempts_allowed) ** chunks
    return retransmissions, retry_seconds, delivery_probability


def delivery_time(
    rep: Representation,
    link: Link,
    overlap: bool = True,
    retry: Optional[RetryPolicy] = None,
) -> DeliveryResult:
    """Time from request until the program can start running.

    With ``overlap`` the client pipelines preparation with the download
    (function-at-a-time decompression / streamed recompilation), so total
    time is ``latency + max(transfer, prepare) + epsilon``; without it the
    phases serialize.  Over a lossy link the expected retransmission and
    backoff time is added to the transfer side of that race (retries
    prolong the download, not the client-side preparation).
    """
    policy = retry if retry is not None else RetryPolicy()
    retransmissions, retry_seconds, delivered = _retry_accounting(
        rep, link, policy)
    transfer = rep.size_bytes / link.bytes_per_second
    prepare = 0.0
    if rep.decompress_rate:
        prepare += rep.size_bytes / rep.decompress_rate
    if rep.jit_rate:
        prepare += rep.native_bytes / rep.jit_rate
    if overlap:
        total = link.latency_seconds + max(transfer + retry_seconds, prepare)
    else:
        total = link.latency_seconds + transfer + retry_seconds + prepare
    return DeliveryResult(
        representation=rep.name,
        link=link.name,
        transfer_seconds=transfer,
        prepare_seconds=prepare,
        total_seconds=total,
        overlapped=overlap,
        expected_retransmissions=retransmissions,
        retry_seconds=retry_seconds,
        delivery_probability=delivered,
    )
