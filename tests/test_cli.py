"""CLI (`python -m repro`) tests."""

import pytest

from repro.__main__ import main

HELLO = """
int sq(int x) { return x * x; }
int main(void) { print_int(sq(7)); putchar('\\n'); return 0; }
"""


@pytest.fixture
def hello_c(tmp_path):
    path = tmp_path / "hello.c"
    path.write_text(HELLO)
    return str(path)


def test_run(hello_c, capsys):
    assert main(["run", hello_c]) == 0
    assert capsys.readouterr().out == "49\n"


def test_dump_ir(hello_c, capsys):
    assert main(["dump-ir", hello_c]) == 0
    out = capsys.readouterr().out
    assert "MULI" in out and "RETI" in out


def test_dump_asm(hello_c, capsys):
    assert main(["dump-asm", hello_c]) == 0
    out = capsys.readouterr().out
    assert "enter sp,sp," in out and "rjr ra" in out


def test_sizes(hello_c, capsys):
    assert main(["sizes", hello_c]) == 0
    out = capsys.readouterr().out
    assert "BRISC code segment" in out
    assert "wire format" in out


def test_wire_output(hello_c, tmp_path, capsys):
    out_path = str(tmp_path / "out.wire")
    assert main(["wire", hello_c, "-o", out_path]) == 0
    blob = open(out_path, "rb").read()
    assert blob[:4] == b"WIR1"


def test_brisc_roundtrip_via_cli(hello_c, tmp_path, capsys):
    image = str(tmp_path / "out.brisc")
    assert main(["brisc", hello_c, "-o", image]) == 0
    capsys.readouterr()
    assert main(["exec-brisc", image]) == 0
    assert capsys.readouterr().out == "49\n"


def test_compile_error_reported(tmp_path, capsys):
    bad = tmp_path / "bad.c"
    bad.write_text("int main(void) { return undeclared; }")
    assert main(["run", str(bad)]) == 1
    assert "error:" in capsys.readouterr().err


def test_run_exit_code_propagates(tmp_path):
    src = tmp_path / "exit3.c"
    src.write_text("int main(void) { return 3; }")
    assert main(["run", str(src)]) == 3
