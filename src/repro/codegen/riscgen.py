"""Code generation: lcc-style tree IR to RISC VM instructions.

A tree-walking generator in lcc's spirit: locals live in the frame, each
forest tree is evaluated with a scratch-register pool (Sethi–Ullman
ordering keeps pressure low), and addressing modes / immediates are folded
when the target :class:`~repro.vm.isa.ISA` variant allows them — the knob
the paper's abstract-machine ablation turns.

Frame layout (stack grows down; all offsets from the callee's ``sp``)::

    sp + 0 .. locals           IR frame (ADDRLP offsets)
    sp + locals .. +4          saved ra
    (padding to 8)
    sp + F - P .. F            incoming parameters (ADDRFP offsets),
                               written by the caller below its own sp

``enter sp,sp,F`` claims the frame; arguments for an outgoing call are
stored at ``sp - total + slot`` immediately before ``call``, which is safe
because argument trees never contain calls (lowering hoists them).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from ..ir.tree import IRFunction, IRModule, Tree
from ..vm.instr import Instr, VMFunction, VMProgram
from ..vm.isa import ISA, REG_RA, REG_SP, SYSCALL_BY_NAME
from .peephole import peephole_function

__all__ = ["CodegenError", "generate_program", "generate_function"]


class CodegenError(Exception):
    """Raised when a tree cannot be translated (e.g. register pressure)."""


def _align(n: int, a: int) -> int:
    return (n + a - 1) // a * a


def _imm32(value: int) -> int:
    """Canonicalize an immediate to signed 32-bit (unsigned constants from
    the front end arrive in 0..2^32-1; the encoding is two's complement)."""
    value &= 0xFFFFFFFF
    return value - 0x100000000 if value >= 0x80000000 else value


class _RegPool:
    """Scratch register pool; integer and double registers separately."""

    def __init__(self, int_count: int = 14, float_count: int = 8) -> None:
        self._free_i = list(range(int_count - 1, -1, -1))  # prefer n0 first
        self._free_f = list(range(float_count - 1, -1, -1))
        self._total_i = int_count
        self._total_f = float_count

    def alloc_i(self) -> int:
        if not self._free_i:
            raise CodegenError("out of integer scratch registers")
        return self._free_i.pop()

    def alloc_f(self) -> int:
        if not self._free_f:
            raise CodegenError("out of double scratch registers")
        return self._free_f.pop()

    def free_i(self, reg: int) -> None:
        self._free_i.append(reg)

    def free_f(self, reg: int) -> None:
        self._free_f.append(reg)

    @property
    def all_free(self) -> bool:
        return (len(self._free_i) == self._total_i
                and len(self._free_f) == self._total_f)


# Value: ("i", reg) for integer/pointer values, ("d", freg) for doubles.
Value = Tuple[str, int]

_ALU3 = {
    "ADDI": "add.i", "ADDU": "add.i", "ADDP": "add.i",
    "SUBI": "sub.i", "SUBU": "sub.i", "SUBP": "sub.i",
    "MULI": "mul.i", "MULU": "mul.i",
    "DIVI": "div.i", "DIVU": "divu.i",
    "MODI": "rem.i", "MODU": "remu.i",
    "BANDI": "and.i", "BANDU": "and.i",
    "BORI": "or.i", "BORU": "or.i",
    "BXORI": "xor.i", "BXORU": "xor.i",
    "LSHI": "shl.i", "LSHU": "shl.i",
    "RSHI": "sra.i", "RSHU": "shr.i",
}
# Immediate forms for commutative/offset-friendly ops.
_ALUI = {
    "ADDI": "addi.i", "ADDU": "addi.i", "ADDP": "addi.i",
    "SUBI": "subi.i", "SUBU": "subi.i", "SUBP": "subi.i",
    "MULI": "muli.i", "MULU": "muli.i",
    "BANDI": "andi.i", "BANDU": "andi.i",
    "BORI": "ori.i", "BORU": "ori.i",
    "BXORI": "xori.i", "BXORU": "xori.i",
    "LSHI": "shli.i", "LSHU": "shli.i",
    "RSHI": "srai.i", "RSHU": "shri.i",
}
_ALU3_D = {"ADDD": "add.d", "SUBD": "sub.d", "MULD": "mul.d", "DIVD": "div.d"}

_BRANCH = {
    "EQI": "beq.i", "NEI": "bne.i", "LTI": "blt.i",
    "LEI": "ble.i", "GTI": "bgt.i", "GEI": "bge.i",
    "EQU": "beq.i", "NEU": "bne.i", "LTU": "bltu.i",
    "LEU": "bleu.i", "GTU": "bgtu.i", "GEU": "bgeu.i",
}
_BRANCH_IMM = {
    "EQI": "beqi.i", "NEI": "bnei.i", "LTI": "blti.i",
    "LEI": "blei.i", "GTI": "bgti.i", "GEI": "bgei.i",
    "EQU": "beqi.i", "NEU": "bnei.i", "LTU": "bltui.i",
    "LEU": "bleui.i", "GTU": "bgtui.i", "GEU": "bgeui.i",
}
_BRANCH_D = {
    "EQD": "beq.d", "NED": "bne.d", "LTD": "blt.d",
    "LED": "ble.d", "GTD": "bgt.d", "GED": "bge.d",
}

_LOADS = {"C": "ld.ib", "S": "ld.ih", "I": "ld.iw", "U": "ld.iw", "P": "ld.iw"}
_LOADS_X = {"C": "ldx.ib", "S": "ldx.ih", "I": "ldx.iw", "U": "ldx.iw",
            "P": "ldx.iw"}
# Zero-extending loads for the CVUCI/CVUSI folds.
_ULOADS = {"C": "ld.iub", "S": "ld.iuh"}
_ULOADS_X = {"C": "ldx.iub", "S": "ldx.iuh"}
_STORES = {"C": "st.ib", "S": "st.ih", "I": "st.iw", "U": "st.iw", "P": "st.iw"}
_STORES_X = {"C": "stx.ib", "S": "stx.ih", "I": "stx.iw", "U": "stx.iw",
             "P": "stx.iw"}

_PASS_THROUGH_CV = {"CVIU", "CVUI", "CVPU", "CVUP", "CVIC", "CVIS"}
_EXTEND_CV = {"CVCI": "sext.b", "CVUCI": "zext.b",
              "CVSI": "sext.h", "CVUSI": "zext.h"}

_ARG_SLOTS = {"ARGI": 4, "ARGU": 4, "ARGP": 4, "ARGD": 8}


class FunctionGenerator:
    """Generates VM code for one IR function."""

    def __init__(self, fn: IRFunction, isa: ISA) -> None:
        self.fn = fn
        self.isa = isa
        self.out = VMFunction(fn.name)
        self.pool = _RegPool()
        locals_size = fn.frame_size
        self.ra_offset = locals_size
        inner = _align(locals_size + 4, 8)
        # Parameter-area size including alignment padding (doubles are
        # 8-aligned), mirroring both the lowering's ADDRFP offsets and the
        # caller's argument-slot layout.
        offset = 0
        for size in fn.param_sizes:
            offset = _align(offset, size)
            offset += size
        self.param_total = offset
        self.frame_total = _align(inner + self.param_total, 8)
        self.param_base = self.frame_total - self.param_total
        self.out.frame_size = self.frame_total
        self.out.param_bytes = self.param_total
        self._epilogue = f"{fn.name}.epilogue"

    # -- emission helpers --------------------------------------------------

    def emit(self, name: str, *operands) -> None:
        self.out.emit(Instr(name, tuple(operands)))

    def _li(self, value: int) -> int:
        reg = self.pool.alloc_i()
        self.emit("li", reg, _imm32(value))
        return reg

    def _addr_in_reg(self, base_reg: int, offset: int, free_base: bool) -> int:
        """Materialize ``base_reg + offset`` into a register."""
        if offset == 0:
            if free_base:
                return base_reg
            dst = self.pool.alloc_i()
            self.emit("mov.i", dst, base_reg)
            return dst
        if self.isa.immediates:
            dst = base_reg if free_base else self.pool.alloc_i()
            self.emit("addi.i", dst, base_reg, offset)
            return dst
        tmp = self._li(offset)
        self.emit("add.i", tmp, base_reg, tmp)
        if free_base:
            self.pool.free_i(base_reg)
        return tmp

    # -- statement-level trees -------------------------------------------

    def gen_root(self, tree: Tree) -> None:
        name = tree.op.name
        if name == "LABELV":
            assert isinstance(tree.value, str)
            self.out.define_label(tree.value)
            return
        if name == "JUMPV":
            self.emit("jmp", tree.value)
            return
        if name.startswith("ASGN"):
            self.gen_store(tree)
            return
        if tree.op.is_branch:
            self.gen_branch(tree)
            return
        if name.startswith("ARG"):
            # gen_root is called per-tree; ARG groups are handled here by
            # peeking is not possible, so ARG trees carry their own slot
            # bookkeeping via _pending_args set up by generate_function.
            raise CodegenError("ARG tree reached gen_root unscheduled")
        if name.startswith("CALL"):
            self.gen_call(tree, want_value=False)
            return
        if name.startswith("RET"):
            self.gen_return(tree)
            return
        raise CodegenError(f"unexpected root tree {name}")

    def gen_args_and_call(self, args: List[Tree], call_parent: Tree) -> None:
        """Generate an ARG… CALL group (call_parent holds the CALL)."""
        # Slot layout mirrors the callee's parameter layout.
        offsets: List[int] = []
        cursor = 0
        for arg in args:
            size = _ARG_SLOTS[arg.op.name]
            cursor = _align(cursor, size)
            offsets.append(cursor)
            cursor += size
        total = cursor
        for arg, off in zip(args, offsets):
            kind, reg = self.gen_value(arg.kids[0])
            target = self._frame_operand(off - total)
            if kind == "d":
                self._store_to(None, "D", target, ("d", reg))
            else:
                self._store_to(None, "I", target, ("i", reg))
        self.gen_root(call_parent)

    def gen_store(self, tree: Tree) -> None:
        name = tree.op.name
        addr, value = tree.kids
        if name == "ASGNB":
            dst_kind, dst = self.gen_value(addr)
            src_kind, src = self.gen_value(value)
            assert isinstance(tree.value, int)
            self.emit("blkcpy", dst, src, tree.value)
            self.pool.free_i(dst)
            self.pool.free_i(src)
            return
        suffix = name[-1]
        val = self.gen_value(value)
        target = self._addressing(addr)
        self._store_to(addr, suffix, target, val)

    def _addressing(self, addr: Tree) -> Tuple[Union[str, int], int]:
        """Resolve an address tree to (base, offset) for a memory access.

        base is "sp" (frame-relative), or an allocated register index.
        When displacement addressing is disabled, offset is folded into the
        register and comes back 0.
        """
        name = addr.op.name
        if name == "ADDRLP":
            assert isinstance(addr.value, int)
            return self._frame_operand(addr.value)
        if name == "ADDRFP":
            assert isinstance(addr.value, int)
            return self._frame_operand(self.param_base + addr.value)
        if name == "ADDRGP":
            reg = self.pool.alloc_i()
            self.emit("la", reg, addr.value)
            return reg, 0
        if name == "ADDP" and addr.kids[1].op.name == "CNSTI" and self.isa.regdisp:
            base_kind, base = self.gen_value(addr.kids[0])
            assert isinstance(addr.kids[1].value, int)
            return base, addr.kids[1].value
        kind, reg = self.gen_value(addr)
        return reg, 0

    def _frame_operand(self, offset: int) -> Tuple[Union[str, int], int]:
        if self.isa.regdisp:
            return "sp", offset
        reg = self._addr_in_reg(REG_SP, offset, free_base=False)
        return reg, 0

    def _store_to(
        self,
        addr_tree: Optional[Tree],
        suffix: str,
        target: Tuple[Union[str, int], int],
        value: Value,
    ) -> None:
        base, offset = target
        kind, reg = value
        base_reg = REG_SP if base == "sp" else base
        if suffix == "D":
            if self.isa.regdisp:
                self.emit("st.d", reg, offset, base_reg)
            else:
                assert offset == 0
                self.emit("stx.d", reg, base_reg)
            self.pool.free_f(reg)
        else:
            if self.isa.regdisp:
                self.emit(_STORES[suffix], reg, offset, base_reg)
            else:
                assert offset == 0
                self.emit(_STORES_X[suffix], reg, base_reg)
            self.pool.free_i(reg)
        if base != "sp":
            self.pool.free_i(base_reg)

    def gen_branch(self, tree: Tree) -> None:
        name = tree.op.name
        label = tree.value
        assert isinstance(label, str)
        if name in _BRANCH_D:
            lk, left = self.gen_value(tree.kids[0])
            rk, right = self.gen_value(tree.kids[1])
            self.emit(_BRANCH_D[name], left, right, label)
            self.pool.free_f(left)
            self.pool.free_f(right)
            return
        lk, left = self.gen_value(tree.kids[0])
        imm = self._imm_of(tree.kids[1])
        if imm is not None and self.isa.immediates:
            self.emit(_BRANCH_IMM[name], left, imm, label)
            self.pool.free_i(left)
            return
        rk, right = self.gen_value(tree.kids[1])
        self.emit(_BRANCH[name], left, right, label)
        self.pool.free_i(left)
        self.pool.free_i(right)

    def gen_call(self, tree: Tree, want_value: bool = True) -> Value:
        """Generate a CALL tree; returns the value holding the result.

        With ``want_value=False`` the result register (n0/f0) is left
        unclaimed — used for calls in statement position.
        """
        target = tree.kids[0]
        suffix = tree.op.name[-1]
        if target.op.name == "ADDRGP" and isinstance(target.value, str):
            sysno = SYSCALL_BY_NAME.get(target.value)
            if sysno is not None:
                self.emit("sys", sysno)
            else:
                self.emit("call", target.value)
        else:
            kind, reg = self.gen_value(target)
            self.emit("calli", reg)
            self.pool.free_i(reg)
        if suffix == "V" or not want_value:
            return ("i", -1)
        if suffix == "D":
            freg = self.pool.alloc_f()
            self.emit("mov.d", freg, 0)
            return ("d", freg)
        reg = self.pool.alloc_i()
        self.emit("mov.i", reg, 0)
        return ("i", reg)

    def gen_return(self, tree: Tree) -> None:
        name = tree.op.name
        if name != "RETV":
            kind, reg = self.gen_value(tree.kids[0])
            if kind == "d":
                if reg != 0:
                    self.emit("mov.d", 0, reg)
                self.pool.free_f(reg)
            else:
                if reg != 0:
                    self.emit("mov.i", 0, reg)
                self.pool.free_i(reg)
        self.emit("jmp", self._epilogue)

    # -- value trees -------------------------------------------------------

    @staticmethod
    def _imm_of(tree: Tree) -> Optional[int]:
        if tree.op.name in ("CNSTC", "CNSTS", "CNSTI", "CNSTU", "CNSTP") \
                and isinstance(tree.value, int):
            return _imm32(tree.value)
        return None

    @staticmethod
    def _needs(tree: Tree) -> int:
        """Sethi–Ullman register need, for evaluation ordering."""
        if not tree.kids:
            return 1
        if len(tree.kids) == 1:
            return FunctionGenerator._needs(tree.kids[0])
        a = FunctionGenerator._needs(tree.kids[0])
        b = FunctionGenerator._needs(tree.kids[1])
        return max(a, b) if a != b else a + 1

    def gen_value(self, tree: Tree) -> Value:
        name = tree.op.name

        # Leaves -----------------------------------------------------------
        if name in ("CNSTC", "CNSTS", "CNSTI", "CNSTU", "CNSTP"):
            assert isinstance(tree.value, int)
            return ("i", self._li(tree.value))
        if name == "CNSTD":
            freg = self.pool.alloc_f()
            self.emit("li.d", freg, float(tree.value))
            return ("d", freg)
        if name == "ADDRGP":
            reg = self.pool.alloc_i()
            self.emit("la", reg, tree.value)
            return ("i", reg)
        if name == "ADDRLP":
            assert isinstance(tree.value, int)
            return ("i", self._addr_in_reg(REG_SP, tree.value, free_base=False))
        if name == "ADDRFP":
            assert isinstance(tree.value, int)
            return ("i", self._addr_in_reg(
                REG_SP, self.param_base + tree.value, free_base=False))

        # Loads (with sign/zero-extension folds) ---------------------------
        if name in _EXTEND_CV and tree.kids[0].op.name.startswith("INDIR"):
            inner = tree.kids[0]
            suffix = inner.op.name[-1]
            signed = name in ("CVCI", "CVSI")
            return self._gen_load(inner.kids[0], suffix, signed)
        if name.startswith("INDIR"):
            suffix = name[-1]
            if suffix == "D":
                return self._gen_load(tree.kids[0], "D", True)
            return self._gen_load(tree.kids[0], suffix, True)

        # Conversions -------------------------------------------------------
        if name in _PASS_THROUGH_CV:
            return self.gen_value(tree.kids[0])
        if name in _EXTEND_CV:
            kind, reg = self.gen_value(tree.kids[0])
            self.emit(_EXTEND_CV[name], reg, reg)
            return ("i", reg)
        if name in ("CVID", "CVUD"):
            kind, reg = self.gen_value(tree.kids[0])
            freg = self.pool.alloc_f()
            self.emit("cvt.id" if name == "CVID" else "cvt.ud", freg, reg)
            self.pool.free_i(reg)
            return ("d", freg)
        if name in ("CVDI", "CVDU"):
            kind, freg = self.gen_value(tree.kids[0])
            reg = self.pool.alloc_i()
            self.emit("cvt.di" if name == "CVDI" else "cvt.du", reg, freg)
            self.pool.free_f(freg)
            return ("i", reg)

        # Unary arithmetic ---------------------------------------------------
        if name in ("NEGI", "BCOMI", "BCOMU"):
            kind, reg = self.gen_value(tree.kids[0])
            self.emit("neg.i" if name == "NEGI" else "not.i", reg, reg)
            return ("i", reg)
        if name == "NEGD":
            kind, freg = self.gen_value(tree.kids[0])
            self.emit("neg.d", freg, freg)
            return ("d", freg)

        # Binary arithmetic --------------------------------------------------
        if name in _ALU3_D:
            lk, left = self.gen_value(tree.kids[0])
            rk, right = self.gen_value(tree.kids[1])
            self.emit(_ALU3_D[name], left, left, right)
            self.pool.free_f(right)
            return ("d", left)
        if name in _ALU3:
            imm = self._imm_of(tree.kids[1])
            if imm is not None and self.isa.immediates and name in _ALUI:
                lk, left = self.gen_value(tree.kids[0])
                self.emit(_ALUI[name], left, left, imm)
                return ("i", left)
            # Evaluate the needier side first (Sethi–Ullman).
            first, second = 0, 1
            if self._needs(tree.kids[1]) > self._needs(tree.kids[0]):
                first, second = 1, 0
            vals: Dict[int, int] = {}
            for idx in (first, second):
                kind, reg = self.gen_value(tree.kids[idx])
                vals[idx] = reg
            self.emit(_ALU3[name], vals[0], vals[0], vals[1])
            self.pool.free_i(vals[1])
            return ("i", vals[0])

        # Calls in value position -------------------------------------------
        if name.startswith("CALL"):
            return self.gen_call(tree)

        raise CodegenError(f"cannot generate value for {name}")

    def _gen_load(self, addr: Tree, suffix: str, signed: bool) -> Value:
        base, offset = self._addressing(addr)
        base_reg = REG_SP if base == "sp" else base
        if suffix == "D":
            freg = self.pool.alloc_f()
            if self.isa.regdisp:
                self.emit("ld.d", freg, offset, base_reg)
            else:
                assert offset == 0
                self.emit("ldx.d", freg, base_reg)
            if base != "sp":
                self.pool.free_i(base_reg)
            return ("d", freg)
        if base == "sp":
            reg = self.pool.alloc_i()
        else:
            reg = base_reg  # reuse the address register for the result
        table = (_LOADS if signed else {**_LOADS, **_ULOADS})
        table_x = (_LOADS_X if signed else {**_LOADS_X, **_ULOADS_X})
        if self.isa.regdisp:
            self.emit(table[suffix], reg, offset, base_reg)
        else:
            assert offset == 0
            self.emit(table_x[suffix], reg, base_reg)
        return ("i", reg)


def generate_function(fn: IRFunction, isa: Optional[ISA] = None,
                      optimize: bool = True) -> VMFunction:
    """Generate VM code for one IR function (peephole-cleaned by default)."""
    isa = isa or ISA()
    gen = FunctionGenerator(fn, isa)
    # Pre-group ARG…CALL sequences so argument slots can be laid out.
    out = gen.out
    forest = fn.forest
    gen.emit("enter", REG_SP, REG_SP, gen.frame_total)
    if isa.regdisp:
        gen.emit("spill.i", REG_RA, gen.ra_offset, REG_SP)
    else:
        # n13 is dead here; going through the pool could hand out n0,
        # which must stay clear of the prologue/epilogue (return value).
        gen.emit("addi.i" if isa.immediates else "li", 13,
                 *( (REG_SP, gen.ra_offset) if isa.immediates
                    else (gen.ra_offset,) ))
        if not isa.immediates:
            gen.emit("add.i", 13, REG_SP, 13)
        gen.emit("stx.iw", REG_RA, 13)
    i = 0
    while i < len(forest):
        tree = forest[i]
        if tree.op.name.startswith("ARG"):
            args = []
            while i < len(forest) and forest[i].op.name.startswith("ARG"):
                args.append(forest[i])
                i += 1
            if i >= len(forest):
                raise CodegenError("ARG trees with no following CALL")
            gen.gen_args_and_call(args, forest[i])
        else:
            gen.gen_root(tree)
        if not gen.pool.all_free:
            raise CodegenError(f"register leak after {tree} in {fn.name}")
        i += 1
    out.define_label(gen._epilogue)
    if isa.regdisp:
        gen.emit("reload.i", REG_RA, gen.ra_offset, REG_SP)
    else:
        gen.emit("addi.i" if isa.immediates else "li", 13,
                 *( (REG_SP, gen.ra_offset) if isa.immediates
                    else (gen.ra_offset,) ))
        if not isa.immediates:
            gen.emit("add.i", 13, REG_SP, 13)
        gen.emit("ldx.iw", REG_RA, 13)
    gen.emit("exit", REG_SP, REG_SP, gen.frame_total)
    gen.emit("rjr", REG_RA)
    if optimize:
        out = peephole_function(out)
    return out


def generate_program(
    module: IRModule, isa: Optional[ISA] = None, entry: str = "main",
    optimize: bool = True,
) -> VMProgram:
    """Generate a linked VM program from an IR module."""
    isa = isa or ISA()
    program = VMProgram(module.name, entry=entry)
    program.globals = list(module.globals)
    for fn in module.functions:
        program.functions.append(generate_function(fn, isa, optimize))
    return program
