"""The lcc-style tree IR operator set.

Operators follow lcc's naming: a base mnemonic plus a one-letter type
suffix — ``I`` int32, ``U`` uint32, ``P`` pointer, ``C`` char, ``S`` short,
``D`` double, ``V`` void, ``B`` block (struct copies).  Examples from the
paper: ``ASGNI``, ``INDIRI``, ``ADDRLP``, ``CNSTC``, ``LEI``, ``ARGI``,
``CALLI``, ``RETI``, ``LABELV``.

Each operator declares its arity and what kind of literal operand it
carries (``none``, ``int``, ``float``, ``sym``, ``label``).  The wire
compressor patternizes exactly those literals out of the trees; the 8/16
bit "fits" flags the paper mentions are computed at wire-encoding time from
the literal's value (see :mod:`repro.wire.patternize`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

__all__ = ["Op", "OPS", "op"]


@dataclass(frozen=True)
class Op:
    """A tree operator: name, arity, and literal kind."""

    name: str
    arity: int
    literal: str  # "none" | "int" | "float" | "sym" | "label"
    opcode: int  # dense id, stable across runs (ordered registration)

    def __str__(self) -> str:
        return self.name

    @property
    def is_branch(self) -> bool:
        """True for compare-and-branch operators (EQ/NE/LT/LE/GT/GE)."""
        return self.name[:2] in ("EQ", "NE", "LT", "LE", "GT", "GE")

    @property
    def type_suffix(self) -> str:
        """The operator's type letter (last character of the name)."""
        return self.name[-1]


OPS: Dict[str, Op] = {}


def _def(name: str, arity: int, literal: str = "none") -> None:
    OPS[name] = Op(name, arity, literal, len(OPS))


# Constants ---------------------------------------------------------------
for _t in "CSIUP":
    _def(f"CNST{_t}", 0, "int")
_def("CNSTD", 0, "float")

# Addresses ---------------------------------------------------------------
_def("ADDRGP", 0, "sym")    # global / function / string label
_def("ADDRFP", 0, "int")    # parameter, literal = byte offset
_def("ADDRLP", 0, "int")    # local, literal = byte offset

# Memory ------------------------------------------------------------------
for _t in "CSIUPD":
    _def(f"INDIR{_t}", 1)
for _t in "CSIUPD":
    _def(f"ASGN{_t}", 2)
_def("ASGNB", 2, "int")     # struct copy, literal = size in bytes

# Conversions -------------------------------------------------------------
for _name in (
    "CVCI",   # sign-extend char -> int
    "CVUCI",  # zero-extend uchar -> int
    "CVSI",   # sign-extend short -> int
    "CVUSI",  # zero-extend ushort -> int
    "CVIC",   # truncate int -> char
    "CVIS",   # truncate int -> short
    "CVIU",   # reinterpret int -> unsigned
    "CVUI",   # reinterpret unsigned -> int
    "CVID",   # int -> double
    "CVDI",   # double -> int (truncate)
    "CVUD",   # unsigned -> double
    "CVDU",   # double -> unsigned
    "CVPU",   # pointer -> unsigned
    "CVUP",   # unsigned -> pointer
):
    _def(_name, 1)

# Arithmetic --------------------------------------------------------------
for _t in "IUD":
    _def(f"ADD{_t}", 2)
    _def(f"SUB{_t}", 2)
    _def(f"MUL{_t}", 2)
    _def(f"DIV{_t}", 2)
_def("ADDP", 2)             # pointer + int
_def("SUBP", 2)             # pointer - int
for _t in "IU":
    _def(f"MOD{_t}", 2)
    _def(f"LSH{_t}", 2)
    _def(f"RSH{_t}", 2)
for _t in "ID":
    _def(f"NEG{_t}", 1)
for _t in "IU":
    _def(f"BAND{_t}", 2)
    _def(f"BOR{_t}", 2)
    _def(f"BXOR{_t}", 2)
    _def(f"BCOM{_t}", 1)

# Compare-and-branch ------------------------------------------------------
for _cmp in ("EQ", "NE", "LT", "LE", "GT", "GE"):
    for _t in "IUD":
        _def(f"{_cmp}{_t}", 2, "label")

# Control flow ------------------------------------------------------------
_def("LABELV", 0, "label")
_def("JUMPV", 0, "label")

# Calls -------------------------------------------------------------------
for _t in "IUPD":
    _def(f"ARG{_t}", 1)
for _t in "IUPDV":
    _def(f"CALL{_t}", 1)
for _t in "IUPD":
    _def(f"RET{_t}", 1)
_def("RETV", 0)


def op(name: str) -> Op:
    """Look up an operator by name, raising KeyError with context."""
    try:
        return OPS[name]
    except KeyError:
        raise KeyError(f"unknown IR operator {name!r}") from None
