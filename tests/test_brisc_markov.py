"""Markov model tests, including context splitting.

"If more than 256 instructions can follow I, the compressor splits I into
two instruction patterns."  Real corpus inputs rarely trigger this, so the
split path is exercised with a synthetic slot program engineered to give
one pattern more than 255 distinct successors.
"""


from repro.brisc.markov import CTX_BB, CTX_ENTRY, build_markov
from repro.brisc.pattern import DictPattern, pattern_of_instr
from repro.brisc.slots import Slot, SlotFunction, SlotProgram
from repro.vm.instr import Instr


def _slot(instr, block_start=False):
    return Slot(insns=(instr,),
                pattern=DictPattern((pattern_of_instr(instr),)),
                is_block_start=block_start)


def _make_program(slots):
    fn = SlotFunction("f", slots=slots)
    fn.slots[0].is_block_start = True
    return SlotProgram("t", functions=[fn])


class TestBasics:
    def test_single_function_contexts(self):
        slots = [
            _slot(Instr("li", (0, 1))),
            _slot(Instr("mov.i", (1, 0))),
            _slot(Instr("hlt", ())),
        ]
        model, fn_ids = build_markov(_make_program(slots))
        assert CTX_ENTRY in model.tables
        # mov follows li, hlt follows mov.
        li_id = fn_ids[0][0]
        mov_id = fn_ids[0][1]
        assert model.tables[li_id] == [mov_id]

    def test_block_start_uses_bb_context(self):
        slots = [
            _slot(Instr("li", (0, 1))),
            _slot(Instr("mov.i", (1, 0)), block_start=True),
            _slot(Instr("hlt", ())),
        ]
        model, fn_ids = build_markov(_make_program(slots))
        li_id = fn_ids[0][0]
        mov_id = fn_ids[0][1]
        assert CTX_BB in model.tables
        assert mov_id in model.tables[CTX_BB]
        # li's own successor table must NOT contain mov (the bb context
        # absorbed the transition).
        assert mov_id not in model.tables.get(li_id, [])

    def test_no_splits_on_small_input(self):
        slots = [_slot(Instr("li", (0, i))) for i in range(10)]
        slots.append(_slot(Instr("hlt", ())))
        model, _ = build_markov(_make_program(slots))
        assert model.splits == 0


class TestSplitting:
    def _overflow_program(self, successors=300):
        """One 'hub' pattern followed by `successors` distinct patterns."""
        hub = Instr("mov.i", (0, 0))
        slots = []
        for i in range(successors):
            slots.append(_slot(hub))
            # Distinct successor: li with a distinct large immediate burned
            # into a fully-specialized pattern, making each unique.
            target = Instr("li", (1, 1000 + i))
            p = pattern_of_instr(target)
            for _ in range(2):
                p = p.specializations(target)[0]
            slots.append(Slot(insns=(target,), pattern=DictPattern((p,))))
        slots.append(_slot(Instr("hlt", ())))
        return _make_program(slots)

    def test_overflowing_context_is_split(self):
        program = self._overflow_program(300)
        model, fn_ids = build_markov(program)
        assert model.splits >= 1
        # Every pattern context now fits the byte limit.
        for ctx, table in model.tables.items():
            if ctx >= 0:
                assert len(table) <= 255

    def test_split_preserves_pattern_semantics(self):
        program = self._overflow_program(300)
        model, fn_ids = build_markov(program)
        # The clone points at the same DictPattern object contents.
        ids = fn_ids[0]
        hub_ids = {ids[i] for i in range(0, len(ids) - 1, 2)}
        assert len(hub_ids) >= 2  # original + clone(s) in use
        patterns = {model.patterns[i] for i in hub_ids}
        assert len(patterns) == 1  # same semantics

    def test_under_limit_not_split(self):
        program = self._overflow_program(200)
        model, _ = build_markov(program)
        assert model.splits == 0


class TestSerializationCost:
    def test_serialized_size_counts_every_entry(self):
        slots = [
            _slot(Instr("li", (0, 1))),
            _slot(Instr("mov.i", (1, 0))),
            _slot(Instr("hlt", ())),
        ]
        model, _ = build_markov(_make_program(slots))
        assert model.serialized_size() >= sum(
            2 * len(t) for t in model.tables.values())


class TestPatternIds:
    def _program(self):
        slots = [
            _slot(Instr("li", (0, 1))),
            _slot(Instr("mov.i", (1, 0))),
            _slot(Instr("li", (0, 1))),
            _slot(Instr("hlt", ())),
        ]
        return _make_program(slots)

    def test_pattern_id_matches_build_assignment(self):
        program = self._program()
        model, fn_ids = build_markov(program)
        for fi, fn in enumerate(program.functions):
            for i, slot in enumerate(fn.slots):
                assert model.pattern_id(slot.pattern) == fn_ids[fi][i]

    def test_pattern_id_unknown_pattern_raises(self):
        model, _ = build_markov(self._program())
        insn = Instr("mov.i", (3, 2))
        burned = pattern_of_instr(insn).specializations(insn)[0]
        unseen = DictPattern((burned,))
        try:
            model.pattern_id(unseen)
        except KeyError:
            pass
        else:
            raise AssertionError("expected KeyError for unseen pattern")

    def test_split_clone_maps_to_original_id(self):
        """A split clone aliases its original pattern, so pattern_id keeps
        returning the canonical (pre-split) id."""
        hub = Instr("mov.i", (0, 0))
        slots = []
        for i in range(300):
            slots.append(_slot(hub))
            target = Instr("li", (1, 1000 + i))
            p = pattern_of_instr(target)
            for _ in range(2):
                p = p.specializations(target)[0]
            slots.append(Slot(insns=(target,), pattern=DictPattern((p,))))
        slots.append(_slot(Instr("hlt", ())))
        program = _make_program(slots)
        model, fn_ids = build_markov(program)
        assert model.splits >= 1
        hub_pattern = program.functions[0].slots[0].pattern
        canonical = model.pattern_id(hub_pattern)
        # The clone id appears in the relabelled stream but pattern_id
        # still resolves the pattern to its first-use id.
        assert canonical == min(
            fn_ids[0][i] for i in range(0, len(fn_ids[0]) - 1, 2)
        )


class TestIndexOf:
    def test_matches_list_index_semantics(self):
        """Regression for the reverse-map rewrite: index_of must agree
        with the old O(n) ``list.index`` scan on every (ctx, pid)."""
        slots = [_slot(Instr("li", (0, i))) for i in range(10)]
        slots.append(_slot(Instr("hlt", ())))
        model, _ = build_markov(_make_program(slots))
        all_pids = range(len(model.patterns) + 2)  # includes absent ids
        for ctx, table in model.tables.items():
            for pid in all_pids:
                expected = table.index(pid) if pid in table else None
                assert model.index_of(ctx, pid) == expected

    def test_unknown_context_is_none(self):
        model, _ = build_markov(_make_program(
            [_slot(Instr("hlt", ()))]))
        assert model.index_of(12345, 0) is None

    def test_reverse_map_tracks_table_growth(self):
        """Mutating a table in place (or replacing it) must not serve a
        stale reverse map."""
        slots = [
            _slot(Instr("li", (0, 1))),
            _slot(Instr("mov.i", (1, 0))),
            _slot(Instr("hlt", ())),
        ]
        model, _ = build_markov(_make_program(slots))
        ctx = CTX_ENTRY
        table = model.tables[ctx]
        probe = len(model.patterns) + 7
        assert model.index_of(ctx, probe) is None  # primes the cache
        table.append(probe)
        assert model.index_of(ctx, probe) == len(table) - 1
        model.tables[ctx] = [probe]
        assert model.index_of(ctx, probe) == 0
