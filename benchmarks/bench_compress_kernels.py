"""Micro-benchmarks of the compression substrate kernels.

Not a paper table — these track the throughput of the from-scratch
primitives (bit I/O, LZ77, Huffman, MTF, deflate, arithmetic coding) that
every pipeline stage rests on, so regressions in the substrate are
visible.

Each case records the payload size it processes; a session fixture turns
the measured means into a MB/s column and writes
``benchmarks/results/compress_kernels.txt`` next to the paper tables,
with the seed-commit throughput (measured at d16ace2, before the
table-driven kernel rewrite) alongside for the speedup column.
"""

import random

import pytest

from conftest import save_table
from repro.bench import render_table
from repro.compress import arith, deflate
from repro.compress.bitio import BitReader, BitWriter
from repro.compress.huffman import decode_symbols, encode_symbols
from repro.compress.lz77 import detokenize, tokenize
from repro.compress.mtf import MoveToFront, mtf_decode, mtf_encode

#: MB/s measured for each case at the seed commit (d16ace2), i.e. with the
#: per-bit/per-symbol kernels, on the same host that wrote the results
#: table.  (Symbol-stream cases count items rather than bytes; the ratio
#: column is what matters.)
SEED_MBS = {
    "bitio_write_bits": 4.148,
    "bitio_read_bits": 1.074,
    "bitio_bulk_unaligned": 0.710,
    "lz77_tokenize": 0.624,
    "lz77_detokenize": 13.880,
    "huffman_encode": 2.168,
    "huffman_decode": 0.836,
    "huffman_roundtrip": 0.622,
    "mtf_encode": 1.150,
    "mtf_decode": 5.009,
    "mtf_roundtrip": 1.468,
    "mtf_fixed_alphabet": 1.081,
    "deflate_compress": 0.715,
    "deflate_decompress": 4.788,
    "arith_order1": 0.082,
}


def _mbs(nbytes: int, seconds: float) -> float:
    return nbytes / seconds / 1e6


@pytest.fixture(scope="module")
def code_like_data():
    rng = random.Random(7)
    chunk = bytes(rng.randrange(256) for _ in range(64))
    return b"".join(
        chunk[: rng.randrange(16, 64)] for _ in range(300)
    )


# ---------------------------------------------------------------------------
# bitio
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def bit_pairs():
    rng = random.Random(11)
    return [(rng.randrange(1 << 11), 11) for _ in range(40_000)]


def test_bitio_write_bits(benchmark, bit_pairs):
    benchmark.extra_info["bytes"] = len(bit_pairs) * 11 // 8

    def write():
        w = BitWriter()
        wb = w.write_bits
        for value, nbits in bit_pairs:
            wb(value, nbits)
        return w.getvalue()

    blob = benchmark(write)
    assert len(blob) == (len(bit_pairs) * 11 + 7) // 8


def test_bitio_read_bits(benchmark, bit_pairs):
    w = BitWriter()
    for value, nbits in bit_pairs:
        w.write_bits(value, nbits)
    blob = w.getvalue()
    benchmark.extra_info["bytes"] = len(blob)

    def read():
        r = BitReader(blob)
        rb = r.read_bits
        return [rb(11) for _ in range(len(bit_pairs))]

    out = benchmark(read)
    assert out == [v for v, _ in bit_pairs]


def test_bitio_bulk_unaligned(benchmark):
    """write_bytes/read_bytes across a bit boundary (the container hot
    path when a bit header precedes a byte payload)."""
    payload = bytes(range(256)) * 256  # 64 KiB
    benchmark.extra_info["bytes"] = len(payload)

    def roundtrip():
        w = BitWriter()
        w.write_bits(0b101, 3)
        w.write_bytes(payload)
        r = BitReader(w.getvalue())
        assert r.read_bits(3) == 0b101
        return r.read_bytes(len(payload))

    assert benchmark(roundtrip) == payload


# ---------------------------------------------------------------------------
# LZ77
# ---------------------------------------------------------------------------


def test_lz77_tokenize(benchmark, code_like_data):
    benchmark.extra_info["bytes"] = len(code_like_data)
    tokens = benchmark(lambda: tokenize(code_like_data))
    assert detokenize(tokens) == code_like_data


def test_lz77_detokenize(benchmark, code_like_data):
    tokens = tokenize(code_like_data)
    benchmark.extra_info["bytes"] = len(code_like_data)
    out = benchmark(lambda: detokenize(tokens))
    assert out == code_like_data


# ---------------------------------------------------------------------------
# Huffman
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def huffman_symbols():
    rng = random.Random(3)
    return [min(63, int(rng.expovariate(0.2))) for _ in range(20_000)]


def test_huffman_encode(benchmark, huffman_symbols):
    benchmark.extra_info["bytes"] = len(huffman_symbols)
    blob = benchmark(lambda: encode_symbols(huffman_symbols, 64))
    assert decode_symbols(blob) == huffman_symbols


def test_huffman_decode(benchmark, huffman_symbols):
    blob = encode_symbols(huffman_symbols, 64)
    benchmark.extra_info["bytes"] = len(huffman_symbols)
    out = benchmark(lambda: decode_symbols(blob))
    assert out == huffman_symbols


def test_huffman_roundtrip(benchmark, huffman_symbols):
    benchmark.extra_info["bytes"] = len(huffman_symbols)

    def roundtrip():
        blob = encode_symbols(huffman_symbols, 64)
        return decode_symbols(blob)

    out = benchmark(roundtrip)
    assert out == huffman_symbols


# ---------------------------------------------------------------------------
# MTF
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def mtf_stream():
    rng = random.Random(5)
    return [rng.choice([4, 8, 12, 16, 20, 24]) for _ in range(20_000)]


def test_mtf_encode(benchmark, mtf_stream):
    benchmark.extra_info["bytes"] = len(mtf_stream)
    indices, novel = benchmark(lambda: mtf_encode(mtf_stream))
    assert mtf_decode(indices, novel) == mtf_stream


def test_mtf_decode(benchmark, mtf_stream):
    indices, novel = mtf_encode(mtf_stream)
    benchmark.extra_info["bytes"] = len(mtf_stream)
    out = benchmark(lambda: mtf_decode(indices, novel))
    assert out == mtf_stream


def test_mtf_roundtrip(benchmark, mtf_stream):
    benchmark.extra_info["bytes"] = len(mtf_stream)

    def roundtrip():
        indices, novel = mtf_encode(mtf_stream)
        return mtf_decode(indices, novel)

    assert benchmark(roundtrip) == mtf_stream


def test_mtf_fixed_alphabet(benchmark, code_like_data):
    """The classic 0-based transform over the byte alphabet."""
    coder = MoveToFront(256)
    benchmark.extra_info["bytes"] = len(code_like_data)

    def roundtrip():
        return coder.decode(coder.encode(code_like_data))

    assert bytes(benchmark(roundtrip)) == code_like_data


# ---------------------------------------------------------------------------
# deflate + arithmetic coding (whole-container kernels)
# ---------------------------------------------------------------------------


def test_deflate_compress(benchmark, code_like_data):
    benchmark.extra_info["bytes"] = len(code_like_data)
    blob = benchmark(lambda: deflate.compress(code_like_data))
    assert deflate.decompress(blob) == code_like_data


def test_deflate_decompress(benchmark, code_like_data):
    blob = deflate.compress(code_like_data)
    benchmark.extra_info["bytes"] = len(code_like_data)
    out = benchmark(lambda: deflate.decompress(blob))
    assert out == code_like_data


def test_arith_order1(benchmark):
    data = b"the quick brown fox " * 100
    benchmark.extra_info["bytes"] = len(data)

    def roundtrip():
        blob = arith.compress(data, order=1)
        return arith.decompress(blob, order=1)

    assert benchmark.pedantic(roundtrip, rounds=1, iterations=1) == data


def test_arith_order0_batch_matches_streaming(benchmark):
    """The batch kernel's bitstream must stay bit-identical to the
    streaming coder (the property sweep lives in tests/test_arith.py;
    this keeps the identity inside the kernel-bench smoke gate)."""
    from repro.compress.arith import AdaptiveModel, ArithmeticEncoder
    from repro.compress.bitio import BitWriter

    data = b"the quick brown fox " * 100
    benchmark.extra_info["bytes"] = len(data)
    blob = benchmark.pedantic(lambda: arith.compress(data),
                              rounds=1, iterations=1)
    assert arith.decompress(blob) == data

    writer = BitWriter()
    writer.write_bits(len(data), 32)
    encoder = ArithmeticEncoder(writer)
    model = AdaptiveModel(256)
    for b in data:
        encoder.encode(model, b)
    encoder.finish()
    assert blob == writer.getvalue()


# ---------------------------------------------------------------------------
# results table
# ---------------------------------------------------------------------------

_AGGREGATE_KERNELS = ("bitio", "lz77", "huffman", "mtf")


@pytest.fixture(scope="session", autouse=True)
def kernel_throughput_table(request, results_dir):
    """Persist a MB/s before/after table for every case that ran.

    The "before" column is the seed-commit measurement (:data:`SEED_MBS`);
    the aggregate row is the ratio of summed seed time to summed current
    time over the bitio/LZ77/Huffman/MTF kernels — the acceptance metric
    for the table-driven rewrite.
    """
    yield
    session = getattr(request.config, "_benchmarksession", None)
    if session is None or not session.benchmarks:
        return  # --benchmark-disable smoke runs have nothing to report
    rows = []
    agg_before = agg_after = 0.0
    agg_complete = True
    for bench in session.benchmarks:
        nbytes = (bench.extra_info or {}).get("bytes")
        mean = getattr(getattr(bench, "stats", None), "mean", None)
        if not nbytes or not mean:
            continue
        name = bench.name.replace("test_", "", 1)
        after = _mbs(nbytes, mean)
        before = SEED_MBS.get(name)
        kernel = name.split("_")[0]
        if kernel in _AGGREGATE_KERNELS:
            if before:
                agg_before += nbytes / (before * 1e6)
                agg_after += mean
            else:
                agg_complete = False
        rows.append([
            name,
            str(nbytes),
            f"{before:10.2f}" if before else "-",
            f"{after:10.2f}",
            f"{after / before:7.1f}x" if before else "-",
        ])
    if not rows:
        return
    text = render_table(
        ["kernel case", "payload", "seed MB/s", "MB/s", "speedup"], rows)
    if agg_before and agg_complete:
        text += (f"\n\naggregate ({'/'.join(_AGGREGATE_KERNELS)}): "
                 f"{agg_before / agg_after:.1f}x throughput vs seed "
                 f"(summed kernel time {agg_before:.3f}s -> "
                 f"{agg_after:.3f}s per round)")
    save_table(results_dir, "compress_kernels", text)
