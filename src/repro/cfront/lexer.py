"""Lexer for the C subset.

Handles identifiers/keywords, decimal/octal/hex integer literals with U/L
suffixes, floating literals, character and string literals with the usual
escape sequences, both comment styles, and all multi-character operators.
There is no preprocessor: the corpus is written without macros (enums and
``const`` cover the common cases).
"""

from __future__ import annotations

from typing import List

from .errors import CompileError, Location
from .tokens import KEYWORDS, PUNCTUATORS, Token, TokenKind

__all__ = ["Lexer", "tokenize"]

_ESCAPES = {
    "n": 10, "t": 9, "r": 13, "0": 0, "\\": 92, "'": 39, '"': 34,
    "a": 7, "b": 8, "f": 12, "v": 11,
}


class Lexer:
    """Single-pass scanner producing a list of :class:`Token`."""

    def __init__(self, text: str, filename: str = "<input>") -> None:
        self.text = text
        self.filename = filename
        self.pos = 0
        self.line = 1
        self.col = 1

    # -- low-level helpers -------------------------------------------------

    def _loc(self) -> Location:
        return Location(self.filename, self.line, self.col)

    def _peek(self, offset: int = 0) -> str:
        i = self.pos + offset
        return self.text[i] if i < len(self.text) else ""

    def _advance(self, n: int = 1) -> None:
        for _ in range(n):
            if self.pos < len(self.text):
                if self.text[self.pos] == "\n":
                    self.line += 1
                    self.col = 1
                else:
                    self.col += 1
                self.pos += 1

    def _error(self, message: str) -> CompileError:
        return CompileError(message, self._loc())

    # -- scanning ----------------------------------------------------------

    def tokens(self) -> List[Token]:
        """Scan the whole input, ending with an EOF token."""
        out: List[Token] = []
        while True:
            self._skip_trivia()
            if self.pos >= len(self.text):
                out.append(Token(TokenKind.EOF, "", self._loc()))
                return out
            out.append(self._next_token())

    def _skip_trivia(self) -> None:
        while self.pos < len(self.text):
            ch = self.text[self.pos]
            if ch in " \t\r\n":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while self.pos < len(self.text) and self.text[self.pos] != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                start = self._loc()
                self._advance(2)
                while self.pos < len(self.text):
                    if self.text[self.pos] == "*" and self._peek(1) == "/":
                        self._advance(2)
                        break
                    self._advance()
                else:
                    raise CompileError("unterminated block comment", start)
            else:
                return

    def _next_token(self) -> Token:
        loc = self._loc()
        ch = self.text[self.pos]
        if ch.isalpha() or ch == "_":
            return self._identifier(loc)
        if ch.isdigit() or (ch == "." and self._peek(1).isdigit()):
            return self._number(loc)
        if ch == "'":
            return self._char_literal(loc)
        if ch == '"':
            return self._string_literal(loc)
        for text, kind in PUNCTUATORS:
            if self.text.startswith(text, self.pos):
                self._advance(len(text))
                return Token(kind, text, loc)
        raise self._error(f"unexpected character {ch!r}")

    def _identifier(self, loc: Location) -> Token:
        start = self.pos
        while self.pos < len(self.text) and (
            self.text[self.pos].isalnum() or self.text[self.pos] == "_"
        ):
            self._advance()
        text = self.text[start : self.pos]
        kind = KEYWORDS.get(text)
        if kind is not None:
            return Token(kind, text, loc)
        return Token(TokenKind.IDENT, text, loc, value=text)

    def _number(self, loc: Location) -> Token:
        start = self.pos
        text = self.text
        is_float = False
        if text.startswith(("0x", "0X"), self.pos):
            self._advance(2)
            ch = self._peek()
            if not ch or ch not in "0123456789abcdefABCDEF":
                raise self._error("hexadecimal literal needs digits")
            while self._peek() and self._peek() in "0123456789abcdefABCDEF":
                self._advance()
            spelled = text[start : self.pos]
            value = int(spelled, 16)
        else:
            while self._peek().isdigit():
                self._advance()
            if self._peek() == "." and self._peek(1) != ".":
                is_float = True
                self._advance()
                while self._peek().isdigit():
                    self._advance()
            if self._peek() and self._peek() in "eE" and (
                self._peek(1).isdigit()
                or (self._peek(1) in "+-" and self._peek(2).isdigit())
            ):
                is_float = True
                self._advance()
                if self._peek() and self._peek() in "+-":
                    self._advance()
                while self._peek().isdigit():
                    self._advance()
            spelled = text[start : self.pos]
            if is_float:
                value = float(spelled)
            elif spelled.startswith("0") and len(spelled) > 1:
                try:
                    value = int(spelled, 8)
                except ValueError:
                    raise self._error(f"invalid octal literal {spelled!r}") from None
            else:
                value = int(spelled, 10)
        # Suffixes: U/L in any order (float: F/L).  Suffixes only affect
        # signedness/width decisions in sema; the lexer records spelling.
        suffix_start = self.pos
        while self._peek() and self._peek() in "uUlLfF":
            self._advance()
        suffix = text[suffix_start : self.pos].lower()
        full = text[start : self.pos]
        if is_float or "f" in suffix and not full.lower().startswith("0x"):
            if not is_float and "f" in suffix:
                value = float(spelled)
            return Token(TokenKind.FLOAT_LIT, full, loc, value=float(value))
        return Token(TokenKind.INT_LIT, full, loc, value=int(value))

    def _escape(self) -> int:
        """Decode the body of an escape sequence (cursor past the backslash)."""
        ch = self._peek()
        if ch == "x":
            self._advance()
            digits = ""
            while self._peek() and self._peek() in "0123456789abcdefABCDEF":
                digits += self._peek()
                self._advance()
            if not digits:
                raise self._error("\\x needs hex digits")
            return int(digits, 16) & 0xFF
        if ch.isdigit():
            digits = ""
            while self._peek().isdigit() and len(digits) < 3:
                digits += self._peek()
                self._advance()
            return int(digits, 8) & 0xFF
        if ch in _ESCAPES:
            self._advance()
            return _ESCAPES[ch]
        raise self._error(f"unknown escape sequence \\{ch}")

    def _char_literal(self, loc: Location) -> Token:
        self._advance()  # opening quote
        if self._peek() == "\\":
            self._advance()
            value = self._escape()
        elif self._peek() in ("", "\n"):
            raise self._error("unterminated character literal")
        else:
            value = ord(self._peek())
            self._advance()
        if self._peek() != "'":
            raise self._error("character literal must hold exactly one character")
        self._advance()
        return Token(TokenKind.CHAR_LIT, self.text[loc.column - 1 :][:0], loc, value=value)

    def _string_literal(self, loc: Location) -> Token:
        chars: List[int] = []
        # Adjacent string literals concatenate, as in C.
        while self._peek() == '"':
            self._advance()
            while True:
                ch = self._peek()
                if ch in ("", "\n"):
                    raise self._error("unterminated string literal")
                if ch == '"':
                    self._advance()
                    break
                if ch == "\\":
                    self._advance()
                    chars.append(self._escape())
                else:
                    chars.append(ord(ch))
                    self._advance()
            self._skip_trivia()
        value = "".join(chr(c) for c in chars)
        return Token(TokenKind.STRING_LIT, value, loc, value=value)


def tokenize(text: str, filename: str = "<input>") -> List[Token]:
    """Tokenize ``text``; convenience wrapper over :class:`Lexer`."""
    return Lexer(text, filename).tokens()
