"""The resilient asyncio front end over the compression pipeline.

One :class:`CompressionService` owns one shared
:class:`~repro.pipeline.Toolchain` (its tiered cache is the warm store)
and serves framed JSON requests (see :mod:`repro.service.protocol`).
The robustness layer, in the order a request meets it:

1. **Framing** — a corrupt frame earns a structured
   :class:`~repro.errors.DecodeError` reply; the connection survives
   whenever the stream is still in sync (CRC mismatch, bad JSON), and is
   closed when it cannot be (bad magic, forged length, peer vanished).
2. **Circuit breaker** — per unit name; repeated failures or timeouts
   open it, rejecting further requests for that unit with a retryable
   :class:`~repro.errors.CircuitOpenError` until it half-opens.
3. **Admission** — a bounded queue in front of a concurrency-limited
   worker pool; when the queue is full the request is shed immediately
   with a retryable :class:`~repro.errors.OverloadedError`.
4. **Deadline** — counts from admission (queue wait included); when it
   elapses the reply is a typed
   :class:`~repro.errors.DeadlineExceededError` and the in-flight
   pipeline work is cooperatively cancelled between stages.
5. **Drain** — graceful shutdown stops accepting, lets in-flight
   requests finish (force-cancelling them only after
   ``drain_timeout``), flushes and optionally prunes the warm store,
   then closes every connection.

Liveness (``ping``) and readiness (``ready``) probes plus the ``stats``
op bypass admission entirely — a saturated server must still answer its
health checks.
"""

from __future__ import annotations

import asyncio
import base64
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

from ..cfront import CompileError
from ..errors import (
    CancelledWorkError, CircuitOpenError, CorruptStreamError,
    DeadlineExceededError, DecodeError, OverloadedError, ServiceError,
    TruncatedStreamError, UnsupportedFormatError,
)
from ..pipeline import Toolchain
from . import protocol

__all__ = [
    "BackgroundService", "CircuitBreaker", "CompressionService",
    "ServiceConfig", "WORK_OPS", "CONTROL_OPS", "CACHE_OPS",
]

#: Ops that run pipeline work and pass through the full robustness layer.
WORK_OPS = frozenset({"compile", "wire", "brisc", "verify", "sleep",
                      "fetch_range", "fetch_function"})

#: The demand-paging ops: serve byte ranges of seekable (v3) containers
#: out of the warm store.
_FETCH_OPS = frozenset({"fetch_range", "fetch_function"})

#: Ops answered inline on the event loop, bypassing admission — probes
#: and control must work even when the worker pool is saturated.
CONTROL_OPS = frozenset({"ping", "ready", "stats", "shutdown"})

#: Cache-federation ops: serve a *local* warm-store entry to a peer node
#: by content-addressed key.  Answered inline like control ops — a
#: federation read must never wait on a worker slot, or two saturated
#: nodes probing each other's caches would deadlock their pools.  The
#: lookups consult only the local store (never the federated peer-fill
#: path), so peer probes cannot recurse across the cluster.
CACHE_OPS = frozenset({"cache_peek", "cache_pull"})


@dataclass(frozen=True)
class ServiceConfig:
    """Knobs for one service instance; every bound has a safe default."""

    host: str = "127.0.0.1"
    port: int = 0                      # 0: pick an ephemeral port
    max_concurrency: int = 4           # pipeline work running at once
    max_queue: int = 16                # admitted-but-waiting requests
    default_deadline: float = 30.0     # when the request names none
    max_deadline: float = 300.0        # ceiling on client-chosen deadlines
    idle_timeout: float = 300.0        # reap connections stalled this long
    shed_retry_after: float = 0.05     # hint sent with load-shed replies
    breaker_threshold: int = 5         # consecutive failures to trip
    breaker_reset: float = 5.0         # seconds until half-open
    drain_timeout: float = 10.0        # grace for in-flight work at drain
    max_sleep: float = 60.0            # bound on the sleep diagnostic op
    max_frame_bytes: int = protocol.MAX_FRAME_BYTES
    cache_max_bytes: Optional[int] = None  # prune the disk store at drain

    def __post_init__(self) -> None:
        if self.max_concurrency < 1:
            raise ValueError("max_concurrency must be >= 1")
        if self.max_queue < 0:
            raise ValueError("max_queue must be >= 0")
        for name in ("default_deadline", "max_deadline", "idle_timeout",
                     "breaker_reset", "drain_timeout"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.breaker_threshold < 1:
            raise ValueError("breaker_threshold must be >= 1")


class CircuitBreaker:
    """Per-unit failure gate: closed → open → half-open → closed.

    ``threshold`` consecutive failures open the breaker; after
    ``reset_seconds`` it half-opens and admits exactly one probe, whose
    outcome closes or re-opens it.  Only touched from the event loop, so
    no locking.
    """

    def __init__(self, threshold: int, reset_seconds: float,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.threshold = threshold
        self.reset_seconds = reset_seconds
        self._clock = clock
        self.state = "closed"
        self.failures = 0
        self._opened_at = 0.0
        self._probing = False

    def admit(self, unit: str) -> None:
        """Raise :class:`CircuitOpenError` unless a request may proceed."""
        if self.state == "open":
            remaining = self.reset_seconds - (self._clock() - self._opened_at)
            if remaining > 0:
                raise CircuitOpenError(
                    f"circuit for unit {unit!r} is open after "
                    f"{self.failures} consecutive failures",
                    retry_after=remaining)
            self.state = "half-open"
        if self.state == "half-open":
            if self._probing:
                raise CircuitOpenError(
                    f"circuit for unit {unit!r} is half-open with a probe "
                    f"in flight", retry_after=self.reset_seconds)
            self._probing = True

    def record_success(self) -> None:
        self.state = "closed"
        self.failures = 0
        self._probing = False

    def record_failure(self) -> None:
        self.failures += 1
        self._probing = False
        if self.state == "half-open" or self.failures >= self.threshold:
            self.state = "open"
            self._opened_at = self._clock()

    def snapshot(self) -> Dict[str, Any]:
        return {"state": self.state, "failures": self.failures}


class _Metrics:
    """Per-request outcome/latency counters; event-loop-thread only."""

    def __init__(self) -> None:
        self.requests = 0
        self.by_op: Dict[str, int] = {}
        self.outcomes: Dict[str, int] = {}
        self.latency_count = 0
        self.latency_seconds = 0.0
        self.latency_max = 0.0
        self.bad_frames = 0
        self.connections_opened = 0
        self.connections_closed = 0
        self.bytes_served = 0
        self.range_ops: Dict[str, Dict[str, int]] = {}
        self.federation_pulls = 0
        self.federation_bytes_out = 0

    def note(self, op: str, outcome: str, seconds: float) -> None:
        self.requests += 1
        self.by_op[op] = self.by_op.get(op, 0) + 1
        self.outcomes[outcome] = self.outcomes.get(outcome, 0) + 1
        self.latency_count += 1
        self.latency_seconds += seconds
        self.latency_max = max(self.latency_max, seconds)

    def note_range(self, op: str, hit: bool, transferred: int) -> None:
        """Account one served range: warm-store hit/miss + bytes moved."""
        counters = self.range_ops.setdefault(op, {"hits": 0, "misses": 0})
        counters["hits" if hit else "misses"] += 1
        self.bytes_served += transferred

    def note_federation(self, transferred: int) -> None:
        """Account one artifact served to a cache-federation peer."""
        self.federation_pulls += 1
        self.federation_bytes_out += transferred

    def snapshot(self) -> Dict[str, Any]:
        return {
            "requests": self.requests,
            "by_op": dict(self.by_op),
            "outcomes": dict(self.outcomes),
            "latency": {
                "count": self.latency_count,
                "seconds": self.latency_seconds,
                "max_seconds": self.latency_max,
            },
            "bad_frames": self.bad_frames,
            "connections": {
                "opened": self.connections_opened,
                "closed": self.connections_closed,
            },
            "bytes_served": self.bytes_served,
            "range_ops": {op: dict(c) for op, c in self.range_ops.items()},
            "federation_out": {
                "pulls": self.federation_pulls,
                "bytes": self.federation_bytes_out,
            },
        }


def _outcome_of(exc: Optional[BaseException]) -> str:
    if exc is None:
        return "ok"
    if isinstance(exc, DeadlineExceededError):
        return "deadline"
    if isinstance(exc, OverloadedError):
        return "shed"
    if isinstance(exc, CircuitOpenError):
        return "breaker_open"
    if isinstance(exc, CancelledWorkError):
        return "cancelled"
    if isinstance(exc, ServiceError):
        return "service_error"
    if isinstance(exc, CompileError):
        return "compile_error"
    if isinstance(exc, DecodeError):
        return "decode_error"
    return "internal_error"


class CompressionService:
    """One server instance; see the module docstring for the layers."""

    def __init__(self, toolchain: Optional[Toolchain] = None,
                 config: Optional[ServiceConfig] = None) -> None:
        self.config = config or ServiceConfig()
        self.toolchain = toolchain or Toolchain()
        self.metrics = _Metrics()
        self._server: Optional[asyncio.AbstractServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._work_sem: Optional[asyncio.Semaphore] = None
        self._stopped: Optional[asyncio.Event] = None
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.max_concurrency,
            thread_name_prefix="repro-service")
        self._breakers: Dict[str, CircuitBreaker] = {}
        self._writers: set = set()
        self._cancel_events: set = set()
        self._waiting = 0
        self._active = 0
        self._replying = 0
        self._draining = False
        self._started = False

    # -- lifecycle ---------------------------------------------------------

    @property
    def port(self) -> int:
        if self._server is None:
            raise RuntimeError("service not started")
        return self._server.sockets[0].getsockname()[1]

    @property
    def draining(self) -> bool:
        return self._draining

    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._work_sem = asyncio.Semaphore(self.config.max_concurrency)
        self._stopped = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port)
        self._started = True

    async def wait_stopped(self) -> None:
        await self._stopped.wait()

    async def run(self, ready: Optional[Callable[["CompressionService"],
                                                 None]] = None) -> None:
        """Start, announce via ``ready``, and serve until drained."""
        await self.start()
        if ready is not None:
            ready(self)
        await self.wait_stopped()

    async def shutdown(self) -> None:
        """Graceful drain: stop accepting, finish in-flight work, flush
        the warm store, close connections.  Idempotent."""
        if self._draining:
            return
        self._draining = True
        if self._server is not None:
            # close() stops accepting immediately.  wait_closed() is NOT
            # awaited here: on Python >= 3.12.1 it waits for existing
            # connection handlers to finish, and handlers blocked on a
            # read only finish once drain closes their writers below.
            self._server.close()
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.config.drain_timeout
        while ((self._active or self._waiting or self._replying)
               and loop.time() < deadline):
            await asyncio.sleep(0.005)
        if self._active or self._waiting or self._replying:
            # Out of grace: cooperatively cancel what is still running.
            for event in list(self._cancel_events):
                event.set()
            grace = loop.time() + 1.0
            while (self._active or self._replying) and loop.time() < grace:
                await asyncio.sleep(0.005)
        self.toolchain.cache.flush()
        if self.config.cache_max_bytes is not None:
            disk = getattr(self.toolchain.cache, "disk", None)
            if disk is not None:
                disk.prune(self.config.cache_max_bytes)
        self._executor.shutdown(wait=False)
        for writer in list(self._writers):
            writer.close()
        if self._server is not None:
            try:
                await asyncio.wait_for(self._server.wait_closed(),
                                       timeout=5.0)
            except asyncio.TimeoutError:
                pass  # a wedged handler must not block process exit
        self._stopped.set()

    def _request_shutdown(self) -> None:
        """Schedule a drain from sync context (signal handler, op)."""
        assert self._loop is not None
        self._loop.call_soon_threadsafe(
            lambda: asyncio.ensure_future(self.shutdown()))

    # -- connection loop ---------------------------------------------------

    async def _read_frame(self, reader: asyncio.StreamReader
                          ) -> Optional[bytes]:
        return await protocol.read_frame_async(reader,
                                               self.config.max_frame_bytes)

    async def _send(self, writer: asyncio.StreamWriter,
                    reply: Dict[str, Any]) -> None:
        writer.write(protocol.encode_message(reply))
        await writer.drain()

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        self._writers.add(writer)
        self.metrics.connections_opened += 1
        try:
            while True:
                try:
                    payload = await asyncio.wait_for(
                        self._read_frame(reader),
                        timeout=self.config.idle_timeout)
                except asyncio.TimeoutError:
                    break  # stalled peer: reap the connection
                except TruncatedStreamError:
                    self.metrics.bad_frames += 1
                    break  # peer vanished mid-frame; nobody to reply to
                except DecodeError as exc:
                    # Corrupt frame: reply with the typed error.  Keep
                    # the connection only if the stream is still in sync.
                    self.metrics.bad_frames += 1
                    await self._send(writer, {
                        "id": None, "ok": False,
                        "error": protocol.error_payload(exc)})
                    if protocol.recoverable(exc):
                        continue
                    break
                if payload is None:
                    break  # clean EOF
                try:
                    message = protocol.decode_message(payload)
                except DecodeError as exc:
                    # Frame consumed in full, so framing survives bad JSON.
                    self.metrics.bad_frames += 1
                    await self._send(writer, {
                        "id": None, "ok": False,
                        "error": protocol.error_payload(exc)})
                    continue
                # The counter keeps drain from closing this writer in the
                # gap between the worker finishing (active hits 0) and the
                # reply actually reaching the wire — the drain poll can win
                # that race otherwise, because its wake-up runs through to
                # writer.close() without yielding.
                self._replying += 1
                try:
                    await self._send(writer, await self._dispatch(message))
                finally:
                    self._replying -= 1
                if self._draining:
                    break  # reply delivered; drain closes the connection
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass  # peer went away while we were talking to it
        finally:
            self._writers.discard(writer)
            self.metrics.connections_closed += 1
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    # -- request dispatch --------------------------------------------------

    async def _dispatch(self, message: Dict[str, Any]) -> Dict[str, Any]:
        req_id = message.get("id")
        op = message.get("op")
        t0 = time.monotonic()
        error: Optional[BaseException] = None
        try:
            if op in CONTROL_OPS:
                result = self._control(op)
            elif op in CACHE_OPS:
                result = self._cache_op(op, message)
            elif op in WORK_OPS:
                result = await self._run_work(op, message)
            else:
                raise CorruptStreamError(
                    f"unknown op {op!r} (work: {sorted(WORK_OPS)}, "
                    f"control: {sorted(CONTROL_OPS)}, "
                    f"cache: {sorted(CACHE_OPS)})")
        except Exception as exc:  # every failure becomes a typed reply
            error = exc
            reply = {"id": req_id, "ok": False,
                     "error": protocol.error_payload(exc)}
        else:
            reply = {"id": req_id, "ok": True, "result": result}
        self.metrics.note(str(op), _outcome_of(error),
                          time.monotonic() - t0)
        return reply

    def _control(self, op: str) -> Dict[str, Any]:
        if op == "ping":
            return {"pong": True}
        if op == "ready":
            return {
                "ready": self._started and not self._draining,
                "draining": self._draining,
                "inflight": self._active,
                "queued": self._waiting,
            }
        if op == "stats":
            service = self.metrics.snapshot()
            service["inflight"] = self._active
            service["queued"] = self._waiting
            service["breakers"] = {
                unit: breaker.snapshot()
                for unit, breaker in self._breakers.items()
            }
            return {"service": service, "toolchain": self.toolchain.stats()}
        # shutdown: acknowledge first; the drain task runs after the
        # reply is on the wire.
        self._request_shutdown()
        return {"draining": True}

    def _cache_op(self, op: str, message: Dict[str, Any]) -> Dict[str, Any]:
        """Serve a warm-store entry to a cluster peer by artifact key.

        ``cache_peek`` answers presence + size; ``cache_pull`` ships the
        serialized artifact with a CRC32 the peer verifies on arrival.
        Reads go through :meth:`ArtifactCache.peek_bytes`, which is
        local-only by contract and skips hit/miss accounting, so
        federation probes never distort the node's own cache stats.
        """
        key = message.get("key")
        if (not isinstance(key, str) or not (8 <= len(key) <= 128)
                or any(c not in "0123456789abcdef" for c in key)):
            raise CorruptStreamError(
                f"{op} key must be a lowercase hex artifact digest, "
                f"got {key!r}")
        blob = self.toolchain.cache.peek_bytes(key)
        if blob is None:
            return {"key": key, "present": False}
        reply = {"key": key, "present": True, "bytes": len(blob)}
        if op == "cache_pull":
            import zlib

            reply["crc32"] = zlib.crc32(blob)
            reply["blob_b64"] = base64.b64encode(blob).decode("ascii")
            self.metrics.note_federation(len(blob))
        return reply

    def _breaker_for(self, unit: str) -> CircuitBreaker:
        breaker = self._breakers.get(unit)
        if breaker is None:
            breaker = CircuitBreaker(self.config.breaker_threshold,
                                     self.config.breaker_reset)
            self._breakers[unit] = breaker
        return breaker

    def _deadline_of(self, message: Dict[str, Any]) -> float:
        deadline = message.get("deadline", self.config.default_deadline)
        if not isinstance(deadline, (int, float)) or deadline <= 0:
            raise CorruptStreamError(
                f"deadline must be a positive number, got {deadline!r}")
        return min(float(deadline), self.config.max_deadline)

    async def _run_work(self, op: str, message: Dict[str, Any]) -> Any:
        if self._draining:
            raise OverloadedError("server is draining",
                                  retry_after=self.config.shed_retry_after)
        unit = str(message.get("name") or f"<{op}>")
        deadline = self._deadline_of(message)
        breaker = self._breaker_for(unit)
        breaker.admit(unit)
        try:
            result = await self._admit_and_execute(op, message, unit,
                                                   deadline)
        except (DeadlineExceededError, CompileError):
            # Unit-health signals: repeated timeouts or front-end failures
            # trip the breaker.  Decode errors (the client's blob was bad)
            # and shedding (we never ran) deliberately do not.
            breaker.record_failure()
            raise
        breaker.record_success()
        if op in _FETCH_OPS and isinstance(result, dict):
            # Range accounting happens here, on the event loop (the
            # metrics object is loop-thread-only by contract).
            self.metrics.note_range(op, bool(result.get("cache_hit")),
                                    int(result.get("transferred", 0)))
        return result

    async def _admit_and_execute(self, op: str, message: Dict[str, Any],
                                 unit: str, deadline: float) -> Any:
        assert self._loop is not None and self._work_sem is not None
        if (self._active + self._waiting
                >= self.config.max_concurrency + self.config.max_queue):
            raise OverloadedError(
                f"admission queue full ({self._waiting} waiting, "
                f"{self._active} running)",
                retry_after=self.config.shed_retry_after)
        admitted_at = self._loop.time()
        self._waiting += 1
        try:
            await self._work_sem.acquire()
        finally:
            self._waiting -= 1
        self._active += 1
        cancel = threading.Event()
        self._cancel_events.add(cancel)
        future = self._loop.run_in_executor(
            self._executor, self._execute, op, message, cancel)

        def _release(done: asyncio.Future) -> None:
            self._active -= 1
            self._work_sem.release()
            self._cancel_events.discard(cancel)
            if not done.cancelled():
                done.exception()  # retrieve abandoned failures: no warning

        future.add_done_callback(_release)
        remaining = deadline - (self._loop.time() - admitted_at)
        if remaining <= 0:
            cancel.set()
            raise DeadlineExceededError(
                f"{op} of {unit!r} spent its whole {deadline:.3f}s deadline "
                f"queued")
        try:
            return await asyncio.wait_for(asyncio.shield(future),
                                          timeout=remaining)
        except asyncio.TimeoutError:
            cancel.set()  # stop pipeline work between stages
            raise DeadlineExceededError(
                f"{op} of {unit!r} exceeded its {deadline:.3f}s deadline"
            ) from None

    # -- work execution (worker threads) -----------------------------------

    def _execute(self, op: str, message: Dict[str, Any],
                 cancel: threading.Event) -> Any:
        if op == "sleep":
            return self._op_sleep(message, cancel)
        if op == "verify":
            return self._op_verify(message)
        if op in _FETCH_OPS:
            return self._op_fetch(op, message, cancel)
        return self._op_compile(op, message, cancel)

    def _op_sleep(self, message: Dict[str, Any],
                  cancel: threading.Event) -> Dict[str, Any]:
        """Diagnostic op: hold a worker slot for ``seconds``.

        Exists to probe deadlines, backpressure, and drain against a live
        server (the chaos harness and the smoke tests use it) without
        needing a conveniently slow compile unit.
        """
        seconds = message.get("seconds", 0.1)
        if not isinstance(seconds, (int, float)) or seconds < 0:
            raise CorruptStreamError(
                f"sleep seconds must be a non-negative number, "
                f"got {seconds!r}")
        seconds = min(float(seconds), self.config.max_sleep)
        if cancel.wait(seconds):
            raise CancelledWorkError(f"sleep cancelled after deadline/drain "
                                     f"({seconds:.3f}s requested)")
        return {"slept": seconds}

    def _op_verify(self, message: Dict[str, Any]) -> Dict[str, Any]:
        from ..brisc import decode_image
        from ..wire import decode_module

        blob_b64 = message.get("blob_b64")
        if not isinstance(blob_b64, str):
            raise CorruptStreamError("verify request missing blob_b64")
        try:
            blob = base64.b64decode(blob_b64.encode("ascii"), validate=True)
        except (ValueError, UnicodeEncodeError) as exc:
            raise CorruptStreamError(
                f"verify blob_b64 is not base64: {exc}") from exc
        function = message.get("function")
        if function is not None and not isinstance(function, str):
            raise CorruptStreamError(
                f"verify function must be a name, got {function!r}")
        if blob[:3] == b"WIR":
            if function is not None:
                from ..wire import decode_function

                fn = decode_function(blob, function)
                detail = f"wire function {fn.name!r}"
            else:
                module = decode_module(blob)
                detail = f"wire module {module.name!r}"
        elif blob[:3] == b"BRI":
            if function is not None:
                from ..brisc.encode import decode_function

                fn = decode_function(blob, function)
                detail = f"BRISC function {fn.name!r}"
            else:
                program = decode_image(blob)
                detail = f"BRISC image, {len(program.functions)} functions"
        else:
            raise UnsupportedFormatError(
                f"unrecognized container magic {blob[:4]!r}")
        return {"detail": detail, "bytes": len(blob)}

    def _op_fetch(self, op: str, message: Dict[str, Any],
                  cancel: threading.Event) -> Dict[str, Any]:
        """Serve byte ranges of a seekable container from the warm store.

        The unit is compiled (or found cached — ``cache_hit``) with the
        v3 container layout, the block index is consulted for the
        minimal ranges covering the request, and only those bytes go
        back to the client — never the whole blob.
        """
        source = message.get("source")
        if not isinstance(source, str):
            raise CorruptStreamError(f"{op} request missing source text")
        name = str(message.get("name") or "<request>")
        fmt = message.get("format", "wire")
        if fmt not in ("wire", "brisc"):
            raise CorruptStreamError(
                f"fetch format must be 'wire' or 'brisc', got {fmt!r}")
        chunk_bytes = message.get("chunk_bytes")
        if chunk_bytes is not None and (
                not isinstance(chunk_bytes, int) or chunk_bytes < 1):
            raise CorruptStreamError(
                f"chunk_bytes must be a positive integer, got {chunk_bytes!r}")
        config = self.toolchain.config.with_container(
            wire=3, brisc=3, chunk_bytes=chunk_bytes)
        try:
            result = self.toolchain.compile(source, name=name, stages=(fmt,),
                                            config=config, cancel=cancel.is_set)
        except KeyError as exc:
            raise CorruptStreamError(str(exc)) from exc
        artifact = result.artifacts[fmt]
        if fmt == "wire":
            from ..wire import container_index

            blob = result.wire_blob
            index = container_index(blob)
        else:
            from ..brisc.encode import container_index

            blob = result.brisc.image.blob
            index = container_index(blob)

        reply: Dict[str, Any] = {"unit": name, "format": fmt,
                                 "total_bytes": len(blob),
                                 "cache_hit": artifact.from_cache}
        function = message.get("function")
        if op == "fetch_function" or function is not None:
            if not isinstance(function, str):
                raise CorruptStreamError(
                    f"{op} request missing the function name")
            record = index.function(function)
            ranges = index.ranges_for_function(function)
            reply.update(function=function,
                         span_start=record.span_start,
                         span_length=record.span_length,
                         chunks=[record.chunk])
        else:
            start = message.get("start")
            length = message.get("length")
            for label, value in (("start", start), ("length", length)):
                if not isinstance(value, int) or value < 0:
                    raise CorruptStreamError(
                        f"fetch_range {label} must be a non-negative "
                        f"integer, got {value!r}")
            ranges = index.ranges_for_span(start, length)
            reply.update(
                span_start=start, span_length=length,
                chunks=sorted({f.chunk for f in
                               index.functions_in_span(start, length)}))
        reply["segments"] = [
            {"offset": offset,
             "b64": base64.b64encode(blob[offset:offset + length])
                          .decode("ascii")}
            for offset, length in ranges
        ]
        reply["transferred"] = sum(length for _, length in ranges)
        return reply

    def _op_compile(self, op: str, message: Dict[str, Any],
                    cancel: threading.Event) -> Dict[str, Any]:
        source = message.get("source")
        if not isinstance(source, str):
            raise CorruptStreamError(f"{op} request missing source text")
        name = str(message.get("name") or "<request>")
        if op == "wire":
            stages: Any = ("wire",)
        elif op == "brisc":
            stages = ("brisc",)
        else:
            stages = message.get("stages")
            if stages is not None:
                if (not isinstance(stages, list)
                        or not all(isinstance(s, str) for s in stages)):
                    raise CorruptStreamError(
                        f"stages must be a list of names, got {stages!r}")
                stages = tuple(stages)
        try:
            result = self.toolchain.compile(source, name=name, stages=stages,
                                            cancel=cancel.is_set)
        except KeyError as exc:  # unknown stage name in the request
            raise CorruptStreamError(str(exc)) from exc
        if op == "wire":
            blob = result.wire_blob
            return {"unit": name, "size": len(blob),
                    "blob_b64": base64.b64encode(blob).decode("ascii")}
        if op == "brisc":
            compressed = result.brisc
            return {"unit": name, "size": compressed.size,
                    "patterns": compressed.image.pattern_count,
                    "blob_b64": base64.b64encode(
                        compressed.image.blob).decode("ascii")}
        return {
            "unit": name,
            "sizes": result.sizes(),
            "stages": {
                a.stage: {"cached": a.from_cache, "size": a.size,
                          "seconds": a.seconds}
                for a in result.artifacts.values()
            },
        }


class BackgroundService:
    """Run a :class:`CompressionService` on a dedicated event-loop thread.

    The embedding entry point (tests, the chaos harness, notebooks): the
    caller's thread stays free, and ``stop()`` performs the same graceful
    drain as SIGTERM.  Use as a context manager.
    """

    def __init__(self, service: Optional[CompressionService] = None) -> None:
        self.service = service or CompressionService()
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None

    def __enter__(self) -> "BackgroundService":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    @property
    def port(self) -> int:
        return self.service.port

    @property
    def host(self) -> str:
        return self.service.config.host

    def start(self, timeout: float = 10.0) -> "BackgroundService":
        def main() -> None:
            try:
                asyncio.run(self.service.run(
                    ready=lambda _svc: self._ready.set()))
            except BaseException as exc:  # surface startup/run failures
                self._startup_error = exc
                self._ready.set()

        self._thread = threading.Thread(target=main, daemon=True,
                                        name="repro-service-loop")
        self._thread.start()
        if not self._ready.wait(timeout):
            raise RuntimeError("service failed to start within "
                               f"{timeout}s")
        if self._startup_error is not None:
            raise RuntimeError("service failed to start") \
                from self._startup_error
        return self

    def stop(self, timeout: float = 15.0) -> None:
        if self._thread is None or not self._thread.is_alive():
            return
        self.service._request_shutdown()
        self._thread.join(timeout)
