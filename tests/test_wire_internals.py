"""Wire-format internals: novel-value codecs, symbol table, size metrics."""

from hypothesis import given, strategies as st

from repro.cfront import compile_to_ast
from repro.compress.streams import unpack_streams
from repro.corpus.samples import SAMPLES
from repro.ir import lower_unit
from repro.wire import encode_module, wire_size
from repro.wire.format import (
    _pack_float_novels, _pack_int_novels, _pack_pattern_novels,
    _pack_str_novels, _unpack_float_novels, _unpack_int_novels,
    _unpack_pattern_novels, _unpack_str_novels,
)


def lower(src, name="m"):
    return lower_unit(compile_to_ast(src, name), name)


class TestNovelCodecs:
    @given(st.lists(st.integers(-2**40, 2**40)))
    def test_int_novels_roundtrip(self, values):
        blob = _pack_int_novels(values)
        assert _unpack_int_novels(blob, len(values)) == values

    @given(st.lists(st.text(max_size=20)))
    def test_str_novels_roundtrip(self, values):
        blob = _pack_str_novels(values)
        assert _unpack_str_novels(blob, len(values)) == values

    @given(st.lists(st.floats(allow_nan=False, allow_infinity=False)))
    def test_float_novels_roundtrip(self, values):
        blob = _pack_float_novels(values)
        assert _unpack_float_novels(blob, len(values)) == values

    def test_pattern_novels_roundtrip(self):
        patterns = [
            (("ASGNI", 0), ("ADDRLP", 0), ("CNSTI", 1)),
            (("RETI", 0), ("CNSTI", 2)),
            (("LABELV", 0),),
        ]
        blob = _pack_pattern_novels(patterns)
        assert _unpack_pattern_novels(blob, len(patterns)) == patterns

    def test_pattern_width_zero_is_one_byte(self):
        one = _pack_pattern_novels([(("ADDI", 0),)])
        wide = _pack_pattern_novels([(("ADDI", 2),)])
        # width-0 entries cost one byte per operator; wider cost two.
        assert len(wide) == len(one) + 1

    def test_small_ints_pack_small(self):
        assert len(_pack_int_novels([0, 1, -1, 63])) == 4


class TestSymbolTable:
    def test_symtab_stream_present(self):
        mod = lower('int g(void) { return 0; } int main(void) { return g(); }')
        streams = unpack_streams(encode_module(mod)[4:])
        assert "symtab" in streams

    def test_symbol_names_not_in_code_streams(self):
        mod = lower("""
            int a_very_distinctive_name(void) { return 1; }
            int main(void) { return a_very_distinctive_name(); }
        """)
        streams = unpack_streams(encode_module(mod)[4:])
        for name, data in streams.items():
            if name in ("meta", "symtab"):
                continue
            assert b"a_very_distinctive_name" not in data

    def test_repeated_calls_share_one_table_entry(self):
        mod = lower("""
            int h(void) { return 1; }
            int main(void) { return h() + h() + h() + h(); }
        """)
        streams = unpack_streams(encode_module(mod)[4:])
        assert streams["symtab"].count(b"h") <= 2  # table entry, not per-call


class TestSizeMetrics:
    def test_code_only_excludes_meta_and_symtab(self):
        mod = lower(SAMPLES["hashtab"], "hashtab")
        full = wire_size(mod)
        code = wire_size(mod, code_only=True)
        assert code < full

    def test_code_only_still_positive(self):
        mod = lower("int main(void) { return 0; }")
        assert wire_size(mod, code_only=True) > 0

    def test_bigger_program_bigger_wire(self):
        small = lower("int main(void) { return 0; }")
        big = lower(SAMPLES["sort"], "sort")
        assert wire_size(big, code_only=True) > \
            wire_size(small, code_only=True)
