"""IR-to-VM code generation, including the de-tuned ISA variants."""

from .riscgen import CodegenError, generate_function, generate_program
from .variants import ABLATION_VARIANTS

__all__ = ["CodegenError", "generate_function", "generate_program",
           "ABLATION_VARIANTS"]
