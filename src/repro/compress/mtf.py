"""Move-to-front coding, in the exact style used by the paper's wire format.

The paper transforms each literal-operand stream with MTF before Huffman
coding: "Zero denotes a symbol not seen previously", so indices are 1-based
over the dynamic table and index 0 escapes to a *novel* symbol, whose value
is carried in a separate side stream.  A stream with spatial locality (frame
offsets, nearby labels) becomes a stream of small integers that entropy-code
well.

Two variants are provided:

* :func:`mtf_encode` / :func:`mtf_decode` — the paper's escape-based scheme
  over an open symbol universe (any hashable symbols).
* :class:`MoveToFront` — the classic fixed-alphabet 0-based transform used
  by BWT-style compressors, exposed for the design-space benchmarks.

Both encoders keep the dynamic table as a ``bytearray`` of dense symbol
ids while the distinct-symbol count fits a byte, so the position scan is
``bytearray.index`` (one ``memchr``) and the move-to-front shuffle is a
C-level ``memmove`` — no Python-level walk over the table.  Streams with
more than 256 distinct symbols spill the table to a plain list with the
same semantics.
"""

from __future__ import annotations

from typing import Hashable, List, Sequence, Tuple, Union

from ..errors import CorruptStreamError

__all__ = ["mtf_encode", "mtf_decode", "MoveToFront"]


def mtf_encode(symbols: Sequence[Hashable]) -> Tuple[List[int], List[Hashable]]:
    """Move-to-front code ``symbols`` with a dynamically grown table.

    Returns ``(indices, novel)`` where ``indices[i]`` is 0 when
    ``symbols[i]`` had not been seen before (its value is appended to
    ``novel``) and otherwise the 1-based position of the symbol in the MTF
    table.  After every access the symbol moves to the table front.

    >>> mtf_encode([72, 72, 68, 72, 68, 68, 68, 68])
    ([0, 1, 0, 2, 2, 1, 1, 1], [72, 68])
    """
    # Each distinct symbol gets a dense id; the table tracks ids, not
    # symbols, so it stays a bytearray until the 257th distinct symbol.
    ids: dict = {}
    table: Union[bytearray, List[int]] = bytearray()
    indices: List[int] = []
    novel: List[Hashable] = []
    append = indices.append
    ids_get = ids.get
    find = table.index
    insert = table.insert
    front = -1  # dense id at table[0]; streams with locality hit it often
    for sym in symbols:
        sid = ids_get(sym)
        if sid == front:
            append(1)
        elif sid is None:
            sid = len(ids)
            ids[sym] = sid
            if sid == 256:
                table = list(table)
                find = table.index
                insert = table.insert
            append(0)
            novel.append(sym)
            insert(0, sid)
            front = sid
        else:
            idx = find(sid)
            append(idx + 1)
            if idx:
                del table[idx]
                insert(0, sid)
                front = sid
    return indices, novel


def mtf_decode(indices: Sequence[int], novel: Sequence[Hashable]) -> List[Hashable]:
    """Invert :func:`mtf_encode`.

    ``indices`` uses 0 for "next novel symbol" and 1-based table positions
    otherwise; ``novel`` supplies the novel symbols in first-appearance
    order.  Malformed inputs (an index past the table, more escapes than
    novel symbols) raise :class:`~repro.errors.CorruptStreamError`.
    """
    table: List[Hashable] = []
    out: List[Hashable] = []
    append = out.append
    insert = table.insert
    pop = table.pop
    novel_iter = iter(novel)
    advance = next
    for idx in indices:
        if idx == 0:
            try:
                sym = advance(novel_iter)
            except StopIteration:
                raise CorruptStreamError(
                    "MTF stream references more novel symbols than provided"
                ) from None
            insert(0, sym)
        else:
            if idx < 0 or idx > len(table):
                raise CorruptStreamError(
                    f"MTF index {idx} exceeds table size {len(table)}")
            if idx == 1:
                sym = table[0]
            else:
                sym = pop(idx - 1)
                insert(0, sym)
        append(sym)
    return out


class MoveToFront:
    """Classic move-to-front transform over a fixed alphabet ``0..n-1``.

    Used by the design-space benchmarks to compare the paper's escape-based
    scheme against the textbook transform.
    """

    def __init__(self, alphabet_size: int = 256) -> None:
        if alphabet_size <= 0:
            raise ValueError("alphabet_size must be positive")
        self.alphabet_size = alphabet_size

    def _fresh_table(self) -> Union[bytearray, List[int]]:
        n = self.alphabet_size
        return bytearray(range(n)) if n <= 256 else list(range(n))

    def encode(self, data: Sequence[int]) -> List[int]:
        """Replace each symbol with its current table index."""
        table = self._fresh_table()
        find = table.index
        insert = table.insert
        out: List[int] = []
        append = out.append
        for sym in data:
            idx = find(sym)
            append(idx)
            if idx:
                del table[idx]
                insert(0, sym)
        return out

    def decode(self, indices: Sequence[int]) -> List[int]:
        """Invert :meth:`encode`."""
        table = self._fresh_table()
        insert = table.insert
        out: List[int] = []
        append = out.append
        for idx in indices:
            sym = table[idx]
            append(sym)
            if idx:
                del table[idx]
                insert(0, sym)
        return out
