"""Chunk placement and block-index types shared by WIR3 and BRI3.

The paper's motivating scenario is demand-paging compressed code: a
client should be able to page in *one function* without downloading (or
decompressing) the whole unit.  Both v3 containers therefore group
functions into *chunks* — independently decodable, CRC-framed byte
extents — behind a block index that maps every function to the chunk
holding it and every chunk to its (offset, length, CRC32) in the blob.

This module holds the pieces the two formats share:

* :class:`ChunkPlacement` — the policy hook deciding which functions
  share a chunk.  :class:`GreedyPlacement` packs functions in module
  order under a size cap (locality of definition order);
  :class:`HotColdPlacement` additionally clusters the hottest functions
  into the same leading chunks, the access-pattern-based placement of
  Ozturk et al.: a demand-paged working set that touches only hot code
  then faults in a minimal set of chunks.
* :class:`ContainerIndex` — the parsed block index: per-function spans
  in the *decoded* address space, per-chunk extents in the *stored*
  blob, and the range arithmetic (`ranges_for_function`,
  `ranges_for_span`) a byte-range server needs.
* :func:`assemble_sparse` — rebuild a decodable sparse blob from fetched
  (offset, bytes) segments; untouched regions stay zeroed and are never
  read by ``decode_function``/``decode_range``.

Placements return a *partition*: every function index appears in exactly
one chunk.  Within a chunk, members are stored in ascending original
index, so any placement decodes back to the original function order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..errors import CorruptStreamError

__all__ = [
    "DEFAULT_CHUNK_BYTES",
    "ChunkPlacement",
    "ChunkRecord",
    "ContainerIndex",
    "FunctionExtent",
    "FunctionRecord",
    "GreedyPlacement",
    "HotColdPlacement",
    "assemble_sparse",
    "validate_placement",
]

#: Default chunk-size cap.  Half a (4 KB) page: small enough that a
#: one-function fetch of a typical unit moves a fraction of the blob,
#: large enough that per-chunk framing overhead stays in the noise.
DEFAULT_CHUNK_BYTES = 2048


@dataclass(frozen=True)
class FunctionExtent:
    """What a placement policy knows about one function.

    ``size`` is the function's (estimated) encoded byte size — the
    packing weight; ``weight`` is its hotness (profile samples, call
    counts — any monotone heat metric; 0.0 means cold/unknown).
    """

    name: str
    size: int
    weight: float = 0.0


class ChunkPlacement:
    """Policy hook: partition functions into chunks.

    Subclasses implement :meth:`place`, returning a list of chunks, each
    a list of function indices into ``extents``.  The partition contract
    (every index exactly once) is enforced by the encoders via
    :func:`validate_placement`; member order within a chunk is
    normalized to ascending index by the encoders, so policies only
    decide *grouping*.
    """

    def place(self, extents: Sequence[FunctionExtent]) -> List[List[int]]:
        raise NotImplementedError

    @staticmethod
    def _pack_by_size(order: Iterable[int],
                      extents: Sequence[FunctionExtent],
                      target_bytes: int) -> List[List[int]]:
        """Greedy size-capped packing of ``order`` into chunks.

        A function larger than the cap gets a chunk of its own; the cap
        is a target, not a hard bound, because functions are atomic.
        """
        chunks: List[List[int]] = []
        current: List[int] = []
        used = 0
        for index in order:
            size = max(0, extents[index].size)
            if current and used + size > target_bytes:
                chunks.append(current)
                current, used = [], 0
            current.append(index)
            used += size
        if current:
            chunks.append(current)
        return chunks


@dataclass(frozen=True)
class GreedyPlacement(ChunkPlacement):
    """Size-capped greedy placement in module order (the default).

    Functions defined together tend to be called together, so module
    order is a serviceable locality heuristic when no profile exists.
    """

    target_bytes: int = DEFAULT_CHUNK_BYTES

    def __post_init__(self) -> None:
        if self.target_bytes < 1:
            raise ValueError(
                f"target_bytes must be >= 1, got {self.target_bytes}")

    def place(self, extents: Sequence[FunctionExtent]) -> List[List[int]]:
        return self._pack_by_size(range(len(extents)), extents,
                                  self.target_bytes)


class HotColdPlacement(ChunkPlacement):
    """Profile-guided placement: hottest functions share leading chunks.

    ``profile`` maps function names to heat (higher = hotter); unnamed
    functions fall back to their :attr:`FunctionExtent.weight`, default
    cold.  Functions are packed in descending heat (ties broken by
    original index, so the placement is deterministic), which clusters
    the working set of a hot path into the minimal set of chunks — the
    Ozturk-style access-pattern layout.
    """

    def __init__(self, profile: Optional[Mapping[str, float]] = None,
                 target_bytes: int = DEFAULT_CHUNK_BYTES) -> None:
        if target_bytes < 1:
            raise ValueError(f"target_bytes must be >= 1, got {target_bytes}")
        self.profile: Dict[str, float] = dict(profile or {})
        self.target_bytes = target_bytes

    def heat(self, extent: FunctionExtent) -> float:
        return self.profile.get(extent.name, extent.weight)

    def place(self, extents: Sequence[FunctionExtent]) -> List[List[int]]:
        order = sorted(range(len(extents)),
                       key=lambda i: (-self.heat(extents[i]), i))
        return self._pack_by_size(order, extents, self.target_bytes)


def validate_placement(placement: Sequence[Sequence[int]],
                       count: int) -> List[List[int]]:
    """Check a placement partitions ``range(count)``; normalize members
    to ascending index and drop empty chunks.  Raises ``ValueError`` on
    a policy that loses, duplicates, or invents functions."""
    seen: set = set()
    chunks: List[List[int]] = []
    for members in placement:
        members = sorted(members)
        if not members:
            continue
        for index in members:
            if not 0 <= index < count:
                raise ValueError(f"placement references function {index} "
                                 f"of {count}")
            if index in seen:
                raise ValueError(f"placement assigns function {index} to "
                                 f"two chunks")
            seen.add(index)
        chunks.append(members)
    if len(seen) != count:
        missing = sorted(set(range(count)) - seen)
        raise ValueError(f"placement leaves functions {missing} unplaced")
    if not chunks and count == 0:
        return [[]] if False else []
    return chunks


# ---------------------------------------------------------------------------
# The parsed block index
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ChunkRecord:
    """One chunk's extent in the stored blob."""

    index: int
    offset: int          # absolute byte offset of the chunk in the blob
    length: int          # stored bytes
    crc32: int
    members: Tuple[int, ...] = ()   # function indices, ascending


@dataclass(frozen=True)
class FunctionRecord:
    """One function's location: which chunk stores it, and where its
    bytes land in the *decoded* address space (concatenated function
    images in original module order)."""

    index: int
    name: str
    chunk: int
    span_start: int
    span_length: int


@dataclass
class ContainerIndex:
    """The block index of a seekable (v3) container.

    ``header_bytes`` is the prefix (magic, CRCs, header) every partial
    read needs; ``ranges_for_*`` return the minimal sorted list of
    ``(offset, length)`` byte ranges a client must fetch to decode the
    request.  ``span_bytes`` is the total decoded address space.
    """

    kind: str                       # "wire" | "brisc"
    version: int
    total_bytes: int
    header_bytes: int
    functions: List[FunctionRecord] = field(default_factory=list)
    chunks: List[ChunkRecord] = field(default_factory=list)

    @property
    def span_bytes(self) -> int:
        return sum(f.span_length for f in self.functions)

    def function(self, name: str) -> FunctionRecord:
        for record in self.functions:
            if record.name == name:
                return record
        raise CorruptStreamError(
            f"container has no function {name!r} "
            f"(have: {[f.name for f in self.functions]})")

    def chunk_of(self, name: str) -> ChunkRecord:
        return self.chunks[self.function(name).chunk]

    def functions_in_span(self, start: int,
                          length: int) -> List[FunctionRecord]:
        """Functions whose decoded span intersects [start, start+length)."""
        if start < 0 or length < 0:
            raise CorruptStreamError(
                f"invalid span request start={start} length={length}")
        end = start + length
        return [f for f in self.functions
                if f.span_length and f.span_start < end
                and start < f.span_start + f.span_length]

    def _ranges(self, chunk_ids: Iterable[int]) -> List[Tuple[int, int]]:
        ranges = [(0, self.header_bytes)]
        for cid in sorted(set(chunk_ids)):
            chunk = self.chunks[cid]
            ranges.append((chunk.offset, chunk.length))
        return _coalesce(ranges)

    def ranges_for_function(self, name: str) -> List[Tuple[int, int]]:
        return self._ranges([self.function(name).chunk])

    def ranges_for_span(self, start: int, length: int) -> List[Tuple[int, int]]:
        return self._ranges(
            f.chunk for f in self.functions_in_span(start, length))


def _coalesce(ranges: List[Tuple[int, int]]) -> List[Tuple[int, int]]:
    """Merge overlapping/adjacent (offset, length) ranges."""
    merged: List[Tuple[int, int]] = []
    for offset, length in sorted(ranges):
        if merged and offset <= merged[-1][0] + merged[-1][1]:
            last_off, last_len = merged[-1]
            merged[-1] = (last_off,
                          max(last_len, offset + length - last_off))
        else:
            merged.append((offset, length))
    return merged


def assemble_sparse(total_bytes: int,
                    segments: Iterable[Tuple[int, bytes]]) -> bytes:
    """Rebuild a sparse container from fetched ``(offset, bytes)`` pieces.

    Unfetched regions stay zero.  The result is decodable by
    ``decode_function``/``decode_range`` for any function whose header
    and chunk ranges were fetched — those are the only bytes the partial
    decoders touch, so the zero filler is never read.
    """
    if total_bytes < 0:
        raise ValueError(f"total_bytes must be >= 0, got {total_bytes}")
    blob = bytearray(total_bytes)
    for offset, data in segments:
        if offset < 0 or offset + len(data) > total_bytes:
            raise ValueError(
                f"segment [{offset}, {offset + len(data)}) outside the "
                f"{total_bytes}-byte container")
        blob[offset:offset + len(data)] = data
    return bytes(blob)
