"""Mobile-code delivery model: the paper's transmission-bottleneck scenario.

"Over a modem, the tree compression algorithm will do better at minimizing
the latency between when a program is requested and when the program begins
performing useful work ... in a local area network, BRISC is a good mobile
program representation choice", and "the delivery time from the network or
disk can mask some or even all of the recompilation time".

This module does that arithmetic explicitly: given a representation's size
and its preparation pipeline (decompress and/or JIT at measured rates), it
computes time-to-first-useful-work over links from 28.8 kbaud modems to
LANs, with optional overlap of download and preparation (streamed
recompilation, which is what masks JIT time).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

__all__ = ["Link", "Representation", "DeliveryResult", "delivery_time",
           "MODEM_28_8", "ISDN_128K", "DSL_1M", "LAN_10M"]


@dataclass(frozen=True)
class Link:
    """A transmission medium."""

    name: str
    bytes_per_second: float
    latency_seconds: float = 0.0


MODEM_28_8 = Link("28.8k modem", 28_800 / 8, 0.1)
ISDN_128K = Link("128k ISDN", 128_000 / 8, 0.05)
DSL_1M = Link("1M DSL", 1_000_000 / 8, 0.03)
LAN_10M = Link("10M LAN", 10_000_000 / 8, 0.001)


@dataclass(frozen=True)
class Representation:
    """A shippable program form and what the client must do with it.

    * ``size_bytes`` — bytes on the wire.
    * ``decompress_rate`` — bytes/sec the client expands (None: no pass).
    * ``jit_rate`` — bytes/sec of *produced* native code (None: no JIT;
      the produced size is ``native_bytes``).
    * ``native_bytes`` — native code size the JIT must produce.
    """

    name: str
    size_bytes: int
    decompress_rate: Optional[float] = None
    jit_rate: Optional[float] = None
    native_bytes: int = 0


@dataclass
class DeliveryResult:
    """Latency breakdown for one (representation, link) pair."""

    representation: str
    link: str
    transfer_seconds: float
    prepare_seconds: float
    total_seconds: float
    overlapped: bool


def delivery_time(
    rep: Representation, link: Link, overlap: bool = True
) -> DeliveryResult:
    """Time from request until the program can start running.

    With ``overlap`` the client pipelines preparation with the download
    (function-at-a-time decompression / streamed recompilation), so total
    time is ``latency + max(transfer, prepare) + epsilon``; without it the
    phases serialize.
    """
    transfer = rep.size_bytes / link.bytes_per_second
    prepare = 0.0
    if rep.decompress_rate:
        prepare += rep.size_bytes / rep.decompress_rate
    if rep.jit_rate:
        prepare += rep.native_bytes / rep.jit_rate
    if overlap:
        total = link.latency_seconds + max(transfer, prepare)
    else:
        total = link.latency_seconds + transfer + prepare
    return DeliveryResult(
        representation=rep.name,
        link=link.name,
        transfer_seconds=transfer,
        prepare_seconds=prepare,
        total_seconds=total,
        overlapped=overlap,
    )
