"""Seekable container support shared by the WIR3 and BRI3 formats.

The format-specific encoders/decoders live with their formats
(:mod:`repro.wire.format`, :mod:`repro.brisc.encode`); this package holds
the chunk-placement policies and block-index types they share, plus
format-dispatching front doors (:func:`container_index`,
:func:`decode_function_bytes` …) that branch on the blob's magic so
callers like the service and CLI don't care which format they hold.
"""

from __future__ import annotations

from typing import Optional

from ..errors import ResourceLimits, UnsupportedFormatError
from .chunking import (
    DEFAULT_CHUNK_BYTES, ChunkPlacement, ChunkRecord, ContainerIndex,
    FunctionExtent, FunctionRecord, GreedyPlacement, HotColdPlacement,
    assemble_sparse, validate_placement,
)

__all__ = [
    "DEFAULT_CHUNK_BYTES",
    "ChunkPlacement",
    "ChunkRecord",
    "ContainerIndex",
    "FunctionExtent",
    "FunctionRecord",
    "GreedyPlacement",
    "HotColdPlacement",
    "assemble_sparse",
    "container_index",
    "container_kind",
    "decode_range_bytes",
    "validate_placement",
]


def container_kind(blob: bytes) -> str:
    """``"wire"`` or ``"brisc"``, by magic; typed error otherwise."""
    if blob[:3] == b"WIR":
        return "wire"
    if blob[:3] == b"BRI":
        return "brisc"
    raise UnsupportedFormatError("neither a wire blob nor a BRISC image")


def container_index(blob: bytes,
                    limits: Optional[ResourceLimits] = None) -> ContainerIndex:
    """Parse the block index of a seekable container (either format)."""
    if container_kind(blob) == "wire":
        from ..wire import format as wire_format

        return wire_format.container_index(blob, limits)
    from ..brisc import encode as brisc_encode

    return brisc_encode.container_index(blob, limits)


def decode_range_bytes(blob: bytes, start: int, length: int,
                       limits: Optional[ResourceLimits] = None) -> bytes:
    """``decode_range`` for either format (see the format modules)."""
    if container_kind(blob) == "wire":
        from ..wire import format as wire_format

        return wire_format.decode_range(blob, start, length, limits)
    from ..brisc import encode as brisc_encode

    return brisc_encode.decode_range(blob, start, length, limits)
